"""Handwritten-digit classification from contour chain codes (Section 4.4).

Renders synthetic digits, traces their contours into Freeman chain codes,
and runs a 1-NN classifier with several distances -- a miniature of the
paper's Table 2, with a confusion matrix for the contextual heuristic.

Run:  python examples/digit_classification.py
"""

import random

from repro.classify import NearestNeighborClassifier, confusion_matrix
from repro.core import get_distance, get_spec
from repro.datasets import handwritten_digits, render_digit
from repro.index import LaesaIndex


def show_bitmap(digit: int, seed: int) -> None:
    image = render_digit(digit, random.Random(seed), grid=20)
    for row in image:
        print("   " + "".join("#" if v else "." for v in row))


def main() -> None:
    print("Two synthetic '8's from different writers:")
    show_bitmap(8, seed=3)
    print()
    show_bitmap(8, seed=12)

    data = handwritten_digits(per_class=12, seed=2024, grid=22)
    rng = random.Random(0)
    train, rest = data.stratified_split(8, rng)
    test_items, test_labels = rest.items, rest.labels
    print(f"\ntraining: {len(train)} contours; test: {len(test_items)}")
    print(f"contour lengths: {data.length_statistics()}")

    print(f"\n{'distance':12s} {'error rate':>10s} {'comps/query':>12s}")
    for name in ("levenshtein", "yujian_bo", "marzal_vidal",
                 "contextual_heuristic", "dmax"):
        clf = NearestNeighborClassifier(
            get_distance(name),
            index_factory=lambda items, d: LaesaIndex(
                items, d, n_pivots=16, rng=random.Random(1)
            ),
        ).fit(train.items, train.labels)
        stats = clf.evaluate(test_items, test_labels)
        print(f"{get_spec(name).display:12s} {100 * stats.error_rate:9.1f}% "
              f"{stats.computations_per_query:12.1f}")

    print("\nconfusion matrix for dC,h (rows: truth, cols: predicted):")
    clf = NearestNeighborClassifier(
        get_distance("contextual_heuristic")
    ).fit(train.items, train.labels)
    matrix = confusion_matrix(clf, test_items, test_labels)
    print("    " + " ".join(f"{c:>3d}" for c in range(10)))
    for truth in range(10):
        row = [matrix.get((truth, predicted), 0) for predicted in range(10)]
        print(f"  {truth} " + " ".join(f"{v:>3d}" for v in row))


if __name__ == "__main__":
    main()
