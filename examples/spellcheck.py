"""Spell-checking with metric search: LAESA vs exhaustive scan.

The paper's motivating use case: nearest-neighbour search over a
dictionary with a *normalised* edit distance, accelerated by the triangle
inequality.  This example builds a synthetic Spanish dictionary, indexes
it with LAESA, and suggests corrections for misspelled words while
counting how many distance computations each search needed.

Run:  python examples/spellcheck.py
"""

import random
import time

from repro.core import get_distance
from repro.datasets import perturb, spanish_dictionary
from repro.index import ExhaustiveIndex, LaesaIndex


def main() -> None:
    rng = random.Random(42)
    dictionary = spanish_dictionary(n_words=3000, seed=7)
    words = list(dictionary.items)
    print(f"dictionary: {len(words)} words, "
          f"mean length {dictionary.length_statistics()['mean']:.1f}")

    distance = get_distance("contextual_heuristic")

    print("\nbuilding LAESA index (40 max-min pivots)...")
    started = time.perf_counter()
    laesa = LaesaIndex(words, distance, n_pivots=40, rng=random.Random(1))
    print(f"  built in {time.perf_counter() - started:.2f}s "
          f"({laesa.preprocessing_computations} preprocessing distances)")
    exhaustive = ExhaustiveIndex(words, distance)

    # misspellings: genqueries-style perturbations of real dictionary words
    originals = rng.sample(words, 8)
    misspelled = [perturb(w, 2, rng) for w in originals]

    print(f"\n{'misspelled':>16s} -> {'suggestion':16s} "
          f"{'d_C,h':>7s} {'LAESA comps':>12s} {'scan comps':>11s}")
    total_laesa = total_scan = 0
    for query, original in zip(misspelled, originals):
        suggestion, stats = laesa.nearest(query)
        _, scan_stats = exhaustive.nearest(query)
        total_laesa += stats.distance_computations
        total_scan += scan_stats.distance_computations
        marker = "*" if suggestion.item == original else " "
        print(f"{query:>16s} -> {suggestion.item:16s} "
              f"{suggestion.distance:7.4f} {stats.distance_computations:12d} "
              f"{scan_stats.distance_computations:11d} {marker}")
    print(f"\n(* = recovered the original word)")
    print(f"LAESA computed {total_laesa} distances; "
          f"the scan computed {total_scan} "
          f"({total_scan / max(total_laesa, 1):.1f}x more)")

    # top-5 suggestions for one query
    query = misspelled[0]
    print(f"\ntop-5 suggestions for {query!r}:")
    results, _ = laesa.knn(query, 5)
    for rank, r in enumerate(results, 1):
        print(f"  {rank}. {r.item:16s} d={r.distance:.4f}")


if __name__ == "__main__":
    main()
