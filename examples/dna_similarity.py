"""Gene similarity search: why normalisation choice matters on long,
length-varied strings.

DNA sequences of very different lengths are where the normalisations
disagree most (the paper's Figure 2 / Table 1).  This example builds a
synthetic gene set with mutated families, shows how each distance ranks a
gene's relatives, and measures each space's intrinsic dimensionality.

Run:  python examples/dna_similarity.py
"""

import random

from repro.analysis import intrinsic_dimensionality_of
from repro.core import get_distance, get_spec
from repro.datasets import listeria_genes
from repro.index import LaesaIndex


def main() -> None:
    genes = listeria_genes(
        n_genes=60, seed=99, max_length=360, family_fraction=0.5,
        family_size=3, mutation_rate=0.05,
    )
    items = list(genes.items)
    print(f"{len(items)} genes, lengths {genes.length_statistics()}")

    # take a query gene and find its nearest relatives per distance
    query = items.pop(0)
    print(f"\nquery gene: {len(query)} bases, starts {query[:24]}...")
    for name in ("levenshtein", "yujian_bo", "contextual_heuristic", "dmax"):
        distance = get_distance(name)
        ranked = sorted(items, key=lambda g: distance(query, g))
        top = ranked[0]
        print(f"  {get_spec(name).display:6s} nearest: {len(top):4d} bases, "
              f"d = {distance(query, top):.4f}")

    # intrinsic dimensionality: lower = triangle inequality prunes better
    print("\nintrinsic dimensionality (lower = easier metric search):")
    sample = items[:40]
    for name in ("levenshtein", "contextual_heuristic", "yujian_bo", "dmax"):
        rho = intrinsic_dimensionality_of(
            sample, get_distance(name), max_pairs=300
        )
        print(f"  {get_spec(name).display:6s} rho = {rho:6.2f}")

    # and the practical consequence: LAESA pruning power
    print("\nLAESA (12 pivots) computations per query, 20 queries:")
    rng = random.Random(5)
    queries = [items[rng.randrange(len(items))] for _ in range(20)]
    for name in ("contextual_heuristic", "yujian_bo"):
        index = LaesaIndex(
            sample, get_distance(name), n_pivots=12, rng=random.Random(2)
        )
        total = sum(
            index.nearest(q)[1].distance_computations for q in queries
        )
        print(f"  {get_spec(name).display:6s} {total / len(queries):6.1f} "
              f"of {len(sample)}")


if __name__ == "__main__":
    main()
