"""Metric or not?  The paper's counterexamples, verified mechanically.

* Section 2.2: d_sum, d_max, d_min violate the triangle inequality
  (with the exact strings quoted in the paper);
* Theorem 1: d_C passes an exhaustive axiom check on a small universe;
* the conclusion's remark: naively generalising the contextual idea to
  weighted operations breaks the internal-path property -- cheap dummy
  symbols make non-internal paths strictly cheaper.

Run:  python examples/metric_properties.py
"""

from repro.core import (
    check_metric,
    contextual_distance,
    internal_failure_example,
    mv_normalized_distance,
    yb_normalized_distance,
)
from repro.core.metric import all_strings
from repro.core.ratios import (
    TRIANGLE_COUNTEREXAMPLES,
    max_normalized_distance,
    min_normalized_distance,
    sum_normalized_distance,
    triangle_defect,
)

_RATIOS = {
    "dsum": sum_normalized_distance,
    "dmax": max_normalized_distance,
    "dmin": min_normalized_distance,
}


def main() -> None:
    print("Section 2.2 counterexamples (d(x,z) > d(x,y) + d(y,z)):\n")
    for name, (x, y, z) in TRIANGLE_COUNTEREXAMPLES:
        d = _RATIOS[name]
        print(f"  {name}: x={x!r} y={y!r} z={z!r}")
        print(f"     d(x,z) = {d(x, z):.4f}   "
              f"d(x,y) + d(y,z) = {d(x, y) + d(y, z):.4f}   "
              f"defect = {triangle_defect(d, x, y, z):+.4f}")

    universe = all_strings("ab", 3)
    print(f"\nExhaustive axiom check over {len(universe)} strings "
          f"(all of length <= 3 over {{a,b}}):")
    for label, fn in (
        ("d_C  (contextual)", contextual_distance),
        ("d_YB (Yujian-Bo)", yb_normalized_distance),
        ("d_MV (Marzal-Vidal)", mv_normalized_distance),
        ("d_sum", sum_normalized_distance),
        ("d_max", max_normalized_distance),
    ):
        report = check_metric(fn, universe)
        print(f"  {label:22s}: {report.summary()}")
    print("  (d_MV's unit-cost metricity is an open question in the paper;"
          "\n   no violation exists on this universe)")

    print("\nConclusion remark: weighted contextual costs break Lemma 1.")
    failure = internal_failure_example()
    print(f"  transform {failure.x!r} -> {failure.y!r} where sub(a->b) = 10 "
          f"and the dummy 'c' costs 0.1:")
    print(f"    best internal path (what Algorithm 1 explores): "
          f"{failure.internal_cost:.4f}")
    print(f"    true optimum (insert ccc, substitute at length 4, "
          f"delete ccc): {failure.optimal_cost:.4f}")
    print(f"    the internal-only strategy overpays by {failure.gap:.4f} -- "
          f"so the generalised\n    contextual distance needs a different "
          f"algorithm (the paper's future work).")


if __name__ == "__main__":
    main()
