"""Quickstart: the contextual normalised edit distance in five minutes.

Run:  python examples/quickstart.py
"""

from repro import (
    alignment,
    check_metric,
    contextual_distance,
    contextual_distance_heuristic,
    contextual_profile,
    levenshtein_distance,
    list_distances,
    max_normalized_distance,
    mv_normalized_distance,
    yb_normalized_distance,
)
from repro.core import contextual_edit_path
from repro.core.metric import all_strings


def main() -> None:
    # --- the paper's worked examples ------------------------------------
    print("d_E(abaa, aab) =", levenshtein_distance("abaa", "aab"))
    print("d_C(ababa, baab) =", contextual_distance("ababa", "baab"),
          "(paper: 8/15 =", 8 / 15, ")")

    # --- why normalise?  two edits on short vs long strings -------------
    print("\nTwo edits hurt a short string more than a long one:")
    short_x, short_y = "ab", "ba"
    long_x = "ab" * 100
    long_y = "ba" + "ab" * 99
    for label, d in (
        ("d_E  ", lambda a, b: float(levenshtein_distance(a, b))),
        ("d_C  ", contextual_distance),
        ("d_YB ", yb_normalized_distance),
        ("d_MV ", mv_normalized_distance),
        ("d_max", max_normalized_distance),
    ):
        print(f"  {label}: short={d(short_x, short_y):.4f}   "
              f"long={d(long_x, long_y):.4f}")

    # --- the fast heuristic ----------------------------------------------
    x, y = "contextual", "normalised"
    exact = contextual_distance(x, y)
    heuristic = contextual_distance_heuristic(x, y)
    print(f"\nd_C({x!r}, {y!r})   = {exact:.6f}")
    print(f"d_C,h({x!r}, {y!r}) = {heuristic:.6f}  "
          f"({'equal' if abs(exact - heuristic) < 1e-12 else 'heuristic larger'})")

    # --- inspecting the optimum: cost for every paid-operation count k ---
    print("\nk-profile for (ababa -> baab):  [k: insertions, cost]")
    for point in contextual_profile("ababa", "baab"):
        print(f"  k={point.k}: ni={point.ni}, ns={point.ns}, nd={point.nd}, "
              f"cost={point.cost:.4f}")

    # --- the optimal path itself ------------------------------------------
    print("\nThe optimal contextual path for (ababa -> baab), in canonical")
    print("order (insertions first, then substitutions, deletions last):")
    path = contextual_edit_path("ababa", "baab")
    for op in path.ops:
        if op.kind != "match":
            print(f"  {op.kind:10s} at position {op.position}: "
                  f"{op.before!r} -> {op.after!r}")
    print(f"  total weight {path.contextual_weight:.4f} "
          f"(= d_C, with {path.edit_weight} paid operations; "
          f"d_E is {levenshtein_distance('ababa', 'baab')})")

    # --- alignments -------------------------------------------------------
    print("\nAn optimal alignment (| match, * substitute, + insert, - delete):")
    for line in alignment("levenshtein", "contextual"):
        print(" ", line)

    # --- d_C is a metric; d_max is not ------------------------------------
    universe = all_strings("ab", 3)
    print("\nMetric check over all strings of length <= 3 on {a,b}:")
    print("  d_C :", check_metric(contextual_distance, universe).summary())
    print("  d_max:", check_metric(max_normalized_distance, universe).summary())

    # --- everything in the registry ---------------------------------------
    print("\nRegistered distances:")
    for spec in list_distances():
        metric = "metric" if spec.is_metric else "NOT a metric"
        print(f"  {spec.name:22s} ({spec.display:5s}) -- {metric}; {spec.notes}")


if __name__ == "__main__":
    main()
