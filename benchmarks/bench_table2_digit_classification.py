"""Table 2: 1-NN digit classification error, LAESA vs exhaustive.

Reproduced claims: the normalised distances beat the raw edit distance;
d_C and d_C,h produce identical error rates; LAESA's error matches
exhaustive search (even for the non-metric d_max / d_MV rows).
"""

import pytest

from repro.experiments import run


def test_table2(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        run, args=("tab2",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    save_result("table2_digit_classification", result.render())
    exh = {k: v.mean_error_rate for k, v in result.exhaustive.items()}
    laesa = {k: v.mean_error_rate for k, v in result.laesa.items()}
    # d_C and d_C,h: identical behaviour (the paper reports 5.30 / 5.30)
    assert exh["contextual"] == pytest.approx(
        exh["contextual_heuristic"], abs=0.02
    )
    # LAESA tracks exhaustive search closely for every distance
    for name in exh:
        assert laesa[name] == pytest.approx(exh[name], abs=0.05), name
    # normalisation helps: the best normalised distance beats raw d_E
    best_normalised = min(
        exh[name]
        for name in ("yujian_bo", "marzal_vidal", "contextual",
                     "contextual_heuristic", "dmax")
    )
    assert best_normalised <= exh["levenshtein"] + 1e-9
