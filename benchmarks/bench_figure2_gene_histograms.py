"""Figure 2: histograms of the normalised distances and d_E on genes.

The reproduced claim: dYB/dMV/dmax concentrate (high intrinsic
dimensionality), while d_C,h and d_E spread.
"""

from repro.experiments import run


def test_figure2(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        run, args=("fig2",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    save_result("figure2_gene_histograms", result.render())
    rho = {
        name: hist.intrinsic_dimensionality
        for name, hist in result.normalised.items()
    }
    # the contextual heuristic is the least concentrated normalisation
    assert rho["dC,h"] < rho["dYB"]
    assert rho["dC,h"] < rho["dMV"]
    assert rho["dC,h"] < rho["dmax"]
    # d_E values dwarf the normalised ones (separate panel in the paper)
    assert result.levenshtein.mean > 10 * max(
        h.mean for h in result.normalised.values()
    )
