"""Table 1: intrinsic dimensionality of five distances on three datasets.

The reproduced claim is the ordering: rho(dE) < rho(dC,h) < rho of the
other normalised distances, on every dataset.
"""

from repro.experiments import run


def test_table1(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        run, args=("tab1",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    save_result("table1_intrinsic_dimensionality", result.render())
    checks = result.ordering_preserved()
    # demand the full ordering on at least two of the three datasets and
    # the dC,h < others half on all three (small samples can tie dE/dC,h)
    assert sum(checks.values()) >= 2, checks
    for col in range(3):
        d_ch = result.measured["contextual_heuristic"][col]
        others = min(
            result.measured[name][col]
            for name in ("yujian_bo", "marzal_vidal", "dmax")
        )
        assert d_ch < others
