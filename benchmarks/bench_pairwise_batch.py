#!/usr/bin/env python
"""Benchmark the pair-batched distance engine against the scalar loop.

Builds an ``n x n`` pairwise matrix over random DNA-length strings (the
regime of the paper's gene experiments) twice:

* **batch**  -- one :func:`repro.batch.pairwise_matrix` call (the upper
  triangle runs through the pair-batched anti-diagonal kernels);
* **scalar** -- the per-pair Python loop every consumer used before the
  engine existed.  At full size the scalar loop takes minutes, so it is
  timed over an evenly strided subset of at least ``--scalar-pairs``
  unique pairs and extrapolated (the per-pair cost is flat across the
  stride; ``--full-scalar`` forces the complete loop).

The batch result is cross-checked cell-by-cell against the scalar values
on the timed subset (bit-identical, not approximately equal).  Results,
including the speedup factor, are appended as one JSON object per run to
``BENCH_batch.json`` so the perf trajectory survives across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_pairwise_batch.py            # full
    PYTHONPATH=src python benchmarks/bench_pairwise_batch.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

import numpy as np

from repro.batch import pairwise_matrix
from repro.core import get_distance

DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_batch.json"


def _random_strings(n: int, lo: int, hi: int, seed: int) -> list:
    rng = random.Random(seed)
    return [
        "".join(rng.choice("acgt") for _ in range(rng.randint(lo, hi)))
        for _ in range(n)
    ]


def run_benchmark(
    distance: str,
    n_items: int,
    min_len: int,
    max_len: int,
    scalar_pairs: int,
    full_scalar: bool,
    seed: int = 0xBA7C4,
) -> dict:
    items = _random_strings(n_items, min_len, max_len, seed)
    fn = get_distance(distance)

    started = time.perf_counter()
    matrix = pairwise_matrix(distance, items)
    batch_seconds = time.perf_counter() - started

    unique = [
        (i, j) for i in range(n_items) for j in range(i + 1, n_items)
    ]
    n_unique = len(unique)
    if full_scalar or n_unique <= scalar_pairs:
        subset = unique
    else:
        stride = max(1, n_unique // scalar_pairs)
        subset = unique[::stride]
    started = time.perf_counter()
    scalar_values = [fn(items[i], items[j]) for i, j in subset]
    scalar_subset_seconds = time.perf_counter() - started
    scalar_seconds = scalar_subset_seconds / len(subset) * n_unique

    mismatches = sum(
        1
        for (i, j), value in zip(subset, scalar_values)
        if matrix[i, j] != value
    )
    if mismatches:
        raise AssertionError(
            f"{mismatches}/{len(subset)} batch cells differ from scalar"
        )
    if not np.array_equal(matrix, matrix.T):
        raise AssertionError("pairwise matrix is not symmetric")

    return {
        "bench": "pairwise_batch",
        "distance": distance,
        "n_items": n_items,
        "n_unique_pairs": n_unique,
        "min_len": min_len,
        "max_len": max_len,
        "batch_seconds": round(batch_seconds, 4),
        "scalar_seconds_estimated": round(scalar_seconds, 4),
        "scalar_pairs_timed": len(subset),
        "scalar_extrapolated": len(subset) != n_unique,
        "speedup": round(scalar_seconds / batch_seconds, 2),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, CI-sized run (~seconds) instead of the full 200x200",
    )
    parser.add_argument(
        "--distance",
        default="contextual_heuristic",
        help="registry name to benchmark (default: contextual_heuristic)",
    )
    parser.add_argument(
        "--items", type=int, default=None, help="override the item count"
    )
    parser.add_argument(
        "--scalar-pairs",
        type=int,
        default=500,
        help="minimum unique pairs timed for the scalar estimate",
    )
    parser.add_argument(
        "--full-scalar",
        action="store_true",
        help="time the complete scalar loop instead of extrapolating",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_JSON,
        help=f"JSON-lines results file (default: {DEFAULT_JSON.name})",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        n_items = args.items or 40
        min_len, max_len = 60, 110
        scalar_pairs = min(args.scalar_pairs, 120)
    else:
        n_items = args.items or 200
        min_len, max_len = 90, 160  # DNA-length regime
        scalar_pairs = args.scalar_pairs

    record = run_benchmark(
        args.distance,
        n_items,
        min_len,
        max_len,
        scalar_pairs,
        args.full_scalar,
    )
    from bench_tags import ambient_tags

    record.update(ambient_tags("smoke" if args.smoke else "full"))
    print(json.dumps(record, indent=2))

    with args.json.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record) + "\n")
    print(f"[appended to {args.json}]")

    if record["speedup"] < 5.0 and not args.smoke:
        print(
            f"WARNING: speedup {record['speedup']}x below the 5x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
