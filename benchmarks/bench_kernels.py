"""Ablation: pure-Python vs numpy anti-diagonal kernels.

Quantifies the dispatch thresholds chosen in repro.core: numpy kernels
lose on short words (per-call overhead) and win on long contours/genes.
"""

import random

import pytest

from repro.core._kernels import contextual_heuristic_numpy, levenshtein_numpy
from repro.core.contextual import _heuristic_tables
from repro.core.levenshtein import levenshtein_matrix


def _random_string(rng, length, alphabet="acgt"):
    return "".join(rng.choice(alphabet) for _ in range(length))


@pytest.mark.parametrize("length", [8, 64, 256])
@pytest.mark.parametrize("kernel", ["python", "numpy"])
def test_levenshtein_kernels(benchmark, length, kernel):
    rng = random.Random(length)
    x = _random_string(rng, length)
    y = _random_string(rng, length)
    if kernel == "python":
        benchmark(lambda: levenshtein_matrix(x, y)[len(x)][len(y)])
    else:
        benchmark(levenshtein_numpy, x, y)


@pytest.mark.parametrize("length", [8, 64, 256])
@pytest.mark.parametrize("kernel", ["python", "numpy"])
def test_contextual_heuristic_kernels(benchmark, length, kernel):
    rng = random.Random(1000 + length)
    x = _random_string(rng, length)
    y = _random_string(rng, length)
    if kernel == "python":
        benchmark(_heuristic_tables, x, y)
    else:
        benchmark(contextual_heuristic_numpy, x, y)
