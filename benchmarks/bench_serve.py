#!/usr/bin/env python
"""Traffic-replay benchmark of the serving tier (`repro.serve`).

Replays open-loop traffic (seeded exponential arrivals at a target
rate) and closed-loop traffic (C clients, each issuing its next request
the moment the previous one answers) against an
:class:`~repro.serve.IndexServer` over a LAESA index, sweeping the
coalescing window.  Each (loop, window) point is emitted as one JSON
row with p50/p99 latency, throughput, shed / deadline / degraded-batch
counts, and mean coalesced batch size -- appended to ``BENCH_serve.json``
so the serving-latency trajectory survives across PRs.

Every successful response is cross-checked **bit-identically** against
a direct ``bulk_knn`` on the same index (results and per-query distance
counts); with ``--faults`` armed the checks still hold for every
response the server chose to answer -- the chaos receipts
(``DeadlineExceeded``/``ServerOverloaded``) cover the rest.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI leg
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke \
        --faults "worker_crash:p=0.2,seed=12"                  # chaos leg
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

import numpy as np

from bench_tags import ambient_tags
from repro.core import get_distance
from repro.index import LaesaIndex
from repro.serve import IndexServer, ServeConfig, ServeError

DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def _corpus(n, seed, alphabet="abcdefgh", lo=3, hi=12):
    rng = random.Random(seed)
    out = []
    while len(out) < n:
        word = "".join(rng.choice(alphabet) for _ in range(rng.randint(lo, hi)))
        out.append(word)
    return out


def _key(per_query):
    """Bit-exact projection of bulk results for identity checks."""
    return [
        ([(r.index, r.distance) for r in results], stats.distance_computations)
        for results, stats in per_query
    ]


async def _open_loop(server, queries, k, rate_rps, timeout_ms, seed):
    """Open loop: arrivals at seeded exponential inter-arrival times,
    regardless of how fast the server answers (the overload-honest
    shape).  Returns (outcomes, per-request latencies in seconds)."""
    rng = random.Random(seed)
    latencies = [None] * len(queries)
    outcomes = [None] * len(queries)

    async def one(i, query):
        started = time.perf_counter()
        try:
            outcomes[i] = await server.knn(query, k, timeout_ms=timeout_ms)
        except ServeError as exc:
            outcomes[i] = exc
        latencies[i] = time.perf_counter() - started

    tasks = []
    for i, query in enumerate(queries):
        tasks.append(asyncio.create_task(one(i, query)))
        await asyncio.sleep(rng.expovariate(rate_rps))
    await asyncio.gather(*tasks)
    return outcomes, latencies


async def _closed_loop(server, queries, k, clients, timeout_ms):
    """Closed loop: *clients* concurrent workers, each issuing its next
    query as soon as the previous answer (or receipt) lands."""
    latencies = [None] * len(queries)
    outcomes = [None] * len(queries)
    cursor = iter(range(len(queries)))

    async def worker():
        for i in cursor:
            started = time.perf_counter()
            try:
                outcomes[i] = await server.knn(
                    queries[i], k, timeout_ms=timeout_ms
                )
            except ServeError as exc:
                outcomes[i] = exc
            latencies[i] = time.perf_counter() - started

    await asyncio.gather(*(worker() for _ in range(clients)))
    return outcomes, latencies


def _run_point(index, direct, queries, k, loop_kind, window_ms, args):
    """One (loop, window) measurement: replay, verify, summarise."""
    config = ServeConfig(
        window_ms=window_ms,
        max_batch=args.max_batch,
        queue_max=args.queue_max,
        dispose_runtime_on_drain=False,
    )

    async def replay():
        async with IndexServer(index, config) as server:
            started = time.perf_counter()
            if loop_kind == "open":
                outcomes, latencies = await _open_loop(
                    server, queries, k, args.rate, args.timeout_ms, seed=71
                )
            else:
                outcomes, latencies = await _closed_loop(
                    server, queries, k, args.clients, args.timeout_ms
                )
            elapsed = time.perf_counter() - started
            return outcomes, latencies, elapsed, server.metrics.snapshot()

    from repro.batch.runtime import get_runtime

    ring_before = get_runtime().ring_stats()
    outcomes, latencies, elapsed, counters = asyncio.run(replay())
    ring_after = get_runtime().ring_stats()

    answered = 0
    for query, outcome in zip(queries, outcomes):
        if isinstance(outcome, ServeError):
            continue
        if _key([outcome]) != [direct[query]]:
            raise SystemExit(
                f"IDENTITY VIOLATION: served answer for {query!r} diverged "
                "from the direct bulk_knn result"
            )
        answered += 1

    answered_latencies = sorted(
        lat for lat, out in zip(latencies, outcomes)
        if not isinstance(out, ServeError)
    )
    def percentile(q):
        if not answered_latencies:
            return None
        return round(float(np.percentile(answered_latencies, q)) * 1000.0, 3)
    return {
        "bench": "serve",
        "loop": loop_kind,
        "window_ms": window_ms,
        "max_batch": args.max_batch,
        "queue_max": args.queue_max,
        "timeout_ms": args.timeout_ms,
        "rate_rps": args.rate if loop_kind == "open" else None,
        "clients": args.clients if loop_kind == "closed" else None,
        "n_requests": len(queries),
        "answered": answered,
        "identity_checked": answered,
        "p50_ms": percentile(50),
        "p99_ms": percentile(99),
        "throughput_rps": round(answered / elapsed, 2) if elapsed else None,
        "elapsed_seconds": round(elapsed, 4),
        "shed": counters["shed"],
        "deadline_exceeded": counters["deadline_exceeded"],
        "failed": counters["failed"],
        "batches": counters["batches"],
        "degraded_batches": counters["degraded_batches"],
        "breaker_trips": counters["breaker_trips"],
        "mean_batch_size": (
            round(counters["batched_requests"] / counters["batches"], 2)
            if counters["batches"]
            else None
        ),
        # segment-ring effectiveness for this point: reuses avoid a
        # /dev/shm create+unlink pair per coalesced batch (ROADMAP 5c)
        "shm_ring": {
            key: ring_after[key] - ring_before[key] for key in ring_after
        },
        "n_items": len(index.items),
        "k": k,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, CI-sized run (~seconds) instead of the full sweep",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help="arm a REPRO_FAULTS spec for the replay (chaos leg)",
    )
    parser.add_argument(
        "--windows",
        default=None,
        help="comma-separated coalescing windows in ms (overrides sweep)",
    )
    parser.add_argument("--rate", type=float, default=None,
                        help="open-loop arrival rate, requests/s")
    parser.add_argument("--clients", type=int, default=None,
                        help="closed-loop concurrent clients")
    parser.add_argument("--timeout-ms", type=float, default=2_000.0,
                        help="per-request deadline (ms)")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--queue-max", type=int, default=1024)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_JSON,
        help=f"JSON-lines results file (default: {DEFAULT_JSON.name})",
    )
    args = parser.parse_args(argv)

    if args.faults:
        import repro.batch.faults as faults

        faults.parse_spec(args.faults)  # fail fast on a typo'd spec
        os.environ["REPRO_FAULTS"] = args.faults
        faults._PLAN_CACHE = None
        # chaos replays must fan out and supervise tightly, like the suite
        os.environ.setdefault("REPRO_MIN_PAIRS_PER_WORKER", "20")
        os.environ.setdefault("REPRO_POOL_TIMEOUT", "2")

    if args.smoke:
        n_items, n_requests = 160, 48
        windows = [0.0, 2.0, 10.0]
        rate = args.rate or 400.0
        clients = args.clients or 8
    else:
        n_items, n_requests = 1_000, 400
        windows = [0.0, 1.0, 2.0, 5.0, 10.0, 20.0]
        rate = args.rate or 800.0
        clients = args.clients or 32
    if args.windows:
        windows = [float(w) for w in args.windows.split(",")]
    args.rate, args.clients = rate, clients

    items = _corpus(n_items, seed=2008)
    queries = _corpus(n_requests, seed=71, lo=3, hi=10)
    index = LaesaIndex(
        items, get_distance("levenshtein"), n_pivots=8, rng=random.Random(1)
    )
    # ground truth for the identity cross-check, one direct bulk call
    direct = dict(zip(queries, _key(index.bulk_knn(queries, args.k))))

    tags = ambient_tags("smoke" if args.smoke else "full", args.faults or "")
    rows = []
    for loop_kind in ("open", "closed"):
        for window_ms in windows:
            row = _run_point(
                index, direct, queries, args.k, loop_kind, window_ms, args
            )
            row.update(tags)
            rows.append(row)
            print(json.dumps(row, indent=2))

    with args.json.open("a", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row) + "\n")
    print(f"[appended {len(rows)} rows to {args.json}]")

    from repro.batch.runtime import get_runtime

    get_runtime().shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
