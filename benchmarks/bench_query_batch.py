#!/usr/bin/env python
"""Benchmark the batched query phases against the scalar query loops.

Reproduces the paper's Section 4.3 query regime on the digit-contour
dataset: a LAESA index over a training set of contour strings, a batch of
held-out contours as queries.  Two modes:

* ``--mode knn`` (default) -- nearest-neighbour search per query: the
  per-query `knn` loop vs `bulk_knn` (pivot sweep + lockstep candidate
  rounds through the banded batch kernels);
* ``--mode range`` -- radius search at a paper-style tight radius (a low
  quantile of sampled training distances): the per-query `range_search`
  loop vs the lockstep `bulk_range_search`, plus a direct timing of the
  banded `pairwise_values_bounded` kernels against the full-table
  fallback (``REPRO_BANDED_BATCH=0``) on the same candidate workload
  (for ``--distance marzal_vidal`` that compares the batched banded
  parametric kernel against the per-pair scalar probe loop);
* ``--mode repeat`` -- the interned-corpus runtime: the same index
  serves several consecutive ``bulk_knn`` calls with interning and the
  persistent pool on (ambient defaults) vs off
  (``REPRO_INTERN=0 REPRO_PERSISTENT_POOL=0``, the pre-runtime
  behaviour), results asserted bit-identical.

Either way the batched paths must return bit-identical results and
identical per-query ``distance_computations`` (asserted, not sampled);
only the wall-clock may differ.  Results are appended as one JSON object
per run to ``BENCH_query.json`` (each row tagged with the ambient
``pool`` mode: persistent vs per-call) so the perf trajectory survives
across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_query_batch.py                # full knn
    PYTHONPATH=src python benchmarks/bench_query_batch.py --smoke        # CI knn
    PYTHONPATH=src python benchmarks/bench_query_batch.py --mode range   # radius mode
    PYTHONPATH=src python benchmarks/bench_query_batch.py --mode repeat  # runtime amortisation
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

import numpy as np

from repro.batch import jit
from repro.datasets import handwritten_digits
from repro.core import get_distance
from repro.index import AesaIndex, LaesaIndex

DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_query.json"


def _workload(per_class: int, n_train: int, n_queries: int, seed: int):
    data = handwritten_digits(per_class=per_class, seed=1995, grid=24)
    pool = list(range(len(data)))
    random.Random(seed).shuffle(pool)
    if n_train + n_queries > len(pool):
        raise ValueError(
            f"workload needs {n_train + n_queries} contours, dataset has "
            f"{len(pool)}; raise --per-class"
        )
    train = [data.items[i] for i in pool[:n_train]]
    queries = [data.items[i] for i in pool[n_train : n_train + n_queries]]
    return train, queries


def _tight_radius(train, distance: str, quantile: float = 0.02) -> float:
    """A paper-style tight radius: a low quantile of sampled distances
    (a few hits per query -- the spellcheck/classification regime).

    Deterministic given the training set; tight radii are where the
    banded kernels shine (wide ones degrade gracefully to the full
    sweep).
    """
    from repro.batch import pairwise_values

    rng = random.Random(0x7AD1)
    sample_pairs = [
        (rng.choice(train), rng.choice(train)) for _ in range(256)
    ]
    values = sorted(float(v) for v in pairwise_values(distance, sample_pairs))
    return values[int(quantile * (len(values) - 1))]


def _pool_tag() -> str:
    """The ambient engine pool mode recorded in every emitted row."""
    from repro.batch import persistent_pool_enabled

    return "persistent" if persistent_pool_enabled() else "per-call"


def _check_identical(scalar, batch, label: str) -> None:
    for q, ((truth, t_stats), (got, g_stats)) in enumerate(zip(scalar, batch)):
        truth_pairs = [(r.index, r.distance) for r in truth]
        got_pairs = [(r.index, r.distance) for r in got]
        if truth_pairs != got_pairs:
            raise AssertionError(
                f"{label}: query {q} neighbours differ: "
                f"{got_pairs} vs {truth_pairs}"
            )
        if t_stats.distance_computations != g_stats.distance_computations:
            raise AssertionError(
                f"{label}: query {q} computation counts differ: "
                f"{g_stats.distance_computations} vs "
                f"{t_stats.distance_computations}"
            )


def run_benchmark(
    distance: str,
    per_class: int,
    n_train: int,
    n_queries: int,
    n_pivots: int,
    k: int,
    seed: int = 0xD161,
) -> dict:
    train, queries = _workload(per_class, n_train, n_queries, seed)
    index = LaesaIndex(train, get_distance(distance), n_pivots=n_pivots)

    started = time.perf_counter()
    scalar = [index.knn(q, k) for q in queries]
    scalar_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batch = index.bulk_knn(queries, k)
    batch_seconds = time.perf_counter() - started

    _check_identical(scalar, batch, "LAESA")

    # AESA rides the same cache machinery; keep it honest on a small
    # database (its quadratic preprocessing regime) without letting it
    # dominate the benchmark's runtime.
    aesa_n = min(len(train), 120)
    aesa = AesaIndex(train[:aesa_n], get_distance(distance))
    started = time.perf_counter()
    aesa_scalar = [aesa.knn(q, k) for q in queries]
    aesa_scalar_seconds = time.perf_counter() - started
    started = time.perf_counter()
    aesa_batch = aesa.bulk_knn(queries, k)
    aesa_batch_seconds = time.perf_counter() - started
    _check_identical(aesa_scalar, aesa_batch, "AESA")

    comps = [s.distance_computations for _, s in batch]
    return {
        "bench": "query_batch",
        "distance": distance,
        "n_train": len(train),
        "n_queries": len(queries),
        "n_pivots": index.n_pivots,
        "k": k,
        "mean_computations_per_query": round(float(np.mean(comps)), 1),
        "scalar_seconds": round(scalar_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "speedup": round(scalar_seconds / batch_seconds, 2),
        "aesa_n_train": aesa_n,
        "aesa_scalar_seconds": round(aesa_scalar_seconds, 4),
        "aesa_batch_seconds": round(aesa_batch_seconds, 4),
        "aesa_speedup": round(aesa_scalar_seconds / aesa_batch_seconds, 2),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        # numpy vs numba: the CI kernel-backend matrix appends one record
        # per leg (BENCH_kernel.json) so the trajectory shows both
        "kernel_backend": jit.backend_name(),
        "pool": _pool_tag(),
    }


def run_range_benchmark(
    distance: str,
    per_class: int,
    n_train: int,
    n_queries: int,
    n_pivots: int,
    radius=None,
    seed: int = 0xD161,
) -> dict:
    """Scalar vs lockstep range search, plus banded-vs-full-table kernel
    timing on the same tight-radius candidate workload."""
    from repro.batch import pairwise_values_bounded

    train, queries = _workload(per_class, n_train, n_queries, seed)
    if radius is None:
        radius = _tight_radius(train, distance)
    index = LaesaIndex(train, get_distance(distance), n_pivots=n_pivots)

    started = time.perf_counter()
    scalar = [index.range_search(q, radius) for q in queries]
    scalar_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batch = index.bulk_range_search(queries, radius)
    batch_seconds = time.perf_counter() - started

    _check_identical(scalar, batch, "LAESA range")

    aesa_n = min(len(train), 120)
    aesa = AesaIndex(train[:aesa_n], get_distance(distance))
    started = time.perf_counter()
    aesa_scalar = [aesa.range_search(q, radius) for q in queries]
    aesa_scalar_seconds = time.perf_counter() - started
    started = time.perf_counter()
    aesa_batch = aesa.bulk_range_search(queries, radius)
    aesa_batch_seconds = time.perf_counter() - started
    _check_identical(aesa_scalar, aesa_batch, "AESA range")

    # Direct banded-vs-full-table engine comparison on the tight-radius
    # candidate workload (every query against a training slice at the
    # radius) -- the tentpole's kernel-level speedup, identity asserted.
    candidates = train[: min(len(train), 80)]
    pairs = [(q, c) for q in queries for c in candidates]
    limits = [radius] * len(pairs)
    started = time.perf_counter()
    banded_values = pairwise_values_bounded(distance, pairs, limits)
    banded_seconds = time.perf_counter() - started
    env_before = os.environ.get("REPRO_BANDED_BATCH")
    os.environ["REPRO_BANDED_BATCH"] = "0"
    try:
        started = time.perf_counter()
        full_values = pairwise_values_bounded(distance, pairs, limits)
        full_seconds = time.perf_counter() - started
    finally:
        if env_before is None:
            del os.environ["REPRO_BANDED_BATCH"]
        else:
            os.environ["REPRO_BANDED_BATCH"] = env_before
    if banded_values.tolist() != full_values.tolist():
        raise AssertionError(
            "banded and full-table pairwise_values_bounded disagree"
        )

    comps = [s.distance_computations for _, s in batch]
    hits = [len(r) for r, _ in batch]
    return {
        "bench": "query_batch",
        "search": "range",
        "distance": distance,
        "radius": round(float(radius), 6),
        "n_train": len(train),
        "n_queries": len(queries),
        "n_pivots": index.n_pivots,
        "mean_hits_per_query": round(float(np.mean(hits)), 2),
        "mean_computations_per_query": round(float(np.mean(comps)), 1),
        "scalar_seconds": round(scalar_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "speedup": round(scalar_seconds / batch_seconds, 2),
        "aesa_n_train": aesa_n,
        "aesa_scalar_seconds": round(aesa_scalar_seconds, 4),
        "aesa_batch_seconds": round(aesa_batch_seconds, 4),
        "aesa_speedup": round(aesa_scalar_seconds / aesa_batch_seconds, 2),
        "bounded_banded_seconds": round(banded_seconds, 4),
        "bounded_full_seconds": round(full_seconds, 4),
        "bounded_speedup": round(full_seconds / banded_seconds, 2),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernel_backend": jit.backend_name(),
        "pool": _pool_tag(),
    }


def run_repeat_benchmark(
    distance: str,
    per_class: int,
    n_train: int,
    n_queries: int,
    n_pivots: int,
    k: int,
    rounds: int = 3,
    seed: int = 0xD161,
) -> dict:
    """Repeated bulk queries against one fixed index: interned corpus +
    persistent pool (ambient defaults) vs the per-call path
    (``REPRO_INTERN=0 REPRO_PERSISTENT_POOL=0``).

    The index is built under each regime (interning is a build-time
    choice) and then serves *rounds* consecutive ``bulk_knn`` calls --
    the serving-traffic shape where the per-call costs the runtime
    removes (re-encoding the corpus every round, spawning a pool every
    sweep) actually repeat.  Neighbours, distances and per-query
    computation counts are asserted bit-identical between the regimes.
    """
    train, queries = _workload(per_class, n_train, n_queries, seed)

    def timed_rounds():
        index = LaesaIndex(train, get_distance(distance), n_pivots=n_pivots)
        started = time.perf_counter()
        batches = [index.bulk_knn(queries, k) for _ in range(rounds)]
        return time.perf_counter() - started, batches

    interned_seconds, interned = timed_rounds()
    overrides = {"REPRO_INTERN": "0", "REPRO_PERSISTENT_POOL": "0"}
    saved = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    try:
        percall_seconds, percall = timed_rounds()
    finally:
        for key, value in saved.items():
            if value is None:
                del os.environ[key]
            else:
                os.environ[key] = value
    for r, (new, old) in enumerate(zip(interned, percall)):
        _check_identical(old, new, f"repeat round {r}")

    comps = [s.distance_computations for _, s in interned[0]]
    return {
        "bench": "query_batch",
        "search": "repeat",
        "distance": distance,
        "n_train": len(train),
        "n_queries": len(queries),
        "n_pivots": n_pivots,
        "k": k,
        "rounds": rounds,
        "mean_computations_per_query": round(float(np.mean(comps)), 1),
        "interned_seconds": round(interned_seconds, 4),
        "percall_seconds": round(percall_seconds, 4),
        "speedup": round(percall_seconds / interned_seconds, 2),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernel_backend": jit.backend_name(),
        "pool": _pool_tag(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, CI-sized run (~seconds) instead of the 200-query workload",
    )
    parser.add_argument(
        "--mode",
        choices=("knn", "range", "repeat"),
        default="knn",
        help="benchmark k-NN (default), radius search, or repeated bulk "
        "queries (interned runtime vs per-call path)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="repeat-mode: consecutive bulk_knn calls per regime",
    )
    parser.add_argument(
        "--radius",
        type=float,
        default=None,
        help="range-mode radius (default: the 2nd percentile of sampled "
        "training distances)",
    )
    parser.add_argument(
        "--distance",
        default="dmax",
        help="registry name to benchmark (default: dmax, Table 2's "
        "best-performing distance)",
    )
    parser.add_argument(
        "--queries", type=int, default=None, help="override the query count"
    )
    parser.add_argument(
        "--pivots", type=int, default=None, help="override the pivot count"
    )
    parser.add_argument("--k", type=int, default=1)
    parser.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_JSON,
        help=f"JSON-lines results file (default: {DEFAULT_JSON.name})",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help="arm a REPRO_FAULTS spec for the run (chaos smoke, e.g. "
        "'worker_crash:p=0.2,seed=12'); identity checks still apply -- "
        "degradation must never change results",
    )
    args = parser.parse_args(argv)

    if args.faults:
        import repro.batch.faults as faults

        faults.parse_spec(args.faults)  # fail fast on a typo'd spec
        os.environ["REPRO_FAULTS"] = args.faults
        faults._PLAN_CACHE = None

    from repro.batch import DEGRADATION

    degradation_before = DEGRADATION.snapshot()

    if args.smoke:
        per_class, n_train = 6, 40
        n_queries = 16 if args.queries is None else args.queries
        n_pivots = 8 if args.pivots is None else args.pivots
    else:
        per_class, n_train = 50, 300
        # the paper-regime digit workload
        n_queries = 200 if args.queries is None else args.queries
        n_pivots = 40 if args.pivots is None else args.pivots

    if args.mode == "range":
        record = run_range_benchmark(
            args.distance, per_class, n_train, n_queries, n_pivots, args.radius
        )
    elif args.mode == "repeat":
        record = run_repeat_benchmark(
            args.distance,
            per_class,
            n_train,
            n_queries,
            n_pivots,
            args.k,
            rounds=args.rounds,
        )
    else:
        record = run_benchmark(
            args.distance, per_class, n_train, n_queries, n_pivots, args.k
        )
        record["search"] = "knn"
    record["mode"] = "smoke" if args.smoke else "full"
    record["faults"] = args.faults or ""
    # per-run degradation-ladder events (all zero on a healthy run):
    # a chaos smoke proves the identity checks held *while* degrading
    after = DEGRADATION.snapshot()
    record["degradation"] = {
        event: after[event] - degradation_before.get(event, 0)
        for event in after
        if after[event] - degradation_before.get(event, 0)
    }
    print(json.dumps(record, indent=2))

    with args.json.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record) + "\n")
    print(f"[appended to {args.json}]")

    if args.mode == "repeat":
        gate, target, label = record["speedup"], 1.0, "repeat bulk"
    elif args.mode == "range" and args.distance == "marzal_vidal":
        # d_MV's pivot phase stays scalar on the numpy backend, so the
        # tentpole metric here is the candidate-phase kernel: batched
        # banded probes vs the per-pair scalar probe loop
        gate, target, label = record["bounded_speedup"], 1.2, "d_MV banded-batch"
    else:
        gate, target, label = record["speedup"], 1.5, f"{args.mode} bulk"
    if gate < target and not args.smoke:
        print(
            f"WARNING: {label} speedup {gate}x below the {target}x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
