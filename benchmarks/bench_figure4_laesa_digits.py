"""Figure 4: LAESA effort vs pivot count on handwritten digit contours.

The paper's point with this second sweep: the contextual distance keeps
its low distance-computation count on a very different dataset.
"""

from repro.experiments import run


def test_figure4(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        run, args=("fig4",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    save_result("figure4_laesa_digits", result.render())
    series = result.series
    for s in series.values():
        assert s.computations[0] == result.n_train
        assert s.computations[-1] < s.computations[0]
    best = {name: min(s.computations) for name, s in series.items()}
    # d_C,h stays in the d_E regime, below dYB and dMV (the paper's digit
    # panel shows dmax between the two groups)
    assert best["dC,h"] < best["dYB"]
    assert best["dC,h"] < best["dMV"]
