"""Section 4.1: agreement of the quadratic heuristic with the exact d_C.

The paper reports equality in ~90% of cases with mean gaps (on the
disagreeing pairs) between 0.008 and 0.03.
"""

from repro.experiments import run


def test_heuristic_agreement(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        run, args=("sec4.1",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    save_result("section41_heuristic_agreement", result.render())
    for name, report in result.reports.items():
        # ~90% in the paper; demand a clear majority at any scale
        assert report.agreement_rate > 0.75, (name, report.summary())
        # gaps are small when they occur
        if report.mean_gap_when_diff:
            assert report.mean_gap_when_diff < 0.2, name
