"""Ablation: LAESA vs the other triangle-inequality structures, and
pivot-selection strategies.

The paper argues its LAESA results "will apply in similar cases" of
metric-property-based methods; this benchmark quantifies that on the
dictionary workload, and checks that max-min pivots beat random ones
(the design choice called out in DESIGN.md).
"""

import random
import statistics

from repro.core import get_distance
from repro.datasets import perturbed_queries, spanish_dictionary
from repro.experiments.tables import Table
from repro.index import (
    AesaIndex,
    BKTreeIndex,
    ExhaustiveIndex,
    LaesaIndex,
    VPTreeIndex,
)


def _workload(n_train=400, n_queries=80, seed=0):
    rng = random.Random(seed)
    data = spanish_dictionary(n_words=1200, seed=11)
    train = data.sample(n_train, rng)
    queries = perturbed_queries(train, n_queries, rng, operations=2)
    return list(train.items), queries


def _mean_comps(index, queries):
    return statistics.fmean(
        index.nearest(q)[1].distance_computations for q in queries
    )


def test_index_structures(benchmark, save_result):
    def experiment():
        train, queries = _workload()
        distance = get_distance("contextual_heuristic")
        lev = get_distance("levenshtein")
        rows = {}
        rows["exhaustive"] = (
            _mean_comps(ExhaustiveIndex(train, distance), queries), 0
        )
        laesa = LaesaIndex(train, distance, n_pivots=30, rng=random.Random(1))
        rows["LAESA(30)"] = (
            _mean_comps(laesa, queries), laesa.preprocessing_computations
        )
        aesa = AesaIndex(train, distance)
        rows["AESA"] = (
            _mean_comps(aesa, queries), aesa.preprocessing_computations
        )
        vp = VPTreeIndex(train, distance, rng=random.Random(2))
        rows["VP-tree"] = (
            _mean_comps(vp, queries), vp.preprocessing_computations
        )
        bk = BKTreeIndex(train, lev)  # integer metric only
        rows["BK-tree (dE)"] = (
            _mean_comps(bk, queries), bk.preprocessing_computations
        )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = Table(
        title="Ablation -- metric index structures (dictionary, dC,h)",
        headers=["index", "mean comps/query", "preprocessing comps"],
    )
    for name, (comps, prep) in rows.items():
        table.add_row(name, comps, prep)
    save_result("ablation_index_structures", table.render())
    # every triangle-inequality structure beats the scan
    scan = rows["exhaustive"][0]
    for name, (comps, _) in rows.items():
        if name != "exhaustive":
            assert comps < scan, name
    # AESA searches cheapest, LAESA's preprocessing is far cheaper
    assert rows["AESA"][0] <= rows["LAESA(30)"][0]
    assert rows["LAESA(30)"][1] < rows["AESA"][1]


def test_pivot_strategies(benchmark, save_result):
    def experiment():
        train, queries = _workload(seed=3)
        distance = get_distance("contextual_heuristic")
        rows = {}
        for strategy in ("maxmin", "maxsum", "random"):
            comps = []
            for trial in range(3):
                pivot_rng = random.Random(100 + trial)
                index = LaesaIndex(
                    train, distance, n_pivots=30,
                    pivot_strategy=strategy, rng=pivot_rng,
                )
                comps.append(_mean_comps(index, queries))
            rows[strategy] = statistics.fmean(comps)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = Table(
        title="Ablation -- LAESA pivot-selection strategies (30 pivots)",
        headers=["strategy", "mean comps/query"],
    )
    for name, comps in rows.items():
        table.add_row(name, comps)
    save_result("ablation_pivot_strategies", table.render())
    # max-min (the published choice) should not lose to random selection
    assert rows["maxmin"] <= rows["random"] * 1.05
