#!/usr/bin/env python
"""Scatter-gather sharded query tier benchmark (`repro.shard`).

Sweeps the shard count S over the Spanish-dictionary workload: one
unsharded LAESA index as ground truth, then a :class:`ShardedIndex`
per S answering the same ``bulk_knn`` batches -- per-shard lockstep
searches scattered over the persistent worker pool and k-merged.  Each
S is one JSON row (elapsed, throughput, speedup vs S=1, shard sizes,
degradation counters) appended to ``BENCH_shard.json`` so the scaling
trajectory survives across PRs.

Identity is asserted **in-benchmark** for every S: the sharded answers
(neighbours and distances, canonical order) must equal the unsharded
index's, and at S=1 -- the identity layout -- the per-query distance
counts must match too.  Any divergence exits non-zero.  With
``--faults`` armed (the chaos leg) the same assertions hold while shard
tasks fail and fall back to the master.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_shard.py --smoke    # CI leg
    PYTHONPATH=src python benchmarks/bench_shard.py --smoke \
        --faults "shard_worker_fail:p=0.3,seed=7"              # chaos leg
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

import numpy as np

from bench_tags import ambient_tags
from repro.core import get_distance
from repro.index import LaesaIndex
from repro.shard import ShardedIndex

DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_shard.json"


def _key(per_query):
    """Bit-exact projection of bulk results for identity checks."""
    return [
        ([(r.index, r.distance) for r in results], stats.distance_computations)
        for results, stats in per_query
    ]


def _results_only(keyed):
    return [hits for hits, _count in keyed]


def _run_point(sharded, reference, queries, k, repeats):
    """Time *repeats* bulk_knn batches on one sharded index and verify
    every answer against the unsharded reference."""
    from repro.batch.runtime import DEGRADATION

    sharded.bulk_knn(queries[:4], k)  # warm-up: publish shards, spawn pool
    before = DEGRADATION.snapshot()
    started = time.perf_counter()
    keyed = None
    for _ in range(repeats):
        keyed = _key(sharded.bulk_knn(queries, k))
    elapsed = time.perf_counter() - started
    after = DEGRADATION.snapshot()

    if _results_only(keyed) != _results_only(reference):
        raise SystemExit(
            f"IDENTITY VIOLATION: S={sharded.n_shards} sharded bulk_knn "
            "diverged from the unsharded index"
        )
    if sharded.n_shards == 1 and keyed != reference:
        raise SystemExit(
            "IDENTITY VIOLATION: single-shard counts diverged from the "
            "unsharded index (identity layout must be bit-identical)"
        )
    return elapsed, keyed, {
        key: after[key] - before[key]
        for key in after
        if after[key] != before[key]
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, CI-sized run (~seconds) instead of the full sweep",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help="arm a REPRO_FAULTS spec for the sweep (chaos leg)",
    )
    parser.add_argument(
        "--shards",
        default=None,
        help="comma-separated shard counts (default: 1,2,4,8)",
    )
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--n-pivots", type=int, default=8)
    parser.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_JSON,
        help=f"JSON-lines results file (default: {DEFAULT_JSON.name})",
    )
    args = parser.parse_args(argv)

    if args.faults:
        import repro.batch.faults as faults

        faults.parse_spec(args.faults)  # fail fast on a typo'd spec
        os.environ["REPRO_FAULTS"] = args.faults
        faults._PLAN_CACHE = None
        os.environ.setdefault("REPRO_MIN_PAIRS_PER_WORKER", "20")
        os.environ.setdefault("REPRO_POOL_TIMEOUT", "2")

    if args.smoke:
        n_items, n_queries, repeats = 400, 24, 2
        shard_counts = [1, 2, 4]
    else:
        n_items, n_queries, repeats = None, 64, 3  # None = whole dictionary
        shard_counts = [1, 2, 4, 8]
    if args.shards:
        shard_counts = [int(s) for s in args.shards.split(",")]

    from repro.datasets import words

    dictionary = words.spanish_dictionary()
    items = dictionary[:n_items] if n_items else list(dictionary)
    rng = random.Random(71)
    queries = rng.sample(items, n_queries)
    distance = get_distance("levenshtein")

    flat = LaesaIndex(items, distance, n_pivots=args.n_pivots)
    reference = _key(flat.bulk_knn(queries, args.k))

    tags = ambient_tags("smoke" if args.smoke else "full", args.faults or "")
    rows = []
    baseline_elapsed = None
    for count in shard_counts:
        sharded = ShardedIndex(
            items,
            distance,
            shards=count,
            structure="laesa",
            structure_params={"n_pivots": args.n_pivots},
        )
        elapsed, _keyed, degraded = _run_point(
            sharded, reference, queries, args.k, repeats
        )
        if count == shard_counts[0] and count == 1:
            baseline_elapsed = elapsed
        row = {
            "bench": "shard",
            "shards": count,
            "shard_sizes": sharded.shard_sizes,
            "n_items": len(items),
            "n_queries": n_queries,
            "repeats": repeats,
            "k": args.k,
            "n_pivots": args.n_pivots,
            "elapsed_seconds": round(elapsed, 4),
            "queries_per_second": round(n_queries * repeats / elapsed, 2),
            "speedup_vs_serial": (
                round(baseline_elapsed / elapsed, 3) if baseline_elapsed else None
            ),
            "identity_checked": n_queries,
            "degradation": degraded,
            "preprocessing_computations": sharded.preprocessing_computations,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        }
        row.update(tags)
        rows.append(row)
        print(json.dumps(row, indent=2))

    with args.json.open("a", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row) + "\n")
    print(f"[appended {len(rows)} rows to {args.json}]")

    from repro.batch.runtime import get_runtime

    get_runtime().shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
