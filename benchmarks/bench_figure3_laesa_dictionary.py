"""Figure 3: LAESA effort vs pivot count on the Spanish dictionary.

Reproduced claims: computations drop steeply then flatten; d_C,h needs
far fewer computations than the other normalised distances (comparable
to d_E); its per-query time premium is compensated by the saved
computations.
"""

from repro.experiments import run


def test_figure3(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        run, args=("fig3",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    save_result("figure3_laesa_dictionary", result.render())
    series = result.series
    # zero pivots degenerates to an exhaustive scan
    for s in series.values():
        assert s.computations[0] == result.n_train
        # more pivots never dramatically increase computations
        assert s.computations[-1] < s.computations[0]
    # steep-then-flat: the first pivot step saves more than the last one
    for s in series.values():
        first_drop = s.computations[0] - s.computations[1]
        last_drop = s.computations[-2] - s.computations[-1]
        assert first_drop >= last_drop - 1e-9, s.distance
    # the headline: the contextual heuristic prunes like d_E, much better
    # than the other normalised distances
    best = {name: min(s.computations) for name, s in series.items()}
    assert best["dC,h"] < best["dYB"]
    assert best["dC,h"] < best["dMV"]
    assert best["dC,h"] < best["dmax"]
