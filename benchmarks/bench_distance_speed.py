"""Ablation: per-pair cost of each distance (Section 4.3's timing remark).

Also micro-benchmarks each core distance with pytest-benchmark's
calibrated timer on fixed representative pairs.
"""

import random

import pytest

from repro.core import get_distance
from repro.experiments import run


def test_speed_ablation(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        run, args=("speed",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    save_result("ablation_distance_speed", result.render())
    for dataset, per_distance in result.seconds.items():
        d_e = per_distance["levenshtein"]
        # d_C,h is within a small constant factor of d_E (paper: ~2x)
        assert per_distance["contextual_heuristic"] < 8 * d_e, dataset
        # the exact cubic algorithm is clearly slower than the heuristic
        assert per_distance["contextual"] > per_distance["contextual_heuristic"]


def _word_pair():
    rng = random.Random(0)
    make = lambda: "".join(rng.choice("abcdefgh") for _ in range(9))
    return make(), make()


def _contour_pair():
    from repro.datasets import handwritten_digits

    data = handwritten_digits(per_class=1, seed=0, grid=24)
    return data.items[0], data.items[5]


@pytest.mark.parametrize(
    "name",
    ["levenshtein", "contextual_heuristic", "contextual", "marzal_vidal",
     "yujian_bo", "dmax"],
)
def test_micro_word_pair(benchmark, name):
    x, y = _word_pair()
    distance = get_distance(name)
    benchmark(distance, x, y)


@pytest.mark.parametrize(
    "name", ["levenshtein", "contextual_heuristic", "marzal_vidal"]
)
def test_micro_contour_pair(benchmark, name):
    x, y = _contour_pair()
    distance = get_distance(name)
    benchmark(distance, x, y)
