"""Figure 1: d_C vs d_C,h histograms on the dictionary.

Regenerates the overlaid histograms and checks the paper's claims: the
two histograms nearly coincide and the heuristic equals the exact value
on the vast majority of pairs.
"""

from repro.experiments import run


def test_figure1(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        run, args=("fig1",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    save_result("figure1_heuristic_histograms", result.render())
    # paper: histograms nearly coincide; agreement ~90%
    assert result.overlap > 0.9
    assert result.equal_fraction > 0.75
    # heuristic is an upper bound, so its mean cannot be below the exact one
    assert result.heuristic.mean >= result.exact.mean - 1e-12
    # intrinsic dimensionalities "similar" (within 20%)
    rho_exact = result.exact.intrinsic_dimensionality
    rho_heuristic = result.heuristic.intrinsic_dimensionality
    assert abs(rho_exact - rho_heuristic) / rho_exact < 0.2
