"""Section 4.1's rationale for the heuristic: the exact optimum almost
always sits at k = d_E."""

from repro.experiments import run


def test_kgap(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        run, args=("kgap",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    save_result("section41_kgap", result.render())
    for dataset in result.distributions:
        assert result.fraction_at_zero(dataset) > 0.75, dataset
        # any non-zero gaps are small (a couple of extra operations)
        gaps = result.distributions[dataset]
        assert all(g <= 8 for g in gaps), gaps
