"""The mandatory tag set every ``BENCH_*.json`` row carries.

Trajectory tooling groups rows by these four tags; a row missing any of
them silently falls out of every comparison, so emitters call
:func:`ambient_tags` instead of hand-rolling a subset.  ``mode`` and
``faults`` describe the run shape (CLI flags); ``kernel_backend`` and
``pool`` capture the ambient engine configuration at emit time.
"""

from __future__ import annotations

from typing import Dict, Optional

#: The tags every emitted row must include.
REQUIRED_TAGS = ("kernel_backend", "pool", "mode", "faults")


def ambient_tags(mode: str, faults: Optional[str] = None) -> Dict[str, str]:
    """The full tag set for one benchmark row.

    *mode* is ``smoke``/``full`` (or a benchmark-specific mode string);
    *faults* is the armed ``REPRO_FAULTS`` spec -- defaulting to
    whatever is actually armed in the environment, empty when unarmed.
    """
    from repro.batch import jit, persistent_pool_enabled
    from repro.tools import knobs

    if faults is None:
        faults = knobs.get_str("REPRO_FAULTS") or ""
    return {
        "kernel_backend": jit.backend_name(),
        "pool": "persistent" if persistent_pool_enabled() else "per-call",
        "mode": mode,
        "faults": faults,
    }
