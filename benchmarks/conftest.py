"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at the
``bench`` scale by default; set ``REPRO_BENCH_SCALE=default`` (or
``paper``) for a bigger run.  The rendered table/figure is printed and
also written to ``benchmarks/results/<name>.txt`` so a benchmark run
leaves durable artefacts.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """The experiment scale benchmarks run at (env: REPRO_BENCH_SCALE)."""
    return os.environ.get("REPRO_BENCH_SCALE", "bench")


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered table/figure under benchmarks/results/."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        # also emit to stdout (shown with pytest -s; captured otherwise)
        print(f"\n{text}\n[saved to {path}]")

    return _save
