"""Figure 5: writer variation among sample '8's and '0's."""

from repro.experiments import run


def test_figure5(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        run, args=("fig5",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    save_result("figure5_digit_samples", result.render())
    assert len(result.eights) == 4
    assert len(result.zeros) == 4
    # samples really differ from writer to writer
    assert len(set(result.eights)) == 4
    assert result.mean_intra_class_distance > 0.05
