#!/usr/bin/env python
"""Benchmark warm starts from the artifact store against cold builds.

AESA pays ``O(n^2)`` distance evaluations at construction and LAESA
``O(n * P)``; the artifact store (:mod:`repro.store`) snapshots a built
index and loads it back by *mapping* the arrays read-only, so a warm
start pays file verification instead of distance computations.  This
benchmark measures that trade per structure on the digit-contour
workload:

* ``cold_seconds`` -- constructing the index from scratch;
* ``save_seconds`` -- snapshotting the built index (checksums, fsyncs,
  the atomic rename dance);
* ``load_seconds`` -- loading the snapshot back (manifest + SHA-256
  verification + read-only mapping).

Identity is asserted, not sampled: the loaded index must answer a
``bulk_knn`` batch bit-identically to the cold build -- neighbours,
distances and per-query ``distance_computations`` -- and must report
zero distance evaluations during the load itself.  Results are appended
as one JSON object per run to ``BENCH_startup.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_startup.py           # full run
    PYTHONPATH=src python benchmarks/bench_startup.py --smoke   # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.batch import jit
from repro.core import get_distance
from repro.datasets import handwritten_digits
from repro.index import (
    AesaIndex,
    BKTreeIndex,
    ExhaustiveIndex,
    LaesaIndex,
    VPTreeIndex,
)
from repro.store import ArtifactStore

DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_startup.json"

STRUCTURES = (
    ("exhaustive", ExhaustiveIndex),
    ("aesa", AesaIndex),
    ("laesa", LaesaIndex),
    ("vptree", VPTreeIndex),
    ("bktree", BKTreeIndex),
)


def _workload(per_class: int, n_train: int, n_queries: int, seed: int):
    data = handwritten_digits(per_class=per_class, seed=1995, grid=24)
    pool = list(range(len(data)))
    random.Random(seed).shuffle(pool)
    if n_train + n_queries > len(pool):
        raise ValueError(
            f"workload needs {n_train + n_queries} contours, dataset has "
            f"{len(pool)}; raise --per-class"
        )
    train = [data.items[i] for i in pool[:n_train]]
    queries = [data.items[i] for i in pool[n_train : n_train + n_queries]]
    return train, queries


def _results_key(per_query):
    return [
        (
            [(r.index, r.distance) for r in results],
            stats.distance_computations,
        )
        for results, stats in per_query
    ]


def _bench_structure(name, cls, train, queries, distance_name, n_pivots, k, root):
    distance = get_distance(distance_name)
    params = {"n_pivots": n_pivots} if cls is LaesaIndex else {}
    store = ArtifactStore(root)

    started = time.perf_counter()
    built = cls(train, distance, **params)
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    built.save(store)
    save_seconds = time.perf_counter() - started

    started = time.perf_counter()
    loaded = cls.load(train, distance, store, **params)
    load_seconds = time.perf_counter() - started

    if loaded._counter.calls != 0:
        raise AssertionError(
            f"{name}: load evaluated {loaded._counter.calls} distances"
        )
    if loaded.preprocessing_computations != built.preprocessing_computations:
        raise AssertionError(f"{name}: preprocessing counts drifted")
    if _results_key(loaded.bulk_knn(queries, k)) != _results_key(
        built.bulk_knn(queries, k)
    ):
        raise AssertionError(f"{name}: loaded index answers differ")

    return {
        "structure": name,
        "build_computations": built.preprocessing_computations,
        "cold_seconds": round(cold_seconds, 4),
        "save_seconds": round(save_seconds, 4),
        "load_seconds": round(load_seconds, 4),
        "warm_speedup": round(cold_seconds / max(load_seconds, 1e-9), 2),
    }


def run_benchmark(
    distance: str,
    per_class: int,
    n_train: int,
    n_queries: int,
    n_pivots: int,
    k: int,
    seed: int = 0x57A7,
) -> dict:
    train, queries = _workload(per_class, n_train, n_queries, seed)
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as root:
        rows = [
            _bench_structure(
                name, cls, train, queries, distance, n_pivots, k,
                os.path.join(root, name),
            )
            for name, cls in STRUCTURES
            if not (cls is BKTreeIndex and distance != "levenshtein")
        ]
    return {
        "bench": "startup",
        "distance": distance,
        "n_train": len(train),
        "n_queries": len(queries),
        "n_pivots": n_pivots,
        "k": k,
        "structures": rows,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernel_backend": jit.backend_name(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, CI-sized run (~seconds) instead of the full workload",
    )
    parser.add_argument(
        "--distance",
        default="levenshtein",
        help="registry name to benchmark (default: levenshtein, so the "
        "BK-tree ablation point participates too)",
    )
    parser.add_argument(
        "--pivots", type=int, default=None, help="override the pivot count"
    )
    parser.add_argument("--k", type=int, default=1)
    parser.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_JSON,
        help=f"JSON-lines results file (default: {DEFAULT_JSON.name})",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        per_class, n_train, n_queries = 6, 40, 8
        n_pivots = 6 if args.pivots is None else args.pivots
    else:
        per_class, n_train, n_queries = 40, 240, 40
        n_pivots = 30 if args.pivots is None else args.pivots

    record = run_benchmark(
        args.distance, per_class, n_train, n_queries, n_pivots, args.k
    )
    from bench_tags import ambient_tags

    record.update(ambient_tags("smoke" if args.smoke else "full"))
    print(json.dumps(record, indent=2))

    with args.json.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record) + "\n")
    print(f"[appended to {args.json}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
