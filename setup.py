"""Legacy shim so `pip install -e .` works without the `wheel` package.

All real metadata lives in pyproject.toml; this file only exists because
the offline environment cannot perform PEP 660 editable installs.
"""

from setuptools import setup

setup()
