"""Legacy shim so `pip install -e .` works without the `wheel` package.

This file also declares the optional extras: ``pip install repro[jit]``
pulls in numba, which switches every DP kernel (scalar and batched) to
the compiled backend -- strictly optional, the numpy/pure-Python paths
are always available and bit-identical.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    package_data={"repro": ["py.typed"]},
    install_requires=["numpy"],
    extras_require={"jit": ["numba"]},
)
