"""The package's public surface: imports, version, docstring examples."""

def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_from_docstring():
    from repro import contextual_distance, contextual_distance_heuristic

    assert round(contextual_distance("ababa", "baab"), 4) == 0.5333
    assert contextual_distance_heuristic("hello", "hello") == 0.0


def test_subpackages_importable():
    import repro.analysis
    import repro.classify
    import repro.core
    import repro.datasets
    import repro.experiments
    import repro.index  # noqa: F401


def test_doctests_pass():
    import doctest

    import repro.core.contextual
    import repro.core.levenshtein
    import repro.core.marzal_vidal
    import repro.core.metric
    import repro.core.yujian_bo

    for module in (
        repro.core.contextual,
        repro.core.levenshtein,
        repro.core.marzal_vidal,
        repro.core.metric,
        repro.core.yujian_bo,
    ):
        failures, _ = doctest.testmod(module)
        assert failures == 0, module.__name__


def test_registry_and_index_cooperate():
    """A miniature end-to-end: registry distance + LAESA + classifier."""
    from repro.classify import NearestNeighborClassifier
    from repro.core import get_distance
    from repro.index import LaesaIndex

    train = ["gato", "gata", "pato", "pata", "perro", "perra"]
    labels = ["cat", "cat", "duck", "duck", "dog", "dog"]
    clf = NearestNeighborClassifier(
        get_distance("contextual_heuristic"),
        index_factory=lambda items, d: LaesaIndex(items, d, n_pivots=2),
    ).fit(train, labels)
    assert clf.predict_one("gatos")[0] == "cat"
    assert clf.predict_one("perros")[0] == "dog"
