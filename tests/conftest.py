"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

#: Tiny strings over a binary alphabet: cheap enough for Dijkstra oracles.
tiny_strings = st.text(alphabet="ab", max_size=5)

#: Small strings over a 3-letter alphabet: metric sampling, DP cross-checks.
small_strings = st.text(alphabet="abc", max_size=8)

#: Word-like strings (dictionary regime).
word_strings = st.text(alphabet="abcde", min_size=1, max_size=12)


@pytest.fixture
def rng():
    """A deterministic Random instance, fresh per test."""
    return random.Random(0xBEEF)


@pytest.fixture(scope="session")
def small_word_list():
    """A deterministic list of distinct short words (index-layer tests)."""
    gen = random.Random(1234)
    words = {
        "".join(gen.choice("abcde") for _ in range(gen.randint(2, 9)))
        for _ in range(240)
    }
    return sorted(words)
