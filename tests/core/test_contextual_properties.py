"""Property-based tests: the contextual distance is a metric (Theorem 1)."""

import pytest
from hypothesis import given, settings

from repro.core.contextual import (
    contextual_distance,
    contextual_distance_heuristic,
)
from repro.core.metric import all_strings, check_metric

from ..conftest import small_strings, tiny_strings


class TestMetricAxioms:
    @given(small_strings)
    def test_identity_of_indiscernibles_self(self, x):
        assert contextual_distance(x, x) == 0.0

    @given(small_strings, small_strings)
    def test_positivity(self, x, y):
        d = contextual_distance(x, y)
        if x == y:
            assert d == 0.0
        else:
            assert d > 0.0

    @given(small_strings, small_strings)
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, x, y):
        assert contextual_distance(x, y) == pytest.approx(
            contextual_distance(y, x)
        )

    @given(tiny_strings, tiny_strings, tiny_strings)
    @settings(max_examples=80, deadline=None)
    def test_triangle_inequality(self, x, y, z):
        dxz = contextual_distance(x, z)
        dxy = contextual_distance(x, y)
        dyz = contextual_distance(y, z)
        assert dxz <= dxy + dyz + 1e-9

    def test_exhaustive_metric_check_small_universe(self):
        # every string over {a,b} of length <= 3: 15 points, all triples
        points = all_strings("ab", 3)
        report = check_metric(contextual_distance, points)
        assert report.is_metric, report.summary()


class TestScalingProperties:
    @given(small_strings, small_strings)
    @settings(max_examples=40, deadline=None)
    def test_upper_bound_by_levenshtein_scaled(self, x, y):
        # every operation costs at most 1 (and at least 1/(|x|+|y|)), so
        # d_C <= d_E and d_C >= d_E / (|x|+|y|) for non-identical strings
        from repro.core.levenshtein import levenshtein_distance

        d_c = contextual_distance(x, y)
        d_e = levenshtein_distance(x, y)
        assert d_c <= d_e + 1e-9
        if x != y:
            assert d_c >= d_e / (len(x) + len(y)) - 1e-9

    @given(small_strings, small_strings)
    @settings(max_examples=40, deadline=None)
    def test_yb_lower_bound(self, x, y):
        # the k-pruning bound: cost(k) >= 2k/(|x|+|y|+k), minimised at
        # k = d_E -- so d_C >= d_YB always.  (This is also why the pruned
        # DP is sound.)
        from repro.core.yujian_bo import yb_normalized_distance

        assert contextual_distance(x, y) >= yb_normalized_distance(x, y) - 1e-9

    def test_concatenation_dilutes(self):
        # padding both strings with a long shared suffix reduces d_C
        base = contextual_distance("abc", "acb")
        padded = contextual_distance("abc" + "z" * 20, "acb" + "z" * 20)
        assert padded < base


class TestHeuristicMetricBehaviour:
    """d_C,h is *not* proven to be a metric, but must stay sane."""

    @given(small_strings, small_strings)
    @settings(max_examples=40, deadline=None)
    def test_heuristic_symmetric(self, x, y):
        assert contextual_distance_heuristic(x, y) == pytest.approx(
            contextual_distance_heuristic(y, x)
        )

    @given(small_strings)
    def test_heuristic_identity(self, x):
        assert contextual_distance_heuristic(x, x) == 0.0

    @given(small_strings, small_strings)
    @settings(max_examples=40, deadline=None)
    def test_heuristic_positive(self, x, y):
        if x != y:
            assert contextual_distance_heuristic(x, y) > 0.0
