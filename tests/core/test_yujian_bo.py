"""Yujian-Bo normalised distance: formula, metricity, generalised form."""

import pytest
from hypothesis import given

from repro.core.generalized import CostModel
from repro.core.levenshtein import levenshtein_distance
from repro.core.metric import all_strings, check_metric
from repro.core.yujian_bo import yb_generalized_distance, yb_normalized_distance

from ..conftest import small_strings


class TestFormula:
    def test_identity(self):
        assert yb_normalized_distance("abc", "abc") == 0.0
        assert yb_normalized_distance("", "") == 0.0

    def test_extreme(self):
        # completely different strings saturate towards 1
        assert yb_normalized_distance("", "aaa") == pytest.approx(1.0)
        assert yb_normalized_distance("aaa", "bbb") == pytest.approx(
            2 * 3 / (3 + 3 + 3)
        )

    @given(small_strings, small_strings)
    def test_closed_form(self, x, y):
        d = levenshtein_distance(x, y)
        expected = 0.0 if not (x or y) else 2 * d / (len(x) + len(y) + d)
        assert yb_normalized_distance(x, y) == pytest.approx(expected)

    @given(small_strings, small_strings)
    def test_range(self, x, y):
        assert 0.0 <= yb_normalized_distance(x, y) <= 1.0

    def test_rewriting_identity_from_paper(self):
        # d_YB = 2 - 2(|x|+|y|)/(|x|+|y|+d_E): the paper's Section 2.2 form
        x, y = "abcde", "xbcdz"
        d = levenshtein_distance(x, y)
        total = len(x) + len(y)
        assert yb_normalized_distance(x, y) == pytest.approx(
            2.0 - 2.0 * total / (total + d)
        )


class TestMetric:
    def test_exhaustive_small_universe(self):
        points = all_strings("ab", 3)
        report = check_metric(yb_normalized_distance, points)
        assert report.is_metric, report.summary()

    @given(small_strings, small_strings)
    def test_symmetry(self, x, y):
        assert yb_normalized_distance(x, y) == yb_normalized_distance(y, x)


class TestGeneralized:
    def test_reduces_to_unit(self):
        for x, y in [("abaa", "aab"), ("", "xy"), ("q", "q")]:
            assert yb_generalized_distance(x, y) == pytest.approx(
                yb_normalized_distance(x, y)
            )

    def test_weighted_masses(self):
        costs = CostModel(default_deletion=2.0, default_insertion=2.0,
                          default_substitution=2.0)
        # all weights doubled: GED doubles, masses double -> same value
        assert yb_generalized_distance("abaa", "aab", costs) == pytest.approx(
            yb_normalized_distance("abaa", "aab")
        )

    def test_asymmetric_weights_change_value(self):
        costs = CostModel(deletion={"a": 5.0})
        assert yb_generalized_distance("aa", "b", costs) != pytest.approx(
            yb_normalized_distance("aa", "b")
        )
