"""The naive ratio normalisations and the paper's counterexamples."""

import pytest
from hypothesis import given

from repro.core.levenshtein import levenshtein_distance
from repro.core.ratios import (
    TRIANGLE_COUNTEREXAMPLES,
    max_normalized_distance,
    min_normalized_distance,
    sum_normalized_distance,
    triangle_defect,
)
from ..conftest import small_strings

_BY_NAME = {
    "dsum": sum_normalized_distance,
    "dmax": max_normalized_distance,
    "dmin": min_normalized_distance,
}


class TestValues:
    def test_dsum_paper_numbers(self):
        # Section 2.2: d_sum(ab, aba) = 1/5, d_sum(aba, ba) = 1/5,
        # d_sum(ab, ba) = 2/4
        assert sum_normalized_distance("ab", "aba") == pytest.approx(1 / 5)
        assert sum_normalized_distance("aba", "ba") == pytest.approx(1 / 5)
        assert sum_normalized_distance("ab", "ba") == pytest.approx(2 / 4)

    def test_dmax_values(self):
        assert max_normalized_distance("ab", "ba") == pytest.approx(1.0)
        assert max_normalized_distance("ab", "aba") == pytest.approx(1 / 3)

    def test_dmin_counterexample_values(self):
        # x=b, y=ba, z=aa from the paper
        assert min_normalized_distance("b", "ba") == pytest.approx(1.0)
        assert min_normalized_distance("ba", "aa") == pytest.approx(0.5)
        assert min_normalized_distance("b", "aa") == pytest.approx(2.0)

    def test_empty_conventions(self):
        assert sum_normalized_distance("", "") == 0.0
        assert max_normalized_distance("", "") == 0.0
        assert min_normalized_distance("", "") == 0.0
        assert min_normalized_distance("", "a") == float("inf")

    @given(small_strings, small_strings)
    def test_dmax_bounded(self, x, y):
        assert 0.0 <= max_normalized_distance(x, y) <= 1.0


class TestCounterexamples:
    def test_all_recorded_counterexamples_violate(self):
        for name, (x, y, z) in TRIANGLE_COUNTEREXAMPLES:
            defect = triangle_defect(_BY_NAME[name], x, y, z)
            assert defect > 0, f"{name} triple {x, y, z} does not violate"

    def test_counterexamples_cover_all_three_ratios(self):
        names = {name for name, _ in TRIANGLE_COUNTEREXAMPLES}
        assert names == {"dsum", "dmax", "dmin"}

    def test_registry_marks_ratios_non_metric(self):
        from repro.core.registry import get_spec

        for name in ("dsum", "dmax", "dmin"):
            assert not get_spec(name).is_metric


class TestConsistencyWithLevenshtein:
    @given(small_strings, small_strings)
    def test_formulas(self, x, y):
        d = levenshtein_distance(x, y)
        if len(x) + len(y) > 0:
            assert sum_normalized_distance(x, y) == pytest.approx(
                d / (len(x) + len(y))
            )
        if max(len(x), len(y)) > 0:
            assert max_normalized_distance(x, y) == pytest.approx(
                d / max(len(x), len(y))
            )
        if min(len(x), len(y)) > 0:
            assert min_normalized_distance(x, y) == pytest.approx(
                d / min(len(x), len(y))
            )

    @given(small_strings, small_strings)
    def test_ordering(self, x, y):
        # d_sum <= d_max <= d_min pointwise (denominators shrink)
        s = sum_normalized_distance(x, y)
        mx = max_normalized_distance(x, y)
        mn = min_normalized_distance(x, y)
        assert s <= mx + 1e-12
        assert mx <= mn + 1e-12
