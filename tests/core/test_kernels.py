"""Numpy anti-diagonal kernels vs their pure-Python twins."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core._kernels import (
    contextual_heuristic_numpy,
    encode_pair,
    levenshtein_numpy,
    parametric_alignment_numpy,
)
from repro.core.contextual import _heuristic_tables
from repro.core.levenshtein import levenshtein_matrix
from repro.core.marzal_vidal import _parametric_best_path
from repro.core.generalized import UNIT_COSTS

from ..conftest import small_strings


class TestEncodePair:
    def test_shared_codes(self):
        cx, cy = encode_pair("aba", "bab")
        assert list(cx) == [0, 1, 0]
        assert list(cy) == [1, 0, 1]

    def test_non_string_symbols(self):
        cx, cy = encode_pair((10, 20), (20, 30))
        assert list(cx) == [0, 1]
        assert list(cy) == [1, 2]


class TestLevenshteinKernel:
    @given(small_strings, small_strings)
    @settings(max_examples=60, deadline=None)
    def test_matches_matrix(self, x, y):
        expected = levenshtein_matrix(x, y)[len(x)][len(y)]
        assert levenshtein_numpy(x, y) == expected

    def test_long_random_strings(self):
        rng = random.Random(0)
        for _ in range(25):
            x = "".join(rng.choice("abcd") for _ in range(rng.randint(0, 80)))
            y = "".join(rng.choice("abcd") for _ in range(rng.randint(0, 80)))
            assert levenshtein_numpy(x, y) == levenshtein_matrix(x, y)[len(x)][len(y)]

    def test_empty_inputs(self):
        assert levenshtein_numpy("", "") == 0
        assert levenshtein_numpy("", "abc") == 3
        assert levenshtein_numpy("abc", "") == 3


class TestContextualHeuristicKernel:
    @given(small_strings, small_strings)
    @settings(max_examples=60, deadline=None)
    def test_matches_pure_python(self, x, y):
        assert contextual_heuristic_numpy(x, y) == _heuristic_tables(x, y)

    def test_long_random_strings(self):
        rng = random.Random(1)
        for _ in range(25):
            x = "".join(rng.choice("01234567") for _ in range(rng.randint(0, 70)))
            y = "".join(rng.choice("01234567") for _ in range(rng.randint(0, 70)))
            assert contextual_heuristic_numpy(x, y) == _heuristic_tables(x, y)

    def test_empty_inputs(self):
        assert contextual_heuristic_numpy("", "") == (0, 0)
        assert contextual_heuristic_numpy("", "ab") == (2, 2)
        assert contextual_heuristic_numpy("ab", "") == (2, 0)


class TestParametricKernel:
    @given(
        small_strings,
        small_strings,
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_score_matches_pure_python(self, x, y, lam):
        w_np, l_np = parametric_alignment_numpy(x, y, lam)
        w_py, l_py = _parametric_best_path(x, y, lam, UNIT_COSTS)
        # tie-breaking may pick different optimal paths; the parametric
        # *score* W - lam*L must coincide (that is what Dinkelbach needs)
        assert w_np - lam * l_np == pytest.approx(w_py - lam * l_py, abs=1e-9)

    def test_lambda_zero_gives_levenshtein_weight(self):
        w, _ = parametric_alignment_numpy("abaa", "aab", 0.0)
        assert w == pytest.approx(2.0)
