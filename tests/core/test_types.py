"""Input normalisation: strings pass through, sequences become tuples."""

import pytest

from repro.core.types import as_symbols, require_strings


def test_str_passthrough():
    assert as_symbols("abc") == "abc"


def test_tuple_passthrough():
    t = (1, 2, 3)
    assert as_symbols(t) is t


def test_list_becomes_tuple():
    assert as_symbols([1, 2, 3]) == (1, 2, 3)


def test_chain_code_symbols():
    # Freeman chain codes as int sequences work end-to-end
    assert as_symbols([0, 7, 7, 6]) == (0, 7, 7, 6)


def test_rejects_non_sequence():
    with pytest.raises(TypeError):
        as_symbols(42)


def test_rejects_none():
    with pytest.raises(TypeError):
        as_symbols(None)


def test_require_strings_normalises_both():
    x, y = require_strings("ab", [1, 2])
    assert x == "ab"
    assert y == (1, 2)


def test_distances_accept_sequences():
    from repro.core import contextual_distance, levenshtein_distance

    assert levenshtein_distance([1, 2, 3], [1, 9, 3]) == 1
    assert contextual_distance((1, 2), (1, 2)) == 0.0
