"""The distance registry used by every experiment."""

import pytest

from repro.core.registry import (
    PAPER_ALL,
    PAPER_NORMALISED,
    get_distance,
    get_spec,
    list_distances,
)


def test_all_paper_distances_registered():
    for name in PAPER_ALL:
        spec = get_spec(name)
        assert callable(spec.function)


def test_paper_normalised_subset():
    assert set(PAPER_NORMALISED) < set(PAPER_ALL)
    assert "levenshtein" not in PAPER_NORMALISED


def test_display_names_match_paper_notation():
    assert get_spec("contextual_heuristic").display == "dC,h"
    assert get_spec("yujian_bo").display == "dYB"
    assert get_spec("marzal_vidal").display == "dMV"
    assert get_spec("levenshtein").display == "dE"
    assert get_spec("contextual").display == "dC"


def test_metric_flags():
    assert get_spec("levenshtein").is_metric
    assert get_spec("contextual").is_metric
    assert get_spec("yujian_bo").is_metric
    assert not get_spec("dmax").is_metric
    assert not get_spec("dsum").is_metric
    assert not get_spec("dmin").is_metric


def test_unknown_name():
    with pytest.raises(KeyError) as excinfo:
        get_distance("hamming")
    assert "known:" in str(excinfo.value)


def test_functions_return_floats():
    for spec in list_distances():
        value = spec.function("abcd", "abed")
        assert isinstance(value, float)


def test_every_registered_distance_has_zero_self_distance():
    for spec in list_distances():
        assert spec.function("string", "string") == 0.0


def test_normalised_flags():
    assert not get_spec("levenshtein").normalised
    for name in PAPER_NORMALISED:
        assert get_spec(name).normalised
