"""Weighted edit distances and the contextual extension's failure mode."""

import pytest
from hypothesis import given, settings

from repro.core.contextual import contextual_distance
from repro.core.generalized import (
    CostModel,
    UNIT_COSTS,
    generalized_edit_distance,
    internal_failure_example,
    naive_contextual_generalized_internal,
    naive_contextual_generalized_optimal,
)
from repro.core.levenshtein import levenshtein_distance

from ..conftest import tiny_strings


class TestCostModel:
    def test_defaults(self):
        assert UNIT_COSTS.substitute("a", "b") == 1.0
        assert UNIT_COSTS.substitute("a", "a") == 0.0
        assert UNIT_COSTS.insert("x") == 1.0
        assert UNIT_COSTS.delete("x") == 1.0

    def test_symmetric_lookup(self):
        costs = CostModel(substitution={("a", "b"): 0.3})
        assert costs.substitute("a", "b") == 0.3
        assert costs.substitute("b", "a") == 0.3

    def test_specific_overrides_default(self):
        costs = CostModel(insertion={"q": 9.0}, default_insertion=2.0)
        assert costs.insert("q") == 9.0
        assert costs.insert("z") == 2.0


class TestGeneralizedEditDistance:
    @given(tiny_strings, tiny_strings)
    def test_unit_model_is_levenshtein(self, x, y):
        assert generalized_edit_distance(x, y) == pytest.approx(
            float(levenshtein_distance(x, y))
        )

    def test_weighted_example(self):
        costs = CostModel(substitution={("a", "b"): 0.2})
        assert generalized_edit_distance("a", "b", costs) == pytest.approx(0.2)

    def test_substitution_vs_indel_choice(self):
        # when substitution is pricier than delete+insert, take the latter
        costs = CostModel(default_substitution=5.0)
        assert generalized_edit_distance("a", "b", costs) == pytest.approx(2.0)

    def test_empty_strings(self):
        costs = CostModel(default_insertion=0.5)
        assert generalized_edit_distance("", "abc", costs) == pytest.approx(1.5)
        assert generalized_edit_distance("abc", "", costs) == pytest.approx(3.0)


class TestNaiveContextualGeneralisation:
    @given(tiny_strings, tiny_strings)
    @settings(max_examples=40, deadline=None)
    def test_unit_internal_equals_contextual(self, x, y):
        # with unit costs, internal paths are optimal (Proposition 1), so
        # the generalised-internal computation must equal d_C exactly
        assert naive_contextual_generalized_internal(x, y) == pytest.approx(
            contextual_distance(x, y)
        )

    def test_optimal_never_exceeds_internal(self):
        costs = CostModel(substitution={("a", "b"): 4.0})
        internal = naive_contextual_generalized_internal("ab", "bb", costs)
        optimal = naive_contextual_generalized_optimal(
            "ab", "bb", costs, max_length=4
        )
        assert optimal <= internal + 1e-9

    def test_paper_conclusion_failure_example(self):
        # the conclusion's remark: cheap dummy insertions beat any internal
        # path once substitutions are expensive
        failure = internal_failure_example()
        assert failure.internal_cost == pytest.approx(10.0)
        assert failure.optimal_cost < failure.internal_cost - 5.0
        assert failure.gap > 0

    def test_failure_example_structure(self):
        failure = internal_failure_example()
        # the optimal path inserts 3 c's: 0.1*(1/2+1/3+1/4) each way plus
        # the diluted substitution 10/4
        expected = 2 * 0.1 * (1 / 2 + 1 / 3 + 1 / 4) + 10 / 4
        assert failure.optimal_cost == pytest.approx(expected)


class TestPaddedContextual:
    """The padded-internal family: the repo's constructive follow-up to
    the paper's future-work remark."""

    def _failure_costs(self):
        return CostModel(
            substitution={("a", "b"): 10.0},
            insertion={"c": 0.1, "b": 10.0},
            deletion={"c": 0.1, "a": 10.0},
            default_substitution=10.0,
            default_insertion=10.0,
            default_deletion=10.0,
        )

    def test_recovers_failure_example_optimum(self):
        from repro.core.generalized import padded_contextual_generalized

        costs = self._failure_costs()
        padded = padded_contextual_generalized(
            "a", "b", costs, max_padding=3, dummy_alphabet=("a", "b", "c")
        )
        optimal = naive_contextual_generalized_optimal(
            "a", "b", costs, alphabet=("a", "b", "c"), max_length=4
        )
        assert padded == pytest.approx(optimal)

    def test_never_worse_than_internal(self):
        from repro.core.generalized import padded_contextual_generalized

        costs = self._failure_costs()
        for x, y in [("a", "b"), ("ab", "ba"), ("aa", "bb")]:
            padded = padded_contextual_generalized(
                x, y, costs, max_padding=4, dummy_alphabet=("a", "b", "c")
            )
            internal = naive_contextual_generalized_internal(x, y, costs)
            assert padded <= internal + 1e-12

    def test_never_better_than_true_optimum(self):
        from repro.core.generalized import padded_contextual_generalized

        costs = self._failure_costs()
        for x, y in [("a", "b"), ("ab", "b")]:
            padded = padded_contextual_generalized(
                x, y, costs, max_padding=3, dummy_alphabet=("a", "b", "c")
            )
            optimal = naive_contextual_generalized_optimal(
                x, y, costs, alphabet=("a", "b", "c"),
                max_length=len(x) + len(y) + 3,
            )
            assert padded >= optimal - 1e-9

    @given(tiny_strings, tiny_strings)
    @settings(max_examples=25, deadline=None)
    def test_unit_costs_padding_never_helps(self, x, y):
        from repro.core.generalized import padded_contextual_generalized

        # Theorem 1's proof shows longer intermediate strings don't pay
        # under unit costs, so padding must leave d_C unchanged
        assert padded_contextual_generalized(
            x, y, max_padding=3
        ) == pytest.approx(contextual_distance(x, y))

    def test_validation(self):
        from repro.core.generalized import padded_contextual_generalized

        with pytest.raises(ValueError):
            padded_contextual_generalized("a", "b", max_padding=-1)
