"""The brute-force oracles must themselves be trustworthy."""

import pytest

from repro.core.reference import (
    brute_force_marzal_vidal,
    dijkstra_contextual,
    dijkstra_edit,
    dijkstra_rewrite,
)


class TestDijkstraEdit:
    def test_known_values(self):
        assert dijkstra_edit("abaa", "aab") == pytest.approx(2.0)
        assert dijkstra_edit("", "ab") == pytest.approx(2.0)
        assert dijkstra_edit("x", "x") == 0.0

    def test_symmetric(self):
        assert dijkstra_edit("ab", "ba") == dijkstra_edit("ba", "ab")


class TestDijkstraContextual:
    def test_paper_example(self):
        assert dijkstra_contextual("ababa", "baab") == pytest.approx(8 / 15)

    def test_empty_to_one(self):
        assert dijkstra_contextual("", "a") == pytest.approx(1.0)

    def test_identity(self):
        assert dijkstra_contextual("ab", "ab") == 0.0

    def test_larger_max_length_never_helps_unit_contextual(self):
        # Theorem 1 part 1: paths through longer strings are dearer, so
        # widening the search bound must not change the optimum.
        for x, y in [("ab", "ba"), ("aab", "b"), ("a", "bb")]:
            tight = dijkstra_contextual(x, y)
            loose = dijkstra_contextual(x, y, max_length=len(x) + len(y) + 2)
            assert loose == pytest.approx(tight)


class TestDijkstraRewrite:
    def test_custom_cost_function(self):
        # free deletions, expensive everything else: cost of "ab" -> "a"
        def cost(length, kind, before, after):
            return 0.0 if kind == "delete" else 100.0

        assert dijkstra_rewrite("ab", "a", cost) == 0.0

    def test_unreachable_when_bound_too_small(self):
        def unit(length, kind, before, after):
            return 1.0

        with pytest.raises(ValueError):
            dijkstra_rewrite("", "abc", unit, max_length=2)

    def test_alphabet_restriction_respected(self):
        # with only the target's symbols available the result still works
        def unit(length, kind, before, after):
            return 1.0

        assert dijkstra_rewrite("aa", "bb", unit, alphabet=("a", "b")) == 2.0


class TestBruteForceMarzalVidal:
    def test_values(self):
        assert brute_force_marzal_vidal("ab", "ba") == pytest.approx(2 / 3)
        assert brute_force_marzal_vidal("", "") == 0.0
        assert brute_force_marzal_vidal("", "ab") == pytest.approx(1.0)
        assert brute_force_marzal_vidal("abc", "abc") == 0.0
