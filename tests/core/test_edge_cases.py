"""Pathological inputs across the distance suite.

Repetitive strings, single-symbol alphabets, extreme length ratios, and
degenerate pairs stress the DP boundaries that random sampling rarely
hits.
"""

import pytest

from repro.core import (
    contextual_distance,
    contextual_distance_heuristic,
    harmonic,
    harmonic_range,
    levenshtein_distance,
    mv_normalized_distance,
    yb_normalized_distance,
)


class TestRepetitiveStrings:
    def test_unary_alphabet_prefix(self):
        # aaaa -> aa: two deletions at lengths 4 and 3
        assert contextual_distance("aaaa", "aa") == pytest.approx(
            1 / 4 + 1 / 3
        )

    def test_unary_alphabet_growth(self):
        # aa -> aaaa: two insertions at lengths 3 and 4
        assert contextual_distance("aa", "aaaa") == pytest.approx(
            harmonic_range(2, 4)
        )

    def test_long_runs_equal(self):
        x = "ab" * 200
        assert contextual_distance(x, x) == 0.0
        assert contextual_distance_heuristic(x, x) == 0.0

    def test_periodic_shift(self):
        # abab..ab vs baba..ba of the same length: heuristic stays above
        # exact and both stay well below 1 (one cheap insertion + deletion)
        x = "ab" * 30
        y = "ba" * 30
        exact = contextual_distance(x, y)
        heuristic = contextual_distance_heuristic(x, y)
        assert exact <= heuristic + 1e-12
        assert exact < 0.2


class TestExtremeLengthRatios:
    def test_one_symbol_vs_long(self):
        y = "a" * 50
        # keep the 'a', insert 49 more: sum_{i=2}^{50} 1/i
        assert contextual_distance("a", y) == pytest.approx(
            harmonic_range(1, 50)
        )

    def test_disjoint_one_vs_long(self):
        y = "b" * 30
        d = contextual_distance("a", y)
        # must beat naive delete-then-build (1 + H(30)) by inserting first
        assert d < 1.0 + harmonic(30)
        assert d > 0.0

    def test_empty_against_everything(self):
        for n in (1, 7, 40):
            assert contextual_distance("", "z" * n) == pytest.approx(harmonic(n))
            assert yb_normalized_distance("", "z" * n) == 1.0
            assert mv_normalized_distance("", "z" * n) == 1.0


class TestHeuristicStress:
    def test_heuristic_equals_exact_on_pure_indels(self):
        # when only insertions (or only deletions) are needed, k = d_E is
        # forced, so the heuristic is provably exact
        assert contextual_distance_heuristic("abc", "abcdef") == pytest.approx(
            contextual_distance("abc", "abcdef")
        )
        assert contextual_distance_heuristic("abcdef", "abc") == pytest.approx(
            contextual_distance("abcdef", "abc")
        )

    def test_heuristic_on_maximally_different(self):
        x = "a" * 20
        y = "b" * 20
        # d_E = 20 substitutions at length 20: heuristic cost <= 1 + slack
        h = contextual_distance_heuristic(x, y)
        assert h <= 1.0 + 1e-9
        assert contextual_distance(x, y) <= h


class TestConsistencyAcrossDistances:
    @pytest.mark.parametrize(
        "x,y",
        [("", ""), ("q", "q"), ("ab" * 40, "ab" * 40)],
    )
    def test_all_zero_on_identity(self, x, y):
        assert levenshtein_distance(x, y) == 0
        assert contextual_distance(x, y) == 0.0
        assert contextual_distance_heuristic(x, y) == 0.0
        assert mv_normalized_distance(x, y) == 0.0
        assert yb_normalized_distance(x, y) == 0.0

    def test_known_orderings_on_asymmetric_pair(self):
        x, y = "short", "a considerably longer string"
        # d_YB <= d_C (the pruning bound) and d_MV <= 1 <= ... sanity web
        assert yb_normalized_distance(x, y) <= contextual_distance(x, y) + 1e-9
        assert mv_normalized_distance(x, y) <= 1.0
