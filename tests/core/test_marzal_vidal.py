"""Marzal-Vidal normalised edit distance: both solvers vs brute force."""

import pytest
from hypothesis import given, settings

from repro.core.generalized import CostModel
from repro.core.marzal_vidal import (
    mv_normalized_distance,
    mv_normalized_distance_fractional,
)
from repro.core.reference import brute_force_marzal_vidal

from ..conftest import small_strings, tiny_strings


class TestValues:
    def test_identity(self):
        assert mv_normalized_distance("abc", "abc") == 0.0
        assert mv_normalized_distance("", "") == 0.0

    def test_empty_vs_string(self):
        # |y| insertions over a length-|y| path: ratio 1
        assert mv_normalized_distance("", "xyz") == pytest.approx(1.0)

    def test_completely_different(self):
        assert mv_normalized_distance("aa", "bb") == pytest.approx(1.0)

    def test_abaa_aab(self):
        # d_E = 2 over a marked path of length 4 -> 0.5; longer paths with
        # more matches cannot do better here
        assert mv_normalized_distance("abaa", "aab") == pytest.approx(0.5)

    def test_ratio_can_beat_min_weight_over_min_length(self):
        # the defining subtlety: min W/L may use a path longer than the
        # Levenshtein-optimal one.  For ab -> ba:  substitution path gives
        # 2/2 = 1; delete+match+insert gives 2/3 < 1.
        assert mv_normalized_distance("ab", "ba") == pytest.approx(2 / 3)

    def test_range(self):
        assert 0.0 <= mv_normalized_distance("abcde", "xy") <= 1.0


class TestSolversAgree:
    @given(tiny_strings, tiny_strings)
    @settings(max_examples=80, deadline=None)
    def test_dp_matches_brute_force(self, x, y):
        assert mv_normalized_distance(x, y, solver="dp") == pytest.approx(
            brute_force_marzal_vidal(x, y)
        )

    @given(tiny_strings, tiny_strings)
    @settings(max_examples=80, deadline=None)
    def test_fractional_matches_brute_force(self, x, y):
        assert mv_normalized_distance_fractional(x, y) == pytest.approx(
            brute_force_marzal_vidal(x, y)
        )

    @given(small_strings, small_strings)
    @settings(max_examples=40, deadline=None)
    def test_dp_matches_fractional(self, x, y):
        assert mv_normalized_distance(x, y, solver="dp") == pytest.approx(
            mv_normalized_distance(x, y, solver="fractional")
        )

    def test_long_strings_numpy_path(self):
        import random

        rng = random.Random(3)
        for _ in range(10):
            x = "".join(rng.choice("acgt") for _ in range(rng.randint(50, 90)))
            y = "".join(rng.choice("acgt") for _ in range(rng.randint(50, 90)))
            assert mv_normalized_distance(x, y, solver="dp") == pytest.approx(
                mv_normalized_distance(x, y, solver="fractional")
            )

    def test_unknown_solver(self):
        with pytest.raises(ValueError):
            mv_normalized_distance("a", "b", solver="magic")


class TestGeneralizedCosts:
    def test_weighted_substitution(self):
        costs = CostModel(substitution={("a", "b"): 0.5})
        # a -> b: cheapest ratio is the 1-op substitution path: 0.5/1
        assert mv_normalized_distance("a", "b", costs=costs) == pytest.approx(0.5)

    def test_weighted_solvers_agree(self):
        import random

        costs = CostModel(
            substitution={("a", "b"): 0.25, ("b", "c"): 2.0},
            insertion={"c": 0.5},
            deletion={"a": 3.0},
        )
        rng = random.Random(9)
        for _ in range(40):
            x = "".join(rng.choice("abc") for _ in range(rng.randint(0, 6)))
            y = "".join(rng.choice("abc") for _ in range(rng.randint(0, 6)))
            dp = mv_normalized_distance(x, y, costs=costs, solver="dp")
            fr = mv_normalized_distance(x, y, costs=costs, solver="fractional")
            assert dp == pytest.approx(fr), (x, y)


class TestProperties:
    @given(small_strings, small_strings)
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, x, y):
        assert mv_normalized_distance(x, y) == pytest.approx(
            mv_normalized_distance(y, x)
        )

    @given(small_strings, small_strings)
    @settings(max_examples=40, deadline=None)
    def test_bounded_by_one(self, x, y):
        assert 0.0 <= mv_normalized_distance(x, y) <= 1.0 + 1e-12

    @given(small_strings, small_strings)
    def test_zero_iff_equal(self, x, y):
        d = mv_normalized_distance(x, y)
        assert (d == 0.0) == (x == y)
