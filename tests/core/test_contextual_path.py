"""Recovery of optimal contextual edit paths (Algorithm 1 backtracking)."""

import pytest
from hypothesis import given, settings

from repro.core.contextual import contextual_distance, contextual_edit_path
from repro.core.paths import apply_ops

from ..conftest import small_strings, tiny_strings


class TestReplay:
    @given(small_strings, small_strings)
    @settings(max_examples=60, deadline=None)
    def test_path_lands_on_target(self, x, y):
        path = contextual_edit_path(x, y)
        assert apply_ops(x, path.ops) == tuple(y)

    @given(tiny_strings, tiny_strings)
    @settings(max_examples=60, deadline=None)
    def test_path_weight_is_the_distance(self, x, y):
        path = contextual_edit_path(x, y)
        assert path.contextual_weight == pytest.approx(
            contextual_distance(x, y)
        )

    def test_paper_example_4(self):
        path = contextual_edit_path("ababa", "baab")
        assert path.contextual_weight == pytest.approx(8 / 15)
        assert apply_ops("ababa", path.ops) == tuple("baab")


class TestCanonicalOrder:
    def test_insertions_before_substitutions_before_deletions(self):
        path = contextual_edit_path("abcd", "xbcz" + "q")
        kinds = [op.kind for op in path.ops if op.kind != "match"]
        order = {"insert": 0, "substitute": 1, "delete": 2}
        ranks = [order[k] for k in kinds]
        assert ranks == sorted(ranks)

    def test_identity_path_is_all_matches(self):
        path = contextual_edit_path("same", "same")
        assert all(op.kind == "match" for op in path.ops)
        assert path.contextual_weight == 0.0
        assert apply_ops("same", path.ops) == tuple("same")

    def test_empty_to_string(self):
        path = contextual_edit_path("", "abc")
        assert all(op.kind == "insert" for op in path.ops)
        assert apply_ops("", path.ops) == tuple("abc")

    def test_string_to_empty(self):
        path = contextual_edit_path("abc", "")
        assert all(op.kind == "delete" for op in path.ops)
        assert apply_ops("abc", path.ops) == ()


class TestUsesExtraOperationsWhenCheaper:
    def test_prefers_insert_delete_over_substitutions(self):
        # ab -> ba: the optimum uses an insertion (cost 2/3), not two
        # substitutions (cost 1)
        path = contextual_edit_path("ab", "ba")
        kinds = {op.kind for op in path.ops}
        assert "insert" in kinds
        assert path.contextual_weight == pytest.approx(2 / 3)

    def test_edit_weight_can_exceed_levenshtein(self):
        from repro.core.levenshtein import levenshtein_distance

        # whenever the optimal k is larger than d_E the recovered path
        # must reflect it
        path = contextual_edit_path("ab", "ba")
        assert path.edit_weight >= levenshtein_distance("ab", "ba")
