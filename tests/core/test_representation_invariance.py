"""Distances must not care how symbols are represented.

The digit experiments feed chain codes as strings of '0'..'7'; a user
could equally pass tuples of ints, lists, or accented unicode.  Every
registered distance must give identical values across representations,
and the exact/heuristic kernels must agree across their dispatch
thresholds.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    contextual_distance,
    contextual_distance_heuristic,
    list_distances,
)
from repro.core.contextual import _EXACT_PY_THRESHOLD, _NUMPY_THRESHOLD


class TestRepresentations:
    @pytest.mark.parametrize(
        "spec", list_distances(), ids=lambda s: s.name
    )
    def test_string_vs_tuple_vs_list(self, spec):
        x, y = "07716654", "07616554"
        as_str = spec.function(x, y)
        as_tuple = spec.function(tuple(int(c) for c in x),
                                 tuple(int(c) for c in y))
        as_list = spec.function([int(c) for c in x], [int(c) for c in y])
        assert as_str == pytest.approx(as_tuple)
        assert as_str == pytest.approx(as_list)

    def test_unicode_accents(self):
        # accented Spanish words from the dictionary generator
        assert contextual_distance("razón", "razon") > 0
        assert contextual_distance("razón", "razón") == 0.0

    def test_arbitrary_hashable_symbols(self):
        a = (("x", 1), ("y", 2), ("z", 3))
        b = (("x", 1), ("q", 9), ("z", 3))
        assert contextual_distance(a, b) == pytest.approx(1 / 3)


class TestDispatchBoundaries:
    """Values must be continuous across the pure-Python/numpy thresholds."""

    def _random_pair(self, rng, total_length):
        m = total_length // 2
        n = total_length - m
        x = "".join(rng.choice("abcd") for _ in range(m))
        y = "".join(rng.choice("abcd") for _ in range(n))
        return x, y

    def test_heuristic_around_numpy_threshold(self):
        rng = random.Random(0)
        for total in (_NUMPY_THRESHOLD - 2, _NUMPY_THRESHOLD,
                      _NUMPY_THRESHOLD + 2):
            x, y = self._random_pair(rng, total)
            from repro.core._kernels import contextual_heuristic_numpy
            from repro.core.contextual import _heuristic_tables

            assert contextual_heuristic_numpy(x, y) == _heuristic_tables(x, y)

    def test_exact_around_py_threshold(self):
        rng = random.Random(1)
        for total in (_EXACT_PY_THRESHOLD - 2, _EXACT_PY_THRESHOLD,
                      _EXACT_PY_THRESHOLD + 2):
            x, y = self._random_pair(rng, total)
            d = contextual_distance(x, y)
            h = contextual_distance_heuristic(x, y)
            assert d <= h + 1e-12
            assert d == pytest.approx(contextual_distance(y, x))


@given(st.lists(st.integers(0, 7), max_size=8),
       st.lists(st.integers(0, 7), max_size=8))
@settings(max_examples=40, deadline=None)
def test_int_sequences_match_digit_strings(xs, ys):
    as_str_x = "".join(str(v) for v in xs)
    as_str_y = "".join(str(v) for v in ys)
    assert contextual_distance(xs, ys) == pytest.approx(
        contextual_distance(as_str_x, as_str_y)
    )
