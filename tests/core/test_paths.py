"""Edit operations, paths, and the three path weights."""

import pytest

from repro.core.levenshtein import edit_script
from repro.core.paths import (
    EditOp,
    EditPath,
    apply_ops,
    contextual_op_cost,
    path_contextual_weight,
    path_edit_weight,
    path_length,
)


class TestEditOp:
    def test_valid_ops(self):
        EditOp("insert", 0, None, "a")
        EditOp("delete", 0, "a", None)
        EditOp("substitute", 0, "a", "b")
        EditOp("match", 0, "a", "a")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            EditOp("transpose", 0, "a", "b")

    def test_insert_requires_symbol(self):
        with pytest.raises(ValueError):
            EditOp("insert", 0, None, None)

    def test_delete_requires_symbol(self):
        with pytest.raises(ValueError):
            EditOp("delete", 0, None, None)

    def test_match_requires_equal(self):
        with pytest.raises(ValueError):
            EditOp("match", 0, "a", "b")

    def test_substitute_requires_distinct(self):
        with pytest.raises(ValueError):
            EditOp("substitute", 0, "a", "a")

    def test_paid_flags(self):
        assert not EditOp("match", 0, "a", "a").is_paid
        assert EditOp("substitute", 0, "a", "b").is_paid
        assert EditOp("insert", 0, None, "b").is_paid
        assert EditOp("delete", 0, "b", None).is_paid


class TestApplyOps:
    def test_insert_positions(self):
        assert apply_ops("bc", [EditOp("insert", 0, None, "a")]) == tuple("abc")
        assert apply_ops("bc", [EditOp("insert", 2, None, "a")]) == tuple("bca")

    def test_delete(self):
        assert apply_ops("abc", [EditOp("delete", 1, "b", None)]) == tuple("ac")

    def test_substitute(self):
        assert apply_ops("abc", [EditOp("substitute", 1, "b", "x")]) == tuple("axc")

    def test_wrong_symbol_raises(self):
        with pytest.raises(ValueError):
            apply_ops("abc", [EditOp("delete", 1, "z", None)])

    def test_position_out_of_range(self):
        with pytest.raises(ValueError):
            apply_ops("abc", [EditOp("delete", 5, "a", None)])
        with pytest.raises(ValueError):
            apply_ops("abc", [EditOp("insert", 9, None, "a")])


class TestWeights:
    def test_paper_example_3_marked_length(self):
        # Example 3: the marked path abaa -> bbaa -> baa -> baab has l_E = 5
        # (3 paid operations + 2 matches).  We rebuild it op by op.
        ops = (
            EditOp("substitute", 0, "a", "b"),  # abaa -> bbaa
            EditOp("delete", 0, "b", None),  # bbaa -> baa
            EditOp("match", 0, "b", "b"),
            EditOp("match", 1, "a", "a"),
            EditOp("insert", 3, None, "b"),  # baa -> baab
        )
        assert apply_ops("abaa", ops) == tuple("baab")
        assert path_edit_weight(ops) == 3
        assert path_length(ops) == 5

    def test_paper_example_4_first_path(self):
        # Example 4: path ababa ->d abaa ->d baa ->i baab costs 1/5+1/4+1/4
        # = 7/10 (the paper prints the same total).
        assert contextual_op_cost(5, "delete") == pytest.approx(1 / 5)
        assert contextual_op_cost(4, "delete") == pytest.approx(1 / 4)
        assert contextual_op_cost(3, "insert") == pytest.approx(1 / 4)
        total = 1 / 5 + 1 / 4 + 1 / 4
        assert total == pytest.approx(7 / 10)

    def test_paper_example_4_second_path(self):
        # ababa ->i ababab ->d babab ->d baab: 1/6 + 1/6 + 1/5 = 8/15
        total = (
            contextual_op_cost(5, "insert")
            + contextual_op_cost(6, "delete")
            + contextual_op_cost(5, "delete")
        )
        assert total == pytest.approx(8 / 15)

    def test_contextual_weight_replay(self):
        ops = (
            EditOp("insert", 5, None, "b"),  # ababa -> ababab (len 5 -> 6)
            EditOp("delete", 0, "a", None),  # ababab -> babab (len 6)
            EditOp("delete", 2, "b", None),  # babab -> baab?  check below
        )
        result = apply_ops("ababa", ops)
        assert result == tuple("baab")
        weight = path_contextual_weight(ops, "ababa")
        assert weight == pytest.approx(8 / 15)

    def test_match_costs_nothing(self):
        assert contextual_op_cost(7, "match") == 0.0

    def test_empty_string_operations(self):
        assert contextual_op_cost(0, "insert") == 1.0
        with pytest.raises(ValueError):
            contextual_op_cost(0, "delete")
        with pytest.raises(ValueError):
            contextual_op_cost(0, "substitute")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            contextual_op_cost(3, "swap")


class TestEditPath:
    def test_properties_via_edit_script(self):
        path = edit_script("abaa", "aab")
        assert path.edit_weight == 2
        assert path.marked_length == len(path.ops)
        assert path.contextual_weight > 0

    def test_intermediate_strings(self):
        path = edit_script("ab", "ba")
        states = path.intermediate_strings()
        assert states[0] == tuple("ab")
        assert states[-1] == tuple("ba")
        assert len(states) == len(path.ops) + 1
