"""The contextual distance: worked examples, Algorithm 1, the heuristic."""

import pytest
from hypothesis import given, settings

from repro.core.contextual import (
    _heuristic_tables,
    canonical_cost,
    contextual_distance,
    contextual_distance_heuristic,
    contextual_profile,
)
from repro.core.harmonic import harmonic
from repro.core.reference import dijkstra_contextual

from ..conftest import tiny_strings


class TestWorkedExamples:
    def test_paper_example_4(self):
        # d_C(ababa, baab) = 8/15 via insertion-first path
        assert contextual_distance("ababa", "baab") == pytest.approx(8 / 15)

    def test_paper_example_4_upper_path(self):
        # the other path quoted in the example costs 7/10 >= d_C
        assert contextual_distance("ababa", "baab") <= 7 / 10

    def test_identity(self):
        assert contextual_distance("abc", "abc") == 0.0
        assert contextual_distance("", "") == 0.0

    def test_empty_to_string_is_harmonic(self):
        # building y from scratch costs 1/1 + 1/2 + ... + 1/|y| = H(|y|)
        for n in (1, 2, 5, 9):
            y = "a" * n
            assert contextual_distance("", y) == pytest.approx(harmonic(n))
            assert contextual_distance(y, "") == pytest.approx(harmonic(n))

    def test_single_substitution(self):
        # a -> b: substitute at length 1, or insert+delete at 1/2 + 1/2 = 1
        assert contextual_distance("a", "b") == pytest.approx(1.0)

    def test_substitution_dilution(self):
        # in a length-10 string one substitution costs 1/10
        x = "aaaaaaaaaa"
        y = "aaaaabaaaa"
        assert contextual_distance(x, y) == pytest.approx(1 / 10)

    def test_length_sensitivity(self):
        # the same *number* of edits is cheaper on longer strings -- the
        # motivation in the paper's introduction
        short = contextual_distance("ab", "ba")
        long_ = contextual_distance("ab" * 50, "ba" + "ab" * 49)
        assert long_ < short


class TestAgainstOracle:
    @given(tiny_strings, tiny_strings)
    @settings(max_examples=60, deadline=None)
    def test_matches_dijkstra(self, x, y):
        assert contextual_distance(x, y) == pytest.approx(
            dijkstra_contextual(x, y)
        )

    def test_exhaustive_tiny_universe(self):
        universe = ["", "a", "b", "ab", "ba", "aa", "abb", "bab"]
        for x in universe:
            for y in universe:
                assert contextual_distance(x, y) == pytest.approx(
                    dijkstra_contextual(x, y)
                ), (x, y)


class TestCanonicalCost:
    def test_zero_path(self):
        assert canonical_cost(0, 0, 0, 0) == 0.0

    def test_pure_insertions(self):
        # m=0, n=3, k=3, ni=3: H(3)
        assert canonical_cost(0, 3, 3, 3) == pytest.approx(harmonic(3))

    def test_pure_deletions(self):
        assert canonical_cost(3, 0, 3, 0) == pytest.approx(harmonic(3))

    def test_infeasible_combinations(self):
        assert canonical_cost(2, 2, 1, 1) is None  # ns would be negative
        assert canonical_cost(5, 2, 2, 0) is None  # nd negative... (m-n+ni=3>k)
        assert canonical_cost(2, 2, 2, -1) is None

    def test_example4_value(self):
        # ababa -> baab with k=3, ni=1: 1/6 + 0 + (1/6 + 1/5) = 8/15
        assert canonical_cost(5, 4, 3, 1) == pytest.approx(8 / 15)

    def test_monotone_in_ni(self):
        # for fixed k, more insertions never cost more (Lemma 1 rationale)
        m, n, k = 4, 4, 6
        costs = [
            canonical_cost(m, n, k, ni)
            for ni in range(0, 4)
            if canonical_cost(m, n, k, ni) is not None
        ]
        assert costs == sorted(costs, reverse=True)


class TestProfile:
    def test_profile_contains_minimum(self):
        points = contextual_profile("ababa", "baab")
        best = min(p.cost for p in points)
        assert best == pytest.approx(contextual_distance("ababa", "baab"))

    def test_profile_k_values_start_at_edit_distance(self):
        from repro.core.levenshtein import levenshtein_distance

        points = contextual_profile("abaa", "aab")
        assert min(p.k for p in points) == levenshtein_distance("abaa", "aab")

    def test_profile_counts_consistent(self):
        for p in contextual_profile("abc", "cba"):
            assert p.ni + p.ns + p.nd == p.k
            assert p.ni - p.nd == len("cba") - len("abc")

    def test_profile_k_range(self):
        # feasible k runs from d_E up to at most |x| + |y|
        points = contextual_profile("aaa", "bbb")
        ks = sorted(p.k for p in points)
        assert ks[0] == 3  # three substitutions
        assert ks[-1] <= 6
        assert len(ks) == len(set(ks))


class TestHeuristic:
    def test_heuristic_identity(self):
        assert contextual_distance_heuristic("xyz", "xyz") == 0.0

    def test_heuristic_on_example4(self):
        # for this pair the minimum is at k = d_E, so heuristic is exact
        assert contextual_distance_heuristic("ababa", "baab") == pytest.approx(
            8 / 15
        )

    @given(tiny_strings, tiny_strings)
    @settings(max_examples=80, deadline=None)
    def test_heuristic_upper_bounds_exact(self, x, y):
        assert (
            contextual_distance_heuristic(x, y)
            >= contextual_distance(x, y) - 1e-12
        )

    def test_heuristic_tables_edit_distance(self):
        from repro.core.levenshtein import levenshtein_distance

        for x, y in [("abaa", "aab"), ("ababa", "baab"), ("", "abc"), ("a", "")]:
            k, ni = _heuristic_tables(x, y)
            assert k == levenshtein_distance(x, y)
            assert 0 <= ni <= len(y)

    def test_heuristic_max_insertions_among_optimal_paths(self):
        # ab -> ba: two optimal-path shapes; one uses an insertion
        k, ni = _heuristic_tables("ab", "ba")
        assert k == 2
        assert ni == 1  # delete a, match b, insert a

    def test_known_disagreement_possible(self):
        # Over many random pairs the heuristic agrees most of the time but
        # not always (the paper reports ~90%); we assert both directions:
        # high agreement, and >= 0 gap everywhere.
        import random

        rng = random.Random(5)
        total = equal = 0
        for _ in range(300):
            x = "".join(rng.choice("ab") for _ in range(rng.randint(0, 6)))
            y = "".join(rng.choice("ab") for _ in range(rng.randint(0, 6)))
            e = contextual_distance(x, y)
            h = contextual_distance_heuristic(x, y)
            assert h >= e - 1e-12
            total += 1
            equal += abs(h - e) <= 1e-12
        assert equal / total > 0.7


class TestKBound:
    """The k-axis pruning in contextual_distance must never change values."""

    def test_long_strings_match_unbounded_profile(self):
        import random

        rng = random.Random(17)
        for _ in range(20):
            x = "".join(rng.choice("abc") for _ in range(rng.randint(5, 14)))
            y = "".join(rng.choice("abc") for _ in range(rng.randint(5, 14)))
            via_profile = min(p.cost for p in contextual_profile(x, y))
            assert contextual_distance(x, y) == pytest.approx(via_profile)

    def test_very_unequal_lengths(self):
        # upper bound >= 2 branch: k_max collapses to m+n
        x = ""
        y = "abcdefgh" * 3
        assert contextual_distance(x, y) == pytest.approx(harmonic(len(y)))
