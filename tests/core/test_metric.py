"""Metric-axiom checker: finds the paper's violations, passes the metrics."""

from repro.core.levenshtein import levenshtein_distance
from repro.core.metric import MetricReport, all_strings, check_metric
from repro.core.ratios import max_normalized_distance, sum_normalized_distance


class TestAllStrings:
    def test_counts(self):
        # sum of 2^l for l = 0..3 = 15
        assert len(all_strings("ab", 3)) == 15
        assert len(all_strings("abc", 2)) == 1 + 3 + 9

    def test_contains_empty(self):
        assert "" in all_strings("ab", 2)

    def test_ordering_by_length(self):
        strings = all_strings("ab", 2)
        lengths = [len(s) for s in strings]
        assert lengths == sorted(lengths)


class TestCheckMetric:
    def test_levenshtein_is_metric(self):
        report = check_metric(
            lambda x, y: float(levenshtein_distance(x, y)), all_strings("ab", 3)
        )
        assert report.is_metric
        assert "no violation" in report.summary()

    def test_dsum_not_metric(self):
        report = check_metric(sum_normalized_distance, all_strings("ab", 3))
        assert not report.is_metric
        assert report.triangle_violations
        assert "triangle" in report.summary()

    def test_dmax_not_metric(self):
        report = check_metric(max_normalized_distance, all_strings("ab", 3))
        assert not report.is_metric

    def test_detects_identity_violation(self):
        def degenerate(x, y):
            return 0.0  # everything at distance zero

        report = check_metric(degenerate, ["a", "b", "c"])
        assert report.identity_violations
        assert not report.is_metric

    def test_detects_asymmetry(self):
        def asymmetric(x, y):
            return float(len(x)) if x != y else 0.0

        report = check_metric(asymmetric, ["a", "bb"])
        assert report.symmetry_violations

    def test_nonzero_self_distance(self):
        def bad_self(x, y):
            return 1.0

        report = check_metric(bad_self, ["a", "b"])
        assert (("a", "a") in report.identity_violations) or (
            ("b", "b") in report.identity_violations
        )

    def test_max_violations_cap(self):
        report = check_metric(
            sum_normalized_distance, all_strings("ab", 4), max_violations=2
        )
        assert len(report.triangle_violations) <= 2

    def test_report_is_dataclass_with_counts(self):
        report = check_metric(
            lambda x, y: float(levenshtein_distance(x, y)), ["a", "b"]
        )
        assert isinstance(report, MetricReport)
        assert report.points_checked == 2


class TestCheckMetricComputationCounts:
    """The checker computes each needed pair once -- never n^3 times."""

    @staticmethod
    def _counted(calls):
        def distance(x, y):
            calls.append((x, y))
            return float(levenshtein_distance(x, y))

        return distance

    def test_assume_symmetric_upper_triangle_only(self):
        points = all_strings("ab", 2)  # 7 points
        n = len(points)
        calls = []
        report = check_metric(
            self._counted(calls), points, assume_symmetric=True
        )
        assert report.is_metric
        # exactly C(n, 2) + n evaluations: each unordered pair once,
        # including the diagonal -- the docstring's promise
        assert len(calls) == n * (n - 1) // 2 + n
        assert len(set(calls)) == len(calls)  # no pair computed twice

    def test_default_computes_each_ordered_pair_once(self):
        points = all_strings("ab", 2)
        n = len(points)
        calls = []
        check_metric(self._counted(calls), points)
        assert len(calls) == n * n  # both orientations (symmetry probe)
        assert len(set(calls)) == len(calls)

    def test_assume_symmetric_same_verdicts_for_metrics(self):
        points = all_strings("ab", 3)
        mirrored = check_metric(
            lambda x, y: float(levenshtein_distance(x, y)),
            points,
            assume_symmetric=True,
        )
        full = check_metric(
            lambda x, y: float(levenshtein_distance(x, y)), points
        )
        assert mirrored.is_metric == full.is_metric
        assert mirrored.triangle_violations == full.triangle_violations

    def test_assume_symmetric_still_finds_triangle_violations(self):
        report = check_metric(
            sum_normalized_distance, all_strings("ab", 3),
            assume_symmetric=True,
        )
        assert not report.is_metric
        assert report.triangle_violations
