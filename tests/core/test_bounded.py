"""Early-exit distances: exact under the limit, above it when pruning."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bounded_for, get_spec, levenshtein_bounded
from repro.core.bounded import (
    bounded_dmax,
    bounded_dmin,
    bounded_dsum,
    bounded_levenshtein,
    bounded_yujian_bo,
)
from repro.core.levenshtein import levenshtein_distance

from ..conftest import small_strings

#: Registry entries that ship an early-exit twin.
BOUNDED_NAMES = ("levenshtein", "dmax", "dsum", "dmin", "yujian_bo")


class TestLevenshteinBounded:
    @given(small_strings, small_strings, st.integers(0, 10))
    @settings(max_examples=300, deadline=None)
    def test_contract(self, x, y, limit):
        d = levenshtein_distance(x, y)
        value = levenshtein_bounded(x, y, limit)
        if d <= limit:
            assert value == d
        else:
            assert value > limit

    def test_exact_below_limit(self):
        assert levenshtein_bounded("abaa", "aab", 2) == 2
        assert levenshtein_bounded("abaa", "aab", 100) == 2

    def test_prunes_above_limit(self):
        assert levenshtein_bounded("aaaa", "bbbb", 1) > 1

    def test_length_gap_lower_bound(self):
        # |x| - |y| = 17 is itself a lower bound and survives the prune
        assert levenshtein_bounded("a" * 20, "abc", 2) >= 17

    def test_negative_limit(self):
        assert levenshtein_bounded("a", "a", -1) == 0
        assert levenshtein_bounded("a", "b", -1) > -1

    def test_float_limit(self):
        assert levenshtein_bounded("abaa", "aab", 2.7) == 2


class TestBoundedTwins:
    @pytest.mark.parametrize("name", BOUNDED_NAMES)
    def test_randomised_contract(self, name):
        spec = get_spec(name)
        bounded = bounded_for(spec.function)
        assert bounded is not None
        rng = random.Random(hash(name) & 0xFFFF)
        for _ in range(400):
            x = "".join(rng.choice("abc") for _ in range(rng.randint(0, 9)))
            y = "".join(rng.choice("abc") for _ in range(rng.randint(0, 9)))
            limit = rng.choice([0.0, 0.1, 0.25, 0.5, 0.9, 1.0, 2.0, 5.0])
            exact = spec.function(x, y)
            value = bounded(x, y, limit)
            if exact <= limit:
                assert value == exact, (name, x, y, limit)
            else:
                assert value > limit, (name, x, y, limit)

    def test_dmin_empty_string_infinity(self):
        assert bounded_dmin("", "abc", 0.5) == float("inf")
        assert bounded_dmin("", "", 0.5) == 0.0

    def test_yujian_bo_saturated_limit_is_exact(self):
        spec = get_spec("yujian_bo")
        assert bounded_yujian_bo("abc", "xyz", 1.0) == spec.function("abc", "xyz")

    def test_registry_wiring(self):
        for name, twin in zip(
            BOUNDED_NAMES,
            (
                bounded_levenshtein,
                bounded_dmax,
                bounded_dsum,
                bounded_dmin,
                bounded_yujian_bo,
            ),
        ):
            spec = get_spec(name)
            assert spec.bounded is twin
            assert bounded_for(spec.function) is twin

    def test_unbounded_distances_have_no_twin(self):
        for name in ("contextual", "contextual_heuristic", "marzal_vidal"):
            assert get_spec(name).bounded is None
            assert bounded_for(get_spec(name).function) is None
