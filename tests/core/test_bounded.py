"""Early-exit distances: exact under the limit, above it when pruning."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bounded_for, get_spec, levenshtein_bounded
from repro.core.bounded import (
    bounded_contextual_heuristic,
    bounded_dmax,
    bounded_dmin,
    bounded_dsum,
    bounded_levenshtein,
    bounded_marzal_vidal,
    bounded_yujian_bo,
    contextual_edit_budget,
    contextual_pruned_value,
)
from repro.core.levenshtein import levenshtein_distance

from ..conftest import small_strings

#: Registry entries that ship an early-exit twin.
BOUNDED_NAMES = ("levenshtein", "dmax", "dsum", "dmin", "yujian_bo")


class TestLevenshteinBounded:
    @given(small_strings, small_strings, st.integers(0, 10))
    @settings(max_examples=300, deadline=None)
    def test_contract(self, x, y, limit):
        d = levenshtein_distance(x, y)
        value = levenshtein_bounded(x, y, limit)
        if d <= limit:
            assert value == d
        else:
            assert value > limit

    def test_exact_below_limit(self):
        assert levenshtein_bounded("abaa", "aab", 2) == 2
        assert levenshtein_bounded("abaa", "aab", 100) == 2

    def test_prunes_above_limit(self):
        assert levenshtein_bounded("aaaa", "bbbb", 1) > 1

    def test_length_gap_lower_bound(self):
        # |x| - |y| = 17 is itself a lower bound and survives the prune
        assert levenshtein_bounded("a" * 20, "abc", 2) >= 17

    def test_negative_limit(self):
        assert levenshtein_bounded("a", "a", -1) == 0
        assert levenshtein_bounded("a", "b", -1) > -1

    def test_float_limit(self):
        assert levenshtein_bounded("abaa", "aab", 2.7) == 2


class TestBoundedTwins:
    @pytest.mark.parametrize("name", BOUNDED_NAMES)
    def test_randomised_contract(self, name):
        spec = get_spec(name)
        bounded = bounded_for(spec.function)
        assert bounded is not None
        rng = random.Random(hash(name) & 0xFFFF)
        for _ in range(400):
            x = "".join(rng.choice("abc") for _ in range(rng.randint(0, 9)))
            y = "".join(rng.choice("abc") for _ in range(rng.randint(0, 9)))
            limit = rng.choice([0.0, 0.1, 0.25, 0.5, 0.9, 1.0, 2.0, 5.0])
            exact = spec.function(x, y)
            value = bounded(x, y, limit)
            if exact <= limit:
                assert value == exact, (name, x, y, limit)
            else:
                assert value > limit, (name, x, y, limit)

    def test_dmin_empty_string_infinity(self):
        assert bounded_dmin("", "abc", 0.5) == float("inf")
        assert bounded_dmin("", "", 0.5) == 0.0

    def test_yujian_bo_saturated_limit_is_exact(self):
        spec = get_spec("yujian_bo")
        assert bounded_yujian_bo("abc", "xyz", 1.0) == spec.function("abc", "xyz")

    def test_registry_wiring(self):
        for name, twin in zip(
            BOUNDED_NAMES,
            (
                bounded_levenshtein,
                bounded_dmax,
                bounded_dsum,
                bounded_dmin,
                bounded_yujian_bo,
            ),
        ):
            spec = get_spec(name)
            assert spec.bounded is twin
            assert bounded_for(spec.function) is twin

    def test_unbounded_distances_have_no_twin(self):
        # exact d_C is the only paper distance without an early-exit twin
        assert get_spec("contextual").bounded is None
        assert bounded_for(get_spec("contextual").function) is None

    def test_normalised_table2_distances_have_twins(self):
        for name in ("contextual_heuristic", "marzal_vidal"):
            spec = get_spec(name)
            assert spec.bounded is not None
            assert bounded_for(spec.function) is spec.bounded


#: (alphabet, max_length, rng seed) regimes matching the paper's three
#: datasets.  Seeds are explicit: ``hash(str)`` is salted per process, so
#: seeding from it would make the sampled pairs differ run to run.
_REGIMES = (
    ("01234567", 12, 0xD161),  # digit-contour chain codes
    ("acgt", 14, 0xD9A),  # DNA
    ("abcde", 10, 0x30BD),  # dictionary words
)

#: Pruned twin values are exact-arithmetic lower bounds of the true
#: distance, but the "exact" side accumulates harmonic sums (d_C,h) or
#: Dinkelbach iterates (d_MV) in floats, so the computed exact value may
#: sit an ulp or two below the bound's directly-rounded closed form.
_LOWER_BOUND_ULPS = 1e-9


def _random_pairs(rng, alphabet, max_len, count):
    for _ in range(count):
        x = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, max_len)))
        y = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, max_len)))
        yield x, y


class TestBoundedContextualHeuristic:
    """The banded twin-table twin of the paper's best distance d_C,h."""

    @given(small_strings, small_strings, st.floats(0.0, 2.2))
    @settings(max_examples=250, deadline=None)
    def test_contract(self, x, y, limit):
        exact = get_spec("contextual_heuristic").function(x, y)
        value = bounded_contextual_heuristic(x, y, limit)
        if exact <= limit:
            assert value == exact
        else:
            assert value > limit
            # pruned values are lower bounds (up to harmonic-sum rounding)
            assert value <= exact + _LOWER_BOUND_ULPS

    @pytest.mark.parametrize("alphabet,max_len,seed", _REGIMES)
    def test_randomised_regimes(self, alphabet, max_len, seed):
        fn = get_spec("contextual_heuristic").function
        rng = random.Random(seed)
        for x, y in _random_pairs(rng, alphabet, max_len, 300):
            limit = rng.choice([0.0, 0.1, 0.25, 0.5, 0.9, 1.3, 2.0, 5.0])
            exact = fn(x, y)
            value = bounded_contextual_heuristic(x, y, limit)
            if exact <= limit:
                assert value == exact, (x, y, limit)
            else:
                assert exact + _LOWER_BOUND_ULPS >= value > limit, (x, y, limit)

    def test_equal_strings_are_zero(self):
        assert bounded_contextual_heuristic("abc", "abc", 0.0) == 0.0
        assert bounded_contextual_heuristic("", "", 0.5) == 0.0

    def test_saturated_limit_is_exact(self):
        fn = get_spec("contextual_heuristic").function
        assert bounded_contextual_heuristic("abc", "xyz", 2.0) == fn("abc", "xyz")

    def test_length_gap_prunes_without_dp(self):
        # |x| - |y| = 17 busts any small budget before a single DP row
        value = bounded_contextual_heuristic("a" * 20, "abc", 0.1)
        assert value > 0.1

    def test_budget_inversion(self):
        # the pruned value at budget k is strictly above any limit whose
        # budget is k -- the inversion bounded dispatch relies on
        for total in (2, 7, 31, 200):
            for limit in (0.0, 0.05, 0.3, 0.9, 1.7):
                k = contextual_edit_budget(limit, total)
                if k < total:
                    assert contextual_pruned_value(k, total) > limit


class TestBoundedMarzalVidal:
    """The banded parametric-probe twin of d_MV."""

    @given(small_strings, small_strings, st.floats(0.0, 1.1))
    @settings(max_examples=150, deadline=None)
    def test_contract(self, x, y, limit):
        exact = get_spec("marzal_vidal").function(x, y)
        value = bounded_marzal_vidal(x, y, limit)
        if exact <= limit:
            assert value == exact
        else:
            assert value > limit
            assert value <= exact + _LOWER_BOUND_ULPS

    @pytest.mark.parametrize("alphabet,max_len,seed", _REGIMES)
    def test_randomised_regimes(self, alphabet, max_len, seed):
        fn = get_spec("marzal_vidal").function
        rng = random.Random(seed ^ 0x5A5A)
        for x, y in _random_pairs(rng, alphabet, max_len, 200):
            limit = rng.choice([0.0, 0.1, 0.25, 0.4, 0.6, 0.9, 1.0])
            exact = fn(x, y)
            value = bounded_marzal_vidal(x, y, limit)
            if exact <= limit:
                assert value == exact, (x, y, limit)
            else:
                assert exact + _LOWER_BOUND_ULPS >= value > limit, (x, y, limit)

    def test_long_strings_numpy_probe(self):
        # wide-band long pairs route through the anti-diagonal parametric
        # kernel; the contract must be indistinguishable
        fn = get_spec("marzal_vidal").function
        rng = random.Random(0xD0)
        for _ in range(8):
            x = "".join(rng.choice("acgt") for _ in range(rng.randint(60, 90)))
            y = "".join(rng.choice("acgt") for _ in range(rng.randint(60, 90)))
            for limit in (0.2, 0.5, 0.8):
                exact = fn(x, y)
                value = bounded_marzal_vidal(x, y, limit)
                if exact <= limit:
                    assert value == exact
                else:
                    assert exact + _LOWER_BOUND_ULPS >= value > limit

    def test_saturated_limit_is_exact(self):
        fn = get_spec("marzal_vidal").function
        assert bounded_marzal_vidal("abc", "xyz", 1.0) == fn("abc", "xyz")

    def test_equal_strings_are_zero(self):
        assert bounded_marzal_vidal("abab", "abab", 0.0) == 0.0
