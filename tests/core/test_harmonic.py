"""Harmonic-number table: values, growth, partial sums."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.harmonic import HarmonicTable, harmonic, harmonic_range


def test_first_values():
    assert harmonic(0) == 0.0
    assert harmonic(1) == 1.0
    assert harmonic(2) == pytest.approx(1.5)
    assert harmonic(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)


def test_negative_raises():
    with pytest.raises(ValueError):
        harmonic(-1)


def test_range_is_difference_of_harmonics():
    assert harmonic_range(4, 9) == pytest.approx(harmonic(9) - harmonic(4))


def test_range_empty_and_reversed():
    assert harmonic_range(5, 5) == 0.0
    assert harmonic_range(7, 3) == 0.0


def test_range_negative_raises():
    with pytest.raises(ValueError):
        harmonic_range(-1, 4)


def test_table_grows_on_demand():
    table = HarmonicTable(initial_size=4)
    assert table.value(1000) == pytest.approx(
        sum(1.0 / i for i in range(1, 1001))
    )


def test_matches_log_asymptotics():
    # H(n) ~ ln n + gamma; check within loose bounds for a big n
    n = 50000
    gamma = 0.5772156649
    assert harmonic(n) == pytest.approx(math.log(n) + gamma, abs=1e-4)


@given(st.integers(0, 300), st.integers(0, 300))
def test_range_matches_direct_sum(low, high):
    expected = sum(1.0 / i for i in range(low + 1, high + 1))
    assert harmonic_range(low, high) == pytest.approx(expected)


@given(st.integers(0, 200))
def test_monotone(n):
    assert harmonic(n + 1) > harmonic(n)
