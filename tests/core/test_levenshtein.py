"""Levenshtein distance, DP matrix, edit scripts and alignments."""

import pytest
from hypothesis import given

from repro.core.levenshtein import (
    alignment,
    edit_script,
    internal_path_length,
    levenshtein_distance,
    levenshtein_matrix,
    levenshtein_within,
)
from repro.core.paths import apply_ops
from repro.core.reference import dijkstra_edit

from ..conftest import small_strings, tiny_strings


class TestDistanceValues:
    def test_paper_example_1(self):
        # Example 1 of the paper
        assert levenshtein_distance("abaa", "aab") == 2

    def test_paper_example_2_upper_bound(self):
        # Example 2: d_E(abaa, baab) <= 3 (it is exactly 2: delete leading
        # a, append b? abaa -> baa -> baab: 2 operations)
        assert levenshtein_distance("abaa", "baab") <= 3

    def test_identity(self):
        assert levenshtein_distance("kitten", "kitten") == 0

    def test_classic_kitten(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_empty_vs_empty(self):
        assert levenshtein_distance("", "") == 0

    def test_empty_vs_string(self):
        assert levenshtein_distance("", "abcde") == 5
        assert levenshtein_distance("abcde", "") == 5

    def test_single_substitution(self):
        assert levenshtein_distance("a", "b") == 1

    def test_completely_different(self):
        assert levenshtein_distance("aaaa", "bbbb") == 4

    @given(tiny_strings, tiny_strings)
    def test_matches_dijkstra_oracle(self, x, y):
        assert levenshtein_distance(x, y) == pytest.approx(dijkstra_edit(x, y))

    @given(small_strings, small_strings)
    def test_symmetry(self, x, y):
        assert levenshtein_distance(x, y) == levenshtein_distance(y, x)

    @given(small_strings, small_strings, small_strings)
    def test_triangle_inequality(self, x, y, z):
        assert levenshtein_distance(x, z) <= levenshtein_distance(
            x, y
        ) + levenshtein_distance(y, z)

    @given(small_strings, small_strings)
    def test_bounds(self, x, y):
        d = levenshtein_distance(x, y)
        assert abs(len(x) - len(y)) <= d <= max(len(x), len(y))


class TestMatrix:
    def test_corner_values(self):
        d = levenshtein_matrix("abaa", "aab")
        assert d[0][0] == 0
        assert d[4][3] == 2
        assert d[4][0] == 4  # delete everything
        assert d[0][3] == 3  # insert everything

    def test_row_zero_and_column_zero(self):
        d = levenshtein_matrix("xyz", "ab")
        assert [d[i][0] for i in range(4)] == [0, 1, 2, 3]
        assert d[0] == [0, 1, 2]

    @given(small_strings, small_strings)
    def test_matrix_agrees_with_distance(self, x, y):
        d = levenshtein_matrix(x, y)
        assert d[len(x)][len(y)] == levenshtein_distance(x, y)


class TestLevenshteinWithin:
    def test_within_and_beyond(self):
        assert levenshtein_within("abaa", "aab", 2) == 2
        assert levenshtein_within("abaa", "aab", 3) == 2
        assert levenshtein_within("abaa", "aab", 1) is None

    def test_length_difference_shortcut(self):
        assert levenshtein_within("a", "abcdef", 3) is None

    def test_zero_bound(self):
        assert levenshtein_within("same", "same", 0) == 0
        assert levenshtein_within("same", "sane", 0) is None

    def test_empty_strings(self):
        assert levenshtein_within("", "", 0) == 0
        assert levenshtein_within("", "ab", 2) == 2
        assert levenshtein_within("ab", "", 1) is None

    def test_negative_bound(self):
        with pytest.raises(ValueError):
            levenshtein_within("a", "b", -1)

    @given(small_strings, small_strings)
    def test_agrees_with_full_dp(self, x, y):
        d = levenshtein_distance(x, y)
        for bound in range(0, len(x) + len(y) + 1):
            banded = levenshtein_within(x, y, bound)
            if d <= bound:
                assert banded == d
            else:
                assert banded is None

    def test_long_strings_early_exit(self):
        # grossly different long strings: the band dies early
        x = "a" * 400
        y = "b" * 400
        assert levenshtein_within(x, y, 5) is None


class TestEditScript:
    def test_script_replays_to_target(self):
        path = edit_script("abaa", "aab")
        assert apply_ops("abaa", path.ops) == tuple("aab")

    def test_script_weight_is_distance(self):
        path = edit_script("abaa", "aab")
        assert path.edit_weight == 2

    @given(small_strings, small_strings)
    def test_script_always_valid(self, x, y):
        path = edit_script(x, y)
        assert apply_ops(x, path.ops) == tuple(y)
        assert path.edit_weight == levenshtein_distance(x, y)

    @given(small_strings, small_strings)
    def test_marked_length_bounds(self, x, y):
        # l_E is between max(|x|,|y|) (all columns) and |x|+|y|
        length = internal_path_length(x, y)
        if x or y:
            assert max(len(x), len(y)) <= length <= len(x) + len(y)
        else:
            assert length == 0


class TestAlignment:
    def test_paper_style_alignment(self):
        top, mid, bot = alignment("abaa", "aab")
        assert top.replace(".", "") == "abaa"
        assert bot.replace(".", "") == "aab"
        assert len(top) == len(mid) == len(bot)

    def test_markers_consistent(self):
        _, mid, _ = alignment("abc", "abc")
        assert mid == "|||"

    def test_insert_and_delete_markers(self):
        top, mid, bot = alignment("a", "ab")
        assert "+" in mid
        top, mid, bot = alignment("ab", "a")
        assert "-" in mid
