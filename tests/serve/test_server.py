"""Functional tests of :class:`repro.serve.IndexServer`.

The contract under test: coalescing is invisible (every served answer
is bit-identical to a direct bulk call, down to per-query distance
counts), deadlines fail loudly without poisoning their batch, admission
is bounded, drain flushes, warm start loads artifacts, and the metrics
ledger balances.
"""

import asyncio
import random
import time

import pytest

from repro.batch.runtime import DEGRADATION
from repro.core import get_distance
from repro.index import LaesaIndex
from repro.serve import (
    DeadlineExceeded,
    IndexServer,
    ServeConfig,
    ServeError,
    ServerClosed,
    ServerOverloaded,
)


def _corpus(n=120, seed=5):
    rng = random.Random(seed)
    return list(
        {
            "".join(rng.choice("abcde") for _ in range(rng.randint(3, 9)))
            for _ in range(n)
        }
    )


def _build(n=120, seed=5):
    return LaesaIndex(
        _corpus(n, seed),
        get_distance("levenshtein"),
        n_pivots=4,
        rng=random.Random(1),
    )


def _key(per_query):
    """Bit-exact projection of bulk results: canonical ``(index,
    distance)`` lists plus per-query computation counts."""
    return [
        ([(r.index, r.distance) for r in results], stats.distance_computations)
        for results, stats in per_query
    ]


#: Config used by most tests: window long enough to coalesce a burst of
#: coroutines, runtime left alone (the autouse fixture reaps it).
def _config(**overrides):
    overrides.setdefault("window_ms", 20.0)
    overrides.setdefault("dispose_runtime_on_drain", False)
    return ServeConfig(**overrides)


def test_served_knn_is_bit_identical_to_direct_bulk():
    index = _build()
    queries = _corpus(n=40, seed=99)
    want = _key(index.bulk_knn(queries, 3))

    async def main():
        async with IndexServer(index, _config()) as server:
            return await asyncio.gather(
                *(server.knn(q, 3) for q in queries)
            ), server.metrics.snapshot()

    served, counters = asyncio.run(main())
    assert _key(served) == want
    assert counters["completed"] == len(queries)
    # coalescing happened: far fewer bulk calls than requests
    assert counters["batches"] < len(queries)
    assert counters["batched_requests"] == len(queries)


def test_served_range_search_is_bit_identical_to_direct_bulk():
    index = _build()
    queries = _corpus(n=30, seed=7)
    want = _key(index.bulk_range_search(queries, 2.0))

    async def main():
        async with IndexServer(index, _config()) as server:
            return await asyncio.gather(
                *(server.range_search(q, 2.0) for q in queries)
            )

    assert _key(asyncio.run(main())) == want


def test_mixed_parameters_split_into_homogeneous_batches():
    index = _build()
    queries = _corpus(n=24, seed=11)
    want_k2 = _key(index.bulk_knn(queries, 2))
    want_k4 = _key(index.bulk_knn(queries, 4))
    want_r = _key(index.bulk_range_search(queries, 1.5))

    async def main():
        async with IndexServer(index, _config()) as server:
            k2, k4, rr = await asyncio.gather(
                asyncio.gather(*(server.knn(q, 2) for q in queries)),
                asyncio.gather(*(server.knn(q, 4) for q in queries)),
                asyncio.gather(*(server.range_search(q, 1.5) for q in queries)),
            )
            return k2, k4, rr, server.metrics.snapshot()

    k2, k4, rr, counters = asyncio.run(main())
    assert _key(k2) == want_k2
    assert _key(k4) == want_k4
    assert _key(rr) == want_r
    assert counters["batches"] >= 3  # one bulk call per (kind, param) at least


def test_max_batch_splits_oversized_windows():
    index = _build()
    queries = _corpus(n=20, seed=3)
    want = _key(index.bulk_knn(queries, 3))

    async def main():
        config = _config(max_batch=6)
        async with IndexServer(index, config) as server:
            served = await asyncio.gather(*(server.knn(q, 3) for q in queries))
            return served, server.metrics.snapshot()

    served, counters = asyncio.run(main())
    assert _key(served) == want
    assert counters["batches"] >= (len(queries) + 5) // 6


def test_deadline_exceeded_is_loud_and_timely():
    index = _build()
    slow = index.bulk_knn

    def slow_bulk(queries, k):
        time.sleep(0.4)
        return slow(queries, k)

    index.bulk_knn = slow_bulk

    async def main():
        async with IndexServer(index, _config(window_ms=1.0)) as server:
            started = time.monotonic()
            with pytest.raises(DeadlineExceeded):
                await server.knn("abc", 2, timeout_ms=80)
            waited = time.monotonic() - started
            return waited, server.metrics.snapshot()

    waited, counters = asyncio.run(main())
    assert waited < 0.35  # failed on the deadline, not on batch completion
    assert counters["deadline_exceeded"] == 1
    assert counters["completed"] == 0


def test_late_request_never_poisons_its_batch():
    index = _build()
    want = _key(index.bulk_knn(["abcd"], 3))
    original = index.bulk_knn

    def slow_bulk(queries, k):
        time.sleep(0.25)
        return original(queries, k)

    index.bulk_knn = slow_bulk

    async def main():
        async with IndexServer(index, _config(window_ms=5.0)) as server:
            impatient = asyncio.create_task(
                server.knn("abcd", 3, timeout_ms=50)
            )
            patient = asyncio.create_task(server.knn("abcd", 3))
            done = await asyncio.gather(impatient, patient, return_exceptions=True)
            return done, server.metrics.snapshot()

    (impatient, patient), counters = asyncio.run(main())
    assert isinstance(impatient, DeadlineExceeded)
    assert _key([patient]) == want  # the batch still ran, bit-identical
    assert counters["deadline_exceeded"] == 1
    assert counters["completed"] == 1


def test_expired_request_is_failed_before_the_bulk_call():
    index = _build()
    calls = []
    original = index.bulk_knn

    def counting_bulk(queries, k):
        calls.append(len(queries))
        return original(queries, k)

    index.bulk_knn = counting_bulk

    async def main():
        # window much longer than the deadline: the request expires in
        # the queue and must be receipted without running any bulk call
        async with IndexServer(index, _config(window_ms=150.0)) as server:
            with pytest.raises(DeadlineExceeded):
                await server.knn("abc", 2, timeout_ms=10)
            return server.metrics.snapshot()

    counters = asyncio.run(main())
    assert counters["deadline_exceeded"] == 1
    assert calls == []  # nothing executed for an already-dead request


def test_bounded_admission_sheds_with_loud_receipts():
    index = _build()
    queries = _corpus(n=12, seed=17)

    async def main():
        config = _config(window_ms=40.0, queue_max=3)
        async with IndexServer(index, config) as server:
            outcomes = await asyncio.gather(
                *(server.knn(q, 3) for q in queries), return_exceptions=True
            )
            return outcomes, server.metrics.snapshot()

    outcomes, counters = asyncio.run(main())
    shed = [o for o in outcomes if isinstance(o, ServerOverloaded)]
    answered = [o for o in outcomes if not isinstance(o, BaseException)]
    assert len(shed) == len(queries) - 3  # exactly the overflow was shed
    assert len(answered) == 3
    assert counters["shed"] == len(shed)
    assert counters["completed"] == len(answered)
    # answered requests are still bit-identical to direct calls
    direct = {q: _key(index.bulk_knn([q], 3))[0] for q in queries}
    for q, outcome in zip(queries, outcomes):
        if not isinstance(outcome, BaseException):
            assert _key([outcome])[0] == direct[q]


def test_invalid_parameters_fail_fast_without_enqueueing():
    index = _build()

    async def main():
        async with IndexServer(index, _config()) as server:
            with pytest.raises(ValueError, match="k must be"):
                await server.knn("abc", 0)
            with pytest.raises(ValueError, match="radius must be"):
                await server.range_search("abc", -1.0)
            return server.metrics.snapshot()

    counters = asyncio.run(main())
    assert counters["submitted"] == 0


def test_drain_flushes_queued_requests_without_window_waits():
    index = _build()
    want = _key(index.bulk_knn(["abc"], 2))

    async def main():
        # a 10-second window would stall this request for 10s -- drain
        # must flush it immediately instead
        server = IndexServer(index, _config(window_ms=10_000.0))
        await server.start()
        pending = asyncio.create_task(server.knn("abc", 2))
        await asyncio.sleep(0.05)  # let it enqueue
        started = time.monotonic()
        await server.drain()
        drained_in = time.monotonic() - started
        return await pending, drained_in

    result, drained_in = asyncio.run(main())
    assert _key([result]) == want
    assert drained_in < 5.0  # nowhere near the 10s window


def test_submit_after_drain_is_refused():
    index = _build()

    async def main():
        server = IndexServer(index, _config())
        await server.start()
        await server.drain()
        with pytest.raises(ServerClosed):
            await server.knn("abc", 2)

    asyncio.run(main())


def test_batch_execution_failure_fails_the_whole_group_loudly():
    index = _build()

    def broken_bulk(queries, k):
        raise RuntimeError("kernel exploded")

    index.bulk_knn = broken_bulk

    async def main():
        async with IndexServer(index, _config(window_ms=5.0)) as server:
            outcomes = await asyncio.gather(
                server.knn("abc", 2),
                server.knn("abcd", 2),
                return_exceptions=True,
            )
            return outcomes, server.metrics.snapshot()

    outcomes, counters = asyncio.run(main())
    assert all(isinstance(o, ServeError) for o in outcomes)
    assert all("kernel exploded" in str(o) for o in outcomes)
    assert counters["failed"] == 2
    assert counters["completed"] == 0


def test_breaker_trips_on_consecutive_degraded_batches_and_recovers():
    index = _build()
    original = index.bulk_knn
    degrade = {"on": True}

    def degraded_bulk(queries, k):
        out = original(queries, k)
        if degrade["on"]:
            index.last_degradation = {"pool_timeouts": 1}
        return out

    index.bulk_knn = degraded_bulk

    async def main():
        config = _config(window_ms=1.0, breaker_after=2)
        async with IndexServer(index, config) as server:
            await server.knn("abc", 2)
            assert not server.breaker.tripped
            await server.knn("abcd", 2)
            health = server.health()
            assert health["breaker"]["tripped"]
            assert health["effective_window_ms"] == pytest.approx(0.5)
            assert health["effective_queue_max"] == config.queue_max // 2
            # one clean batch closes the breaker and restores the limits
            degrade["on"] = False
            index.last_degradation = {}
            await server.knn("abcde", 2)
            recovered = server.health()
            assert not recovered["breaker"]["tripped"]
            assert recovered["effective_window_ms"] == pytest.approx(1.0)
            return server.metrics.snapshot()

    counters = asyncio.run(main())
    assert counters["degraded_batches"] == 2
    assert counters["breaker_trips"] == 1


def test_metrics_ledger_balances():
    index = _build()
    queries = _corpus(n=10, seed=31)

    async def main():
        config = _config(window_ms=10.0, queue_max=4)
        async with IndexServer(index, config) as server:
            await asyncio.gather(
                *(server.knn(q, 3) for q in queries), return_exceptions=True
            )
            return server.metrics.snapshot()

    counters = asyncio.run(main())
    assert counters["submitted"] == len(queries)
    assert counters["submitted"] == (
        counters["completed"]
        + counters["shed"]
        + counters["deadline_exceeded"]
        + counters["failed"]
    )


def test_health_degradation_interval_reports_once():
    index = _build()

    async def main():
        async with IndexServer(index, _config()) as server:
            server.metrics.degradation_interval()  # settle the baseline
            DEGRADATION.record("publish_failures")
            first = server.health()
            second = server.health()
            return first, second

    first, second = asyncio.run(main())
    assert first["degradation_interval"].get("publish_failures") == 1
    assert "publish_failures" not in second["degradation_interval"]


def test_warm_start_saves_then_loads_artifacts(tmp_path):
    words = _corpus(n=80, seed=13)
    distance = get_distance("levenshtein")
    reference = LaesaIndex(words, distance, n_pivots=4, rng=random.Random(1))
    queries = _corpus(n=10, seed=41)
    want = _key(reference.bulk_knn(queries, 3))

    async def roundtrip():
        server = IndexServer.warm_start(
            LaesaIndex,
            words,
            distance,
            tmp_path,
            config=_config(),
            n_pivots=4,
            rng=random.Random(1),
        )
        build_calls = server.index._counter.calls
        async with server:
            return build_calls, await asyncio.gather(
                *(server.knn(q, 3) for q in queries)
            )

    first_calls, first = asyncio.run(roundtrip())
    assert _key(first) == want
    assert first_calls > 0  # cold build computed distances...
    assert any(tmp_path.iterdir())  # ...and left artifacts behind

    second_calls, second = asyncio.run(roundtrip())
    assert _key(second) == want
    # the restart served from artifacts: the load cost zero evaluations
    assert second_calls == 0
