"""Serve-layer chaos suite.

The acceptance invariant, under every injected fault: an accepted
request either returns results **bit-identical** to a direct bulk call
on the same index, or fails **loudly** (``DeadlineExceeded`` /
``ServerOverloaded``) within its deadline -- no hangs, no silent drops,
no cross-request contamination.  Engine-level faults (crashed / hung /
SIGKILLed pool workers) additionally exercise the degradation ladder
*underneath* the serving tier: the server must keep answering
identically while the engine walks its rungs.
"""

import asyncio
import os
import random
import signal
import threading
import time

import pytest

import repro.batch.engine as engine
import repro.batch.faults as faults
import repro.batch.runtime as runtime
from repro.core import get_distance
from repro.index import ExhaustiveIndex, LaesaIndex
from repro.serve import (
    DeadlineExceeded,
    IndexServer,
    ServeConfig,
    ServerOverloaded,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.batch.runtime.DegradedExecutionWarning"
)


def _corpus(n=240, seed=23):
    rng = random.Random(seed)
    return [
        "".join(rng.choice("abcdefgh") for _ in range(rng.randint(3, 14)))
        for _ in range(n)
    ]


def _key(per_query):
    return [
        ([(r.index, r.distance) for r in results], stats.distance_computations)
        for results, stats in per_query
    ]


def _arm(monkeypatch, spec, timeout="2", retries="1", min_pairs="20"):
    monkeypatch.setenv("REPRO_FAULTS", spec)
    monkeypatch.setenv("REPRO_POOL_TIMEOUT", timeout)
    monkeypatch.setenv("REPRO_POOL_RETRIES", retries)
    monkeypatch.setenv("REPRO_MIN_PAIRS_PER_WORKER", min_pairs)
    # "auto" only shards on multi-core hosts; chaos must fan out anywhere
    monkeypatch.setattr(engine, "_cpu_count", lambda: 4)
    faults._PLAN_CACHE = None


def _serve(index, queries, k=3, config=None, timeout_ms=None):
    """Serve *queries* concurrently, returning outcome per query (a
    result tuple or the raised serving exception)."""
    config = config or ServeConfig(window_ms=10.0)

    async def main():
        async with IndexServer(index, config) as server:
            outcomes = await asyncio.gather(
                *(
                    server.knn(q, k, timeout_ms=timeout_ms)
                    for q in queries
                ),
                return_exceptions=True,
            )
            return outcomes, server.metrics.snapshot()

    return asyncio.run(main())


def test_serve_shed_fault_sheds_every_submission_loudly(monkeypatch):
    """An armed ``serve_shed`` turns every submission into a fast, loud
    ``ServerOverloaded`` -- nothing queues, nothing hangs."""
    index = LaesaIndex(
        _corpus(120), get_distance("levenshtein"), n_pivots=4,
        rng=random.Random(1),
    )
    monkeypatch.setenv("REPRO_FAULTS", "serve_shed")
    faults._PLAN_CACHE = None
    started = time.monotonic()
    outcomes, counters = _serve(index, _corpus(30, seed=9))
    elapsed = time.monotonic() - started
    assert all(isinstance(o, ServerOverloaded) for o in outcomes)
    assert counters["shed"] == 30
    assert counters["batches"] == 0  # nothing was admitted, nothing ran
    assert elapsed < 10.0


def test_serve_deadline_fault_fails_some_requests_never_their_batch(
    monkeypatch,
):
    """A probabilistic ``serve_deadline`` kills individual requests at
    batch assembly; survivors in the *same* window still get answers
    bit-identical to a direct bulk call."""
    index = LaesaIndex(
        _corpus(120), get_distance("levenshtein"), n_pivots=4,
        rng=random.Random(1),
    )
    queries = _corpus(40, seed=31)
    direct = {q: _key(index.bulk_knn([q], 3))[0] for q in queries}
    monkeypatch.setenv("REPRO_FAULTS", "serve_deadline:p=0.5,seed=3")
    faults._PLAN_CACHE = None
    outcomes, counters = _serve(index, queries)
    failed = sum(isinstance(o, DeadlineExceeded) for o in outcomes)
    survived = 0
    for q, outcome in zip(queries, outcomes):
        if isinstance(outcome, DeadlineExceeded):
            continue
        assert not isinstance(outcome, BaseException), outcome
        assert _key([outcome])[0] == direct[q]
        survived += 1
    assert failed > 0 and survived > 0  # p=0.5 over 40 draws hits both
    assert counters["deadline_exceeded"] == failed
    assert counters["completed"] == survived


def test_serve_slow_batch_deadline_fires_on_time(monkeypatch):
    """A wedged batch (``serve_slow_batch``) cannot hold clients past
    their deadline: the waiter fails on schedule even though the bulk
    call is still sleeping."""
    index = LaesaIndex(
        _corpus(120), get_distance("levenshtein"), n_pivots=4,
        rng=random.Random(1),
    )
    monkeypatch.setenv("REPRO_FAULTS", "serve_slow_batch:s=0.5")
    faults._PLAN_CACHE = None
    started = time.monotonic()
    outcomes, counters = _serve(
        index, _corpus(8, seed=5), timeout_ms=100,
        config=ServeConfig(window_ms=2.0),
    )
    elapsed = time.monotonic() - started
    assert all(isinstance(o, DeadlineExceeded) for o in outcomes)
    assert counters["deadline_exceeded"] == 8
    # waiters failed at ~100ms; only the drain waited for the sleeper
    assert elapsed < 5.0


def test_one_slow_batch_does_not_poison_later_requests(monkeypatch):
    """``serve_slow_batch:once``: the first batch wedges (its client
    deadline fires), the next batch runs clean and answers
    bit-identically -- no contamination across batches."""
    index = LaesaIndex(
        _corpus(120), get_distance("levenshtein"), n_pivots=4,
        rng=random.Random(1),
    )
    want = _key(index.bulk_knn(["abcd"], 3))
    monkeypatch.setenv("REPRO_FAULTS", "serve_slow_batch:once:s=0.4")
    faults._PLAN_CACHE = None

    async def main():
        config = ServeConfig(window_ms=2.0)
        async with IndexServer(index, config) as server:
            with pytest.raises(DeadlineExceeded):
                await server.knn("abcd", 3, timeout_ms=80)
            # the next request rides a fresh batch: the once-fault has
            # burned out, so it completes and matches the direct call
            return await server.knn("abcd", 3, timeout_ms=5_000)

    result = asyncio.run(main())
    assert _key([result]) == want


@pytest.mark.parametrize(
    "spec",
    [
        "worker_crash:p=0.2,seed=12",
        "worker_hang:p=0.1:s=30,seed=12",
    ],
)
def test_served_results_survive_engine_faults(monkeypatch, spec):
    """Crashed / hung pool workers under the serving tier: the engine
    walks its degradation ladder, the server keeps answering, and every
    answer stays bit-identical to the no-fault serial reference."""
    items = _corpus(240)
    queries = _corpus(60, seed=404)

    # ground truth: fresh index, faults unset, sharding forced off
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.setenv("REPRO_MIN_PAIRS_PER_WORKER", str(10**9))
    reference = _key(
        ExhaustiveIndex(items, "levenshtein").bulk_knn(queries, 3)
    )
    monkeypatch.delenv("REPRO_MIN_PAIRS_PER_WORKER", raising=False)
    runtime.get_runtime().shutdown()

    _arm(monkeypatch, spec)
    index = ExhaustiveIndex(items, "levenshtein")
    outcomes, counters = _serve(
        index, queries, config=ServeConfig(window_ms=10.0, max_batch=16)
    )
    assert not any(isinstance(o, BaseException) for o in outcomes)
    assert _key(outcomes) == reference
    assert counters["completed"] == len(queries)
    # the ladder really was walked, and the server saw it
    assert counters["degraded_batches"] > 0


def test_sigkill_pool_worker_mid_served_batch(monkeypatch):
    """SIGKILL a live pool worker while served batches are in flight;
    every request must still complete bit-identically."""
    items = _corpus(240)
    queries = _corpus(60, seed=33)

    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.setenv("REPRO_MIN_PAIRS_PER_WORKER", str(10**9))
    reference = _key(
        ExhaustiveIndex(items, "levenshtein").bulk_knn(queries, 3)
    )
    monkeypatch.setenv("REPRO_MIN_PAIRS_PER_WORKER", "20")
    monkeypatch.setenv("REPRO_POOL_TIMEOUT", "2")
    monkeypatch.setattr(engine, "_cpu_count", lambda: 4)
    rt = runtime.get_runtime()
    rt.shutdown()  # start from no pool so the killer sees the fresh one

    killed = threading.Event()
    stop = threading.Event()

    def killer():
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline and not stop.is_set():
            pool = rt._pool
            procs = list(getattr(pool, "_pool", None) or []) if pool else []
            if procs:
                try:
                    os.kill(procs[0].pid, signal.SIGKILL)
                    killed.set()
                    return
                except (ProcessLookupError, AttributeError):
                    pass
            time.sleep(0.001)

    thread = threading.Thread(target=killer, daemon=True)
    thread.start()
    index = ExhaustiveIndex(items, "levenshtein")
    outcomes, counters = _serve(
        index, queries, config=ServeConfig(window_ms=10.0, max_batch=16)
    )
    stop.set()
    thread.join(20)
    assert killed.is_set(), "killer never saw a pool worker to SIGKILL"
    assert not any(isinstance(o, BaseException) for o in outcomes)
    assert _key(outcomes) == reference
    assert counters["completed"] == len(queries)
