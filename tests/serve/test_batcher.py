"""Unit tests of the coalescing queue entries and grouping rules."""

import asyncio
from collections import deque

from repro.serve import PendingRequest, take_groups


def _req(kind, param, query, loop):
    return PendingRequest(
        kind=kind,
        param=float(param),
        query=query,
        deadline=None,
        future=loop.create_future(),
        enqueued=0.0,
    )


def _with_loop(fn):
    async def runner():
        return fn(asyncio.get_running_loop())

    return asyncio.run(runner())


def test_groups_are_homogeneous_and_fifo():
    def body(loop):
        queue = deque(
            [
                _req("knn", 3, "a", loop),
                _req("knn", 5, "b", loop),
                _req("knn", 3, "c", loop),
                _req("range", 3, "d", loop),
            ]
        )
        groups = take_groups(queue, max_batch=10)
        shapes = [[(r.kind, r.param, r.query) for r in g] for g in groups]
        assert shapes == [
            [("knn", 3.0, "a"), ("knn", 3.0, "c")],  # same k coalesce
            [("knn", 5.0, "b")],  # different k: own bulk call
            [("range", 3.0, "d")],  # same param, different op: own call
        ]
        assert not queue

    _with_loop(body)


def test_max_batch_limits_the_drain_not_the_queue():
    def body(loop):
        queue = deque(_req("knn", 3, i, loop) for i in range(7))
        groups = take_groups(queue, max_batch=4)
        assert [len(g) for g in groups] == [4]
        assert [r.query for r in groups[0]] == [0, 1, 2, 3]
        assert [r.query for r in queue] == [4, 5, 6]  # left for next round

    _with_loop(body)


def test_empty_queue_yields_no_groups():
    def body(loop):
        queue = deque()
        assert take_groups(queue, max_batch=8) == []

    _with_loop(body)


def test_group_key_distinguishes_kind_and_param():
    def body(loop):
        knn = _req("knn", 2, "q", loop)
        rng = _req("range", 2, "q", loop)
        assert knn.group_key == ("knn", 2.0)
        assert rng.group_key == ("range", 2.0)
        assert knn.group_key != rng.group_key

    _with_loop(body)
