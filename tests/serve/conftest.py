"""Shared isolation for the serve suite: every test leaves no armed
faults, no tripped runtime pool, and no published shared-memory
segments behind (the same discipline as the batch chaos suite)."""

import pytest

import repro.batch.faults as faults
import repro.batch.runtime as runtime


@pytest.fixture(autouse=True)
def serve_isolation():
    yield
    faults._PLAN_CACHE = None
    runtime.get_runtime().shutdown()
