"""Unit tests of the serving tier's deadline/backpressure policy and
config -- no event loop, no index."""

import pytest

from repro.serve import (
    CircuitBreaker,
    ServeConfig,
    compute_deadline,
    effective_queue_max,
    effective_window_ms,
    remaining_seconds,
)


class TestDeadlines:
    def test_explicit_timeout_wins_over_default(self):
        assert compute_deadline(100.0, 500.0, now=10.0) == pytest.approx(10.1)

    def test_default_applies_when_no_explicit_timeout(self):
        assert compute_deadline(None, 500.0, now=1.0) == pytest.approx(1.5)

    def test_no_deadline_at_all(self):
        assert compute_deadline(None, None, now=0.0) is None

    def test_remaining_counts_down(self):
        assert remaining_seconds(10.0, now=9.25) == pytest.approx(0.75)

    def test_remaining_clamps_at_zero(self):
        assert remaining_seconds(5.0, now=7.0) == 0.0

    def test_remaining_none_for_deadline_less(self):
        assert remaining_seconds(None, now=123.0) is None

    def test_deadline_uses_monotonic_now_when_unspecified(self):
        import time

        before = time.monotonic()
        deadline = compute_deadline(1000.0, None)
        after = time.monotonic()
        assert before + 1.0 <= deadline <= after + 1.0


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_degraded(self):
        breaker = CircuitBreaker(3)
        assert not breaker.record_batch(True)
        assert not breaker.record_batch(True)
        assert not breaker.tripped
        assert breaker.record_batch(True)  # the tripping batch
        assert breaker.tripped
        assert breaker.trips == 1

    def test_clean_batch_resets_the_run(self):
        breaker = CircuitBreaker(2)
        breaker.record_batch(True)
        breaker.record_batch(False)
        breaker.record_batch(True)
        assert not breaker.tripped  # the run never reached 2

    def test_recovers_on_clean_batch_and_can_retrip(self):
        breaker = CircuitBreaker(2)
        breaker.record_batch(True)
        assert breaker.record_batch(True)
        assert breaker.tripped
        breaker.record_batch(False)
        assert not breaker.tripped
        breaker.record_batch(True)
        assert breaker.record_batch(True)
        assert breaker.trips == 2

    def test_record_batch_reports_only_the_transition(self):
        breaker = CircuitBreaker(1)
        assert breaker.record_batch(True)
        assert not breaker.record_batch(True)  # already open
        assert breaker.trips == 1

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(0)


class TestEffectiveLimits:
    def test_window_halves_while_tripped(self):
        breaker = CircuitBreaker(1)
        assert effective_window_ms(4.0, breaker) == 4.0
        breaker.record_batch(True)
        assert effective_window_ms(4.0, breaker) == 2.0

    def test_queue_bound_halves_but_never_below_one(self):
        breaker = CircuitBreaker(1)
        breaker.record_batch(True)
        assert effective_queue_max(100, breaker) == 50
        assert effective_queue_max(1, breaker) == 1

    def test_limits_snap_back_on_recovery(self):
        breaker = CircuitBreaker(1)
        breaker.record_batch(True)
        breaker.record_batch(False)
        assert effective_window_ms(4.0, breaker) == 4.0
        assert effective_queue_max(100, breaker) == 100


class TestServeConfig:
    def test_defaults(self):
        config = ServeConfig()
        assert config.window_ms == 2.0
        assert config.max_batch == 64
        assert config.queue_max == 1024
        assert config.default_deadline_ms is None
        assert config.breaker_after == 3
        assert config.max_inflight == 1
        assert config.dispose_runtime_on_drain is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_ms": -1.0},
            {"max_batch": 0},
            {"queue_max": 0},
            {"breaker_after": 0},
            {"max_inflight": 0},
            {"default_deadline_ms": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_from_env_reads_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WINDOW_MS", "7.5")
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "16")
        monkeypatch.setenv("REPRO_SERVE_QUEUE_MAX", "32")
        monkeypatch.setenv("REPRO_SERVE_DEADLINE_MS", "250")
        monkeypatch.setenv("REPRO_SERVE_BREAKER_AFTER", "5")
        monkeypatch.setenv("REPRO_SERVE_MAX_INFLIGHT", "2")
        config = ServeConfig.from_env()
        assert config.window_ms == 7.5
        assert config.max_batch == 16
        assert config.queue_max == 32
        assert config.default_deadline_ms == 250.0
        assert config.breaker_after == 5
        assert config.max_inflight == 2

    def test_from_env_defaults_when_unset(self, monkeypatch):
        for name in (
            "REPRO_SERVE_WINDOW_MS",
            "REPRO_SERVE_MAX_BATCH",
            "REPRO_SERVE_QUEUE_MAX",
            "REPRO_SERVE_DEADLINE_MS",
            "REPRO_SERVE_BREAKER_AFTER",
            "REPRO_SERVE_MAX_INFLIGHT",
        ):
            monkeypatch.delenv(name, raising=False)
        assert ServeConfig.from_env() == ServeConfig()

    def test_from_env_clamps_typod_deployments(self, monkeypatch):
        """A misconfigured environment must still produce a server that
        comes up -- out-of-range values clamp, they don't crash."""
        monkeypatch.setenv("REPRO_SERVE_WINDOW_MS", "-3")
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "0")
        monkeypatch.setenv("REPRO_SERVE_QUEUE_MAX", "-10")
        monkeypatch.setenv("REPRO_SERVE_DEADLINE_MS", "-5")
        monkeypatch.setenv("REPRO_SERVE_BREAKER_AFTER", "0")
        monkeypatch.setenv("REPRO_SERVE_MAX_INFLIGHT", "0")
        config = ServeConfig.from_env()
        assert config.window_ms == 0.0
        assert config.max_batch == 1
        assert config.queue_max == 1
        assert config.default_deadline_ms is None
        assert config.breaker_after == 1
        assert config.max_inflight == 1
