"""Sharded chaos suite: scatters under injected faults stay
bit-identical.

Each test computes a serial-scatter reference (faults unset, parallel
scatter disabled), then re-runs the same workload with a fault armed --
shard worker tasks raising, engine workers crashing or hanging, a live
pool worker SIGKILLed mid-scatter, the gather order skewed -- and
asserts the merged answers (neighbours, distances AND per-query
computation counts) never change; only the degradation counters and the
``IndexServer`` metrics may move.
"""

import asyncio
import os
import signal
import threading
import time
import warnings

import pytest

import repro.batch.engine as engine
import repro.batch.faults as faults
import repro.batch.runtime as runtime
from repro.batch import DEGRADATION, DegradedExecutionWarning
from repro.core.levenshtein import levenshtein_distance
from repro.shard import ShardedIndex

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.batch.runtime.DegradedExecutionWarning"
)


def _word_corpus(n=160, seed=23):
    import random

    rng = random.Random(seed)
    return [
        "".join(rng.choice("abcdefgh") for _ in range(rng.randint(3, 14)))
        for _ in range(n)
    ]


def _results_key(per_query):
    return [
        (
            [(r.index, r.distance) for r in results],
            stats.distance_computations,
        )
        for results, stats in per_query
    ]


def _build(items):
    return ShardedIndex(
        items,
        levenshtein_distance,
        shards=4,
        structure="laesa",
        structure_params={"n_pivots": 4},
    )


def _drive(index, queries):
    return (
        _results_key(index.bulk_knn(queries, 3)),
        _results_key(index.bulk_range_search(queries, 3.0)),
    )


def _serial_reference(monkeypatch, items, queries):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.setenv("REPRO_SHARD_PARALLEL", "0")
    out = _drive(_build(items), queries)
    monkeypatch.delenv("REPRO_SHARD_PARALLEL", raising=False)
    return out


def _arm(monkeypatch, spec, timeout="2", retries="1", min_pairs="20"):
    monkeypatch.setenv("REPRO_FAULTS", spec)
    monkeypatch.setenv("REPRO_POOL_TIMEOUT", timeout)
    monkeypatch.setenv("REPRO_POOL_RETRIES", retries)
    monkeypatch.setenv("REPRO_MIN_PAIRS_PER_WORKER", min_pairs)
    monkeypatch.setattr(engine, "_cpu_count", lambda: 4)
    faults._PLAN_CACHE = None
    # the armed spec must reach the pool workers' environment
    runtime.get_runtime().shutdown()


@pytest.fixture(autouse=True)
def chaos_isolation(monkeypatch):
    yield
    faults._PLAN_CACHE = None
    runtime.get_runtime().shutdown()


def test_shard_worker_fail_falls_back_to_master(monkeypatch):
    """Every shard task raising on the pool walks the scatter down to
    the master's serial rung: answers identical, shard_fallbacks > 0,
    and the degradation is announced, not silent."""
    items = _word_corpus()
    queries = _word_corpus(n=40, seed=404)
    want = _serial_reference(monkeypatch, items, queries)
    _arm(monkeypatch, "shard_worker_fail:p=1.0,seed=3")
    before = DEGRADATION.snapshot()["shard_fallbacks"]
    index = _build(items)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        got = _drive(index, queries)
    assert got == want
    assert DEGRADATION.snapshot()["shard_fallbacks"] > before
    assert any(
        issubclass(w.category, DegradedExecutionWarning) for w in caught
    )
    assert index.last_degradation.get("shard_fallbacks")


def test_partial_shard_worker_fail_reruns_only_failed_shards(monkeypatch):
    """A probabilistic fault leaves some shards succeeding on the pool;
    the master re-runs only the failed ones and the merge still matches."""
    items = _word_corpus(n=200)
    queries = _word_corpus(n=60, seed=91)
    want = _serial_reference(monkeypatch, items, queries)
    _arm(monkeypatch, "shard_worker_fail:p=0.3,seed=7")
    assert _drive(_build(items), queries) == want


def test_shard_merge_skew_never_changes_answers(monkeypatch):
    """The gather fed shard lists in reversed order must merge to the
    same canonical answer -- scalar and bulk, knn and range."""
    items = _word_corpus()
    queries = _word_corpus(n=30, seed=55)
    want = _serial_reference(monkeypatch, items, queries)
    _arm(monkeypatch, "shard_merge_skew:p=1.0,seed=5")
    index = _build(items)
    assert _drive(index, queries) == want
    flat, _stats = index.knn(queries[0], 5)
    keys = [(r.distance, r.index) for r in flat]
    assert keys == sorted(keys)


def test_scatter_survives_engine_worker_crashes(monkeypatch):
    """The generic worker_crash site fires inside shard tasks too (they
    run on the same supervised pool); the scatter must degrade through
    the ladder and still merge bit-identically."""
    items = _word_corpus(n=200)
    queries = _word_corpus(n=50, seed=12)
    want = _serial_reference(monkeypatch, items, queries)
    _arm(monkeypatch, "worker_crash:p=0.2,seed=12")
    assert _drive(_build(items), queries) == want


def test_scatter_survives_worker_hangs(monkeypatch):
    """Wedged shard tasks trip the pool deadline and fall back serially
    instead of hanging the scatter."""
    items = _word_corpus(n=160)
    queries = _word_corpus(n=30, seed=81)
    want = _serial_reference(monkeypatch, items, queries)
    _arm(monkeypatch, "worker_hang:p=1:s=60,seed=3", timeout="1", retries="0")
    before = DEGRADATION.snapshot()["pool_timeouts"]
    assert _drive(_build(items), queries) == want
    assert DEGRADATION.snapshot()["pool_timeouts"] > before


def test_sigkill_one_worker_mid_scatter(monkeypatch):
    """SIGKILL a live pool worker while a sharded bulk_knn is in flight:
    the merged answer must not change and the next scatter runs on a
    healthy respawned pool."""
    items = _word_corpus(n=240)
    queries = _word_corpus(n=80, seed=33)
    want = _serial_reference(monkeypatch, items, queries)
    monkeypatch.setenv("REPRO_MIN_PAIRS_PER_WORKER", "20")
    monkeypatch.setenv("REPRO_POOL_TIMEOUT", "2")
    monkeypatch.setattr(engine, "_cpu_count", lambda: 4)
    rt = runtime.get_runtime()
    rt.shutdown()

    killed = threading.Event()

    def killer():
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline and not killed.is_set():
            pool = rt._pool
            procs = list(getattr(pool, "_pool", None) or []) if pool else []
            if procs:
                try:
                    os.kill(procs[0].pid, signal.SIGKILL)
                    killed.set()
                    return
                except (ProcessLookupError, AttributeError):
                    pass
            time.sleep(0.001)

    thread = threading.Thread(target=killer, daemon=True)
    thread.start()
    index = _build(items)
    got = _drive(index, queries)
    thread.join(20)
    assert killed.is_set(), "killer never saw a pool worker to SIGKILL"
    assert got == want
    assert _drive(index, queries) == want
    pool = rt._pool
    if pool is not None:
        assert all(p.is_alive() for p in pool._pool)


def test_served_sharded_queries_under_faults(monkeypatch):
    """IndexServer over a ShardedIndex with shard workers failing: every
    served answer matches the serial reference and the server's
    degraded_batches metric records the turbulence."""
    from repro.serve import IndexServer, ServeConfig

    items = _word_corpus()
    queries = _word_corpus(n=12, seed=66)
    monkeypatch.setenv("REPRO_SHARD_PARALLEL", "0")
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    reference = _results_key(_build(items).bulk_knn(queries, 3))
    monkeypatch.delenv("REPRO_SHARD_PARALLEL", raising=False)

    _arm(monkeypatch, "shard_worker_fail:p=1.0,seed=3")
    index = _build(items)
    config = ServeConfig(window_ms=1.0, dispose_runtime_on_drain=False)

    async def drive():
        async with IndexServer(index, config=config) as server:
            answers = await asyncio.gather(
                *(server.knn(q, 3) for q in queries)
            )
            return answers, server.metrics.snapshot()

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        answers, metrics = asyncio.run(drive())
    got = [
        ([(r.index, r.distance) for r in results], stats.distance_computations)
        for results, stats in answers
    ]
    assert got == reference
    assert metrics["degraded_batches"] > 0
