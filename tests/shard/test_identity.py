"""The sharded tier's core contract: bit-identity with the unsharded
index.

Every structure x regime x query-mode cell asserts the sharded answers
(neighbours AND distances, in canonical order) equal the equivalent
unsharded index's; parallel and serial scatters additionally agree on
per-query ``distance_computations`` (the deterministic sum of what each
shard demanded), the exhaustive structure's counts equal the unsharded
count outright (every item is evaluated exactly once either way), and a
single-shard layout is the unsharded index -- counts included.
"""

import random

import pytest

from repro.batch import runtime
from repro.core.levenshtein import levenshtein_distance as lev
from repro.index import (
    AesaIndex,
    BKTreeIndex,
    ExhaustiveIndex,
    LaesaIndex,
    VPTreeIndex,
)
from repro.shard import ShardedIndex


def _corpus(alphabet, lengths, n, seed):
    rng = random.Random(seed)
    lo, hi = lengths
    return [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(lo, hi)))
        for _ in range(n)
    ]


REGIMES = {
    "word": lambda n, seed: _corpus("abcdefghij", (3, 12), n, seed),
    "dna": lambda n, seed: _corpus("acgt", (15, 40), n, seed),
    "digit": lambda n, seed: _corpus("01234567", (20, 50), n, seed),
}

STRUCTURES = {
    "exhaustive": (ExhaustiveIndex, {}, {}),
    "laesa": (LaesaIndex, {"n_pivots": 6}, {"n_pivots": 6}),
    "aesa": (AesaIndex, {}, {}),
    "bktree": (BKTreeIndex, {}, {}),
    "vptree": (VPTreeIndex, {}, {}),
}


def _results(per_query):
    return [[(r.index, r.distance) for r in results] for results, _ in per_query]


def _counts(per_query):
    return [stats.distance_computations for _, stats in per_query]


@pytest.fixture(autouse=True)
def _clean_runtime():
    yield
    runtime.get_runtime().shutdown()


@pytest.mark.parametrize("regime", sorted(REGIMES))
@pytest.mark.parametrize("structure", sorted(STRUCTURES))
def test_sharded_matches_unsharded(regime, structure):
    cls, flat_params, shard_params = STRUCTURES[structure]
    items = REGIMES[regime](96, seed=11)
    queries = REGIMES[regime](16, seed=404)
    radius = 3.0 if regime == "word" else 12.0

    flat = cls(items, lev, **flat_params)
    sharded = ShardedIndex(
        items,
        lev,
        shards=3,
        structure=structure,
        structure_params=shard_params,
    )
    assert sharded.n_shards == 3

    flat_knn = flat.bulk_knn(queries, 5)
    shard_knn = sharded.bulk_knn(queries, 5)
    assert _results(shard_knn) == _results(flat_knn)

    flat_range = flat.bulk_range_search(queries, radius)
    shard_range = sharded.bulk_range_search(queries, radius)
    assert _results(shard_range) == _results(flat_range)

    if structure == "exhaustive":
        # n evaluations per query, sharded or not
        assert _counts(shard_knn) == _counts(flat_knn) == [96] * len(queries)


@pytest.mark.parametrize("structure", sorted(STRUCTURES))
def test_parallel_scatter_equals_serial(monkeypatch, structure):
    """The same sharded index, scattered on the pool and in the master,
    must agree bit-for-bit -- counts included."""
    cls, _flat, shard_params = STRUCTURES[structure]
    items = REGIMES["word"](120, seed=3)
    queries = REGIMES["word"](20, seed=505)

    sharded = ShardedIndex(
        items,
        lev,
        shards=4,
        structure=structure,
        structure_params=shard_params,
    )
    parallel_knn = sharded.bulk_knn(queries, 4)
    parallel_range = sharded.bulk_range_search(queries, 3.0)

    monkeypatch.setenv("REPRO_SHARD_PARALLEL", "0")
    serial_knn = sharded.bulk_knn(queries, 4)
    serial_range = sharded.bulk_range_search(queries, 3.0)

    assert _results(parallel_knn) == _results(serial_knn)
    assert _counts(parallel_knn) == _counts(serial_knn)
    assert _results(parallel_range) == _results(serial_range)
    assert _counts(parallel_range) == _counts(serial_range)


@pytest.mark.parametrize("structure", sorted(STRUCTURES))
def test_single_shard_is_the_unsharded_index(structure):
    """shards=1 is the identity layout: full bit-identity with the flat
    structure, per-query computation counts included."""
    cls, flat_params, shard_params = STRUCTURES[structure]
    items = REGIMES["dna"](80, seed=29)
    queries = REGIMES["dna"](12, seed=606)

    flat = cls(items, lev, **flat_params)
    one = ShardedIndex(
        items,
        lev,
        shards=1,
        structure=structure,
        structure_params=shard_params,
    )
    a = one.bulk_knn(queries, 3)
    b = flat.bulk_knn(queries, 3)
    assert _results(a) == _results(b)
    assert _counts(a) == _counts(b)
    ar = one.bulk_range_search(queries, 10.0)
    br = flat.bulk_range_search(queries, 10.0)
    assert _results(ar) == _results(br)
    assert _counts(ar) == _counts(br)


def test_scalar_queries_match_unsharded():
    items = REGIMES["word"](90, seed=8)
    queries = REGIMES["word"](10, seed=707)
    flat = LaesaIndex(items, lev, n_pivots=5)
    sharded = ShardedIndex(
        items,
        lev,
        shards=3,
        structure="laesa",
        structure_params={"n_pivots": 5},
    )
    for q in queries:
        a, _ = sharded.knn(q, 3)
        b, _ = flat.knn(q, 3)
        assert [(r.index, r.distance) for r in a] == [
            (r.index, r.distance) for r in b
        ]
        ar, _ = sharded.range_search(q, 3.0)
        br, _ = flat.range_search(q, 3.0)
        assert [(r.index, r.distance) for r in ar] == [
            (r.index, r.distance) for r in br
        ]


def test_k_larger_than_shard_size():
    """The global k may exceed every shard's item count; each shard
    contributes its whole slice and the merge still returns global
    top-k."""
    items = REGIMES["word"](40, seed=15)
    queries = REGIMES["word"](6, seed=808)
    flat = ExhaustiveIndex(items, lev)
    sharded = ShardedIndex(items, lev, shards=4, structure="exhaustive")
    # 40 items over 4 shards -> 10 per shard; ask for 25 neighbours
    a = sharded.bulk_knn(queries, 25)
    b = flat.bulk_knn(queries, 25)
    assert _results(a) == _results(b)


def test_auto_structure_env_defaults(monkeypatch):
    """With no explicit shard count the env knobs drive resolution and
    ``auto`` picks AESA under the gate."""
    monkeypatch.setenv("REPRO_SHARD_COUNT", "3")
    monkeypatch.setenv("REPRO_SHARD_MIN_ITEMS", "10")
    items = REGIMES["word"](60, seed=21)
    sharded = ShardedIndex(items, lev)
    assert sharded.n_shards == 3
    assert all(isinstance(s.index, AesaIndex) for s in sharded._shards)
    flat = ExhaustiveIndex(items, lev)
    queries = REGIMES["word"](8, seed=909)
    assert _results(sharded.bulk_knn(queries, 3)) == _results(
        flat.bulk_knn(queries, 3)
    )


def test_preprocessing_is_sum_of_shards():
    items = REGIMES["word"](80, seed=33)
    sharded = ShardedIndex(
        items,
        lev,
        shards=4,
        structure="laesa",
        structure_params={"n_pivots": 4},
    )
    assert sharded.preprocessing_computations == sum(
        s.index.preprocessing_computations for s in sharded._shards
    )
    assert sharded.preprocessing_computations == 4 * 4 * 20
