"""Partition layout: size balance, determinism, clamping, identity."""

import numpy as np
import pytest

from repro.shard import partition_indices, resolve_shard_count
from repro.shard.sharded import _resolve_structure


@pytest.mark.parametrize("n, shards", [(10, 1), (10, 3), (100, 4), (7, 7)])
def test_partition_is_balanced_and_covers(n, shards):
    layout = partition_indices(n, shards)
    sizes = [len(ids) for ids in layout]
    assert sum(sizes) == n
    assert max(sizes) - min(sizes) <= 1
    union = np.concatenate(layout)
    assert sorted(union.tolist()) == list(range(n))


def test_partition_slices_are_sorted_int64():
    for ids in partition_indices(50, 4, seed=9):
        assert ids.dtype == np.int64
        assert (np.diff(ids) > 0).all()


def test_partition_deterministic_under_seed():
    a = partition_indices(200, 8, seed=42)
    b = partition_indices(200, 8, seed=42)
    assert all((x == y).all() for x, y in zip(a, b))
    c = partition_indices(200, 8, seed=43)
    assert any((x != y).any() for x, y in zip(a, c))


def test_single_shard_is_identity_layout():
    (ids,) = partition_indices(64, 1, seed=123)
    assert ids.tolist() == list(range(64))


def test_partition_rejects_bad_counts():
    with pytest.raises(ValueError):
        partition_indices(10, 0)
    with pytest.raises(ValueError):
        partition_indices(3, 4)


def test_resolve_shard_count_explicit_wins(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_COUNT", "8")
    assert resolve_shard_count(1000, shards=2) == 2
    # explicit counts clamp to the corpus but ignore the min-items floor
    assert resolve_shard_count(3, shards=8) == 3


def test_resolve_shard_count_env_and_min_items(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_COUNT", "8")
    monkeypatch.setenv("REPRO_SHARD_MIN_ITEMS", "100")
    assert resolve_shard_count(1000, None) == 8
    assert resolve_shard_count(250, None) == 2
    # tiny corpora collapse to one shard instead of paying scatter cost
    assert resolve_shard_count(40, None) == 1


def test_resolve_shard_count_rejects_degenerate():
    with pytest.raises(ValueError):
        resolve_shard_count(0, None)
    with pytest.raises(ValueError):
        resolve_shard_count(10, 0)


def test_auto_structure_follows_bulk_gate(monkeypatch):
    from repro.index import AesaIndex, LaesaIndex

    monkeypatch.setenv("REPRO_AESA_BULK_MAX_ITEMS", "100")
    cls, kwargs = _resolve_structure("auto", 100, {"n_pivots": 5})
    assert cls is AesaIndex and "n_pivots" not in kwargs
    cls, kwargs = _resolve_structure("auto", 101, {"n_pivots": 5})
    assert cls is LaesaIndex and kwargs["n_pivots"] == 5


def test_laesa_default_pivots_clamp_to_shard_size():
    from repro.index import LaesaIndex

    cls, kwargs = _resolve_structure("laesa", 5, {})
    assert cls is LaesaIndex and kwargs["n_pivots"] == 5


def test_unknown_structure_rejected():
    with pytest.raises(ValueError):
        _resolve_structure("kdtree", 100, {})
