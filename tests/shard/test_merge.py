"""Property tests for the k-merge kernel.

The gather's correctness rests on one lemma: merging canonically sorted
per-shard lists with disjoint global indices reproduces the canonical
order over the union -- ties on distance broken by index, ``k`` free to
exceed any (or every) shard's hit count, and the answer independent of
the order the shard lists arrive in.  Hypothesis drives arbitrary
partitions of arbitrary result universes at the merge kernel directly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.base import SearchResult, canonical_key
from repro.shard import k_merge

# Small distance grids force heavy ties; indices are globally unique.
_distances = st.floats(
    min_value=0.0, max_value=4.0, allow_nan=False, width=16
)


@st.composite
def sharded_results(draw):
    """A universe of results with unique global indices, dealt into
    1..6 canonically sorted shard lists (some possibly empty)."""
    n = draw(st.integers(min_value=0, max_value=40))
    dists = draw(
        st.lists(_distances, min_size=n, max_size=n)
    )
    universe = [
        SearchResult(item=f"it{i}", index=i, distance=d)
        for i, d in enumerate(dists)
    ]
    n_shards = draw(st.integers(min_value=1, max_value=6))
    owner = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_shards - 1),
            min_size=n,
            max_size=n,
        )
    )
    shards = [[] for _ in range(n_shards)]
    for result, si in zip(universe, owner):
        shards[si].append(result)
    return [sorted(lst, key=canonical_key) for lst in shards]


@given(sharded_results())
@settings(max_examples=200, deadline=None)
def test_merge_reproduces_global_canonical_order(shards):
    merged = k_merge(shards)
    flat = sorted((r for lst in shards for r in lst), key=canonical_key)
    assert merged == flat


@given(sharded_results(), st.integers(min_value=0, max_value=60))
@settings(max_examples=200, deadline=None)
def test_k_truncation_is_prefix_of_full_merge(shards, k):
    """Any k -- including k exceeding every per-shard hit count or the
    whole universe -- yields exactly the first k of the full merge."""
    full = k_merge(shards)
    assert k_merge(shards, k) == full[:k]


@given(sharded_results(), st.randoms(use_true_random=False))
@settings(max_examples=200, deadline=None)
def test_merge_is_order_independent(shards, rng):
    """Unique (distance, index) keys make the merge invariant to shard
    arrival order -- the invariant the shard_merge_skew fault probes."""
    baseline = k_merge(shards)
    shuffled = list(shards)
    rng.shuffle(shuffled)
    assert k_merge(shuffled) == baseline
    assert k_merge(list(reversed(shards))) == baseline


@given(sharded_results())
@settings(max_examples=100, deadline=None)
def test_ties_across_shards_break_by_global_index(shards):
    merged = k_merge(shards)
    keys = [canonical_key(r) for r in merged]
    assert keys == sorted(keys)
    # every input result appears exactly once
    assert sorted(r.index for r in merged) == sorted(
        r.index for lst in shards for r in lst
    )


def test_empty_and_degenerate_shapes():
    assert k_merge([]) == []
    assert k_merge([[], []]) == []
    one = [SearchResult(item="a", index=0, distance=1.0)]
    assert k_merge([one, []]) == one
    assert k_merge([one], 0) == []
