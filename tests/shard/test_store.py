"""Persistence of the sharded tier: per-shard snapshots, warm starts,
and loud single-shard degradation on partial corruption."""

import asyncio
import pathlib
import warnings

import pytest

from repro.batch import runtime
from repro.core.levenshtein import levenshtein_distance
from repro.index import LaesaIndex
from repro.serve import IndexServer, ServeConfig
from repro.shard import ShardedIndex
from repro.store import ArtifactStore, load_or_build

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.batch.runtime.DegradedExecutionWarning"
)

PARAMS = {"shards": 3, "structure": "laesa", "structure_params": {"n_pivots": 4}}


def _corpus(n=90, seed=5):
    import random

    rng = random.Random(seed)
    return [
        "".join(rng.choice("abcdefgh") for _ in range(rng.randint(4, 12)))
        for _ in range(n)
    ]


@pytest.fixture(autouse=True)
def _clean_runtime():
    yield
    runtime.get_runtime().shutdown()


@pytest.fixture()
def counted():
    calls = {"n": 0}

    def distance(a, b):
        calls["n"] += 1
        return levenshtein_distance(a, b)

    distance.calls = calls
    return distance


def _results(per_query):
    return [
        ([(r.index, r.distance) for r in results], stats.distance_computations)
        for results, stats in per_query
    ]


def test_save_then_load_evaluates_no_distances(tmp_path, counted):
    items = _corpus()
    queries = _corpus(n=10, seed=99)
    store = ArtifactStore(tmp_path)
    built = load_or_build(
        ShardedIndex, items, counted, store, PARAMS, save_on_miss=True
    )
    assert counted.calls["n"] > 0
    # one snapshot per shard landed in the store
    manifests = list(pathlib.Path(tmp_path).rglob("manifest.json"))
    assert len(manifests) == PARAMS["shards"]

    counted.calls["n"] = 0
    loaded = load_or_build(ShardedIndex, items, counted, store, PARAMS)
    assert counted.calls["n"] == 0
    assert loaded.last_degradation == {}
    assert loaded.n_shards == built.n_shards
    assert _results(loaded.bulk_knn(queries, 3)) == _results(
        built.bulk_knn(queries, 3)
    )


def test_explicit_save_returns_store_root(tmp_path):
    items = _corpus(n=40)
    store = ArtifactStore(tmp_path)
    sharded = ShardedIndex(
        items, levenshtein_distance, shards=2, structure="exhaustive"
    )
    assert sharded.save(store) == store.root
    assert list(pathlib.Path(tmp_path).rglob("manifest.json"))


def test_partial_corruption_rebuilds_only_that_shard(tmp_path, counted):
    items = _corpus()
    queries = _corpus(n=10, seed=99)
    store = ArtifactStore(tmp_path)
    built = load_or_build(
        ShardedIndex, items, counted, store, PARAMS, save_on_miss=True
    )
    reference = _results(built.bulk_knn(queries, 3))
    build_calls = counted.calls["n"]

    victim = sorted(pathlib.Path(tmp_path).rglob("pivot_rows.npy"))[0]
    victim.write_bytes(b"not a pivot table")

    counted.calls["n"] = 0
    with pytest.warns(runtime.DegradedExecutionWarning, match="rebuilding"):
        rebuilt = load_or_build(ShardedIndex, items, counted, store, PARAMS)
    # exactly one shard paid its build cost again; the other two loaded free
    assert 0 < counted.calls["n"] < build_calls
    assert rebuilt.last_degradation.get("store_load_failures") == 1
    assert _results(rebuilt.bulk_knn(queries, 3)) == reference


def test_unknown_load_params_raise(tmp_path):
    store = ArtifactStore(tmp_path)
    with pytest.raises(TypeError, match="unexpected parameters"):
        load_or_build(
            ShardedIndex,
            _corpus(n=20),
            levenshtein_distance,
            store,
            {"shards": 2, "n_pivots": 4},
        )


def test_index_server_warm_starts_a_sharded_index(tmp_path, counted):
    """The serving tier accepts a ShardedIndex unchanged: warm_start
    restores every shard with zero distance evaluations and served
    answers match a direct bulk_knn."""
    items = _corpus()
    queries = _corpus(n=8, seed=77)
    store = ArtifactStore(tmp_path)
    direct = load_or_build(
        ShardedIndex, items, counted, store, PARAMS, save_on_miss=True
    )
    expected = _results(direct.bulk_knn(queries, 3))

    counted.calls["n"] = 0
    config = ServeConfig(window_ms=1.0, dispose_runtime_on_drain=False)

    async def drive():
        server = IndexServer.warm_start(
            ShardedIndex, items, counted, store, config=config, **PARAMS
        )
        assert counted.calls["n"] == 0
        assert isinstance(server.index, ShardedIndex)
        async with server:
            answers = await asyncio.gather(
                *(server.knn(q, 3) for q in queries)
            )
        return answers

    answers = asyncio.run(drive())
    got = [
        ([(r.index, r.distance) for r in results], stats.distance_computations)
        for results, stats in answers
    ]
    assert got == expected


def test_seed_changes_the_artifact_keys(tmp_path, counted):
    """A different partition seed is a different corpus layout: the
    per-shard keys miss and every shard rebuilds."""
    items = _corpus()
    store = ArtifactStore(tmp_path)
    load_or_build(ShardedIndex, items, counted, store, PARAMS, save_on_miss=True)
    counted.calls["n"] = 0
    load_or_build(
        ShardedIndex,
        items,
        counted,
        store,
        {**PARAMS, "seed": 9},
        save_on_miss=False,
    )
    assert counted.calls["n"] > 0
