"""Loaded-vs-rebuilt identity: a warm start must not change a single bit.

The artifact store changes *where* a built index comes from (mapped
read-only arrays instead of distance evaluations) but may never change a
value: neighbours, distances and per-query ``distance_computations`` of
``bulk_knn`` and ``bulk_range_search`` must be bit-identical between a
cold build and a snapshot loaded back from disk, across every index
structure and the paper's length regimes.  Runs on both kernel backends
via the CI matrix (``REPRO_JIT`` legs), like the interned-identity suite
it mirrors.
"""

import random

import pytest

from repro.core import get_distance
from repro.index import (
    AesaIndex,
    BKTreeIndex,
    ExhaustiveIndex,
    LaesaIndex,
    VPTreeIndex,
)
from repro.store import ArtifactStore

REGIMES = {
    "word": ("abcde", 1, 9),
    "dna": ("acgt", 8, 30),
    "digit": ("01234567", 20, 55),
}

STRUCTURES = {
    "exhaustive": ExhaustiveIndex,
    "aesa": AesaIndex,
    "laesa": LaesaIndex,
    "vptree": VPTreeIndex,
    "bktree": BKTreeIndex,
}


def _workload(regime, n_items=40, n_queries=10, seed=0x57E):
    alphabet, lo, hi = REGIMES[regime]
    rng = random.Random(seed)

    def word():
        return "".join(rng.choice(alphabet) for _ in range(rng.randint(lo, hi)))

    items = sorted({word() for _ in range(n_items * 2)})[:n_items]
    queries = [word() for _ in range(n_queries)]
    return items, queries


def _snapshot(results):
    return [
        (
            [(r.index, r.distance) for r in hits],
            stats.distance_computations,
        )
        for hits, stats in results
    ]


def _params(structure):
    return {"n_pivots": 4} if structure == "laesa" else {}


def _round_trip(structure, items, distance, tmp_path):
    store = ArtifactStore(tmp_path / "store")
    params = _params(structure)
    built = STRUCTURES[structure](items, distance, **params)
    built.save(store)
    loaded = STRUCTURES[structure].load(items, distance, store, **params)
    assert loaded._counter.calls == 0  # the whole point of the store
    assert (
        loaded.preprocessing_computations == built.preprocessing_computations
    )
    return built, loaded


@pytest.mark.parametrize("regime", sorted(REGIMES))
@pytest.mark.parametrize("structure", sorted(STRUCTURES))
@pytest.mark.parametrize("name", ["levenshtein", "dmax", "marzal_vidal"])
def test_bulk_knn_identical_after_round_trip(regime, structure, name, tmp_path):
    if structure == "bktree" and name != "levenshtein":
        pytest.skip("BK-tree requires an integer metric")
    items, queries = _workload(regime)
    distance = get_distance(name)
    built, loaded = _round_trip(structure, items, distance, tmp_path)
    assert _snapshot(loaded.bulk_knn(queries, 3)) == _snapshot(
        built.bulk_knn(queries, 3)
    )


@pytest.mark.parametrize("regime", sorted(REGIMES))
@pytest.mark.parametrize("structure", sorted(STRUCTURES))
@pytest.mark.parametrize("name", ["levenshtein", "dmax", "marzal_vidal"])
def test_bulk_range_identical_after_round_trip(
    regime, structure, name, tmp_path
):
    if structure == "bktree" and name != "levenshtein":
        pytest.skip("BK-tree requires an integer metric")
    items, queries = _workload(regime)
    distance = get_distance(name)
    # a radius with a few hits per query: sample some true distances
    rng = random.Random(11)
    sample = sorted(
        distance(rng.choice(items), rng.choice(items)) for _ in range(40)
    )
    radius = sample[4]
    built, loaded = _round_trip(structure, items, distance, tmp_path)
    assert _snapshot(loaded.bulk_range_search(queries, radius)) == _snapshot(
        built.bulk_range_search(queries, radius)
    )


@pytest.mark.parametrize("structure", sorted(STRUCTURES))
def test_round_trip_without_interning(structure, tmp_path, monkeypatch):
    """``REPRO_INTERN=0`` round trips too: no corpus files in the
    snapshot, raw-pair dispatch after the load, identical answers."""
    monkeypatch.setenv("REPRO_INTERN", "0")
    items, queries = _workload("word")
    distance = get_distance("levenshtein")
    built, loaded = _round_trip(structure, items, distance, tmp_path)
    assert loaded._corpus is None
    assert _snapshot(loaded.bulk_knn(queries, 3)) == _snapshot(
        built.bulk_knn(queries, 3)
    )


def test_loaded_corpus_republishes_to_shared_memory(tmp_path, monkeypatch):
    """A loaded InternedCorpus must feed the persistent worker pool
    exactly like a built one: force fan-out and compare to the built
    index's answers."""
    items, queries = _workload("digit", n_items=48, n_queries=8)
    distance = get_distance("levenshtein")
    built, loaded = _round_trip("laesa", items, distance, tmp_path)
    assert loaded._corpus is not None
    monkeypatch.setenv("REPRO_MIN_PAIRS_PER_WORKER", "1")  # pool on
    try:
        pooled = _snapshot(loaded.bulk_knn(queries, 3))
    finally:
        monkeypatch.delenv("REPRO_MIN_PAIRS_PER_WORKER")
    assert pooled == _snapshot(built.bulk_knn(queries, 3))
