"""VP-tree: real-valued metric search with median splits."""

import random

import pytest

from repro.core import get_distance
from repro.index import ExhaustiveIndex, VPTreeIndex


@pytest.mark.parametrize("name", ["levenshtein", "contextual_heuristic", "yujian_bo"])
def test_matches_exhaustive(small_word_list, name):
    distance = get_distance(name)
    exhaustive = ExhaustiveIndex(small_word_list, distance)
    tree = VPTreeIndex(small_word_list, distance, rng=random.Random(0))
    rng = random.Random(1)
    for _ in range(25):
        q = "".join(rng.choice("abcde") for _ in range(rng.randint(1, 8)))
        truth, _ = exhaustive.nearest(q)
        found, _ = tree.nearest(q)
        assert found.distance == pytest.approx(truth.distance)


def test_knn(small_word_list):
    distance = get_distance("levenshtein")
    exhaustive = ExhaustiveIndex(small_word_list, distance)
    tree = VPTreeIndex(small_word_list, distance, rng=random.Random(2))
    truths, _ = exhaustive.knn("ced", 6)
    found, _ = tree.knn("ced", 6)
    assert [r.distance for r in found] == pytest.approx(
        [r.distance for r in truths]
    )


def test_single_item():
    tree = VPTreeIndex(["solo"], get_distance("levenshtein"))
    result, _ = tree.nearest("sole")
    assert result.item == "solo"


def test_prunes(small_word_list):
    distance = get_distance("levenshtein")
    tree = VPTreeIndex(small_word_list, distance, rng=random.Random(3))
    rng = random.Random(4)
    total = 0
    queries = [
        "".join(rng.choice("abcde") for _ in range(rng.randint(2, 8)))
        for _ in range(30)
    ]
    for q in queries:
        _, stats = tree.nearest(q)
        total += stats.distance_computations
    assert total / len(queries) < len(small_word_list)


def test_preprocessing_counted(small_word_list):
    tree = VPTreeIndex(small_word_list, get_distance("levenshtein"))
    assert tree.preprocessing_computations > 0
