"""Property-based cross-index agreement on random databases and queries."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import get_distance
from repro.index import (
    AesaIndex,
    BKTreeIndex,
    ExhaustiveIndex,
    LaesaIndex,
    VPTreeIndex,
)

_word = st.text(alphabet="abc", min_size=1, max_size=6)


@given(
    st.lists(_word, min_size=2, max_size=25, unique=True),
    _word,
    st.integers(0, 6),
)
@settings(max_examples=40, deadline=None)
def test_all_indexes_agree_on_nearest(items, query, n_pivots):
    distance = get_distance("levenshtein")
    exhaustive = ExhaustiveIndex(items, distance)
    truth, _ = exhaustive.nearest(query)
    indexes = [
        LaesaIndex(items, distance, n_pivots=min(n_pivots, len(items))),
        AesaIndex(items, distance),
        BKTreeIndex(items, distance),
        VPTreeIndex(items, distance, rng=random.Random(0)),
    ]
    for index in indexes:
        found, _ = index.nearest(query)
        assert found.distance == pytest.approx(truth.distance), type(index)


@given(
    st.lists(_word, min_size=3, max_size=20, unique=True),
    _word,
)
@settings(max_examples=30, deadline=None)
def test_knn_distances_agree(items, query):
    distance = get_distance("levenshtein")
    k = min(3, len(items))
    exhaustive = ExhaustiveIndex(items, distance)
    truths, _ = exhaustive.knn(query, k)
    for make in (
        lambda: LaesaIndex(items, distance, n_pivots=min(4, len(items))),
        lambda: AesaIndex(items, distance),
        lambda: VPTreeIndex(items, distance, rng=random.Random(1)),
    ):
        found, _ = make().knn(query, k)
        assert [r.distance for r in found] == pytest.approx(
            [r.distance for r in truths]
        )


@given(st.lists(_word, min_size=2, max_size=15, unique=True))
@settings(max_examples=30, deadline=None)
def test_member_queries_find_distance_zero(items):
    distance = get_distance("contextual_heuristic")
    laesa = LaesaIndex(items, distance, n_pivots=min(3, len(items)))
    for q in items[:3]:
        found, _ = laesa.nearest(q)
        assert found.distance == 0.0
