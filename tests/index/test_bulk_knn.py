"""Batched query phases: ``bulk_knn`` must match per-query ``knn``
result-for-result and count-for-count, with auto-sharding on and off."""

import random

import pytest

import repro.batch.engine as engine
from repro.core import get_distance
from repro.index import AesaIndex, ExhaustiveIndex, LaesaIndex


@pytest.fixture(scope="module")
def words():
    gen = random.Random(0xBEEF)
    return sorted(
        {
            "".join(gen.choice("abcd") for _ in range(gen.randint(1, 9)))
            for _ in range(110)
        }
    )


@pytest.fixture(scope="module")
def queries(words):
    gen = random.Random(0xF00D)
    made = [
        "".join(gen.choice("abcde") for _ in range(gen.randint(0, 8)))
        for _ in range(25)
    ]
    return made + [words[3], words[3], words[-1]]  # members + duplicates


def _check_bulk_matches_scalar(index, queries, k):
    scalar = [index.knn(q, k) for q in queries]
    batch = index.bulk_knn(queries, k)
    assert len(batch) == len(scalar)
    for (truth, t_stats), (got, g_stats) in zip(scalar, batch):
        assert [(r.index, r.distance) for r in got] == [
            (r.index, r.distance) for r in truth
        ]
        assert (
            g_stats.distance_computations == t_stats.distance_computations
        )
        assert g_stats.elapsed_seconds >= 0.0


@pytest.mark.parametrize("name", ["levenshtein", "dmax", "contextual_heuristic"])
@pytest.mark.parametrize("n_pivots", [1, 8])
@pytest.mark.parametrize("k", [1, 4])
def test_laesa_bulk_matches_scalar(words, queries, name, n_pivots, k):
    index = LaesaIndex(words, get_distance(name), n_pivots=n_pivots)
    _check_bulk_matches_scalar(index, queries, k)


def test_laesa_zero_pivots_falls_back_to_loop(words, queries):
    index = LaesaIndex(words, get_distance("levenshtein"), n_pivots=0)
    _check_bulk_matches_scalar(index, queries, 2)


def test_laesa_bulk_empty_batch(words):
    index = LaesaIndex(words, get_distance("levenshtein"), n_pivots=4)
    assert index.bulk_knn([], 1) == []


def test_aesa_bulk_matches_scalar(words, queries):
    index = AesaIndex(words[:40], get_distance("levenshtein"))
    _check_bulk_matches_scalar(index, queries, 3)


def test_aesa_large_database_falls_back_to_loop(words, queries, monkeypatch):
    # above the sweep gate the full-grid precompute would be slower than
    # AESA's near-constant scalar visits; bulk_knn must loop instead
    index = AesaIndex(words[:40], get_distance("levenshtein"))
    monkeypatch.setattr(AesaIndex, "_BULK_SWEEP_MAX_ITEMS", 10)
    sweeps = []
    monkeypatch.setattr(
        type(index._counter),
        "precompute",
        lambda self, q, r: sweeps.append(1),
    )
    _check_bulk_matches_scalar(index, queries[:6], 2)
    assert not sweeps, "sweep used despite exceeding the size gate"


def test_exhaustive_bulk_matches_scalar(words, queries):
    index = ExhaustiveIndex(words, get_distance("dmax"))
    _check_bulk_matches_scalar(index, queries, 2)


def test_unregistered_callable_distance(words, queries):
    # arbitrary callables take the engine's scalar fallback inside the
    # precompute sweep; results and counts must still match exactly
    def exotic(x, y):
        return float(abs(len(x) - len(y)) + sum(a != b for a, b in zip(x, y)))

    index = LaesaIndex(words[:30], exotic, n_pivots=4)
    _check_bulk_matches_scalar(index, queries[:8], 2)


def test_representation_sensitive_callable_over_list_items(words):
    # the precompute sweep must hand unregistered callables the *raw*
    # items: a callable that insists on lists would crash (or score
    # differently) on the engine's as_symbols-normalised tuples
    def list_only(x, y):
        assert isinstance(x, list) and isinstance(y, list), (x, y)
        return float(abs(len(x) - len(y)) + sum(a != b for a, b in zip(x, y)))

    items = [list(w) for w in words[:20]]
    queries = [list(w) for w in words[5:10]] + [list("abc")]
    for index in (
        LaesaIndex(items, list_only, n_pivots=3),
        AesaIndex(items, list_only),
    ):
        _check_bulk_matches_scalar(index, queries, 2)


def test_bulk_with_auto_sharding_engaged(words, queries, monkeypatch):
    """Force workers="auto" to attempt a pool and verify identical output.

    The pivot sweep dispatches interned id grids when the index holds a
    corpus (``_fan_out_ids``) and raw pairs otherwise (``_fan_out``);
    either way the auto gate must attempt the pool.
    """
    attempts = []
    real_fan_out = engine._fan_out
    real_fan_out_ids = engine._fan_out_ids

    def spying_fan_out(name, pairs, workers):
        attempts.append((name, len(pairs), workers))
        return real_fan_out(name, pairs, workers)

    def spying_fan_out_ids(name, store, x_ids, y_ids, workers):
        attempts.append((name, len(x_ids), workers))
        return real_fan_out_ids(name, store, x_ids, y_ids, workers)

    index = LaesaIndex(words, get_distance("levenshtein"), n_pivots=8)
    scalar = [index.knn(q, 1) for q in queries]

    monkeypatch.setattr(engine, "_MIN_PAIRS_PER_WORKER", 2)
    monkeypatch.setattr(engine, "_cpu_count", lambda: 2)
    monkeypatch.setattr(engine, "_fan_out", spying_fan_out)
    monkeypatch.setattr(engine, "_fan_out_ids", spying_fan_out_ids)
    batch = index.bulk_knn(queries, 1)

    assert attempts, "auto-sharding never attempted a pool"
    assert all(workers == 2 for _, _, workers in attempts)
    for (truth, t_stats), (got, g_stats) in zip(scalar, batch):
        assert [(r.index, r.distance) for r in got] == [
            (r.index, r.distance) for r in truth
        ]
        assert (
            g_stats.distance_computations == t_stats.distance_computations
        )


@pytest.mark.parametrize("name", ["marzal_vidal", "contextual_heuristic"])
def test_laesa_bulk_matches_scalar_for_new_bounded_twins(words, queries, name):
    # the batched candidate phase must replay d_C,h / d_MV's fresh
    # early-exit twins bit-identically, counts included
    index = LaesaIndex(words[:60], get_distance(name), n_pivots=4)
    _check_bulk_matches_scalar(index, queries[:10], 2)


def test_aesa_lockstep_batches_candidates_above_the_gate(words, queries):
    # above the sweep gate the lockstep driver still answers every
    # comparison through the batched engine, identically to the loop
    index = AesaIndex(words[:40], get_distance("dmax"), bulk_sweep_max_items=10)
    assert index._BULK_SWEEP_MAX_ITEMS == 10
    _check_bulk_matches_scalar(index, queries[:8], 2)


def test_aesa_gate_env_override(words, monkeypatch):
    monkeypatch.setenv("REPRO_AESA_BULK_MAX_ITEMS", "7")
    index = AesaIndex(words[:20], get_distance("levenshtein"))
    assert index._BULK_SWEEP_MAX_ITEMS == 7
    # the keyword wins over the environment
    index = AesaIndex(
        words[:20], get_distance("levenshtein"), bulk_sweep_max_items=99
    )
    assert index._BULK_SWEEP_MAX_ITEMS == 99
    monkeypatch.delenv("REPRO_AESA_BULK_MAX_ITEMS")
    index = AesaIndex(words[:20], get_distance("levenshtein"))
    assert index._BULK_SWEEP_MAX_ITEMS == AesaIndex._BULK_SWEEP_MAX_ITEMS


def test_engine_min_pairs_env_override(monkeypatch):
    assert engine._min_pairs_per_worker() == engine._MIN_PAIRS_PER_WORKER
    monkeypatch.setenv("REPRO_MIN_PAIRS_PER_WORKER", "3")
    assert engine._min_pairs_per_worker() == 3
    # the threshold feeds workers="auto" resolution directly
    monkeypatch.setattr(engine, "_cpu_count", lambda: 2)
    assert engine._resolve_workers("auto", 6, registered=True) == 2
    monkeypatch.setenv("REPRO_MIN_PAIRS_PER_WORKER", "512")
    assert engine._resolve_workers("auto", 6, registered=True) == 0
