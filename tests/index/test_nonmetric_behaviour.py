"""What happens when triangle-inequality structures get a non-metric.

The paper stresses that d_C being a metric is what makes it usable with
LAESA-style algorithms, yet Table 2 runs LAESA with the non-metric d_max
anyway and sees almost no error.  These tests pin down both sides:

* a *constructed* gross triangle violation makes LAESA prune the true
  nearest neighbour (so the guarantee really is lost);
* the *mild* violations of d_max on real word data almost never change
  the retrieved neighbour (the paper's empirical observation).
"""

import random

from repro.core import get_distance
from repro.index import ExhaustiveIndex, LaesaIndex


class TestConstructedViolation:
    """A distance engineered so pivot bounds eliminate the true NN."""

    #: symmetric distance table over {q, p, u, v}: d(q,u)=0.5 is the true
    #: nearest neighbour of q, but d(q,p)=10 with d(p,u)=1 gives u the
    #: lower bound |10-1| = 9, while v (bound 4, actual 5) looks better.
    TABLE = {
        frozenset(("q", "p")): 10.0,
        frozenset(("q", "u")): 0.5,
        frozenset(("q", "v")): 5.0,
        frozenset(("p", "u")): 1.0,
        frozenset(("p", "v")): 6.0,
        frozenset(("u", "v")): 3.0,
    }

    def distance(self, a, b):
        if a == b:
            return 0.0
        return self.TABLE[frozenset((a, b))]

    def test_table_is_symmetric_but_not_triangle(self):
        d = self.distance
        assert d("q", "p") > d("q", "u") + d("u", "p")  # gross violation

    def test_laesa_misses_true_neighbour(self):
        items = ["p", "u", "v"]
        index = LaesaIndex.from_pivots(
            items,
            self.distance,
            pivot_indices=[0],  # p is the pivot
            pivot_rows=[[0.0, 1.0, 6.0]],
        )
        found, _ = index.nearest("q")
        truth, _ = ExhaustiveIndex(items, self.distance).nearest("q")
        assert truth.item == "u"
        assert found.item == "v"  # LAESA pruned u via the bogus bound
        assert found.distance > truth.distance


class TestMildViolationInPractice:
    """d_max on words: non-metric, but LAESA errs rarely (Table 2)."""

    def test_dmax_retrieval_usually_exact(self, small_word_list):
        distance = get_distance("dmax")
        laesa = LaesaIndex(
            small_word_list, distance, n_pivots=15, rng=random.Random(0)
        )
        scan = ExhaustiveIndex(small_word_list, distance)
        rng = random.Random(1)
        total = agree = 0
        for _ in range(60):
            q = "".join(rng.choice("abcde") for _ in range(rng.randint(2, 8)))
            found, _ = laesa.nearest(q)
            truth, _ = scan.nearest(q)
            total += 1
            agree += abs(found.distance - truth.distance) < 1e-9
        # the paper's Table 2 shows LAESA ~= exhaustive for dmax; allow a
        # few misses but demand near-perfect agreement
        assert agree / total > 0.9
