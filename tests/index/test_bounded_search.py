"""Early-exit (bounded) evaluation inside the search structures.

The indexes must return *exactly* what an exhaustive scan returns while
never letting a pruned (inexact) value leak into results or bounds.
"""

import random

import pytest

from repro.core import get_distance, get_spec
from repro.index import (
    BKTreeIndex,
    ExhaustiveIndex,
    LaesaIndex,
    VPTreeIndex,
)
from repro.index.base import CountingDistance


@pytest.fixture(scope="module")
def words():
    gen = random.Random(0xB0B)
    return sorted(
        {
            "".join(gen.choice("abcd") for _ in range(gen.randint(2, 9)))
            for _ in range(150)
        }
    )


class TestCountingDistanceWithin:
    def test_counts_like_a_plain_call(self):
        counter = CountingDistance(get_distance("levenshtein"))
        counter("ab", "ba")
        counter.within("ab", "ba", 0.5)
        assert counter.calls == 2

    def test_exact_when_under_limit(self):
        distance = get_distance("yujian_bo")
        counter = CountingDistance(distance)
        assert counter.within("abc", "abd", 1.0) == distance("abc", "abd")

    def test_above_limit_when_pruned(self):
        counter = CountingDistance(get_distance("levenshtein"))
        assert counter.within("aaaaaa", "bbbbbb", 1.0) > 1.0

    def test_infinite_limit_passes_through(self):
        distance = get_distance("dmax")
        counter = CountingDistance(distance)
        value = counter.within("abcd", "dcba", float("inf"))
        assert value == distance("abcd", "dcba")

    def test_unbounded_distance_falls_back_exact(self):
        # exact d_C is the one paper distance still without a twin
        distance = get_spec("contextual").function
        counter = CountingDistance(distance)
        assert counter.within("abc", "cab", 0.01) == distance("abc", "cab")

    def test_contextual_heuristic_twin_prunes(self):
        distance = get_spec("contextual_heuristic").function
        counter = CountingDistance(distance)
        value = counter.within("abc", "cab", 0.01)
        assert value > 0.01
        assert value <= distance("abc", "cab")

    def test_marzal_vidal_twin_prunes(self):
        distance = get_spec("marzal_vidal").function
        counter = CountingDistance(distance)
        value = counter.within("aaaa", "bbbb", 0.1)
        assert value > 0.1
        assert value <= distance("aaaa", "bbbb")

    def test_many_counts_per_pair(self):
        counter = CountingDistance(get_distance("levenshtein"))
        values = counter.many([("a", "b"), ("a", "b"), ("x", "x")])
        assert counter.calls == 3  # dedupe never hides demanded work
        assert values.tolist() == [1.0, 1.0, 0.0]


@pytest.mark.parametrize("name", ["levenshtein", "yujian_bo", "dmax"])
@pytest.mark.parametrize("k", [1, 3])
def test_pruning_indexes_match_exhaustive(words, name, k):
    if name != "levenshtein" and k == 1:
        pass  # every combination is cheap enough to run
    distance = get_distance(name)
    queries = ["aab", "dcba", "abcdabcd", words[17], "a"]
    exhaustive = ExhaustiveIndex(words, distance)
    indexes = [
        LaesaIndex(words, distance, n_pivots=8),
        VPTreeIndex(words, distance),
    ]
    if name == "levenshtein":  # integer metric required
        indexes.append(BKTreeIndex(words, distance))
    for query in queries:
        truth, _ = exhaustive.knn(query, k)
        truth_distances = [r.distance for r in truth]
        for index in indexes:
            got, _ = index.knn(query, k)
            # structures may break distance ties differently; the distance
            # profile (and hence correctness of the pruning) must agree
            assert [r.distance for r in got] == truth_distances, (
                name,
                type(index).__name__,
                query,
            )
            for r in got:
                assert r.distance == distance(query, words[r.index])


@pytest.mark.parametrize("name", ["levenshtein", "yujian_bo"])
def test_pruning_indexes_match_exhaustive_range(words, name):
    distance = get_distance(name)
    radius = 2.0 if name == "levenshtein" else 0.45
    exhaustive = ExhaustiveIndex(words, distance)
    indexes = [
        LaesaIndex(words, distance, n_pivots=8),
        VPTreeIndex(words, distance),
    ]
    if name == "levenshtein":
        indexes.append(BKTreeIndex(words, distance))
    for query in ["abc", "dddd", words[3]]:
        truth, _ = exhaustive.range_search(query, radius)
        truth_set = {(r.index, r.distance) for r in truth}
        for index in indexes:
            got, _ = index.range_search(query, radius)
            assert {(r.index, r.distance) for r in got} == truth_set


def test_bounded_never_inflates_computation_counts(words):
    """Early exit changes the cost per computation, not the count."""
    distance = get_distance("levenshtein")
    plain = LaesaIndex(words, distance, n_pivots=6)
    _, stats = plain.knn("abca", 1)
    assert 0 < stats.distance_computations <= len(words)
