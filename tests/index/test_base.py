"""Counting wrapper, stats, and the shared index contract."""

import pytest

from repro.core import get_distance
from repro.index import CountingDistance, ExhaustiveIndex


class TestCountingDistance:
    def test_counts_calls(self):
        counter = CountingDistance(get_distance("levenshtein"))
        counter("a", "b")
        counter("ab", "ba")
        assert counter.calls == 2

    def test_take_resets(self):
        counter = CountingDistance(get_distance("levenshtein"))
        counter("a", "b")
        assert counter.take() == 1
        assert counter.calls == 0

    def test_passes_values_through(self):
        counter = CountingDistance(get_distance("levenshtein"))
        assert counter("kitten", "sitting") == 3.0


class TestIndexContract:
    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            ExhaustiveIndex([], get_distance("levenshtein"))

    def test_k_validation(self):
        index = ExhaustiveIndex(["a", "b"], get_distance("levenshtein"))
        with pytest.raises(ValueError):
            index.knn("a", 0)
        with pytest.raises(ValueError):
            index.knn("a", 3)

    def test_nearest_returns_result_and_stats(self):
        index = ExhaustiveIndex(["aa", "bb", "ab"], get_distance("levenshtein"))
        result, stats = index.nearest("ab")
        assert result.item == "ab"
        assert result.distance == 0.0
        assert stats.distance_computations == 3
        assert stats.elapsed_seconds >= 0.0

    def test_stats_reset_between_queries(self):
        index = ExhaustiveIndex(["aa", "bb"], get_distance("levenshtein"))
        _, stats1 = index.nearest("aa")
        _, stats2 = index.nearest("bb")
        assert stats1.distance_computations == 2
        assert stats2.distance_computations == 2
