"""Exhaustive scan: the ground truth every other index is checked against."""

from repro.core import get_distance
from repro.index import ExhaustiveIndex


def test_finds_exact_match():
    items = ["casa", "cosa", "cesta", "masa"]
    index = ExhaustiveIndex(items, get_distance("levenshtein"))
    result, _ = index.nearest("cosa")
    assert result.item == "cosa"


def test_finds_closest_word():
    items = ["casa", "cesta", "perro"]
    index = ExhaustiveIndex(items, get_distance("levenshtein"))
    result, _ = index.nearest("case")
    assert result.item == "casa"
    assert result.distance == 1.0


def test_always_n_computations():
    items = ["a", "b", "c", "d", "e"]
    index = ExhaustiveIndex(items, get_distance("levenshtein"))
    _, stats = index.nearest("z")
    assert stats.distance_computations == len(items)


def test_knn_sorted_by_distance():
    items = ["aaaa", "aaab", "aabb", "abbb", "bbbb"]
    index = ExhaustiveIndex(items, get_distance("levenshtein"))
    results, _ = index.knn("aaaa", 3)
    distances = [r.distance for r in results]
    assert distances == sorted(distances)
    assert results[0].item == "aaaa"


def test_knn_full_size():
    items = ["x", "xy", "xyz"]
    index = ExhaustiveIndex(items, get_distance("levenshtein"))
    results, _ = index.knn("x", 3)
    assert len(results) == 3


def test_result_indices_point_into_items():
    items = ["uno", "dos", "tres"]
    index = ExhaustiveIndex(items, get_distance("levenshtein"))
    result, _ = index.nearest("does")
    assert items[result.index] == result.item


def test_works_with_normalised_distance():
    items = ["corto", "larguisimo", "medio"]
    index = ExhaustiveIndex(items, get_distance("contextual_heuristic"))
    result, _ = index.nearest("corte")
    assert result.item == "corto"
