"""BK-tree: integer-metric search with pruning."""

import random

import pytest

from repro.core import get_distance
from repro.index import BKTreeIndex, ExhaustiveIndex


class TestCorrectness:
    def test_matches_exhaustive(self, small_word_list):
        distance = get_distance("levenshtein")
        exhaustive = ExhaustiveIndex(small_word_list, distance)
        tree = BKTreeIndex(small_word_list, distance)
        rng = random.Random(0)
        for _ in range(40):
            q = "".join(rng.choice("abcde") for _ in range(rng.randint(1, 8)))
            truth, _ = exhaustive.nearest(q)
            found, _ = tree.nearest(q)
            assert found.distance == pytest.approx(truth.distance)

    def test_knn(self, small_word_list):
        distance = get_distance("levenshtein")
        exhaustive = ExhaustiveIndex(small_word_list, distance)
        tree = BKTreeIndex(small_word_list, distance)
        truths, _ = exhaustive.knn("acde", 5)
        found, _ = tree.knn("acde", 5)
        assert [r.distance for r in found] == pytest.approx(
            [r.distance for r in truths]
        )

    def test_duplicates_allowed(self):
        distance = get_distance("levenshtein")
        tree = BKTreeIndex(["abc", "abc", "abd"], distance)
        result, _ = tree.nearest("abc")
        assert result.distance == 0.0


class TestPruning:
    def test_prunes_on_realistic_data(self, small_word_list):
        distance = get_distance("levenshtein")
        tree = BKTreeIndex(small_word_list, distance)
        total = 0
        rng = random.Random(1)
        queries = [
            "".join(rng.choice("abcde") for _ in range(rng.randint(2, 8)))
            for _ in range(30)
        ]
        for q in queries:
            _, stats = tree.nearest(q)
            total += stats.distance_computations
        assert total / len(queries) < len(small_word_list)


class TestIntegerRequirement:
    def test_rejects_real_valued_distance(self, small_word_list):
        distance = get_distance("contextual_heuristic")
        with pytest.raises(ValueError):
            BKTreeIndex(small_word_list[:30], distance)
