"""Interned-vs-raw identity: bulk queries must not notice the corpus.

The interned-corpus runtime changes *where* kernel inputs come from
(matrices encoded at build time, id-pair dispatch, optionally a
persistent shared-memory pool) but may never change a value: neighbours,
distances and per-query ``distance_computations`` of ``bulk_knn`` and
``bulk_range_search`` must be bit-identical with interning on (ambient
default) and off (``REPRO_INTERN=0``), across every index structure and
the paper's length regimes.
"""

import random

import pytest

from repro.core import get_distance
from repro.index import (
    AesaIndex,
    BKTreeIndex,
    ExhaustiveIndex,
    LaesaIndex,
    VPTreeIndex,
)

REGIMES = {
    "word": ("abcde", 1, 9),
    "dna": ("acgt", 8, 30),
    "digit": ("01234567", 20, 55),
}


def _workload(regime, n_items=40, n_queries=10, seed=0x1D5):
    alphabet, lo, hi = REGIMES[regime]
    rng = random.Random(seed)

    def word():
        return "".join(rng.choice(alphabet) for _ in range(rng.randint(lo, hi)))

    items = sorted({word() for _ in range(n_items * 2)})[:n_items]
    queries = [word() for _ in range(n_queries)]
    return items, queries


def _snapshot(results):
    return [
        (
            [(r.index, r.distance) for r in hits],
            stats.distance_computations,
        )
        for hits, stats in results
    ]


def _build(structure, items, distance):
    if structure is LaesaIndex:
        return LaesaIndex(items, distance, n_pivots=4)
    return structure(items, distance)


STRUCTURES = {
    "exhaustive": ExhaustiveIndex,
    "laesa": LaesaIndex,
    "aesa": AesaIndex,
    "vptree": VPTreeIndex,
}


@pytest.mark.parametrize("regime", sorted(REGIMES))
@pytest.mark.parametrize("structure", sorted(STRUCTURES))
@pytest.mark.parametrize("name", ["dmax", "contextual_heuristic", "marzal_vidal"])
def test_bulk_knn_identical_with_and_without_interning(
    regime, structure, name, monkeypatch
):
    items, queries = _workload(regime)
    distance = get_distance(name)
    interned = _build(STRUCTURES[structure], items, distance)
    assert interned._corpus is not None
    on = _snapshot(interned.bulk_knn(queries, 2))
    monkeypatch.setenv("REPRO_INTERN", "0")
    raw = _build(STRUCTURES[structure], items, distance)
    assert raw._corpus is None
    off = _snapshot(raw.bulk_knn(queries, 2))
    assert on == off


@pytest.mark.parametrize("regime", sorted(REGIMES))
@pytest.mark.parametrize(
    "structure", sorted(STRUCTURES) + ["bktree"]
)
@pytest.mark.parametrize("name", ["levenshtein", "dmax", "marzal_vidal"])
def test_bulk_range_identical_with_and_without_interning(
    regime, structure, name, monkeypatch
):
    if structure == "bktree" and name != "levenshtein":
        pytest.skip("BK-tree requires an integer metric")
    items, queries = _workload(regime, seed=0x2E6)
    distance = get_distance(name)
    index_cls = BKTreeIndex if structure == "bktree" else STRUCTURES[structure]
    # a radius with a few hits per query: sample some true distances
    rng = random.Random(9)
    sample = sorted(
        distance(rng.choice(items), rng.choice(items)) for _ in range(40)
    )
    radius = sample[4]
    interned = _build(index_cls, items, distance)
    on = _snapshot(interned.bulk_range_search(queries, radius))
    monkeypatch.setenv("REPRO_INTERN", "0")
    raw = _build(index_cls, items, distance)
    off = _snapshot(raw.bulk_range_search(queries, radius))
    assert on == off


def test_bulk_knn_identical_for_tuple_items(monkeypatch):
    """Chain-code-style tuple items intern through the shared alphabet."""
    rng = random.Random(0x3F7)
    items = [
        tuple(rng.randrange(8) for _ in range(rng.randint(4, 20)))
        for _ in range(30)
    ]
    queries = [
        tuple(rng.randrange(8) for _ in range(rng.randint(4, 20)))
        for _ in range(6)
    ]
    distance = get_distance("dmax")
    interned = LaesaIndex(items, distance, n_pivots=3)
    assert interned._corpus is not None
    on = _snapshot(interned.bulk_knn(queries, 1))
    monkeypatch.setenv("REPRO_INTERN", "0")
    raw = LaesaIndex(items, distance, n_pivots=3)
    off = _snapshot(raw.bulk_knn(queries, 1))
    assert on == off


def test_scalar_and_bulk_agree_with_interning(monkeypatch):
    """The canonical identity: per-query knn loop vs interned bulk_knn."""
    items, queries = _workload("word", seed=0x4A8)
    for name in ("dmax", "contextual_heuristic", "marzal_vidal"):
        index = LaesaIndex(items, get_distance(name), n_pivots=4)
        scalar = [index.knn(q, 2) for q in queries]
        bulk = index.bulk_knn(queries, 2)
        assert _snapshot(scalar) == _snapshot(bulk)
