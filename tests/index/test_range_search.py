"""Range (radius) search across all index structures."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import get_distance
from repro.index import (
    AesaIndex,
    BKTreeIndex,
    ExhaustiveIndex,
    LaesaIndex,
    VPTreeIndex,
)


def _ground_truth(items, distance, query, radius):
    return sorted(
        (distance(query, item) for item in items if distance(query, item) <= radius)
    )


class TestAgainstScan:
    @pytest.mark.parametrize("radius", [0.0, 1.0, 2.0, 4.0])
    def test_all_structures_match(self, small_word_list, radius):
        distance = get_distance("levenshtein")
        truth_index = ExhaustiveIndex(small_word_list, distance)
        structures = [
            LaesaIndex(small_word_list, distance, n_pivots=10),
            AesaIndex(small_word_list, distance),
            BKTreeIndex(small_word_list, distance),
            VPTreeIndex(small_word_list, distance, rng=random.Random(0)),
        ]
        rng = random.Random(1)
        for _ in range(10):
            q = "".join(rng.choice("abcde") for _ in range(rng.randint(1, 7)))
            truth, _ = truth_index.range_search(q, radius)
            truth_distances = [r.distance for r in truth]
            for index in structures:
                found, _ = index.range_search(q, radius)
                assert [r.distance for r in found] == pytest.approx(
                    truth_distances
                ), (type(index).__name__, q, radius)

    def test_real_valued_radius(self, small_word_list):
        distance = get_distance("contextual_heuristic")
        scan = ExhaustiveIndex(small_word_list, distance)
        laesa = LaesaIndex(small_word_list, distance, n_pivots=12)
        vp = VPTreeIndex(small_word_list, distance, rng=random.Random(2))
        rng = random.Random(3)
        for _ in range(10):
            q = "".join(rng.choice("abcde") for _ in range(rng.randint(2, 7)))
            truth, _ = scan.range_search(q, 0.35)
            for index in (laesa, vp):
                found, _ = index.range_search(q, 0.35)
                assert [r.distance for r in found] == pytest.approx(
                    [r.distance for r in truth]
                )


class TestSemantics:
    def test_results_sorted(self, small_word_list):
        index = LaesaIndex(
            small_word_list, get_distance("levenshtein"), n_pivots=5
        )
        results, _ = index.range_search("abc", 3.0)
        distances = [r.distance for r in results]
        assert distances == sorted(distances)

    def test_zero_radius_finds_exact_members(self, small_word_list):
        index = BKTreeIndex(small_word_list, get_distance("levenshtein"))
        member = small_word_list[5]
        results, _ = index.range_search(member, 0.0)
        assert [r.item for r in results] == [member]

    def test_negative_radius_rejected(self, small_word_list):
        index = ExhaustiveIndex(small_word_list, get_distance("levenshtein"))
        with pytest.raises(ValueError):
            index.range_search("a", -0.1)

    def test_huge_radius_returns_everything(self, small_word_list):
        index = VPTreeIndex(
            small_word_list, get_distance("levenshtein"), rng=random.Random(4)
        )
        results, _ = index.range_search("a", 100.0)
        assert len(results) == len(small_word_list)

    def test_pruning_saves_computations(self, small_word_list):
        distance = get_distance("levenshtein")
        laesa = LaesaIndex(small_word_list, distance, n_pivots=12)
        _, stats = laesa.range_search("abcd", 1.0)
        assert stats.distance_computations < len(small_word_list)


_word = st.text(alphabet="abc", min_size=1, max_size=6)


@given(
    st.lists(_word, min_size=2, max_size=18, unique=True),
    _word,
    st.integers(0, 4),
)
@settings(max_examples=30, deadline=None)
def test_property_structures_agree(items, query, radius):
    distance = get_distance("levenshtein")
    scan = ExhaustiveIndex(items, distance)
    truth, _ = scan.range_search(query, float(radius))
    for index in (
        LaesaIndex(items, distance, n_pivots=min(3, len(items))),
        AesaIndex(items, distance),
        BKTreeIndex(items, distance),
        VPTreeIndex(items, distance, rng=random.Random(0)),
    ):
        found, _ = index.range_search(query, float(radius))
        assert [r.distance for r in found] == pytest.approx(
            [r.distance for r in truth]
        )
