"""Pivot selection: strategies, nesting, and the distance-row contract."""

import random

import numpy as np
import pytest

from repro.core import get_distance
from repro.index import PIVOT_STRATEGIES, select_pivots


@pytest.fixture
def items():
    gen = random.Random(7)
    return sorted(
        {"".join(gen.choice("abc") for _ in range(gen.randint(2, 6))) for _ in range(60)}
    )


def test_count_zero(items):
    indices, rows = select_pivots(items, get_distance("levenshtein"), 0)
    assert indices == []
    assert rows.shape == (0, len(items))


def test_count_validation(items):
    with pytest.raises(ValueError):
        select_pivots(items, get_distance("levenshtein"), -1)
    with pytest.raises(ValueError):
        select_pivots(items, get_distance("levenshtein"), len(items) + 1)


def test_unknown_strategy(items):
    with pytest.raises(ValueError):
        select_pivots(items, get_distance("levenshtein"), 3, strategy="bogus")


@pytest.mark.parametrize("strategy", PIVOT_STRATEGIES)
def test_rows_are_true_distances(items, strategy):
    distance = get_distance("levenshtein")
    indices, rows = select_pivots(
        items, distance, 5, strategy=strategy, rng=random.Random(1)
    )
    assert len(indices) == 5
    assert rows.shape == (5, len(items))
    for row, pivot_idx in zip(rows, indices):
        for j in (0, len(items) // 2, len(items) - 1):
            assert row[j] == distance(items[pivot_idx], items[j])


@pytest.mark.parametrize("strategy", PIVOT_STRATEGIES)
def test_no_duplicate_pivots(items, strategy):
    indices, _ = select_pivots(
        items, get_distance("levenshtein"), 10, strategy=strategy,
        rng=random.Random(2),
    )
    assert len(set(indices)) == len(indices)


def test_maxmin_is_nested(items):
    """The prefix property Figures 3/4 rely on for pivot-matrix reuse."""
    distance = get_distance("levenshtein")
    big_idx, big_rows = select_pivots(
        items, distance, 8, strategy="maxmin", rng=random.Random(3)
    )
    small_idx, small_rows = select_pivots(
        items, distance, 4, strategy="maxmin", rng=random.Random(3)
    )
    assert big_idx[:4] == small_idx
    assert np.allclose(big_rows[:4], small_rows)


def test_maxmin_spreads_pivots(items):
    """Each maxmin pivot should be far from the previously chosen ones --
    in particular never a duplicate string (distance 0)."""
    distance = get_distance("levenshtein")
    indices, rows = select_pivots(
        items, distance, 6, strategy="maxmin", rng=random.Random(4)
    )
    for a in range(len(indices)):
        for b in range(a + 1, len(indices)):
            assert distance(items[indices[a]], items[indices[b]]) > 0


def test_deterministic_given_rng(items):
    distance = get_distance("levenshtein")
    first = select_pivots(items, distance, 5, rng=random.Random(42))
    second = select_pivots(items, distance, 5, rng=random.Random(42))
    assert first[0] == second[0]
    assert np.allclose(first[1], second[1])


class TestSelectPivotsFromMatrix:
    """Matrix-backed selection must replay select_pivots decision for
    decision (the Figures 3/4 shared-memmap fast path)."""

    def test_matches_direct_selection(self, small_word_list):
        import random

        import numpy as np

        from repro.batch import pairwise_matrix
        from repro.core import get_distance
        from repro.index import select_pivots, select_pivots_from_matrix

        items = small_word_list[:30]
        distance = get_distance("levenshtein")
        matrix = pairwise_matrix(distance, items)
        for strategy in ("maxmin", "maxsum", "random"):
            direct_idx, direct_rows = select_pivots(
                items, distance, 6, strategy, random.Random(77)
            )
            matrix_idx, matrix_rows = select_pivots_from_matrix(
                matrix, 6, strategy, random.Random(77)
            )
            assert matrix_idx == direct_idx, strategy
            assert np.array_equal(matrix_rows, direct_rows), strategy

    def test_validation(self):
        import numpy as np

        from repro.index import select_pivots_from_matrix

        with pytest.raises(ValueError):
            select_pivots_from_matrix(np.zeros((3, 4)), 1)
        with pytest.raises(ValueError):
            select_pivots_from_matrix(np.zeros((3, 3)), 4)
        with pytest.raises(ValueError):
            select_pivots_from_matrix(np.zeros((3, 3)), -1)
        idx, rows = select_pivots_from_matrix(np.zeros((3, 3)), 0)
        assert idx == [] and rows.shape == (0, 3)


class TestInternedSelection:
    """ROADMAP 5(b): pivot rows dispatched as id grids against the
    interned corpus must be bit-identical to the raw-pair sweeps --
    selection decisions, rows, and reported computation counts."""

    @pytest.mark.parametrize("strategy", PIVOT_STRATEGIES)
    @pytest.mark.parametrize("distance_name", ["levenshtein", "contextual_heuristic"])
    def test_store_dispatch_is_bit_identical(self, items, strategy, distance_name):
        from repro.batch import intern_corpus
        from repro.index.base import CountingDistance

        raw_counter = CountingDistance(get_distance(distance_name))
        raw_idx, raw_rows = select_pivots(
            items, raw_counter, 5, strategy, random.Random(11)
        )

        store = intern_corpus(items).store()
        interned_counter = CountingDistance(get_distance(distance_name))
        got_idx, got_rows = select_pivots(
            items, interned_counter, 5, strategy, random.Random(11), store
        )

        assert got_idx == raw_idx
        np.testing.assert_array_equal(got_rows, raw_rows)
        assert interned_counter.calls == raw_counter.calls

    def test_laesa_construction_uses_the_interned_grid(self, monkeypatch):
        """The constructor routes selection through the corpus store, and
        the result (pivots, rows, preprocessing count) is identical to a
        REPRO_INTERN=0 build with the same seed."""
        from repro.index import LaesaIndex

        gen = random.Random(41)
        items = sorted(
            {
                "".join(gen.choice("abcd") for _ in range(gen.randint(2, 7)))
                for _ in range(40)
            }
        )
        interned = LaesaIndex(
            items, get_distance("levenshtein"), n_pivots=4,
            rng=random.Random(3),
        )
        monkeypatch.setenv("REPRO_INTERN", "0")
        plain = LaesaIndex(
            items, get_distance("levenshtein"), n_pivots=4,
            rng=random.Random(3),
        )
        assert interned._corpus is not None and plain._corpus is None
        assert interned.pivot_indices == plain.pivot_indices
        np.testing.assert_array_equal(interned.pivot_rows, plain.pivot_rows)
        assert (
            interned.preprocessing_computations
            == plain.preprocessing_computations
        )
