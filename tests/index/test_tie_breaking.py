"""Canonical (distance, index) tie-breaking across every index.

Short words over a tiny alphabet produce dense distance ties; the k-NN
*sets* (not just the distance profiles) must agree between the exhaustive
scan and every pruning structure, so 1-NN labels never flip on ties
depending on which index answered the query.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import get_distance
from repro.index import (
    AesaIndex,
    BKTreeIndex,
    ExhaustiveIndex,
    LaesaIndex,
    VPTreeIndex,
)
from repro.index.base import canonical_key


def _pairs(results):
    return [(r.index, r.distance) for r in results]


def _tied_indexes(items, distance):
    return [
        LaesaIndex(items, distance, n_pivots=min(4, len(items))),
        AesaIndex(items, distance),
        BKTreeIndex(items, distance),
        VPTreeIndex(items, distance, rng=random.Random(7)),
    ]


class TestEngineeredTies:
    """All 2^4 binary words: almost every query distance is tied."""

    @pytest.fixture(scope="class")
    def items(self):
        return ["".join(p) for p in itertools.product("ab", repeat=4)]

    @pytest.mark.parametrize("query", ["baba", "aaaa", "ab", "bbbbbb", ""])
    @pytest.mark.parametrize("k", [1, 3, 6, 16])
    def test_knn_sets_identical(self, items, query, k):
        distance = get_distance("levenshtein")
        truth = ExhaustiveIndex(items, distance).knn(query, k)[0]
        # the exhaustive truth itself is canonically ordered
        assert truth == sorted(truth, key=canonical_key)
        for index in _tied_indexes(items, distance):
            got = index.knn(query, k)[0]
            assert _pairs(got) == _pairs(truth), type(index).__name__

    def test_tied_1nn_never_flips(self, items):
        # "abab" vs "baba" style queries are equidistant from many items;
        # every index must elect the same (smallest-index) winner
        distance = get_distance("levenshtein")
        for query in items + ["ba", "abb"]:
            truth = ExhaustiveIndex(items, distance).nearest(query)[0]
            for index in _tied_indexes(items, distance):
                found = index.nearest(query)[0]
                assert (found.index, found.distance) == (
                    truth.index,
                    truth.distance,
                ), type(index).__name__

    def test_range_results_canonically_ordered(self, items):
        distance = get_distance("levenshtein")
        truth = ExhaustiveIndex(items, distance).range_search("abab", 2.0)[0]
        for index in _tied_indexes(items, distance):
            got = index.range_search("abab", 2.0)[0]
            assert _pairs(got) == _pairs(truth), type(index).__name__


_word = st.text(alphabet="ab", min_size=0, max_size=4)


@given(
    st.lists(_word, min_size=2, max_size=14, unique=True),
    _word,
    st.integers(1, 5),
)
@settings(max_examples=40, deadline=None)
def test_property_knn_sets_identical(items, query, k):
    k = min(k, len(items))
    distance = get_distance("levenshtein")
    truth = ExhaustiveIndex(items, distance).knn(query, k)[0]
    for index in _tied_indexes(items, distance):
        got = index.knn(query, k)[0]
        assert _pairs(got) == _pairs(truth), type(index).__name__


@given(
    st.lists(_word, min_size=2, max_size=12, unique=True),
    _word,
)
@settings(max_examples=25, deadline=None)
def test_property_normalised_distance_sets_identical(items, query):
    # real-valued *metric* distance (no BK-tree: it needs integer values).
    # A non-metric distance such as dmax would be wrong here: without the
    # triangle inequality, pruning can legitimately discard a tied true
    # neighbour, so identical sets are only guaranteed for metrics.
    distance = get_distance("yujian_bo")
    k = min(3, len(items))
    truth = ExhaustiveIndex(items, distance).knn(query, k)[0]
    for index in (
        LaesaIndex(items, distance, n_pivots=min(3, len(items))),
        AesaIndex(items, distance),
        VPTreeIndex(items, distance, rng=random.Random(11)),
    ):
        got = index.knn(query, k)[0]
        assert _pairs(got) == _pairs(truth), type(index).__name__
