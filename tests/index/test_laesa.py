"""LAESA: correctness vs exhaustive search, pruning power, pivot reuse."""

import random

import numpy as np
import pytest

from repro.core import get_distance
from repro.index import ExhaustiveIndex, LaesaIndex, select_pivots


@pytest.fixture
def metric_distance():
    return get_distance("contextual_heuristic")


class TestCorrectness:
    @pytest.mark.parametrize("n_pivots", [0, 1, 5, 20])
    def test_matches_exhaustive(self, small_word_list, n_pivots):
        distance = get_distance("levenshtein")
        exhaustive = ExhaustiveIndex(small_word_list, distance)
        laesa = LaesaIndex(small_word_list, distance, n_pivots=n_pivots)
        rng = random.Random(0)
        for _ in range(30):
            q = "".join(rng.choice("abcde") for _ in range(rng.randint(1, 8)))
            truth, _ = exhaustive.nearest(q)
            found, _ = laesa.nearest(q)
            assert found.distance == pytest.approx(truth.distance), q

    def test_metric_normalised_distance(self, small_word_list, metric_distance):
        exhaustive = ExhaustiveIndex(small_word_list, metric_distance)
        laesa = LaesaIndex(small_word_list, metric_distance, n_pivots=10)
        rng = random.Random(1)
        for _ in range(20):
            q = "".join(rng.choice("abcde") for _ in range(rng.randint(1, 8)))
            truth, _ = exhaustive.nearest(q)
            found, _ = laesa.nearest(q)
            assert found.distance == pytest.approx(truth.distance), q

    def test_knn_matches_exhaustive(self, small_word_list):
        distance = get_distance("levenshtein")
        exhaustive = ExhaustiveIndex(small_word_list, distance)
        laesa = LaesaIndex(small_word_list, distance, n_pivots=8)
        truths, _ = exhaustive.knn("abde", 5)
        found, _ = laesa.knn("abde", 5)
        assert [r.distance for r in found] == pytest.approx(
            [r.distance for r in truths]
        )

    def test_query_in_database(self, small_word_list):
        distance = get_distance("levenshtein")
        laesa = LaesaIndex(small_word_list, distance, n_pivots=6)
        result, _ = laesa.nearest(small_word_list[17])
        assert result.distance == 0.0


class TestEfficiency:
    def test_pivots_reduce_computations(self, small_word_list):
        distance = get_distance("levenshtein")
        rng = random.Random(2)
        queries = [
            "".join(rng.choice("abcde") for _ in range(rng.randint(2, 8)))
            for _ in range(40)
        ]

        def average_computations(n_pivots):
            index = LaesaIndex(small_word_list, distance, n_pivots=n_pivots)
            total = 0
            for q in queries:
                _, stats = index.nearest(q)
                total += stats.distance_computations
            return total / len(queries)

        no_pivots = average_computations(0)
        with_pivots = average_computations(15)
        assert no_pivots == len(small_word_list)  # degenerates to a scan
        assert with_pivots < 0.7 * no_pivots

    def test_preprocessing_cost_is_linear_in_pivots(self, small_word_list):
        distance = get_distance("levenshtein")
        index = LaesaIndex(small_word_list, distance, n_pivots=7)
        # selection reuses the matrix rows: exactly n_pivots * n distances
        assert index.preprocessing_computations == 7 * len(small_word_list)


class TestFromPivots:
    def test_sliced_pivots_equivalent(self, small_word_list):
        distance = get_distance("levenshtein")
        indices, rows = select_pivots(
            small_word_list, distance, 12, rng=random.Random(3)
        )
        sliced = LaesaIndex.from_pivots(
            small_word_list, distance, indices[:5], rows[:5]
        )
        direct = LaesaIndex(
            small_word_list, distance, n_pivots=5, rng=random.Random(3)
        )
        rng = random.Random(4)
        for _ in range(15):
            q = "".join(rng.choice("abcde") for _ in range(rng.randint(1, 7)))
            a, _ = sliced.nearest(q)
            b, _ = direct.nearest(q)
            assert a.distance == pytest.approx(b.distance)

    def test_mismatched_rows_rejected(self, small_word_list):
        distance = get_distance("levenshtein")
        indices, rows = select_pivots(
            small_word_list, distance, 4, rng=random.Random(5)
        )
        with pytest.raises(ValueError):
            LaesaIndex.from_pivots(small_word_list, distance, indices[:3], rows)

    def test_wrong_width_rows_rejected(self, small_word_list):
        # right row *count*, wrong row *width*: would silently broadcast
        # (or crash deep inside _search) without the shape validation
        distance = get_distance("levenshtein")
        indices, rows = select_pivots(
            small_word_list, distance, 4, rng=random.Random(6)
        )
        with pytest.raises(ValueError, match="shape"):
            LaesaIndex.from_pivots(
                small_word_list, distance, indices, rows[:, :-1]
            )

    def test_transposed_rows_rejected(self, small_word_list):
        distance = get_distance("levenshtein")
        indices, rows = select_pivots(
            small_word_list, distance, 4, rng=random.Random(7)
        )
        square = rows[:, : len(indices)]  # 4 x 4: transposed-shape trap
        with pytest.raises(ValueError, match="shape"):
            LaesaIndex.from_pivots(small_word_list, distance, indices, square)

    def test_zero_pivots_accepted(self, small_word_list):
        distance = get_distance("levenshtein")
        index = LaesaIndex.from_pivots(
            small_word_list, distance, [], np.zeros((0, len(small_word_list)))
        )
        result, stats = index.nearest("abc")
        assert stats.distance_computations == len(small_word_list)
