"""AESA: correctness and its computations-vs-preprocessing trade-off."""

import random

import pytest

from repro.core import get_distance
from repro.index import AesaIndex, ExhaustiveIndex, LaesaIndex


class TestCorrectness:
    def test_matches_exhaustive(self, small_word_list):
        distance = get_distance("levenshtein")
        exhaustive = ExhaustiveIndex(small_word_list, distance)
        aesa = AesaIndex(small_word_list, distance)
        rng = random.Random(0)
        for _ in range(30):
            q = "".join(rng.choice("abcde") for _ in range(rng.randint(1, 8)))
            truth, _ = exhaustive.nearest(q)
            found, _ = aesa.nearest(q)
            assert found.distance == pytest.approx(truth.distance)

    def test_knn(self, small_word_list):
        distance = get_distance("levenshtein")
        exhaustive = ExhaustiveIndex(small_word_list, distance)
        aesa = AesaIndex(small_word_list, distance)
        truths, _ = exhaustive.knn("bcd", 4)
        found, _ = aesa.knn("bcd", 4)
        assert [r.distance for r in found] == pytest.approx(
            [r.distance for r in truths]
        )


class TestTradeOff:
    def test_quadratic_preprocessing(self, small_word_list):
        distance = get_distance("levenshtein")
        aesa = AesaIndex(small_word_list, distance)
        n = len(small_word_list)
        assert aesa.preprocessing_computations == n * (n - 1) // 2

    def test_fewer_search_computations_than_laesa(self, small_word_list):
        distance = get_distance("levenshtein")
        aesa = AesaIndex(small_word_list, distance)
        laesa = LaesaIndex(small_word_list, distance, n_pivots=10)
        rng = random.Random(1)
        queries = [
            "".join(rng.choice("abcde") for _ in range(rng.randint(2, 8)))
            for _ in range(40)
        ]
        aesa_total = laesa_total = 0
        for q in queries:
            _, s = aesa.nearest(q)
            aesa_total += s.distance_computations
            _, s = laesa.nearest(q)
            laesa_total += s.distance_computations
        assert aesa_total < laesa_total
