"""Lockstep ``bulk_range_search`` must be bit-identical to the scalar
``range_search`` loop -- hits, order, distances AND per-query
``distance_computations`` -- across every structure and radius regime.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import get_distance
from repro.index import (
    AesaIndex,
    BKTreeIndex,
    ExhaustiveIndex,
    LaesaIndex,
    VPTreeIndex,
)


def _identical(index, queries, radius):
    scalar = [index.range_search(q, radius) for q in queries]
    bulk = index.bulk_range_search(queries, radius)
    assert len(scalar) == len(bulk)
    for q, ((t_res, t_stats), (g_res, g_stats)) in enumerate(zip(scalar, bulk)):
        assert [(r.index, r.distance) for r in t_res] == [
            (r.index, r.distance) for r in g_res
        ], (type(index).__name__, q, radius)
        assert t_stats.distance_computations == g_stats.distance_computations, (
            type(index).__name__,
            q,
            radius,
        )


def _queries(rng, count, alphabet="abcde", max_len=8):
    return [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(1, max_len)))
        for _ in range(count)
    ]


class TestAgainstScalarLoop:
    @pytest.mark.parametrize("radius", [0.0, 1.0, 2.0, 6.0])
    def test_integer_metric_structures(self, small_word_list, radius):
        distance = get_distance("levenshtein")
        queries = _queries(random.Random(1), 12)
        for index in (
            ExhaustiveIndex(small_word_list, distance),
            LaesaIndex(small_word_list, distance, n_pivots=10),
            LaesaIndex(small_word_list, distance, n_pivots=0),
            AesaIndex(small_word_list, distance),
            BKTreeIndex(small_word_list, distance),
            VPTreeIndex(small_word_list, distance, rng=random.Random(0)),
        ):
            _identical(index, queries, radius)

    @pytest.mark.parametrize("name", ["dmax", "contextual_heuristic"])
    @pytest.mark.parametrize("radius", [0.1, 0.35, 0.8])
    def test_real_valued_radii(self, small_word_list, name, radius):
        distance = get_distance(name)
        queries = _queries(random.Random(2), 10)
        for index in (
            LaesaIndex(small_word_list, distance, n_pivots=12),
            AesaIndex(small_word_list, distance),
            VPTreeIndex(small_word_list, distance, rng=random.Random(3)),
        ):
            _identical(index, queries, radius)

    def test_aesa_above_sweep_gate(self, small_word_list):
        # beyond the gate the queries x items sweep is skipped but the
        # lockstep rounds still batch; results and counts must not move
        distance = get_distance("levenshtein")
        index = AesaIndex(small_word_list, distance, bulk_sweep_max_items=4)
        _identical(index, _queries(random.Random(4), 8), 2.0)

    def test_member_queries_find_themselves(self, small_word_list):
        index = LaesaIndex(
            small_word_list, get_distance("levenshtein"), n_pivots=6
        )
        members = small_word_list[:6]
        for (hits, _stats), member in zip(
            index.bulk_range_search(members, 0.0), members
        ):
            assert [r.item for r in hits] == [member]


class TestSemantics:
    def test_empty_query_batch(self, small_word_list):
        index = LaesaIndex(
            small_word_list, get_distance("levenshtein"), n_pivots=4
        )
        assert index.bulk_range_search([], 2.0) == []

    def test_negative_radius_rejected(self, small_word_list):
        for index in (
            ExhaustiveIndex(small_word_list, get_distance("levenshtein")),
            LaesaIndex(small_word_list, get_distance("levenshtein"), n_pivots=4),
            AesaIndex(small_word_list, get_distance("levenshtein")),
            BKTreeIndex(small_word_list, get_distance("levenshtein")),
        ):
            with pytest.raises(ValueError):
                index.bulk_range_search(["abc"], -0.5)

    def test_results_sorted_by_canonical_key(self, small_word_list):
        index = AesaIndex(small_word_list, get_distance("levenshtein"))
        for hits, _ in index.bulk_range_search(_queries(random.Random(5), 6), 3.0):
            keys = [(r.distance, r.index) for r in hits]
            assert keys == sorted(keys)

    def test_structures_without_generator_fall_back(self, small_word_list):
        # a structure implementing neither _range_requests nor a
        # bulk_range_search override degrades to the scalar loop
        from repro.index.base import NearestNeighborIndex

        class PlainIndex(NearestNeighborIndex):
            def _search(self, query, k):  # pragma: no cover - unused here
                raise NotImplementedError

        index = PlainIndex(small_word_list, get_distance("levenshtein"))
        _identical(index, _queries(random.Random(7), 5), 2.0)


def test_exhaustive_override_matches_scalar(small_word_list):
    """ExhaustiveIndex's engine-swept override must equal the loop."""
    index = ExhaustiveIndex(small_word_list, get_distance("dmax"))
    _identical(index, _queries(random.Random(6), 8), 0.4)


_word = st.text(alphabet="abc", min_size=1, max_size=6)


@given(
    st.lists(_word, min_size=2, max_size=16, unique=True),
    st.lists(_word, min_size=1, max_size=4),
    st.integers(0, 3),
)
@settings(max_examples=25, deadline=None)
def test_property_bulk_equals_scalar(items, queries, radius):
    distance = get_distance("levenshtein")
    for index in (
        LaesaIndex(items, distance, n_pivots=min(3, len(items))),
        AesaIndex(items, distance),
        BKTreeIndex(items, distance),
        VPTreeIndex(items, distance, rng=random.Random(0)),
    ):
        _identical(index, queries, float(radius))
