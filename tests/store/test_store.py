"""The versioned artifact store: keys, versions, pruning, miss vs corrupt."""

import os
import warnings

import numpy as np
import pytest

from repro.batch import DEGRADATION, DegradedExecutionWarning
from repro.core import get_distance
from repro.index import ExhaustiveIndex, LaesaIndex
from repro.store import (
    MANIFEST_NAME,
    ArtifactStore,
    StoreLoadError,
    StoreMiss,
    corpus_fingerprint,
    distance_token,
    load_or_build,
)

WORDS = [
    "cat", "cart", "dog", "dodge", "mart", "smart", "art", "car",
    "tars", "rats", "star", "tsar",
]

LEV = get_distance("levenshtein")


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def _load_failures():
    return DEGRADATION.snapshot()["store_load_failures"]


class TestIdentityTokens:
    def test_string_distance_passes_through(self):
        assert distance_token("levenshtein") == "levenshtein"

    def test_registered_callable_maps_to_its_name(self):
        assert distance_token(LEV) == "levenshtein"

    def test_unregistered_callable_uses_module_qualname(self):
        def local_metric(x, y):
            return 0.0

        token = distance_token(local_metric)
        assert "local_metric" in token and ":" in token

    def test_fingerprint_is_stable_and_content_sensitive(self):
        assert corpus_fingerprint(WORDS) == corpus_fingerprint(list(WORDS))
        assert corpus_fingerprint(WORDS) != corpus_fingerprint(WORDS[:-1])

    def test_fingerprint_normalises_like_the_distances(self):
        # "ab" and ("a", "b") are the same sequence to every metric here
        assert corpus_fingerprint(["ab"]) == corpus_fingerprint([("a", "b")])


class TestRoots:
    def test_missing_root_is_an_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        with pytest.raises(ValueError, match="REPRO_STORE_DIR"):
            ArtifactStore()

    def test_env_knob_supplies_the_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env-root"))
        assert ArtifactStore().root == tmp_path / "env-root"

    def test_coerce_accepts_paths_and_stores(self, tmp_path, store):
        assert ArtifactStore.coerce(store) is store
        assert ArtifactStore.coerce(tmp_path).root == tmp_path


class TestSaveLoad:
    def test_save_creates_a_manifested_snapshot(self, store):
        index = ExhaustiveIndex(WORDS, LEV)
        snapshot = index.save(store)
        assert snapshot.is_dir()
        assert (snapshot / MANIFEST_NAME).is_file()

    def test_load_costs_zero_distance_evaluations(self, store):
        LaesaIndex(WORDS, LEV, n_pivots=3).save(store)
        loaded = LaesaIndex.load(WORDS, LEV, store, n_pivots=3)
        # preprocessing_computations reports the *original* build cost...
        assert loaded.preprocessing_computations > 0
        # ...but the load itself never called the metric
        assert loaded._counter.calls == 0

    def test_loaded_arrays_are_readonly_mappings(self, store):
        LaesaIndex(WORDS, LEV, n_pivots=3).save(store)
        loaded = LaesaIndex.load(WORDS, LEV, store, n_pivots=3)
        assert isinstance(loaded.pivot_rows, np.memmap)
        assert not loaded.pivot_rows.flags.writeable

    def test_params_select_distinct_keys(self, store):
        LaesaIndex(WORDS, LEV, n_pivots=3).save(store)
        with pytest.raises(StoreMiss):
            store.load(LaesaIndex, WORDS, LEV, {"n_pivots": 5})

    def test_changed_corpus_is_a_clean_miss(self, store):
        ExhaustiveIndex(WORDS, LEV).save(store)
        with pytest.raises(StoreMiss):
            store.load(ExhaustiveIndex, WORDS[:-1], LEV)

    def test_unknown_load_keyword_raises_typeerror(self, store):
        ExhaustiveIndex(WORDS, LEV).save(store)
        with pytest.raises(TypeError, match="typo_knob"):
            ExhaustiveIndex.load(WORDS, LEV, store, typo_knob=1)

    def test_name_and_callable_distances_share_artifacts(self, store):
        ExhaustiveIndex(WORDS, LEV).save(store)
        loaded = store.load(ExhaustiveIndex, WORDS, "levenshtein")
        assert loaded._counter.calls == 0


class TestVersioning:
    def test_saves_mint_increasing_versions(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_KEEP", "10")
        index = ExhaustiveIndex(WORDS, LEV)
        first = index.save(store)
        second = index.save(store)
        assert first.name.startswith("v000001-")
        assert second.name.startswith("v000002-")

    def test_newest_valid_snapshot_wins(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_KEEP", "10")
        index = ExhaustiveIndex(WORDS, LEV)
        index.save(store)
        second = index.save(store)
        # corrupt the newest payload: the loader must fall back silently
        # to the older version inside ArtifactStore.load (the per-version
        # ladder), not fail outright
        victim = next(p for p in second.iterdir() if p.suffix == ".npy")
        data = bytearray(victim.read_bytes())
        data[-1] ^= 0xFF
        victim.write_bytes(bytes(data))
        loaded = store.load(ExhaustiveIndex, WORDS, LEV)
        assert loaded._counter.calls == 0

    def test_prune_keeps_the_newest_k(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_KEEP", "2")
        index = ExhaustiveIndex(WORDS, LEV)
        for _ in range(4):
            last = index.save(store)
        key_dir = last.parent
        snapshots = sorted(
            p.name for p in key_dir.iterdir() if p.name.startswith("v")
        )
        assert len(snapshots) == 2
        assert snapshots[-1].startswith("v000004-")

    def test_dead_tmp_debris_is_reaped_on_save(self, store):
        index = ExhaustiveIndex(WORDS, LEV)
        first = index.save(store)
        key_dir = first.parent
        debris = key_dir / "tmp-999999-abcdef"  # pid 999999: dead
        debris.mkdir()
        (debris / "half.npy").write_bytes(b"torn")
        index.save(store)
        assert not debris.exists()


class TestMissVersusCorruption:
    def test_miss_rebuilds_silently(self, store):
        before = _load_failures()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            index = ExhaustiveIndex.load(WORDS, LEV, store)
        assert _load_failures() == before
        assert index.last_degradation == {}
        assert index.preprocessing_computations == 0

    def test_corruption_rebuilds_loudly(self, store):
        snapshot = ExhaustiveIndex(WORDS, LEV).save(store)
        (snapshot / MANIFEST_NAME).write_text("{ not json", encoding="utf-8")
        before = _load_failures()
        with pytest.warns(DegradedExecutionWarning, match="rebuilding"):
            index = ExhaustiveIndex.load(WORDS, LEV, store)
        assert _load_failures() == before + 1
        assert index.last_degradation["store_load_failures"] == 1

    def test_bit_flipped_payload_fails_checksum(self, store):
        snapshot = LaesaIndex(WORDS, LEV, n_pivots=3).save(store)
        victim = snapshot / "pivot_rows.npy"
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0x01
        victim.write_bytes(bytes(data))
        with pytest.raises(StoreLoadError, match="checksum"):
            store.load(LaesaIndex, WORDS, LEV, {"n_pivots": 3})

    def test_truncated_payload_fails_on_size(self, store):
        snapshot = LaesaIndex(WORDS, LEV, n_pivots=3).save(store)
        victim = snapshot / "pivot_indices.npy"
        victim.write_bytes(victim.read_bytes()[:-8])
        with pytest.raises(StoreLoadError, match="bytes"):
            store.load(LaesaIndex, WORDS, LEV, {"n_pivots": 3})

    def test_missing_payload_fails_verification(self, store):
        snapshot = LaesaIndex(WORDS, LEV, n_pivots=3).save(store)
        (snapshot / "pivot_rows.npy").unlink()
        with pytest.raises(StoreLoadError, match="missing payload"):
            store.load(LaesaIndex, WORDS, LEV, {"n_pivots": 3})

    def test_verify_knob_skips_hashing_not_identity(self, store, monkeypatch):
        ExhaustiveIndex(WORDS, LEV).save(store)
        monkeypatch.setenv("REPRO_STORE_VERIFY", "0")

        def hashing_is_off(path):
            raise AssertionError("sha256_file must not run with verify off")

        monkeypatch.setattr(
            "repro.store.artifacts.sha256_file", hashing_is_off
        )
        # loads fine without touching the hasher...
        store.load(ExhaustiveIndex, WORDS, LEV)
        # ...while identity checks (here: the key digest) still apply
        with pytest.raises(StoreMiss):
            store.load(ExhaustiveIndex, WORDS[:-1], LEV)

    def test_rebuild_is_bit_identical_to_cold_build(self, store):
        built = LaesaIndex(WORDS, LEV, n_pivots=3)
        snapshot = built.save(store)
        victim = snapshot / "pivot_rows.npy"
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0x01
        victim.write_bytes(bytes(data))
        with pytest.warns(DegradedExecutionWarning):
            rebuilt = load_or_build(
                LaesaIndex, WORDS, LEV, store, {"n_pivots": 3}
            )
        assert rebuilt.pivot_indices == built.pivot_indices
        assert np.array_equal(
            np.asarray(rebuilt.pivot_rows), np.asarray(built.pivot_rows)
        )
        assert (
            rebuilt.preprocessing_computations
            == built.preprocessing_computations
        )
