"""Chaos suite for the artifact store: crashes tear nothing, corruption
is caught, every failure degrades to a bit-identical rebuild.

Mirrors the engine chaos suite's discipline (``tests/batch/test_chaos``):
hostile conditions may change *where* an index comes from -- a prior
snapshot, a fallback version, an in-process rebuild -- but never a
result, a distance count, or process liveness.
"""

import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.batch import DEGRADATION, DegradedExecutionWarning
from repro.batch.faults import FaultInjected
from repro.core import get_distance
from repro.index import ExhaustiveIndex, LaesaIndex
from repro.store import MANIFEST_NAME, ArtifactStore, StoreMiss

WORDS = [
    "cat", "cart", "dog", "dodge", "mart", "smart", "art", "car",
    "tars", "rats", "star", "tsar", "carts", "darts",
]

LEV = get_distance("levenshtein")


def _snapshot_dirs(key_dir):
    return sorted(
        p.name for p in key_dir.iterdir() if p.name.startswith("v")
    )


def _results_key(per_query):
    return [
        (
            [(r.index, r.distance) for r in results],
            stats.distance_computations,
        )
        for results, stats in per_query
    ]


class TestKilledSaver:
    """A SIGKILLed save must leave prior versions loadable and the key
    directory recoverable -- the crash-safety tentpole, end to end."""

    _SAVER = """
import os, sys
sys.path.insert(0, {src!r})
from repro.core import get_distance
from repro.index import LaesaIndex
from repro.store import ArtifactStore
from repro.store import artifacts

words = {words!r}
index = LaesaIndex(words, get_distance("levenshtein"), n_pivots=3)

original = artifacts.write_array
writes = {{"n": 0}}

def dying_write(path, array):
    writes["n"] += 1
    if writes["n"] >= 2:
        print("READY", flush=True)
        os.kill(os.getpid(), 9)  # die mid-snapshot, files half written
    original(path, array)

artifacts.write_array = dying_write
index.save(ArtifactStore({root!r}))
"""

    def _run_killed_saver(self, root):
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        script = self._SAVER.format(
            src=os.path.abspath(src), words=WORDS, root=str(root)
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

    def test_prior_version_survives_a_killed_saver(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        built = LaesaIndex(WORDS, LEV, n_pivots=3)
        first = built.save(store)
        key_dir = first.parent
        self._run_killed_saver(store.root)
        # the dead saver left tmp debris, never a visible snapshot
        assert _snapshot_dirs(key_dir) == [first.name]
        assert any(p.name.startswith("tmp-") for p in key_dir.iterdir())
        loaded = LaesaIndex.load(WORDS, LEV, store, n_pivots=3)
        assert loaded._counter.calls == 0  # served from the prior version
        queries = ["cast", "dodo", "smarts"]
        assert _results_key(loaded.bulk_knn(queries, 3)) == _results_key(
            built.bulk_knn(queries, 3)
        )

    def test_next_save_reaps_the_debris_and_recovers(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        built = LaesaIndex(WORDS, LEV, n_pivots=3)
        first = built.save(store)
        key_dir = first.parent
        self._run_killed_saver(store.root)
        # the dead saver's pid stamp makes the next save a takeover --
        # surfaced, counted, and otherwise business as usual
        before = DEGRADATION.snapshot()["store_lock_takeovers"]
        with pytest.warns(DegradedExecutionWarning, match="dead"):
            second = built.save(store)
        assert DEGRADATION.snapshot()["store_lock_takeovers"] == before + 1
        names = [p.name for p in key_dir.iterdir()]
        assert not any(name.startswith("tmp-") for name in names)
        assert second.name.startswith("v000002-")

    def test_cold_key_killed_saver_is_a_plain_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        self._run_killed_saver(store.root)
        with pytest.raises(StoreMiss):
            store.load(LaesaIndex, WORDS, LEV, {"n_pivots": 3})


class TestCorruptionRecovery:
    def test_bit_flip_degrades_to_bit_identical_rebuild(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        built = LaesaIndex(WORDS, LEV, n_pivots=3)
        snapshot = built.save(store)
        victim = snapshot / "pivot_rows.npy"
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0x04
        victim.write_bytes(bytes(data))
        before = DEGRADATION.snapshot()["store_load_failures"]
        with pytest.warns(DegradedExecutionWarning, match="rebuilding"):
            recovered = LaesaIndex.load(WORDS, LEV, store, n_pivots=3)
        assert DEGRADATION.snapshot()["store_load_failures"] == before + 1
        assert recovered.last_degradation["store_load_failures"] == 1
        # the rebuild is a cold build: same pivots, same rows, same counts
        assert recovered.pivot_indices == built.pivot_indices
        assert np.array_equal(
            np.asarray(recovered.pivot_rows), np.asarray(built.pivot_rows)
        )
        queries = ["cast", "dodo", "smarts"]
        assert _results_key(recovered.bulk_knn(queries, 3)) == _results_key(
            built.bulk_knn(queries, 3)
        )
        assert _results_key(
            recovered.bulk_range_search(queries, 2.0)
        ) == _results_key(built.bulk_range_search(queries, 2.0))

    def test_corrupt_manifest_fault_poisons_the_save_not_the_load(
        self, tmp_path, monkeypatch
    ):
        store = ArtifactStore(tmp_path / "store")
        index = ExhaustiveIndex(WORDS, LEV)
        monkeypatch.setenv("REPRO_FAULTS", "store_corrupt_manifest")
        index.save(store)  # writes a half-truncated manifest
        monkeypatch.delenv("REPRO_FAULTS")
        with pytest.warns(DegradedExecutionWarning, match="rebuilding"):
            recovered = ExhaustiveIndex.load(WORDS, LEV, store)
        assert recovered.last_degradation["store_load_failures"] == 1

    def test_corrupt_newest_falls_back_one_version_silently(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE_KEEP", "5")
        store = ArtifactStore(tmp_path / "store")
        index = ExhaustiveIndex(WORDS, LEV)
        index.save(store)
        second = index.save(store)
        (second / MANIFEST_NAME).unlink()
        import warnings as _w

        before = DEGRADATION.snapshot()["store_load_failures"]
        with _w.catch_warnings():
            _w.simplefilter("error")
            loaded = ExhaustiveIndex.load(WORDS, LEV, store)
        # per-version fallback inside the store is not a degradation:
        # a valid snapshot was served
        assert DEGRADATION.snapshot()["store_load_failures"] == before
        assert loaded._counter.calls == 0


class TestLockChaos:
    def test_stale_lock_fault_surfaces_takeover_and_save_succeeds(
        self, tmp_path, monkeypatch
    ):
        store = ArtifactStore(tmp_path / "store")
        index = ExhaustiveIndex(WORDS, LEV)
        monkeypatch.setenv("REPRO_FAULTS", "store_lock_stale")
        before = DEGRADATION.snapshot()["store_lock_takeovers"]
        with pytest.warns(DegradedExecutionWarning, match="dead"):
            snapshot = index.save(store)
        assert DEGRADATION.snapshot()["store_lock_takeovers"] == before + 1
        assert (snapshot / MANIFEST_NAME).is_file()
        monkeypatch.delenv("REPRO_FAULTS")
        assert store.load(ExhaustiveIndex, WORDS, LEV)._counter.calls == 0

    def test_torn_write_fault_aborts_the_save_cleanly(
        self, tmp_path, monkeypatch
    ):
        store = ArtifactStore(tmp_path / "store")
        index = ExhaustiveIndex(WORDS, LEV)
        first = index.save(store)
        monkeypatch.setenv("REPRO_FAULTS", "store_torn_write")
        with pytest.raises(FaultInjected):
            index.save(store)
        monkeypatch.delenv("REPRO_FAULTS")
        # the failed save published nothing and released the lock
        assert _snapshot_dirs(first.parent) == [first.name]
        second = index.save(store)
        assert second.name.startswith("v000002-")
