"""The atomic write helpers: all-or-nothing, torn-write fault included."""

import os

import numpy as np
import pytest

from repro.batch.faults import FaultInjected
from repro.store import write_array, write_bytes, write_text


def _tmp_debris(directory):
    return [p for p in directory.iterdir() if ".tmp-" in p.name]


class TestReplaceSemantics:
    def test_write_bytes_creates_the_file(self, tmp_path):
        target = tmp_path / "blob.bin"
        write_bytes(target, b"payload")
        assert target.read_bytes() == b"payload"
        assert _tmp_debris(tmp_path) == []

    def test_write_text_round_trips_utf8(self, tmp_path):
        target = tmp_path / "note.txt"
        write_text(target, "π ≈ 3.14159\n")
        assert target.read_text(encoding="utf-8") == "π ≈ 3.14159\n"

    def test_overwrite_replaces_whole_content(self, tmp_path):
        target = tmp_path / "blob.bin"
        write_bytes(target, b"old-and-longer-content")
        write_bytes(target, b"new")
        assert target.read_bytes() == b"new"

    def test_write_array_reopens_as_readonly_memmap(self, tmp_path):
        target = tmp_path / "matrix.npy"
        matrix = np.arange(12, dtype=float).reshape(3, 4)
        write_array(target, matrix)
        reloaded = np.load(target, mmap_mode="r", allow_pickle=False)
        assert np.array_equal(np.asarray(reloaded), matrix)
        assert not reloaded.flags.writeable

    def test_failing_writer_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "blob.bin"
        write_bytes(target, b"intact")

        def exploding(handle):
            handle.write(b"partial")
            raise RuntimeError("writer died")

        from repro.store import replace_file

        with pytest.raises(RuntimeError):
            replace_file(target, exploding)
        assert target.read_bytes() == b"intact"
        assert _tmp_debris(tmp_path) == []


class TestTornWriteFault:
    def test_armed_fault_fires_after_payload_before_rename(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "store_torn_write")
        target = tmp_path / "blob.bin"
        with pytest.raises(FaultInjected):
            write_bytes(target, b"never-visible")
        # the exact torn-write window: destination absent, no tmp debris
        assert not target.exists()
        assert _tmp_debris(tmp_path) == []

    def test_existing_target_survives_the_fault(self, tmp_path, monkeypatch):
        target = tmp_path / "blob.bin"
        write_bytes(target, b"version-1")
        monkeypatch.setenv("REPRO_FAULTS", "store_torn_write")
        with pytest.raises(FaultInjected):
            write_bytes(target, b"version-2")
        assert target.read_bytes() == b"version-1"

    def test_unarmed_site_is_inert(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        target = tmp_path / "blob.bin"
        write_bytes(target, b"fine")
        assert target.read_bytes() == b"fine"
        assert os.path.getsize(target) == 4
