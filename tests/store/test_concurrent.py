"""Two *processes* racing ``load_or_build`` on the same store key.

The flock in :class:`repro.store.lock.ArtifactLock` serialises
publication: one racer wins and saves, the other loads the published
snapshot or rebuilds in process.  Whatever interleaving the scheduler
picks, both processes must come back with bit-identical structures and
bit-identical query answers -- a replica fleet cold-starting against a
shared artifact volume cannot be allowed to diverge.
"""

import multiprocessing
import random

import pytest

from repro.core import get_distance
from repro.index import LaesaIndex

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.batch.runtime.DegradedExecutionWarning"
)


def _words(n=100, seed=19):
    rng = random.Random(seed)
    return sorted(
        {
            "".join(rng.choice("abcdef") for _ in range(rng.randint(3, 9)))
            for _ in range(n)
        }
    )


def _queries():
    return _words(n=15, seed=77)


def _racer(root, conn, save_on_miss):
    """Child: load-or-build from the shared store, answer queries, and
    ship a bit-exact projection of structure + answers back."""
    try:
        index = LaesaIndex.load(
            _words(),
            get_distance("levenshtein"),
            root,
            save_on_miss=save_on_miss,
            n_pivots=3,
            rng=random.Random(1),
        )
        payload = {
            "pivot_indices": [int(i) for i in index.pivot_indices],
            "pivot_rows": [
                [float(v) for v in row] for row in index.pivot_rows
            ],
            "answers": [
                (
                    [(r.index, r.distance) for r in results],
                    stats.distance_computations,
                )
                for results, stats in index.bulk_knn(_queries(), 3)
            ],
        }
        conn.send(("ok", payload))
    except BaseException as exc:  # pragma: no cover - failure reporting
        conn.send(("error", repr(exc)))
    finally:
        conn.close()


def _race(tmp_path, n_procs=2, save_on_miss=True):
    ctx = multiprocessing.get_context("fork")
    pipes, procs = [], []
    for _ in range(n_procs):
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_racer, args=(tmp_path, child_conn, save_on_miss)
        )
        proc.start()
        child_conn.close()
        pipes.append(parent_conn)
        procs.append(proc)
    payloads = []
    for conn, proc in zip(pipes, procs):
        assert conn.poll(120), "racer produced nothing within its deadline"
        status, payload = conn.recv()
        proc.join(30)
        assert proc.exitcode == 0
        assert status == "ok", payload
        payloads.append(payload)
    return payloads


def test_two_processes_racing_load_or_build_agree_bit_exactly(tmp_path):
    first, second = _race(tmp_path)
    assert first == second  # structures AND answers, bit-identical
    # both match an in-process reference built from scratch
    reference = LaesaIndex(
        _words(), get_distance("levenshtein"), n_pivots=3,
        rng=random.Random(1),
    )
    assert first["pivot_indices"] == [int(i) for i in reference.pivot_indices]
    assert first["answers"] == [
        (
            [(r.index, r.distance) for r in results],
            stats.distance_computations,
        )
        for results, stats in reference.bulk_knn(_queries(), 3)
    ]


def test_race_publishes_artifacts_a_later_process_loads(tmp_path):
    _race(tmp_path)
    assert any(tmp_path.iterdir())  # somebody won the flock and saved
    # a third, unraced process must now warm-start: zero distance calls
    index = LaesaIndex.load(
        _words(),
        get_distance("levenshtein"),
        tmp_path,
        n_pivots=3,
        rng=random.Random(1),
    )
    assert index._counter.calls == 0


def test_wider_race_still_converges(tmp_path):
    payloads = _race(tmp_path, n_procs=4)
    assert all(p == payloads[0] for p in payloads)
