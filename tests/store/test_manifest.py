"""Manifest round-trip and strict parsing."""

import json

import pytest

from repro.store import FORMAT_VERSION, FileDigest, Manifest, ManifestError


def _manifest(**overrides):
    fields = dict(
        format_version=FORMAT_VERSION,
        class_name="LaesaIndex",
        distance="levenshtein",
        params={"n_pivots": 4, "pivot_strategy": "maxmin"},
        corpus_fingerprint="ab" * 32,
        n_items=40,
        preprocessing_computations=120,
        meta={"interned": True},
        files={
            "pivot_rows.npy": FileDigest(sha256="cd" * 32, size=1408),
            "corpus_rows_x.npy": FileDigest(sha256="ef" * 32, size=6528),
        },
    )
    fields.update(overrides)
    return Manifest(**fields)


class TestRoundTrip:
    def test_json_round_trip_preserves_every_field(self):
        original = _manifest()
        assert Manifest.from_json(original.to_json()) == original

    def test_serialization_is_deterministic(self):
        assert _manifest().to_json() == _manifest().to_json()

    def test_file_order_does_not_matter(self):
        a = _manifest()
        b = _manifest(files=dict(reversed(list(a.files.items()))))
        assert a.to_json() == b.to_json()

    def test_output_is_plain_sorted_json(self):
        payload = json.loads(_manifest().to_json())
        assert payload["class"] == "LaesaIndex"
        assert payload["files"]["pivot_rows.npy"]["size"] == 1408


class TestStrictParsing:
    def test_truncated_json_is_rejected(self):
        text = _manifest().to_json()
        with pytest.raises(ManifestError, match="not valid JSON"):
            Manifest.from_json(text[: len(text) // 2])

    def test_non_object_root_is_rejected(self):
        with pytest.raises(ManifestError, match="root"):
            Manifest.from_json("[1, 2, 3]")

    @pytest.mark.parametrize(
        "field",
        [
            "format_version",
            "class",
            "distance",
            "params",
            "corpus_fingerprint",
            "n_items",
            "preprocessing_computations",
            "meta",
            "files",
        ],
    )
    def test_every_missing_field_is_rejected(self, field):
        payload = json.loads(_manifest().to_json())
        del payload[field]
        with pytest.raises(ManifestError, match="missing"):
            Manifest.from_json(json.dumps(payload))

    def test_wrong_typed_version_is_rejected(self):
        payload = json.loads(_manifest().to_json())
        payload["format_version"] = "1"
        with pytest.raises(ManifestError, match="not an integer"):
            Manifest.from_json(json.dumps(payload))

    def test_boolean_is_not_an_integer(self):
        payload = json.loads(_manifest().to_json())
        payload["n_items"] = True
        with pytest.raises(ManifestError, match="not an integer"):
            Manifest.from_json(json.dumps(payload))

    def test_malformed_file_digest_is_rejected(self):
        payload = json.loads(_manifest().to_json())
        payload["files"]["pivot_rows.npy"] = {"sha256": 7, "size": "big"}
        with pytest.raises(ManifestError, match="malformed digest"):
            Manifest.from_json(json.dumps(payload))
