"""The per-key writer lock: exclusion, timeout, dead-pid takeover."""

import os
import threading
import time
import warnings

import pytest

from repro.batch import DEGRADATION, DegradedExecutionWarning
from repro.store import ArtifactLock, StoreLockTimeout
from repro.store.lock import _stale_pid


@pytest.fixture
def lock_path(tmp_path):
    return tmp_path / "LOCK"


def _takeovers():
    return DEGRADATION.snapshot()["store_lock_takeovers"]


class TestBasics:
    def test_acquire_release_cycle(self, lock_path):
        lock = ArtifactLock(lock_path)
        assert not lock.held
        with lock:
            assert lock.held
            assert lock_path.read_text().strip() == str(os.getpid())
        assert not lock.held

    def test_clean_release_truncates_the_stamp(self, lock_path):
        with ArtifactLock(lock_path):
            pass
        assert lock_path.read_bytes() == b""

    def test_reacquiring_a_held_instance_raises(self, lock_path):
        with ArtifactLock(lock_path) as lock:
            with pytest.raises(RuntimeError):
                lock.acquire()

    def test_release_is_idempotent(self, lock_path):
        lock = ArtifactLock(lock_path).acquire()
        lock.release()
        lock.release()  # second release: no-op, no error

    def test_clean_handover_is_silent(self, lock_path):
        before = _takeovers()
        with ArtifactLock(lock_path):
            pass
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with ArtifactLock(lock_path):
                pass
        assert _takeovers() == before


class TestExclusion:
    def test_live_holder_makes_waiters_time_out(self, lock_path):
        holder = ArtifactLock(lock_path).acquire()
        try:
            waiter = ArtifactLock(lock_path, timeout=0.2, poll_seconds=0.01)
            started = time.monotonic()
            with pytest.raises(StoreLockTimeout):
                waiter.acquire()
            assert time.monotonic() - started >= 0.2
        finally:
            holder.release()

    def test_waiter_proceeds_once_released(self, lock_path):
        holder = ArtifactLock(lock_path).acquire()
        acquired = threading.Event()

        def wait_then_hold():
            with ArtifactLock(lock_path, timeout=5.0, poll_seconds=0.01):
                acquired.set()

        thread = threading.Thread(target=wait_then_hold)
        thread.start()
        try:
            assert not acquired.wait(0.15)  # still excluded
            holder.release()
            assert acquired.wait(5.0)
        finally:
            thread.join(5.0)

    def test_timeout_knob_is_honoured(self, lock_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_LOCK_TIMEOUT", "0.05")
        lock = ArtifactLock(lock_path)
        assert lock.timeout == pytest.approx(0.05)

    def test_explicit_timeout_beats_the_knob(self, lock_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_LOCK_TIMEOUT", "99")
        assert ArtifactLock(lock_path, timeout=0.5).timeout == 0.5


class TestTakeover:
    def test_dead_pid_stamp_is_taken_over_loudly(self, lock_path):
        lock_path.write_text(f"{_stale_pid()}\n")
        before = _takeovers()
        with pytest.warns(DegradedExecutionWarning, match="dead"):
            with ArtifactLock(lock_path):
                pass
        assert _takeovers() == before + 1

    def test_torn_stamp_counts_as_takeover(self, lock_path):
        lock_path.write_text("not-a-pid")
        before = _takeovers()
        with pytest.warns(DegradedExecutionWarning):
            with ArtifactLock(lock_path):
                pass
        assert _takeovers() == before + 1

    def test_stale_fault_site_forces_the_takeover_path(
        self, lock_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "store_lock_stale")
        before = _takeovers()
        with pytest.warns(DegradedExecutionWarning, match="dead"):
            with ArtifactLock(lock_path):
                pass
        assert _takeovers() == before + 1

    def test_takeover_still_stamps_the_new_holder(self, lock_path):
        lock_path.write_text(f"{_stale_pid()}\n")
        with pytest.warns(DegradedExecutionWarning):
            with ArtifactLock(lock_path):
                assert lock_path.read_text().strip() == str(os.getpid())
