"""Nearest-neighbour classifier."""

import pytest

from repro.classify import NearestNeighborClassifier
from repro.core import get_distance
from repro.index import LaesaIndex

TRAIN = ["aaaa", "aaab", "aaba", "bbbb", "bbba", "bbab"]
LABELS = ["A", "A", "A", "B", "B", "B"]


class TestFit:
    def test_predict_before_fit(self):
        clf = NearestNeighborClassifier(get_distance("levenshtein"))
        with pytest.raises(RuntimeError):
            clf.predict_one("aaaa")

    def test_label_mismatch(self):
        clf = NearestNeighborClassifier(get_distance("levenshtein"))
        with pytest.raises(ValueError):
            clf.fit(["a", "b"], ["A"])

    def test_k_validation(self):
        with pytest.raises(ValueError):
            NearestNeighborClassifier(get_distance("levenshtein"), k=0)

    def test_k_larger_than_train(self):
        clf = NearestNeighborClassifier(get_distance("levenshtein"), k=5)
        with pytest.raises(ValueError):
            clf.fit(["a", "b"], ["A", "B"])


class TestPredict:
    def test_obvious_classes(self):
        clf = NearestNeighborClassifier(get_distance("levenshtein"))
        clf.fit(TRAIN, LABELS)
        assert clf.predict_one("aaaa")[0] == "A"
        assert clf.predict_one("bbbb")[0] == "B"
        assert clf.predict_one("aaab")[0] == "A"

    def test_stats_returned(self):
        clf = NearestNeighborClassifier(get_distance("levenshtein"))
        clf.fit(TRAIN, LABELS)
        _, stats = clf.predict_one("abab")
        assert stats.distance_computations == len(TRAIN)

    def test_laesa_factory(self):
        clf = NearestNeighborClassifier(
            get_distance("levenshtein"),
            index_factory=lambda items, d: LaesaIndex(items, d, n_pivots=2),
        )
        clf.fit(TRAIN, LABELS)
        assert clf.predict_one("aaaa")[0] == "A"

    def test_k3_majority(self):
        clf = NearestNeighborClassifier(get_distance("levenshtein"), k=3)
        clf.fit(TRAIN, LABELS)
        assert clf.predict_one("aaaa")[0] == "A"

    def test_k2_tie_broken_by_nearest(self):
        train = ["aa", "zz"]
        labels = ["A", "Z"]
        clf = NearestNeighborClassifier(get_distance("levenshtein"), k=2)
        clf.fit(train, labels)
        # both classes get one vote; the closer neighbour (aa) wins
        assert clf.predict_one("aa")[0] == "A"


class TestEvaluate:
    def test_error_rate(self):
        clf = NearestNeighborClassifier(get_distance("levenshtein"))
        clf.fit(TRAIN, LABELS)
        stats = clf.evaluate(["aaaa", "bbbb"], ["A", "B"])
        assert stats.error_rate == 0.0
        stats = clf.evaluate(["aaaa", "bbbb"], ["B", "A"])
        assert stats.error_rate == 1.0

    def test_aggregates(self):
        clf = NearestNeighborClassifier(get_distance("levenshtein"))
        clf.fit(TRAIN, LABELS)
        stats = clf.evaluate(["aaaa", "abab", "bbbb"], ["A", "A", "B"])
        assert stats.n_queries == 3
        assert stats.distance_computations == 3 * len(TRAIN)
        assert stats.computations_per_query == pytest.approx(len(TRAIN))
        assert stats.seconds_per_query >= 0.0

    def test_length_mismatch(self):
        clf = NearestNeighborClassifier(get_distance("levenshtein"))
        clf.fit(TRAIN, LABELS)
        with pytest.raises(ValueError):
            clf.evaluate(["a"], ["A", "B"])
