"""The repeated-trial protocol and confusion matrices."""

import random

import pytest

from repro.classify import (
    NearestNeighborClassifier,
    confusion_matrix,
    repeated_classification,
)
from repro.core import get_distance
from repro.datasets import Dataset


def _toy_dataset(per_class=12, seed=0):
    """Two well-separated synthetic classes of strings."""
    rng = random.Random(seed)
    items, labels = [], []
    for _ in range(per_class):
        items.append("aaaa" + "".join(rng.choice("ab") for _ in range(2)))
        labels.append("A")
        items.append("zzzz" + "".join(rng.choice("yz") for _ in range(2)))
        labels.append("Z")
    return Dataset(name="toy", items=tuple(items), labels=tuple(labels))


class TestRepeatedClassification:
    def test_perfect_separation(self):
        data = _toy_dataset()
        summary = repeated_classification(
            data,
            get_distance("levenshtein"),
            per_class=4,
            n_test=10,
            n_trials=3,
            seed=1,
        )
        assert summary.mean_error_rate == 0.0
        assert summary.n_trials == 3
        assert len(summary.error_rates) == 3

    def test_requires_labels(self):
        data = Dataset(name="u", items=("a", "b", "c"))
        with pytest.raises(ValueError):
            repeated_classification(data, get_distance("levenshtein"))

    def test_deterministic_in_seed(self):
        data = _toy_dataset()
        a = repeated_classification(
            data, get_distance("levenshtein"), per_class=4, n_test=8,
            n_trials=2, seed=7,
        )
        b = repeated_classification(
            data, get_distance("levenshtein"), per_class=4, n_test=8,
            n_trials=2, seed=7,
        )
        assert a.error_rates == b.error_rates

    def test_deviation_zero_for_single_trial(self):
        data = _toy_dataset()
        summary = repeated_classification(
            data, get_distance("levenshtein"), per_class=4, n_test=8,
            n_trials=1, seed=2,
        )
        assert summary.error_rate_deviation == 0.0

    def test_summary_text(self):
        data = _toy_dataset()
        summary = repeated_classification(
            data, get_distance("levenshtein"), per_class=4, n_test=8,
            n_trials=2, seed=3,
        )
        assert "error" in summary.summary()
        assert "trials" in summary.summary()

    def test_per_class_exhausting_data(self):
        data = _toy_dataset(per_class=3)
        with pytest.raises(ValueError):
            repeated_classification(
                data, get_distance("levenshtein"), per_class=3, n_test=5,
                n_trials=1, seed=4,
            )


class TestConfusionMatrix:
    def test_diagonal_for_perfect_classifier(self):
        data = _toy_dataset()
        clf = NearestNeighborClassifier(get_distance("levenshtein"))
        clf.fit(data.items, data.labels)
        matrix = confusion_matrix(clf, data.items[:8], data.labels[:8])
        assert all(truth == predicted for truth, predicted in matrix)
        assert sum(matrix.values()) == 8
