"""Cross-subsystem integration: the full pipeline on miniature data.

Exercises the same paths the paper's evaluation uses -- dataset
generation -> distance registry -> metric index -> classifier ->
analysis -> export -- in one deterministic flow, asserting the
interesting invariants at each junction.
"""

import json
import random

import pytest

from repro.analysis import (
    DistanceHistogram,
    heuristic_agreement,
    intrinsic_dimensionality,
    pairwise_distance_sample,
)
from repro.classify import NearestNeighborClassifier, repeated_classification
from repro.core import PAPER_ALL, get_distance
from repro.datasets import (
    handwritten_digits,
    listeria_genes,
    perturbed_queries,
    spanish_dictionary,
)
from repro.index import ExhaustiveIndex, LaesaIndex


@pytest.fixture(scope="module")
def words():
    return spanish_dictionary(n_words=200, seed=77)


@pytest.fixture(scope="module")
def digits():
    return handwritten_digits(per_class=4, seed=77, grid=20)


class TestDictionaryPipeline:
    def test_perturbed_queries_recoverable(self, words):
        rng = random.Random(0)
        queries = perturbed_queries(words, 15, rng, operations=1)
        index = LaesaIndex(
            list(words.items), get_distance("contextual_heuristic"),
            n_pivots=10, rng=random.Random(1),
        )
        hits = 0
        for q in queries:
            result, stats = index.nearest(q)
            assert stats.distance_computations <= len(words)
            # a 1-op perturbation stays within d_E <= 1 of some word
            hits += result.distance <= 0.5
        assert hits >= 10

    def test_histogram_to_dimensionality_chain(self, words):
        values = pairwise_distance_sample(
            list(words.items), get_distance("contextual_heuristic"),
            max_pairs=800, rng=random.Random(2),
        )
        hist = DistanceHistogram.from_values(values, label="dC,h", bins=30)
        rho = intrinsic_dimensionality(hist.mean, hist.variance)
        assert rho == pytest.approx(hist.intrinsic_dimensionality)
        assert 0 < rho < 100

    def test_agreement_on_real_generator_output(self, words):
        report = heuristic_agreement(
            list(words.items), n_pairs=60, rng=random.Random(3)
        )
        assert report.agreement_rate > 0.7


class TestDigitsPipeline:
    def test_every_paper_distance_classifies(self, digits):
        rng = random.Random(4)
        train, rest = digits.stratified_split(3, rng)
        for name in PAPER_ALL:
            clf = NearestNeighborClassifier(get_distance(name)).fit(
                train.items, train.labels
            )
            stats = clf.evaluate(rest.items[:10], rest.labels[:10])
            assert 0.0 <= stats.error_rate <= 1.0, name

    def test_laesa_and_scan_agree_on_distances(self, digits):
        distance = get_distance("contextual_heuristic")
        items = list(digits.items)
        laesa = LaesaIndex(items, distance, n_pivots=6, rng=random.Random(5))
        scan = ExhaustiveIndex(items, distance)
        for q in items[::7]:
            a, _ = laesa.nearest(q)
            b, _ = scan.nearest(q)
            assert a.distance == pytest.approx(b.distance)

    def test_repeated_protocol_runs_with_laesa(self, digits):
        summary = repeated_classification(
            digits,
            get_distance("levenshtein"),
            index_factory=lambda items, d: LaesaIndex(
                items, d, n_pivots=4, rng=random.Random(6)
            ),
            per_class=2,
            n_test=8,
            n_trials=2,
            seed=7,
        )
        assert summary.n_trials == 2
        assert summary.mean_computations_per_query <= 20


class TestGenesPipeline:
    def test_distance_order_on_length_spread(self):
        genes = listeria_genes(n_genes=20, seed=8, max_length=240)
        items = list(genes.items)
        rho = {}
        for name in ("contextual_heuristic", "yujian_bo"):
            values = pairwise_distance_sample(
                items, get_distance(name), max_pairs=150,
                rng=random.Random(9),
            )
            rho[name] = intrinsic_dimensionality(
                float(values.mean()), float(values.var())
            )
        # Table 1's claim in miniature
        assert rho["contextual_heuristic"] < rho["yujian_bo"]


class TestExportPipeline:
    def test_smoke_experiment_round_trips(self, tmp_path):
        from repro.experiments import run
        from repro.experiments.export import export_result

        result = run("kgap", scale="smoke")
        paths = export_result(result, tmp_path, "kgap")
        data = json.loads((tmp_path / "kgap.json").read_text())
        assert data["scale"] == "smoke"
        assert set(data["distributions"]) == set(result.distributions)
