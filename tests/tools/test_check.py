"""The invariant linter: each rule fires on its fixture and nowhere else.

The fixtures under ``tests/tools/fixtures/`` are deliberately violating
modules -- they are parsed by the linter, never imported -- and each test
pins the exact rule codes (and lines, where stable) a scan must report.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.tools.check import (
    RULES,
    Violation,
    check_paths,
    check_tree,
    main,
)

FIXTURES = Path(__file__).parent / "fixtures"


def codes(violations) -> list:
    return [v.code for v in violations]


def lint(*relative: str):
    return check_paths([FIXTURES / rel for rel in relative])


class TestRuleR1:
    def test_every_raw_read_flavour_fires(self):
        violations = lint("r1_raw_env.py")
        assert codes(violations) == ["R1"] * 5
        reported = " ".join(v.message for v in violations)
        for name in ("REPRO_FIXTURE_A", "REPRO_FIXTURE_B", "REPRO_FIXTURE_C",
                     "REPRO_FIXTURE_D", "REPRO_FIXTURE_E"):
            assert name in reported

    def test_noqa_suppresses_the_marked_line_only(self):
        violations = lint("r1_raw_env.py")
        assert all("REPRO_FIXTURE_F" not in v.message for v in violations)

    def test_non_repro_variables_are_ignored(self):
        violations = lint("r1_raw_env.py")
        assert all("OTHER_VARIABLE" not in v.message for v in violations)


class TestRuleR2:
    def test_missing_and_drifted_twins_fire(self):
        violations = lint("twins")
        assert codes(violations) == ["R2", "R2"]
        missing, drifted = violations
        assert "missing_twin_kernel" in missing.message
        assert "drifted_kernel" in drifted.message
        assert "['X', 'Y', 'mx', 'my']" in drifted.message
        assert "['X', 'Y', 'my', 'mx']" in drifted.message

    def test_non_dispatching_helpers_are_exempt(self):
        violations = lint("twins")
        assert all("plain_helper" not in v.message for v in violations)

    def test_kernels_without_a_sibling_jit_module_pass(self, tmp_path):
        lone = tmp_path / "kernels.py"
        lone.write_text(
            "def k(X):\n    return jit.k(X)\n", encoding="utf-8"
        )
        assert check_paths([lone]) == []


class TestRuleR3:
    def test_leaky_class_fires_twice(self):
        violations = lint("shm_bad.py")
        assert codes(violations) == ["R3", "R3"]
        messages = " ".join(v.message for v in violations)
        assert "never" in messages  # no release call
        assert "FileNotFoundError" in messages  # no unlink guard

    def test_paired_release_and_guard_pass(self):
        assert lint("shm_good.py") == []


class TestRuleR4:
    def test_untracked_bulk_method_fires(self):
        violations = lint("index")
        assert codes(violations) == ["R4"]
        assert "bulk_untracked" in violations[0].message

    def test_tracked_lockstep_and_suppressed_methods_pass(self):
        reported = " ".join(v.message for v in lint("index"))
        assert "bulk_tracked" not in reported
        assert "bulk_lockstep" not in reported
        assert "bulk_suppressed" not in reported

    def test_rule_only_applies_inside_index_directories(self, tmp_path):
        stray = tmp_path / "bulk_paths.py"
        stray.write_text(
            (FIXTURES / "index" / "bulk_paths.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        assert check_paths([stray]) == []


class TestRuleR5:
    def test_unknown_site_fires(self):
        violations = lint("sites")
        assert codes(violations) == ["R5"]
        assert "gamma_site" in violations[0].message
        assert "alpha_site" in violations[0].message  # known list in message

    def test_registered_sites_pass(self):
        reported = " ".join(v.message for v in lint("sites"))
        assert "'alpha_site' is not" not in reported
        assert "'beta_site' is not" not in reported

    def test_without_a_faults_module_the_rule_is_silent(self):
        # armed.py alone (no faults.py in the scanned set): no site table,
        # so R5 has nothing to check against.
        assert lint("sites/armed.py") == []


class TestRuleR6:
    def test_every_bare_write_flavour_fires(self):
        violations = lint("store/writes.py")
        assert codes(violations) == ["R6"] * 5
        reported = " ".join(v.message for v in violations)
        for mode in ("'wb'", "'w'", "'a'", "'r+b'", "'w+'"):
            assert mode in reported
        assert "open_memmap" in reported

    def test_read_modes_and_noqa_are_exempt(self):
        reported = " ".join(v.message for v in lint("store/writes.py"))
        assert "'rb'" not in reported
        assert "'r'," not in reported  # read-only open_memmap
        suppressed_lines = [
            v.line for v in lint("store/writes.py")
        ]
        text = (FIXTURES / "store" / "writes.py").read_text(encoding="utf-8")
        noqa_line = next(
            i for i, line in enumerate(text.splitlines(), 1) if "noqa[R6]" in line
        )
        assert noqa_line not in suppressed_lines

    def test_atomic_module_is_the_sanctioned_writer(self):
        assert lint("store/atomic.py") == []

    def test_rule_only_applies_inside_store_directories(self, tmp_path):
        stray = tmp_path / "writes.py"
        stray.write_text(
            (FIXTURES / "store" / "writes.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        assert check_paths([stray]) == []


class TestWholeTreeScan:
    def test_fixture_tree_reports_every_rule(self):
        reported = set(codes(check_tree(str(FIXTURES))))
        assert reported == {"R1", "R2", "R3", "R4", "R5", "R6"}

    def test_real_tree_is_clean(self):
        repo_src = Path(__file__).parents[2] / "src"
        assert check_tree(str(repo_src)) == []

    def test_violations_sort_by_path_line_code(self):
        violations = check_tree(str(FIXTURES))
        keys = [(v.path, v.line, v.code) for v in violations]
        assert keys == sorted(keys)


class TestSyntaxErrors:
    def test_unparseable_file_reports_e0(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n", encoding="utf-8")
        violations = check_paths([broken])
        assert codes(violations) == ["E0"]


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        repo_src = Path(__file__).parents[2] / "src"
        assert main([str(repo_src / "repro" / "tools")]) == 0
        assert capsys.readouterr().out == ""

    def test_violating_tree_exits_one_and_renders(self, capsys):
        assert main([str(FIXTURES / "shm_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "shm_bad.py:" in out
        assert " R3 " in out

    def test_list_rules_prints_the_table(self, capsys):
        repo_tools = Path(__file__).parents[2] / "src" / "repro" / "tools"
        assert main(["--list-rules", str(repo_tools)]) == 0
        out = capsys.readouterr().out
        for code, summary in RULES.items():
            assert code in out
            assert summary in out


def test_render_format():
    violation = Violation("some/path.py", 12, "R1", "the message")
    assert violation.render() == "some/path.py:12: R1 the message"
