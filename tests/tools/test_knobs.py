"""The env-knob registry: accessor semantics, completeness, and the CLI."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.tools import knobs

REPO = Path(__file__).parents[2]


class TestRegistry:
    def test_specs_are_frozen_and_self_named(self):
        for name, spec in knobs.REGISTRY.items():
            assert spec.name == name
            assert spec.type in ("flag", "int", "float", "str")
            assert spec.description
            assert spec.module.startswith("repro.")
            with pytest.raises(AttributeError):
                spec.default = 0  # type: ignore[misc]

    def test_every_knob_read_in_src_is_registered(self):
        # Grep the tree for REPRO_* string literals; all of them must be
        # declared (the linter's R1 enforces the access *path*, this
        # enforces the *names*).
        pattern = re.compile(r"[\"'](REPRO_[A-Z0-9_]+)[\"']")
        seen = set()
        for path in (REPO / "src").rglob("*.py"):
            seen.update(pattern.findall(path.read_text(encoding="utf-8")))
        assert seen  # the engine reads knobs; an empty set means a bad glob
        unregistered = seen - set(knobs.REGISTRY)
        assert not unregistered

    def test_raw_rejects_unregistered_names(self):
        with pytest.raises(KeyError, match="REPRO_NOT_A_KNOB"):
            knobs.raw("REPRO_NOT_A_KNOB")

    def test_raw_returns_environment_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker_crash:p=1")
        assert knobs.raw("REPRO_FAULTS") == "worker_crash:p=1"
        monkeypatch.delenv("REPRO_FAULTS")
        assert knobs.raw("REPRO_FAULTS") is None


class TestFlagAccessor:
    @pytest.mark.parametrize("value", ["0", "off", "OFF", "false", "No", " 0 "])
    def test_off_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_INTERN", value)
        assert knobs.get_flag("REPRO_INTERN") is False

    @pytest.mark.parametrize("value", ["1", "on", "yes", "banana", ""])
    def test_everything_else_is_on(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_INTERN", value)
        assert knobs.get_flag("REPRO_INTERN") is True

    def test_unset_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_INTERN", raising=False)
        assert knobs.get_flag("REPRO_INTERN") is True


class TestNumericAccessors:
    def test_int_falls_back_to_caller_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_POOL_RETRIES", raising=False)
        assert knobs.get_int("REPRO_POOL_RETRIES", default=7) == 7
        monkeypatch.setenv("REPRO_POOL_RETRIES", "  ")
        assert knobs.get_int("REPRO_POOL_RETRIES", default=7) == 7

    def test_int_parses_and_clamps_env_values_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_RETRIES", "-3")
        assert knobs.get_int("REPRO_POOL_RETRIES", minimum=0) == 0
        # the caller's default is trusted as-is, below the clamp or not
        monkeypatch.delenv("REPRO_POOL_RETRIES")
        assert knobs.get_int("REPRO_POOL_RETRIES", default=-5, minimum=0) == -5

    def test_int_unset_without_default_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_AESA_BULK_MAX_ITEMS", raising=False)
        assert knobs.get_int("REPRO_AESA_BULK_MAX_ITEMS") is None

    def test_float_accessor(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_TIMEOUT", "2.5")
        assert knobs.get_float("REPRO_POOL_TIMEOUT", default=300.0) == 2.5
        monkeypatch.delenv("REPRO_POOL_TIMEOUT")
        assert knobs.get_float("REPRO_POOL_TIMEOUT", default=300.0) == 300.0


class TestStrAccessor:
    def test_verbatim_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker_hang:s=0.1, seed=3")
        # verbatim (no strip): the spec string is a cache key downstream
        assert knobs.get_str("REPRO_FAULTS") == "worker_hang:s=0.1, seed=3"

    def test_unset_and_blank_are_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert knobs.get_str("REPRO_FAULTS") is None
        monkeypatch.setenv("REPRO_FAULTS", "   ")
        assert knobs.get_str("REPRO_FAULTS") is None


class TestMarkdown:
    def test_table_lists_every_knob_sorted(self):
        table = knobs.markdown_table()
        rows = [line for line in table.splitlines() if line.count("|") >= 6]
        body = rows[1:]  # drop the header; the separator has no backticks
        names = [line.split("`")[1] for line in body if "REPRO_" in line]
        assert names == sorted(knobs.REGISTRY)

    def test_readme_table_is_in_sync(self):
        assert knobs._check_readme(str(REPO / "README.md")) == []

    def test_stale_readme_is_detected(self, tmp_path):
        readme = tmp_path / "README.md"
        readme.write_text(
            f"{knobs._TABLE_START}\n| stale |\n{knobs._TABLE_END}\n",
            encoding="utf-8",
        )
        problems = knobs._check_readme(str(readme))
        assert len(problems) == 1
        assert "stale" in problems[0]

    def test_missing_markers_are_detected(self, tmp_path):
        readme = tmp_path / "README.md"
        readme.write_text("no markers here\n", encoding="utf-8")
        problems = knobs._check_readme(str(readme))
        assert len(problems) == 1
        assert "markers" in problems[0]


class TestCli:
    def test_markdown_flag_prints_the_table(self, capsys):
        assert knobs.main(["--markdown"]) == 0
        assert capsys.readouterr().out.strip() == knobs.markdown_table()

    def test_check_flag_passes_on_the_committed_readme(self, capsys):
        assert knobs.main(["--check", str(REPO / "README.md")]) == 0
        assert "in sync" in capsys.readouterr().out

    def test_check_flag_fails_on_a_stale_table(self, tmp_path, capsys):
        readme = tmp_path / "README.md"
        readme.write_text(
            f"{knobs._TABLE_START}\nstale\n{knobs._TABLE_END}\n",
            encoding="utf-8",
        )
        assert knobs.main(["--check", str(readme)]) == 1
        assert "stale" in capsys.readouterr().err

    def test_no_arguments_prints_help(self, capsys):
        assert knobs.main([]) == 0
        assert "registry" in capsys.readouterr().out
