"""R4 fixture: index bulk methods with and without degradation cover."""


class FixtureIndex:
    def bulk_untracked(self, queries):
        return [self._search(q) for q in queries]

    def bulk_tracked(self, queries):
        with self._track_degradation():
            return [self._search(q) for q in queries]

    def bulk_lockstep(self, queries):
        return self._lockstep_drive(queries, [])

    def bulk_suppressed(self, queries):  # repro: noqa[R4]
        return [self._search(q) for q in queries]

    def knn(self, query):
        return self._search(query)
