"""R3 fixture: the compliant shape -- paired release and a race guard."""

from multiprocessing.shared_memory import SharedMemory


class Tidy:
    def publish(self, n):
        self.segment = SharedMemory(create=True, size=n)
        return self.segment.name

    def release(self):
        try:
            self.segment.close()
            self.segment.unlink()
        except FileNotFoundError:
            pass  # someone else unlinked first; fine
