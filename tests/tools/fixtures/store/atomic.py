"""R6 fixture: ``atomic.py`` is the sanctioned writer -- these same
write shapes must NOT fire inside it."""

EXEMPT_WRITE = open("artifact.tmp", "wb")

with open("manifest.tmp", mode="w") as handle:
    handle.write("{}")
