"""R6 fixture: every bare-write flavour the rule must catch inside a
``store`` directory, plus the shapes it must leave alone."""

from numpy.lib.format import open_memmap

# -- violations --------------------------------------------------------------

with open("artifact.npy", "wb") as handle:  # positional write mode
    handle.write(b"torn")

with open("artifact.json", mode="w") as handle:  # keyword write mode
    handle.write("{}")

APPENDED = open("artifact.log", "a")  # append tears too

UPDATED = open("artifact.bin", "r+b")  # update mode is writable

MAPPED = open_memmap("matrix.npy", mode="w+", shape=(2, 2))  # numpy writer

SUPPRESSED = open("escape.bin", "wb")  # repro: noqa[R6]

# -- non-violations ----------------------------------------------------------

with open("artifact.npy", "rb") as handle:  # read mode is safe
    handle.read()

READ_DEFAULT = open("manifest.json")  # default mode is "r"

READ_MAPPED = open_memmap("matrix.npy", mode="r")  # read-only mapping

NOT_A_MODE = open("w")  # single path argument, not a mode
