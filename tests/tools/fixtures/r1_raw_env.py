"""R1 fixture: every flavour of raw REPRO_* environment read."""

import os
from os import environ, getenv

SUBSCRIPT = os.environ["REPRO_FIXTURE_A"]
GET = os.environ.get("REPRO_FIXTURE_B", "1")
GETENV = os.getenv("REPRO_FIXTURE_C")
BARE_ENVIRON = environ.get("REPRO_FIXTURE_D")
BARE_GETENV = getenv("REPRO_FIXTURE_E")
SUPPRESSED = os.environ.get("REPRO_FIXTURE_F")  # repro: noqa[R1]
NOT_A_KNOB = os.environ.get("OTHER_VARIABLE")
