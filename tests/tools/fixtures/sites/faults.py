"""R5 fixture: the declared fault sites."""

SITES = ("alpha_site", "beta_site")
