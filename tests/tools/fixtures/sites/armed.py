"""R5 fixture: fault hooks with one registered and one unknown site."""

faults = None  # stands in for the faults module


def run():
    if faults.check("alpha_site"):
        return 1
    if faults.check("gamma_site"):
        return 2
    if faults.should_fire("beta_site"):
        return 3
    return 0
