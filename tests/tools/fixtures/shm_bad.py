"""R3 fixture: shared memory created, never released, no unlink guard."""

from multiprocessing.shared_memory import SharedMemory


class Leaky:
    def publish(self, n):
        self.segment = SharedMemory(create=True, size=n)
        return self.segment.name
