"""R2 fixture: the numba twins (one missing, one with drifted params)."""


def good_kernel(X, Y, mx, my):
    return None


def drifted_kernel(X, Y, my, mx):  # swapped parameter order
    return None
