"""R2 fixture: numpy-side kernels, two of them out of parity."""

jit = None  # stands in for the backend module


def good_kernel(X, Y, mx, my):
    if jit is not None:
        return jit.good_kernel(X, Y, mx, my)
    return None


def missing_twin_kernel(X, Y):
    if jit is not None:
        return jit.missing_twin_kernel(X, Y)
    return None


def drifted_kernel(X, Y, mx, my):
    if jit is not None:
        return jit.drifted_kernel(X, Y, mx, my)
    return None


def plain_helper(X):
    return X
