"""Banded bounded batch sweeps must be bit-identical to the full-table
path and to the scalar twins.

The tentpole claim of the banded kernels is that carrying per-pair edit
budgets through the batch sweep changes *work*, never *values*: exactness
below the budget, a witness above it, and the engine's replayed bounded
arithmetic equal to ``CountingDistance.within`` slot by slot.  These
tests pin that across length regimes (words / DNA-like / digit-contour-
like), tight and loose radii, and the full-table fallback.
"""

import random

import numpy as np
import pytest

from repro.batch import pairwise_values_bounded
from repro.batch.engine import _banded_batch_enabled
from repro.batch.kernels import (
    contextual_heuristic_batch_bounded,
    contextual_heuristic_batch_bounded_numpy,
    contextual_heuristic_batch_numpy,
    levenshtein_batch_bounded,
    levenshtein_batch_bounded_numpy,
    levenshtein_batch_numpy,
)
from repro.core import get_spec
from repro.index.base import CountingDistance

INF = float("inf")

#: (alphabet, min_len, max_len) per length regime of the paper's datasets.
REGIMES = {
    "word": ("abcde", 0, 9),
    "dna": ("acgt", 12, 45),
    "digit": ("01234567", 35, 90),
}

TWINNED = (
    "levenshtein",
    "dmax",
    "dsum",
    "dmin",
    "yujian_bo",
    "contextual_heuristic",
)


def _pairs(seed, regime, count):
    alphabet, lo, hi = REGIMES[regime]
    rng = random.Random(seed)

    def word():
        return "".join(
            rng.choice(alphabet) for _ in range(rng.randint(lo, hi))
        )

    return [(word(), word()) for _ in range(count)], rng


@pytest.mark.parametrize("regime", sorted(REGIMES))
def test_banded_kernels_match_scalar_truth(regime):
    """Exact value (and Ni) iff the true distance fits the budget; any
    witness above the budget otherwise -- against the scalar DPs."""
    from repro.core.contextual import _heuristic_tables
    from repro.core.levenshtein import levenshtein_distance

    pairs, rng = _pairs(0xBA0 + len(regime), regime, 80)
    bounds = [rng.choice([0, 1, 2, 4, 8, 15, 1 << 20]) for _ in pairs]
    values, exact = levenshtein_batch_bounded_numpy(pairs, bounds)
    d_e, ni, ctx_exact = contextual_heuristic_batch_bounded_numpy(pairs, bounds)
    for p, (x, y) in enumerate(pairs):
        true = levenshtein_distance(x, y)
        budget = min(max(bounds[p], 0), len(x) + len(y))
        if true <= budget:
            assert exact[p] and values[p] == true, (regime, x, y, bounds[p])
            true_d, true_ni = _heuristic_tables(x, y)
            assert ctx_exact[p] and d_e[p] == true_d and ni[p] == true_ni
        else:
            assert not exact[p] and values[p] > budget, (regime, x, y)
            assert not ctx_exact[p] and d_e[p] > budget


@pytest.mark.parametrize("regime", sorted(REGIMES))
def test_banded_dispatch_matches_numpy(regime):
    """The dispatching entry points agree with the numpy banded kernels
    whatever backend is active (compiled kernels are the same DP)."""
    pairs, rng = _pairs(0xD15 + len(regime), regime, 60)
    bounds = [rng.choice([0, 2, 5, 9, 1 << 20]) for _ in pairs]
    v1, e1 = levenshtein_batch_bounded(pairs, bounds)
    v2, e2 = levenshtein_batch_bounded_numpy(pairs, bounds)
    assert v1.tolist() == v2.tolist() and e1.tolist() == e2.tolist()
    a1, b1, c1 = contextual_heuristic_batch_bounded(pairs, bounds)
    a2, b2, c2 = contextual_heuristic_batch_bounded_numpy(pairs, bounds)
    assert a1.tolist() == a2.tolist()
    assert b1.tolist() == b2.tolist()
    assert c1.tolist() == c2.tolist()


def test_full_band_budgets_degenerate_to_full_tables():
    """Budgets covering the whole table reproduce the full kernels."""
    pairs, _ = _pairs(0xF11, "dna", 50)
    bounds = [len(x) + len(y) for x, y in pairs]
    values, exact = levenshtein_batch_bounded_numpy(pairs, bounds)
    assert exact.all()
    assert values.tolist() == levenshtein_batch_numpy(pairs).tolist()
    d_e, ni, ctx_exact = contextual_heuristic_batch_bounded_numpy(pairs, bounds)
    full_d, full_ni = contextual_heuristic_batch_numpy(pairs)
    assert ctx_exact.all()
    assert d_e.tolist() == full_d.tolist()
    assert ni.tolist() == full_ni.tolist()


def test_retirement_and_compaction_paths():
    """A bucket where most budgets are hopeless exercises mid-sweep
    retirement and row compaction without perturbing the survivors."""
    rng = random.Random(0xC0C0)
    base = "".join(rng.choice("01234567") for _ in range(70))
    near = base[:30] + "7" + base[31:]  # distance 1 twin
    far = [
        "".join(rng.choice("01234567") for _ in range(70)) for _ in range(20)
    ]
    pairs = [(base, near)] + [(base, f) for f in far]
    bounds = [3] * len(pairs)
    values, exact = levenshtein_batch_bounded_numpy(pairs, bounds)
    assert exact[0] and values[0] == 1
    from repro.core.levenshtein import levenshtein_distance

    for p, f in enumerate(far, start=1):
        true = levenshtein_distance(base, f)
        if true <= 3:  # pragma: no cover - astronomically unlikely
            assert exact[p] and values[p] == true
        else:
            assert not exact[p] and values[p] == 4


@pytest.mark.parametrize("name", TWINNED)
@pytest.mark.parametrize("regime", sorted(REGIMES))
def test_engine_matches_within_across_regimes(name, regime):
    """``pairwise_values_bounded`` equals ``within`` slot by slot at
    tight and loose limits, in every length regime."""
    fn = get_spec(name).function
    counter = CountingDistance(fn)
    pairs, rng = _pairs(0xE9E + hash((name, regime)) % 1000, regime, 60)
    limits = [
        rng.choice([0.0, 0.05, 0.15, 0.4, 0.9, 2.0, 6.0, INF]) for _ in pairs
    ]
    got = pairwise_values_bounded(fn, pairs, limits)
    for p, ((x, y), limit) in enumerate(zip(pairs, limits)):
        assert got[p] == counter.within(x, y, limit), (name, regime, x, y, limit)


@pytest.mark.parametrize("name", ("dmax", "contextual_heuristic"))
def test_engine_banded_equals_full_table_fallback(name, monkeypatch):
    """``REPRO_BANDED_BATCH=0`` (the full-table fallback) returns the
    same values and dtypes as the banded path."""
    fn = get_spec(name).function
    pairs, rng = _pairs(0xFA1 + len(name), "digit", 50)
    limits = [rng.choice([0.1, 0.2, 0.35, INF]) for _ in pairs]
    banded = pairwise_values_bounded(fn, pairs, limits)
    assert _banded_batch_enabled()
    monkeypatch.setenv("REPRO_BANDED_BATCH", "0")
    assert not _banded_batch_enabled()
    full = pairwise_values_bounded(fn, pairs, limits)
    assert banded.dtype == full.dtype
    assert banded.tolist() == full.tolist()


def test_mixed_limits_per_duplicate_pair():
    """Duplicated pairs with different limits share one banded DP at the
    widest budget yet each slot replays its own limit."""
    counter = CountingDistance(get_spec("dmax").function)
    x = "0123456701234567012345670123456"
    y = "0123456701234567012345671123456"
    z = "7654321076543210765432107654321"
    pairs = [(x, y), (x, y), (x, z), (x, y), (x, z)]
    limits = [0.01, INF, 0.02, 0.5, INF]
    got = pairwise_values_bounded("dmax", pairs, limits)
    want = [counter.within(a, b, lim) for (a, b), lim in zip(pairs, limits)]
    assert got.tolist() == want


def test_per_query_counts_identical_under_banded_engine():
    """Scalar vs lockstep bulk searches: identical neighbours, prune
    decisions and per-query computation counts with the banded engine
    underneath (the prune outcomes are visible in the counts)."""
    from repro.index import LaesaIndex

    rng = random.Random(0x5EA)
    items = [
        "".join(rng.choice("01234567") for _ in range(rng.randint(35, 70)))
        for _ in range(48)
    ]
    queries = [
        "".join(rng.choice("01234567") for _ in range(rng.randint(35, 70)))
        for _ in range(12)
    ]
    index = LaesaIndex(items, get_spec("contextual_heuristic").function, n_pivots=8)
    scalar = [index.knn(q, 2) for q in queries]
    bulk = index.bulk_knn(queries, 2)
    for (t_res, t_stats), (g_res, g_stats) in zip(scalar, bulk):
        assert [(r.index, r.distance) for r in t_res] == [
            (r.index, r.distance) for r in g_res
        ]
        assert t_stats.distance_computations == g_stats.distance_computations


def test_empty_and_trivial_pairs():
    pairs = [("", ""), ("", "abc"), ("abc", ""), ("a", "a")]
    bounds = [0, 1, 5, 0]
    values, exact = levenshtein_batch_bounded_numpy(pairs, bounds)
    assert values.tolist() == [0, 2, 3, 0]
    assert exact.tolist() == [True, False, True, True]
    got = pairwise_values_bounded("dsum", pairs, [0.0, 0.1, INF, 0.5])
    counter = CountingDistance(get_spec("dsum").function)
    assert got.tolist() == [
        counter.within(x, y, lim)
        for (x, y), lim in zip(pairs, [0.0, 0.1, INF, 0.5])
    ]


def test_bounds_length_mismatch_is_callers_problem():
    # the kernels align bounds positionally; the engine validates sizes
    with pytest.raises(ValueError):
        pairwise_values_bounded("dmax", [("a", "b")], [0.1, 0.2])


def test_numpy_kernel_returns_witness_dtype():
    values, exact = levenshtein_batch_bounded_numpy([("abc", "xyz")], [1])
    assert values.dtype == np.int64
    assert exact.dtype == np.bool_


@pytest.mark.parametrize("cadence", ["1", "2", "4", "7", "1000"])
def test_retirement_cadence_is_bit_identical(cadence, monkeypatch):
    """Sampling the retirement check every N diagonals only moves *when*
    hopeless pairs stop sweeping -- every (value, exact) output must
    equal the cadence-1 (check-every-diagonal) baseline."""
    pairs, rng = _pairs(0xCAD, "word", 300)
    pairs += _pairs(0xCAD + 1, "dna", 120)[0]
    bounds = [rng.randrange(0, 14) for _ in pairs]
    monkeypatch.setenv("REPRO_RETIRE_CADENCE", "1")
    base_lev = levenshtein_batch_bounded_numpy(pairs, bounds)
    base_ctx = contextual_heuristic_batch_bounded_numpy(pairs, bounds)
    monkeypatch.setenv("REPRO_RETIRE_CADENCE", cadence)
    got_lev = levenshtein_batch_bounded_numpy(pairs, bounds)
    got_ctx = contextual_heuristic_batch_bounded_numpy(pairs, bounds)
    assert got_lev[0].tolist() == base_lev[0].tolist()
    assert got_lev[1].tolist() == base_lev[1].tolist()
    for got, base in zip(got_ctx, base_ctx):
        assert got.tolist() == base.tolist()


def test_retirement_cadence_engine_identity(monkeypatch):
    """The engine's bounded values (and hence within()) are cadence-
    independent end to end."""
    pairs, rng = _pairs(0xCAE, "digit", 60)
    limits = [rng.random() * 0.4 for _ in pairs]
    monkeypatch.setenv("REPRO_RETIRE_CADENCE", "1")
    base = pairwise_values_bounded("dmax", pairs, limits)
    monkeypatch.setenv("REPRO_RETIRE_CADENCE", "6")
    got = pairwise_values_bounded("dmax", pairs, limits)
    assert got.tolist() == base.tolist()
