"""The persistent engine runtime: pool reuse, shared-memory publication,
supervision, teardown hygiene, and the opt-out that restores the
per-call behaviour."""

import os
import time

import numpy as np
import pytest

import repro.batch.engine as engine
import repro.batch.runtime as runtime
from repro.batch import intern_corpus, pairwise_values_ids, persistent_pool_enabled


def _double(x):
    return x * 2


def _sleep_forever(x):  # pragma: no cover - killed by the supervisor
    time.sleep(60)
    return x


def _boom(x):
    raise ValueError("boom")


@pytest.fixture
def fresh_runtime():
    """An isolated EngineRuntime (module singleton untouched)."""
    rt = runtime.EngineRuntime()
    yield rt
    rt.shutdown()


@pytest.fixture
def corpus():
    import random

    rng = random.Random(11)
    words = [
        "".join(rng.choice("abcdef") for _ in range(rng.randint(3, 12)))
        for _ in range(120)
    ]
    return intern_corpus(words)


def test_persistent_pool_env(monkeypatch):
    assert persistent_pool_enabled()
    monkeypatch.setenv("REPRO_PERSISTENT_POOL", "0")
    assert not persistent_pool_enabled()
    monkeypatch.setenv("REPRO_PERSISTENT_POOL", "no")
    assert not persistent_pool_enabled()


def test_publish_and_attach_roundtrip(fresh_runtime, corpus):
    store = corpus.store(["abcdef"])
    token = fresh_runtime.publish_store(store)
    if token is None:  # pragma: no cover - no shared memory on this host
        pytest.skip("shared memory unavailable")
    assert token.corpus.persistent
    assert token.extra is not None and not token.extra.persistent
    # corpus publication is cached on the corpus object
    again = fresh_runtime.publish_store(corpus.store(["zzz"]))
    assert again.corpus is token.corpus
    # an in-process attach sees the same rows the store gathers
    attached, ephemeral = runtime.attach_store(token)
    x_ids = np.array([0, 3, 120])
    y_ids = np.array([5, 120, 7])
    for got, want in zip(attached.gather(x_ids, y_ids), store.gather(x_ids, y_ids)):
        assert np.array_equal(got, want)
    runtime.release_attachment(ephemeral)
    fresh_runtime.release_block(token.extra)


def test_worker_fn_memoised():
    engine._WORKER_FNS.clear()
    fn1 = engine._worker_fn("levenshtein")
    fn2 = engine._worker_fn("levenshtein")
    assert fn1 is fn2
    assert "levenshtein" in engine._WORKER_FNS


def test_fan_out_ids_uses_one_pool_across_calls(corpus, monkeypatch):
    """Two sharded interned calls must reuse the same pool object and
    return values identical to the serial path."""
    monkeypatch.setenv("REPRO_MIN_PAIRS_PER_WORKER", "50")
    store = corpus.store()
    x_ids = np.repeat(np.arange(120), 20)
    y_ids = np.tile(np.arange(20), 120)
    serial = pairwise_values_ids("levenshtein", store, x_ids, y_ids, workers=None)
    pooled = pairwise_values_ids("levenshtein", store, x_ids, y_ids, workers=2)
    assert serial.tolist() == pooled.tolist()
    rt = runtime.get_runtime()
    if rt._pool is None:  # pragma: no cover - fork unavailable on this host
        pytest.skip("process pool unavailable")
    pool = rt._pool
    again = pairwise_values_ids("dmax", store, x_ids, y_ids, workers=2)
    assert rt._pool is pool, "second sharded call spawned a fresh pool"
    check = pairwise_values_ids("dmax", store, x_ids, y_ids, workers=None)
    assert again.tolist() == check.tolist()


def test_opt_out_bypasses_the_persistent_pool(corpus, monkeypatch):
    monkeypatch.setenv("REPRO_MIN_PAIRS_PER_WORKER", "50")
    monkeypatch.setenv("REPRO_PERSISTENT_POOL", "0")
    store = corpus.store()
    x_ids = np.repeat(np.arange(120), 20)
    y_ids = np.tile(np.arange(20), 120)
    calls = []
    monkeypatch.setattr(
        runtime.EngineRuntime,
        "map",
        lambda self, fn, chunks, workers: calls.append(fn) or None,
    )
    values = pairwise_values_ids("levenshtein", store, x_ids, y_ids, workers=2)
    assert not calls, "persistent pool used despite REPRO_PERSISTENT_POOL=0"
    serial = pairwise_values_ids("levenshtein", store, x_ids, y_ids, workers=None)
    assert values.tolist() == serial.tolist()


def test_map_survives_a_broken_pool(fresh_runtime):
    pool = fresh_runtime.pool(2)
    if pool is None:  # pragma: no cover - fork unavailable on this host
        pytest.skip("process pool unavailable")
    pool.terminate()  # kill it behind the runtime's back
    result = fresh_runtime.map(os.getpid.__class__, [1, 2], 2)  # bad fn too
    assert result is None
    assert fresh_runtime._pool is None  # discarded, next call respawns


def test_shutdown_invalidates_cached_corpus_tokens(fresh_runtime, corpus):
    """A token whose segments a shutdown unlinked must never be handed
    out again -- the corpus republishes under the new generation."""
    store = corpus.store()
    first = fresh_runtime.publish_store(store)
    if first is None:  # pragma: no cover - no shared memory on this host
        pytest.skip("shared memory unavailable")
    fresh_runtime.shutdown()
    second = fresh_runtime.publish_store(store)
    assert second is not None
    assert second.corpus is not first.corpus
    # and the fresh segments are attachable
    attached, ephemeral = runtime.attach_store(second)
    assert attached.n_corpus == len(corpus)
    runtime.release_attachment(ephemeral)


def test_supervised_map_happy_path(fresh_runtime):
    out = fresh_runtime.supervised_map(_double, [1, 2, 3], 2, sizes=[1, 1, 1])
    if out is None:  # pragma: no cover - fork unavailable on this host
        pytest.skip("process pool unavailable")
    results, failed = out
    assert results == [2, 4, 6]
    assert failed == []


def test_supervised_map_reports_failed_chunks(fresh_runtime, monkeypatch):
    monkeypatch.setenv("REPRO_POOL_RETRIES", "1")
    before = runtime.DEGRADATION.snapshot()["pool_errors"]
    out = fresh_runtime.supervised_map(_boom, [1, 2], 2)
    if out is None:  # pragma: no cover - fork unavailable on this host
        pytest.skip("process pool unavailable")
    results, failed = out
    assert failed == [0, 1]
    assert results == [None, None]
    assert runtime.DEGRADATION.snapshot()["pool_errors"] > before
    assert fresh_runtime._pool is None  # failed round discards the pool


def test_supervised_map_deadline_catches_wedged_workers(
    fresh_runtime, monkeypatch
):
    """A worker that never returns must surface as a timed-out chunk,
    not a hung call."""
    monkeypatch.setenv("REPRO_POOL_TIMEOUT", "0.5")
    monkeypatch.setenv("REPRO_POOL_RETRIES", "0")
    before = runtime.DEGRADATION.snapshot()["pool_timeouts"]
    started = time.monotonic()
    out = fresh_runtime.supervised_map(_sleep_forever, [1], 1)
    if out is None:  # pragma: no cover - fork unavailable on this host
        pytest.skip("process pool unavailable")
    _, failed = out
    assert failed == [0]
    assert time.monotonic() - started < 30
    assert runtime.DEGRADATION.snapshot()["pool_timeouts"] > before


def test_discard_pool_joins_workers(fresh_runtime):
    """Satellite regression: discarding a pool must reap its workers --
    terminate-without-join used to leave zombies behind every respawn."""
    pool = fresh_runtime.pool(2)
    if pool is None:  # pragma: no cover - fork unavailable on this host
        pytest.skip("process pool unavailable")
    procs = list(pool._pool)
    fresh_runtime._discard_pool()
    for proc in procs:
        assert not proc.is_alive()
        assert proc.exitcode is not None, "worker was never joined"
    # and the kill-hardened variant must cope with wedged-looking pools
    pool = fresh_runtime.pool(2)
    procs = list(pool._pool)
    fresh_runtime._discard_pool(kill=True)
    for proc in procs:
        assert not proc.is_alive()
        assert proc.exitcode is not None


def test_release_tolerates_externally_unlinked_segments(fresh_runtime, corpus):
    """Satellite regression: a segment some other actor already removed
    (reaper in another process, manual rm, atexit-after-explicit races)
    must not break release_block or shutdown."""
    token = fresh_runtime.publish_store(corpus.store())
    if token is None:  # pragma: no cover - no shared memory on this host
        pytest.skip("shared memory unavailable")
    path = os.path.join("/dev/shm", token.corpus.rows_x.shm_name)
    if os.path.exists(path):
        os.unlink(path)  # simulate the racing unlink
    fresh_runtime.release_block(token.corpus)  # must not raise
    fresh_runtime.release_block(token.corpus)  # idempotent re-release
    fresh_runtime.shutdown()  # and shutdown stays clean too
    fresh_runtime.shutdown()  # including a second (atexit-style) pass


def test_segment_names_carry_the_session_prefix(fresh_runtime, corpus):
    token = fresh_runtime.publish_store(corpus.store())
    if token is None:  # pragma: no cover - no shared memory on this host
        pytest.skip("shared memory unavailable")
    prefix = f"repro-{os.getpid()}-"
    for spec in (token.corpus.rows_x, token.corpus.rows_y, token.corpus.lengths):
        assert spec.shm_name.startswith(prefix)


def test_stale_worker_attachment_is_refreshed(fresh_runtime, corpus):
    """A cached attachment whose publication generation lags the token's
    must be re-attached, not silently read."""
    store = corpus.store()
    first = fresh_runtime.publish_store(store)
    if first is None:  # pragma: no cover - no shared memory on this host
        pytest.skip("shared memory unavailable")
    attached, _ = runtime.attach_store(first)
    key = first.corpus.key
    assert key in runtime._ATTACHED_BLOCKS
    generation = runtime._ATTACHED_BLOCKS[key][0]
    fresh_runtime.shutdown()  # unlinks segments, bumps the generation
    second = fresh_runtime.publish_store(store)
    assert second.corpus.key == key, "republication must reuse the key"
    assert second.corpus.generation != generation
    again, _ = runtime.attach_store(second)  # must re-attach, not reuse
    assert runtime._ATTACHED_BLOCKS[key][0] == second.corpus.generation
    assert again.n_corpus == len(corpus)
    runtime._ATTACHED_BLOCKS.pop(key, None)


def test_corpus_segments_released_on_garbage_collection(fresh_runtime):
    """Persistent corpus publications die with their corpus, not with
    the process."""
    import gc

    from repro.batch import intern_corpus as build

    corpus = build(["abc", "defg", "hij"])
    token = fresh_runtime.publish_store(corpus.store())
    if token is None:  # pragma: no cover - no shared memory on this host
        pytest.skip("shared memory unavailable")
    names = {
        token.corpus.rows_x.shm_name,
        token.corpus.rows_y.shm_name,
        token.corpus.lengths.shm_name,
    }
    assert any(shm.name in names for shm in fresh_runtime._published)
    del corpus, token
    gc.collect()
    assert not any(shm.name in names for shm in fresh_runtime._published)


def test_publish_arrays_roundtrip(fresh_runtime):
    """A named-array bundle (the sharded tier's structure transport)
    publishes, attaches by name and caches per generation."""
    arrays = {
        "pivots": np.arange(12, dtype=np.int64),
        "rows": np.arange(24, dtype=np.float64).reshape(4, 6),
    }
    token = fresh_runtime.publish_arrays(arrays, persistent=True, key="t-bundle")
    if token is None:  # pragma: no cover - no shared memory on this host
        pytest.skip("shared memory unavailable")
    assert token.key == "t-bundle"
    attached, handles = runtime.attach_arrays(token)
    assert handles == []  # persistent bundles cache; nothing to close
    assert set(attached) == {"pivots", "rows"}
    assert (attached["pivots"] == arrays["pivots"]).all()
    assert (attached["rows"] == arrays["rows"]).all()
    # second attach is the cached one
    again, _ = runtime.attach_arrays(token)
    assert again["rows"] is attached["rows"]
    runtime._ATTACHED_ARRAYS.pop("t-bundle", None)
    fresh_runtime.release_arrays(token)


def test_stale_arrays_attachment_is_refreshed(fresh_runtime):
    """Generation verification applies to array bundles exactly as to
    corpus blocks: a shutdown invalidates cached worker attachments."""
    arrays = {"a": np.arange(6, dtype=np.float64)}
    first = fresh_runtime.publish_arrays(arrays, persistent=True, key="t-stale")
    if first is None:  # pragma: no cover - no shared memory on this host
        pytest.skip("shared memory unavailable")
    runtime.attach_arrays(first)
    assert runtime._ATTACHED_ARRAYS["t-stale"][0] == first.generation
    fresh_runtime.shutdown()
    second = fresh_runtime.publish_arrays(arrays, persistent=True, key="t-stale")
    assert second.generation != first.generation
    attached, _ = runtime.attach_arrays(second)
    assert runtime._ATTACHED_ARRAYS["t-stale"][0] == second.generation
    assert (attached["a"] == arrays["a"]).all()
    runtime._ATTACHED_ARRAYS.pop("t-stale", None)
