"""Streaming matrix shards, the on-disk memmap, and auto-sharding."""

import random

import numpy as np
import pytest

import repro.batch.engine as engine
from repro.batch import (
    pairwise_matrix,
    pairwise_matrix_blocks,
    pairwise_matrix_memmap,
    pairwise_values,
)


def _random_strings(seed, count, max_len, alphabet="abc"):
    rng = random.Random(seed)
    return [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(0, max_len)))
        for _ in range(count)
    ]


class TestBlocks:
    def test_blocks_reassemble_symmetric_matrix(self):
        items = _random_strings(1, 17, 9) + ["", "dup", "dup"]
        full = pairwise_matrix("levenshtein", items)
        parts = list(pairwise_matrix_blocks("levenshtein", items, block_rows=4))
        starts = [start for start, _, _ in parts]
        stops = [stop for _, stop, _ in parts]
        assert starts == list(range(0, len(items), 4))
        assert stops == starts[1:] + [len(items)]
        stacked = np.vstack([block for _, _, block in parts])
        assert np.array_equal(stacked, full)

    def test_blocks_reassemble_rectangular_matrix(self):
        xs = _random_strings(2, 7, 8)
        ys = _random_strings(3, 5, 8)
        full = pairwise_matrix("dmax", xs, ys)
        stacked = np.vstack(
            [b for _, _, b in pairwise_matrix_blocks("dmax", xs, ys, block_rows=3)]
        )
        assert np.array_equal(stacked, full)

    def test_single_oversized_block(self):
        xs = _random_strings(4, 5, 6)
        parts = list(pairwise_matrix_blocks("levenshtein", xs, block_rows=100))
        assert len(parts) == 1
        assert parts[0][:2] == (0, 5)

    def test_invalid_block_rows_rejected(self):
        with pytest.raises(ValueError):
            list(pairwise_matrix_blocks("levenshtein", ["a"], block_rows=0))


class TestMemmap:
    def test_symmetric_memmap_matches_in_memory(self, tmp_path):
        items = _random_strings(5, 19, 9) + ["", "x"]
        path = tmp_path / "sym.npy"
        mm = pairwise_matrix_memmap(
            "yujian_bo", items, path=path, block_rows=5
        )
        full = pairwise_matrix("yujian_bo", items)
        assert isinstance(mm, np.memmap)
        assert np.array_equal(np.asarray(mm), full)
        # reopenable in a later process without rebuilding
        reloaded = np.load(path, mmap_mode="r")
        assert np.array_equal(np.asarray(reloaded), full)

    def test_rectangular_memmap_matches_in_memory(self, tmp_path):
        xs = _random_strings(6, 8, 7)
        ys = _random_strings(7, 6, 7)
        path = tmp_path / "rect.npy"
        mm = pairwise_matrix_memmap(
            "levenshtein", xs, ys, path=path, block_rows=3
        )
        assert np.array_equal(
            np.asarray(mm), pairwise_matrix("levenshtein", xs, ys)
        )

    def test_invalid_block_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            pairwise_matrix_memmap(
                "levenshtein", ["a"], path=tmp_path / "m.npy", block_rows=-1
            )

    def test_close_returns_read_only_mapping(self, tmp_path):
        items = _random_strings(5, 11, 8)
        path = tmp_path / "closed.npy"
        mm = pairwise_matrix_memmap(
            "levenshtein", items, path=path, block_rows=2, close=True
        )
        full = pairwise_matrix("levenshtein", items)
        assert np.array_equal(np.asarray(mm), full)
        # the writable handle is gone: the returned mapping rejects writes
        assert not mm.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            mm[0, 0] = 1.0
        # and the on-disk file holds the flushed matrix
        assert np.array_equal(np.asarray(np.load(path, mmap_mode="r")), full)


class TestAutoWorkers:
    def test_auto_serial_below_threshold(self, monkeypatch):
        monkeypatch.setattr(engine, "_cpu_count", lambda: 8)
        # 8 cores but too few pairs per worker -> serial
        assert engine._resolve_workers("auto", 100, True) == 0

    def test_auto_shards_when_pairs_justify_pool(self, monkeypatch):
        monkeypatch.setattr(engine, "_cpu_count", lambda: 4)
        n = 4 * engine._MIN_PAIRS_PER_WORKER
        assert engine._resolve_workers("auto", n, True) == 4

    def test_auto_serial_on_single_core(self, monkeypatch):
        monkeypatch.setattr(engine, "_cpu_count", lambda: 1)
        assert engine._resolve_workers("auto", 10**6, True) == 0

    def test_auto_serial_for_unregistered(self, monkeypatch):
        monkeypatch.setattr(engine, "_cpu_count", lambda: 8)
        assert engine._resolve_workers("auto", 10**6, False) == 0

    def test_explicit_workers_passed_through(self):
        assert engine._resolve_workers(3, 10, True) == 3
        assert engine._resolve_workers(None, 10, True) == 0
        assert engine._resolve_workers(0, 10, True) == 0

    def test_unknown_string_rejected_clearly(self):
        with pytest.raises(ValueError, match="'auto'"):
            pairwise_values("levenshtein", [("a", "b")], workers="max")

    def test_auto_default_matches_serial_values(self, monkeypatch):
        pairs = [
            (x, y)
            for x in _random_strings(8, 9, 8)
            for y in _random_strings(9, 7, 8)
        ]
        monkeypatch.setattr(engine, "_MIN_PAIRS_PER_WORKER", 4)
        monkeypatch.setattr(engine, "_cpu_count", lambda: 2)
        auto = pairwise_values("levenshtein", pairs)  # workers="auto"
        serial = pairwise_values("levenshtein", pairs, workers=None)
        assert np.array_equal(auto, serial)
