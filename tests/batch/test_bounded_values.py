"""``pairwise_values_bounded`` must be bit-identical to ``within``.

The lockstep bulk drivers replace one scalar ``CountingDistance.within``
call per candidate with one slot of a batched engine call; any value
drift would silently change search results, so every distance with a
twin is cross-checked slot by slot against the scalar path.
"""

import random

import numpy as np
import pytest

from repro.batch import pairwise_values_bounded
from repro.core import get_spec
from repro.core.levenshtein import levenshtein_distance
from repro.index.base import CountingDistance

INF = float("inf")

#: Every registry distance with an early-exit twin, plus one without.
NAMES = (
    "levenshtein",
    "dmax",
    "dsum",
    "dmin",
    "yujian_bo",
    "contextual_heuristic",
    "marzal_vidal",
    "contextual",  # twin-less: must degrade to the full distance
)


def _workload(seed, count=400):
    rng = random.Random(seed)
    pairs, limits = [], []
    for _ in range(count):
        x = "".join(rng.choice("abc") for _ in range(rng.randint(0, 9)))
        y = "".join(rng.choice("abc") for _ in range(rng.randint(0, 9)))
        pairs.append((x, y))
        limits.append(rng.choice([0.0, 0.1, 0.3, 0.5, 0.9, 1.5, 3.0, INF]))
    return pairs, limits


@pytest.mark.parametrize("name", NAMES)
def test_matches_within_slot_by_slot(name):
    fn = get_spec(name).function
    counter = CountingDistance(fn)
    # explicit seed per distance: hash(str) is salted per process, so
    # seeding from it would sample different pairs every run
    pairs, limits = _workload(0xB0B0 + NAMES.index(name))
    got = pairwise_values_bounded(fn, pairs, limits)
    for p, ((x, y), limit) in enumerate(zip(pairs, limits)):
        assert got[p] == counter.within(x, y, limit), (name, x, y, limit)


def test_registry_name_resolution():
    counter = CountingDistance(get_spec("dmax").function)
    pairs, limits = _workload(0xABC, count=50)
    got = pairwise_values_bounded("dmax", pairs, limits)
    want = [counter.within(x, y, l) for (x, y), l in zip(pairs, limits)]
    assert got.tolist() == want


def test_raw_levenshtein_keeps_integer_dtype():
    counter = CountingDistance(levenshtein_distance)
    pairs = [("abca", "bca"), ("aaaa", "bbbb"), ("", "xyz"), ("ab", "ab")]
    limits = [1.0, 1.0, INF, 0.0]
    got = pairwise_values_bounded(levenshtein_distance, pairs, limits)
    assert got.dtype == np.int64
    assert got.tolist() == [
        counter.within(x, y, l) for (x, y), l in zip(pairs, limits)
    ]


def test_mixed_representations_normalise():
    fn = get_spec("dmax").function
    counter = CountingDistance(fn)
    pairs = [(tuple("abc"), "acb"), (["a", "b"], ["b", "a"]), ("ab", tuple("ab"))]
    limits = [0.4, INF, 0.1]
    got = pairwise_values_bounded(fn, pairs, limits)
    assert got.tolist() == [
        counter.within(x, y, l) for (x, y), l in zip(pairs, limits)
    ]


def test_unhashable_symbols_fall_back_to_scalar_twins():
    # items whose symbols cannot be hashed defeat dedupe and kernel
    # encoding, but within() handles them -- so must the batched path
    fn = get_spec("levenshtein").function
    counter = CountingDistance(fn)
    x, y = [[1, 2], [3, 4]], [[1, 2], [9, 9]]
    for limit in (0.0, 1.0, INF):
        got = pairwise_values_bounded(fn, [(x, y)], [limit])
        assert got.tolist() == [counter.within(x, y, limit)]


def test_unregistered_callable_falls_back_to_full_values():
    def exotic(x, y):
        return float(abs(len(x) - len(y)))

    pairs = [("aaa", "a"), ("b", "bbbb")]
    got = pairwise_values_bounded(exotic, pairs, [0.5, 1.0])
    assert got.tolist() == [2.0, 3.0]


def test_length_mismatch_raises():
    with pytest.raises(ValueError):
        pairwise_values_bounded("dmax", [("a", "b")], [0.1, 0.2])


def test_empty_input():
    got = pairwise_values_bounded("dmax", [], [])
    assert got.shape == (0,)
