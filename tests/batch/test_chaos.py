"""Chaos suite: bulk queries under injected faults stay bit-identical.

Every test arms a ``REPRO_FAULTS`` spec (deterministic under its seed),
forces the engine to fan out (tiny ``REPRO_MIN_PAIRS_PER_WORKER``, short
``REPRO_POOL_TIMEOUT``), runs bulk kNN / range workloads over the digit
and word corpora, and asserts the results are bit-identical to a serial
reference computed with faults unset and sharding disabled -- the
degradation ladder may change latency, never answers.

Seed choice: with ``seed=12`` the first ``worker_crash`` draw of the
per-site stream is 0.037 < 0.2, and forked pool workers inherit the
master's *unfired* stream -- so every fresh worker crashes on its first
task, which drives the ladder through pool retries and the per-call pool
all the way to the in-process serial rung (the hardest path).  The kill
test below covers the one-crash-among-healthy-workers shape instead.
"""

import os
import signal
import subprocess
import sys
import threading
import time
import warnings

import pytest

import repro.batch.engine as engine
import repro.batch.runtime as runtime
from repro.batch import DEGRADATION, DegradedExecutionWarning
from repro.index import ExhaustiveIndex, LaesaIndex

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.batch.runtime.DegradedExecutionWarning"
)


def _word_corpus(n=240, seed=23):
    import random

    rng = random.Random(seed)
    return [
        "".join(rng.choice("abcdefgh") for _ in range(rng.randint(3, 14)))
        for _ in range(n)
    ]


def _digit_corpus(n=240, seed=7):
    """Synthetic chain-code strings standing in for the digit contours
    (same alphabet and length regime, a fraction of the render cost)."""
    import random

    rng = random.Random(seed)
    return [
        "".join(rng.choice("01234567") for _ in range(rng.randint(20, 60)))
        for _ in range(n)
    ]


def _results_key(per_query):
    """A comparable, bit-exact projection of bulk results: the canonical
    ``(index, distance)`` lists plus per-query computation counts."""
    return [
        (
            [(r.index, r.distance) for r in results],
            stats.distance_computations,
        )
        for results, stats in per_query
    ]


def _serial_reference(monkeypatch, build, drive):
    """Run *drive* with faults unset and sharding off: the ground truth."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.setenv("REPRO_MIN_PAIRS_PER_WORKER", str(10**9))
    out = drive(build())
    monkeypatch.delenv("REPRO_MIN_PAIRS_PER_WORKER", raising=False)
    return out


def _arm(monkeypatch, spec, timeout="2", retries="1", min_pairs="20"):
    import repro.batch.faults as faults

    monkeypatch.setenv("REPRO_FAULTS", spec)
    monkeypatch.setenv("REPRO_POOL_TIMEOUT", timeout)
    monkeypatch.setenv("REPRO_POOL_RETRIES", retries)
    monkeypatch.setenv("REPRO_MIN_PAIRS_PER_WORKER", min_pairs)
    # "auto" only shards on multi-core hosts; chaos must fan out anywhere
    monkeypatch.setattr(engine, "_cpu_count", lambda: 4)
    faults._PLAN_CACHE = None


@pytest.fixture(autouse=True)
def chaos_isolation(monkeypatch):
    """Every chaos test leaves no armed faults, no poisoned pool and no
    published segments behind."""
    import repro.batch.faults as faults

    yield
    faults._PLAN_CACHE = None
    runtime.get_runtime().shutdown()


@pytest.mark.parametrize(
    "corpus_fn, radius", [(_word_corpus, 4.0), (_digit_corpus, 15.0)]
)
def test_bulk_queries_survive_worker_crashes(monkeypatch, corpus_fn, radius):
    """The acceptance workload: 200 queries of bulk_knn and
    bulk_range_search under seeded worker crashes complete without
    hanging and return results bit-identical to the serial path."""
    items = corpus_fn()
    queries = corpus_fn(n=200, seed=404)

    def drive(index):
        return (
            _results_key(index.bulk_knn(queries, k=3)),
            _results_key(index.bulk_range_search(queries, radius=radius)),
        )

    build = lambda: ExhaustiveIndex(items, "levenshtein")
    want_knn, want_range = _serial_reference(monkeypatch, build, drive)
    _arm(monkeypatch, "worker_crash:p=0.2,seed=12")
    index = build()
    got_knn, got_range = drive(index)
    assert got_knn == want_knn
    assert got_range == want_range


def test_laesa_bulk_knn_survives_worker_hangs(monkeypatch):
    """Wedged workers (not dead ones) must trip the per-chunk deadline
    and degrade, not hang the call."""
    items = _word_corpus(n=200)
    queries = _word_corpus(n=60, seed=91)

    def drive(index):
        return _results_key(index.bulk_knn(queries, k=2))

    build = lambda: LaesaIndex(items, "levenshtein", n_pivots=4)
    want = _serial_reference(monkeypatch, build, drive)
    _arm(monkeypatch, "worker_hang:p=1:s=60,seed=3", timeout="1", retries="0")
    before = DEGRADATION.snapshot()
    assert drive(build()) == want
    delta = DEGRADATION.snapshot()
    assert delta["pool_timeouts"] > before["pool_timeouts"]


def test_shm_attach_failures_walk_the_ladder(monkeypatch):
    """``shm_attach_fail:once`` fails every fresh worker's first attach
    (forked workers inherit the unfired state), so the interned ids path
    must fall through retries down to the serial rung -- and still match."""
    items = _word_corpus(n=220)
    queries = _word_corpus(n=80, seed=55)

    def drive(index):
        return _results_key(index.bulk_knn(queries, k=3))

    build = lambda: ExhaustiveIndex(items, "levenshtein")
    want = _serial_reference(monkeypatch, build, drive)
    _arm(monkeypatch, "shm_attach_fail:once,seed=1")
    index = build()
    assert drive(index) == want
    assert index.last_degradation, "expected degradation events to surface"


def test_publish_failure_falls_back_and_is_counted(monkeypatch):
    items = _word_corpus(n=200)
    queries = _word_corpus(n=60, seed=19)

    def drive(index):
        return _results_key(index.bulk_knn(queries, k=2))

    build = lambda: ExhaustiveIndex(items, "levenshtein")
    want = _serial_reference(monkeypatch, build, drive)
    _arm(monkeypatch, "publish_fail,seed=2")
    before = DEGRADATION.snapshot()["publish_failures"]
    assert drive(build()) == want
    assert DEGRADATION.snapshot()["publish_failures"] > before


def test_degradation_is_announced(monkeypatch):
    """Degraded fan-out must be visible: a DegradedExecutionWarning, not
    silence."""
    items = _word_corpus(n=200)
    queries = _word_corpus(n=60, seed=77)
    _arm(monkeypatch, "worker_crash:p=0.2,seed=12")
    index = ExhaustiveIndex(items, "levenshtein")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        index.bulk_knn(queries, k=2)
    assert any(
        issubclass(w.category, DegradedExecutionWarning) for w in caught
    )
    assert index.last_degradation


def test_sigkill_one_worker_mid_bulk_knn(monkeypatch):
    """Satellite: SIGKILL a live pool worker while a bulk_knn is in
    flight; the call must complete bit-identically and the *next* call
    must run on a healthy (respawned) pool."""
    items = _word_corpus(n=240)
    queries = _word_corpus(n=120, seed=33)

    def drive(index):
        return _results_key(index.bulk_knn(queries, k=3))

    build = lambda: ExhaustiveIndex(items, "levenshtein")
    want = _serial_reference(monkeypatch, build, drive)
    monkeypatch.setenv("REPRO_MIN_PAIRS_PER_WORKER", "20")
    monkeypatch.setenv("REPRO_POOL_TIMEOUT", "2")
    monkeypatch.setattr(engine, "_cpu_count", lambda: 4)
    rt = runtime.get_runtime()
    rt.shutdown()  # start from no pool so the killer sees the fresh one

    killed = threading.Event()

    def killer():
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline and not killed.is_set():
            pool = rt._pool
            procs = list(getattr(pool, "_pool", None) or []) if pool else []
            if procs:
                try:
                    os.kill(procs[0].pid, signal.SIGKILL)
                    killed.set()
                    return
                except (ProcessLookupError, AttributeError):
                    pass
            time.sleep(0.001)

    thread = threading.Thread(target=killer, daemon=True)
    thread.start()
    index = build()
    got = drive(index)
    thread.join(20)
    assert killed.is_set(), "killer never saw a pool worker to SIGKILL"
    assert got == want
    # the pool must be healthy for the next call: same index, same answers
    assert drive(index) == want
    pool = rt._pool
    if pool is not None:
        assert all(p.is_alive() for p in pool._pool)


def test_reaper_removes_segments_of_a_sigkilled_master(tmp_path):
    """Acceptance: a master SIGKILLed mid-publication (whole process
    group, so its resource tracker dies too) leaks its session-prefixed
    segments; a fresh process's startup reaper removes them."""
    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm on this platform")
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    child = subprocess.Popen(
        [
            sys.executable,
            "-c",
            "import numpy as np, sys, time\n"
            "from repro.batch import runtime\n"
            "rt = runtime.EngineRuntime()\n"
            "spec = rt._publish_array(np.arange(4096, dtype=np.int64))\n"
            "print(spec.shm_name, flush=True)\n"
            "time.sleep(120)\n",
        ],
        stdout=subprocess.PIPE,
        env={**os.environ, "PYTHONPATH": os.path.abspath(src)},
        start_new_session=True,  # killpg must take the resource tracker too
        text=True,
    )
    try:
        name = child.stdout.readline().strip()
        assert name.startswith(f"repro-{child.pid}-")
        segment = os.path.join("/dev/shm", name)
        assert os.path.exists(segment)
        os.killpg(os.getpgid(child.pid), signal.SIGKILL)
        child.wait(timeout=10)
        time.sleep(0.2)
        if not os.path.exists(segment):  # pragma: no cover - tracker won
            pytest.skip("resource tracker outlived the SIGKILL")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            removed = runtime.reap_orphaned_segments()
        assert name in removed
        assert not os.path.exists(segment)
    finally:
        try:
            os.killpg(os.getpgid(child.pid), signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        child.stdout.close()


def test_reaper_spares_live_processes(fresh_segment=None):
    """The reaper must never unlink a live process's segments -- its own
    included."""
    rt = runtime.EngineRuntime()
    try:
        import numpy as np

        spec = rt._publish_array(np.arange(64, dtype=np.int64))
        if spec is None:  # pragma: no cover - no shared memory here
            pytest.skip("shared memory unavailable")
        removed = runtime.reap_orphaned_segments()
        assert spec.shm_name not in removed
        assert os.path.exists(os.path.join("/dev/shm", spec.shm_name))
    finally:
        rt.shutdown()


def test_reaper_opt_out(monkeypatch):
    monkeypatch.setenv("REPRO_SHM_REAPER", "0")
    assert not runtime.reaper_enabled()
    monkeypatch.delenv("REPRO_SHM_REAPER", raising=False)
    assert runtime.reaper_enabled()
