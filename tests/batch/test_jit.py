"""The optional numba kernel backend and its dispatch plumbing.

Without numba installed the backend must stay dormant (numpy kernels
serve every call, bit-identically to before); with numba installed the
compiled kernels must agree with the numpy twins on randomised inputs.
Both CI legs run this file, so each branch is exercised somewhere.
"""

import random

import pytest

import repro.batch.kernels as kernels
from repro.batch import jit
from repro.batch.kernels import (
    contextual_heuristic_batch,
    contextual_heuristic_batch_numpy,
    levenshtein_batch,
    levenshtein_batch_numpy,
)
from repro.core.contextual import _heuristic_tables
from repro.core.levenshtein import levenshtein_distance


def _random_pairs(seed, count=200, alphabet="abc", max_len=10):
    rng = random.Random(seed)
    return [
        (
            "".join(rng.choice(alphabet) for _ in range(rng.randint(0, max_len))),
            "".join(rng.choice(alphabet) for _ in range(rng.randint(0, max_len))),
        )
        for _ in range(count)
    ]


def test_backend_name_is_consistent():
    assert jit.backend_name() == ("numba" if jit.active() else "numpy")


def test_dispatch_targets_the_active_backend():
    # the cached resolver must agree with the jit module's own state
    backend = kernels._jit_backend()
    if jit.active():
        assert backend is jit
    else:
        assert backend is None


def test_public_kernels_match_numpy_twins():
    """Whatever backend is active, the public names must return exactly
    the numpy kernels' values (the JIT kernels are the same integer DP)."""
    pairs = _random_pairs(0x11)
    assert levenshtein_batch(pairs).tolist() == levenshtein_batch_numpy(
        pairs
    ).tolist()
    d, ni = contextual_heuristic_batch(pairs)
    d_np, ni_np = contextual_heuristic_batch_numpy(pairs)
    assert d.tolist() == d_np.tolist()
    assert ni.tolist() == ni_np.tolist()


@pytest.mark.skipif(not jit.active(), reason="numba not installed")
class TestCompiledKernels:
    """Exercised only on the with-numba CI leg."""

    def test_batch_kernels_match_numpy(self):
        pairs = _random_pairs(0x22, count=300)
        assert jit.levenshtein_batch(pairs).tolist() == (
            levenshtein_batch_numpy(pairs).tolist()
        )
        d, ni = jit.contextual_heuristic_batch(pairs)
        d_np, ni_np = contextual_heuristic_batch_numpy(pairs)
        assert d.tolist() == d_np.tolist()
        assert ni.tolist() == ni_np.tolist()

    def test_scalar_kernels_match_python(self):
        for x, y in _random_pairs(0x33, count=120):
            assert jit.levenshtein_single(x, y) == levenshtein_distance(x, y)
            assert jit.contextual_heuristic_single(x, y) == _heuristic_tables(
                x, y
            )

    def test_scalar_entry_points_use_threshold_zero(self):
        # short strings (far below _NUMPY_THRESHOLD) must still route
        # through the compiled kernel when it is active
        from repro.core import levenshtein as lev_mod

        assert lev_mod._jit() is jit

    def test_tuple_items(self):
        pairs = [((1, 2, 3), (2, 1, 3)), (("a",), ("a", "b"))]
        assert jit.levenshtein_batch(pairs).tolist() == (
            levenshtein_batch_numpy(pairs).tolist()
        )


def test_env_gate_disables_numba(monkeypatch):
    monkeypatch.setenv("REPRO_JIT", "0")
    assert jit._jit_disabled()
    monkeypatch.setenv("REPRO_JIT", "off")
    assert jit._jit_disabled()
    monkeypatch.delenv("REPRO_JIT")
    assert not jit._jit_disabled()
