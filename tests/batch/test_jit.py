"""The optional numba kernel backend and its dispatch plumbing.

Without numba installed the backend must stay dormant (numpy kernels
serve every call, bit-identically to before); with numba installed the
compiled kernels must agree with the numpy twins on randomised inputs.
Both CI legs run this file, so each branch is exercised somewhere.
"""

import random

import pytest

import repro.batch.kernels as kernels
from repro.batch import jit
from repro.batch.kernels import (
    contextual_heuristic_batch,
    contextual_heuristic_batch_numpy,
    levenshtein_batch,
    levenshtein_batch_numpy,
)
from repro.core.contextual import _heuristic_tables
from repro.core.levenshtein import levenshtein_distance


def _random_pairs(seed, count=200, alphabet="abc", max_len=10):
    rng = random.Random(seed)
    return [
        (
            "".join(rng.choice(alphabet) for _ in range(rng.randint(0, max_len))),
            "".join(rng.choice(alphabet) for _ in range(rng.randint(0, max_len))),
        )
        for _ in range(count)
    ]


def test_backend_name_is_consistent():
    assert jit.backend_name() == ("numba" if jit.active() else "numpy")


def test_dispatch_targets_the_active_backend():
    # the cached resolver must agree with the jit module's own state
    backend = kernels._jit_backend()
    if jit.active():
        assert backend is jit
    else:
        assert backend is None


def test_public_kernels_match_numpy_twins():
    """Whatever backend is active, the public names must return exactly
    the numpy kernels' values (the JIT kernels are the same integer DP)."""
    pairs = _random_pairs(0x11)
    assert levenshtein_batch(pairs).tolist() == levenshtein_batch_numpy(
        pairs
    ).tolist()
    d, ni = contextual_heuristic_batch(pairs)
    d_np, ni_np = contextual_heuristic_batch_numpy(pairs)
    assert d.tolist() == d_np.tolist()
    assert ni.tolist() == ni_np.tolist()


@pytest.mark.skipif(not jit.active(), reason="numba not installed")
class TestCompiledKernels:
    """Exercised only on the with-numba CI leg."""

    def test_batch_kernels_match_numpy(self):
        pairs = _random_pairs(0x22, count=300)
        assert jit.levenshtein_batch(pairs).tolist() == (
            levenshtein_batch_numpy(pairs).tolist()
        )
        d, ni = jit.contextual_heuristic_batch(pairs)
        d_np, ni_np = contextual_heuristic_batch_numpy(pairs)
        assert d.tolist() == d_np.tolist()
        assert ni.tolist() == ni_np.tolist()

    def test_scalar_kernels_match_python(self):
        for x, y in _random_pairs(0x33, count=120):
            assert jit.levenshtein_single(x, y) == levenshtein_distance(x, y)
            assert jit.contextual_heuristic_single(x, y) == _heuristic_tables(
                x, y
            )

    def test_scalar_entry_points_use_threshold_zero(self):
        # short strings (far below _NUMPY_THRESHOLD) must still route
        # through the compiled kernel when it is active
        from repro.core import levenshtein as lev_mod

        assert lev_mod._jit() is jit

    def test_tuple_items(self):
        pairs = [((1, 2, 3), (2, 1, 3)), (("a",), ("a", "b"))]
        assert jit.levenshtein_batch(pairs).tolist() == (
            levenshtein_batch_numpy(pairs).tolist()
        )


class TestNewKernelTwins:
    """The PR-4 kernels (bounded batch, d_MV parametric, Algorithm 1's
    k-axis DP, exact d_C) against their numpy/pure-Python twins.

    Without numba these exercise the jit module's plain-Python bodies
    (the decorator is a no-op), so the *logic* is verified everywhere;
    the with-numba CI leg runs the same assertions against the compiled
    code.
    """

    def test_bounded_batch_kernels_match_numpy(self):
        from repro.batch.kernels import (
            contextual_heuristic_batch_bounded_numpy,
            levenshtein_batch_bounded_numpy,
        )

        import random as _random

        pairs = _random_pairs(0x44, count=250, max_len=14)
        rng = _random.Random(0x45)
        bounds = [rng.choice([0, 1, 2, 4, 7, 1 << 20]) for _ in pairs]
        d1, e1 = jit.levenshtein_batch_bounded(pairs, bounds)
        d2, e2 = levenshtein_batch_bounded_numpy(pairs, bounds)
        assert d1.tolist() == d2.tolist()
        assert e1.tolist() == e2.tolist()
        a1, b1, c1 = jit.contextual_heuristic_batch_bounded(pairs, bounds)
        a2, b2, c2 = contextual_heuristic_batch_bounded_numpy(pairs, bounds)
        assert a1.tolist() == a2.tolist()
        assert b1.tolist() == b2.tolist()
        assert c1.tolist() == c2.tolist()

    def test_parametric_alignment_matches_numpy(self):
        from repro.core._kernels import parametric_alignment_numpy

        for x, y in _random_pairs(0x55, count=120, alphabet="abcd", max_len=20):
            for lam in (0.0, 0.2, 0.45, 0.8):
                assert jit.parametric_alignment(x, y, lam) == tuple(
                    parametric_alignment_numpy(x, y, lam)
                ), (x, y, lam)

    def test_banded_parametric_matches_python(self):
        import random as _random

        from repro.core.bounded import _banded_parametric

        rng = _random.Random(0x66)
        for x, y in _random_pairs(0x66, count=120, alphabet="abcd", max_len=20):
            if not x or not y:
                continue
            band = rng.randint(max(abs(len(x) - len(y)), 1), len(x) + len(y))
            lam = rng.choice([0.1, 0.3, 0.6])
            assert jit.banded_parametric(x, y, lam, band) == _banded_parametric(
                x, y, lam, band
            ), (x, y, lam, band)

    def test_mv_distance_matches_fractional(self):
        from repro.core.marzal_vidal import mv_normalized_distance

        pairs = _random_pairs(0x77, count=150, alphabet="ab", max_len=25)
        batch = jit.mv_distance_batch(pairs)
        for p, (x, y) in enumerate(pairs):
            want = mv_normalized_distance(x, y)
            assert jit.mv_distance(x, y) == want, (x, y)
            assert batch[p] == want, (x, y)

    def test_insertion_table_matches_scalar(self):
        import random as _random

        from repro.core.contextual import _insertion_table_final

        rng = _random.Random(0x88)
        for x, y in _random_pairs(0x88, count=80, max_len=30):
            k_max = rng.randint(0, len(x) + len(y))
            got = jit.insertion_table_final(x, y, k_max)
            want = _insertion_table_final(x, y, k_max)
            # sentinel (< 0) entries may differ between backends (the
            # numpy twin leaks +1 chains into them); feasibility and
            # every feasible value must agree
            assert [int(v) if v >= 0 else -1 for v in got] == [
                int(v) if v >= 0 else -1 for v in want
            ], (x, y, k_max)

    def test_exact_contextual_matches_scalar(self):
        from repro.core.contextual import contextual_distance

        pairs = _random_pairs(0x99, count=120, max_len=18)
        batch = jit.contextual_distance_batch(pairs)
        for p, (x, y) in enumerate(pairs):
            want = contextual_distance(x, y)
            assert jit.contextual_distance(x, y) == want, (x, y)
            assert batch[p] == want, (x, y)


def test_engine_batches_mv_and_exact_dc_under_jit():
    """pairwise_values must stay bit-identical to the scalar loop for
    d_MV and exact d_C whichever backend serves them (scalar fallback on
    numpy, compiled batch kernels on numba)."""
    from repro.batch import pairwise_values
    from repro.core import get_distance

    pairs = _random_pairs(0xAA, count=40, max_len=12)
    for name in ("marzal_vidal", "contextual"):
        fn = get_distance(name)
        got = pairwise_values(name, pairs)
        want = [fn(x, y) for x, y in pairs]
        assert got.tolist() == want, name


def test_env_gate_disables_numba(monkeypatch):
    monkeypatch.setenv("REPRO_JIT", "0")
    assert jit._jit_disabled()
    monkeypatch.setenv("REPRO_JIT", "off")
    assert jit._jit_disabled()
    monkeypatch.delenv("REPRO_JIT")
    assert not jit._jit_disabled()
