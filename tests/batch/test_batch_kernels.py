"""Pair-batched kernels against their scalar twins (randomised)."""

import random

import numpy as np
import pytest

from repro.batch import (
    contextual_heuristic_batch,
    encode_batch,
    levenshtein_batch,
)
from repro.core._kernels import contextual_heuristic_numpy
from repro.core.contextual import _heuristic_tables
from repro.core.levenshtein import levenshtein_distance


def _random_pairs(seed, count, max_len, alphabet="abc"):
    rng = random.Random(seed)

    def rs():
        return "".join(
            rng.choice(alphabet) for _ in range(rng.randint(0, max_len))
        )

    return [(rs(), rs()) for _ in range(count)]


class TestEncodeBatch:
    def test_shapes_and_lengths(self):
        X, Y, mx, my = encode_batch([("ab", "c"), ("", "abcd")])
        assert X.shape == (2, 2)
        assert Y.shape == (2, 4)
        assert mx.tolist() == [2, 0]
        assert my.tolist() == [1, 4]

    def test_padding_never_matches(self):
        X, Y, mx, my = encode_batch([("a", "ab"), ("zzz", "z")])
        # x-padding and y-padding use distinct sentinels, and neither can
        # collide with a real (non-negative) symbol code
        assert (X[0, mx[0] :] < 0).all() and (Y[1, my[1] :] < 0).all()
        assert not np.isin(X[0, mx[0] :], Y[0]).any()
        assert not np.isin(Y[1, my[1] :], X[1]).any()

    def test_cross_representation_equality(self):
        # "ab" vs ("a", "b") must encode to equal codes within the pair
        X, Y, _, _ = encode_batch([(("a", "b"), ("b", "a"))])
        assert sorted(X[0].tolist()) == sorted(Y[0].tolist())

    def test_empty_batch(self):
        X, Y, mx, my = encode_batch([])
        assert X.shape == (0, 0)
        assert levenshtein_batch([]).shape == (0,)


class TestLevenshteinBatch:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scalar_mixed_lengths(self, seed):
        # deliberately mixes tiny and long pairs to cross bucket borders
        pairs = _random_pairs(seed, 120, 12) + _random_pairs(
            seed + 100, 20, 150, alphabet="acgt"
        )
        random.Random(seed).shuffle(pairs)
        values = levenshtein_batch(pairs)
        for p, (x, y) in enumerate(pairs):
            assert values[p] == levenshtein_distance(x, y)

    def test_empty_and_equal_strings(self):
        pairs = [("", ""), ("", "abc"), ("abc", ""), ("abc", "abc"), ("a", "a")]
        assert levenshtein_batch(pairs).tolist() == [0, 3, 3, 0, 0]

    def test_duplicate_pairs_align(self):
        pairs = [("ab", "ba"), ("ab", "ba"), ("ba", "ab")]
        expected = levenshtein_distance("ab", "ba")
        assert levenshtein_batch(pairs).tolist() == [expected] * 3

    def test_tuple_symbols(self):
        pairs = [((1, 2, 3), (1, 3)), (tuple("abc"), "abc")]
        values = levenshtein_batch(pairs)
        assert values[0] == levenshtein_distance((1, 2, 3), (1, 3))
        assert values[1] == 0


class TestContextualHeuristicBatch:
    @pytest.mark.parametrize("seed", [3, 4])
    def test_matches_numpy_kernel(self, seed):
        pairs = [
            (x, y)
            for x, y in _random_pairs(seed, 100, 10)
            + _random_pairs(seed + 50, 15, 120, alphabet="acgt")
            if x or y  # scalar kernel's (0, 0) case is caller-handled
        ]
        d_e, ni = contextual_heuristic_batch(pairs)
        for p, (x, y) in enumerate(pairs):
            assert (int(d_e[p]), int(ni[p])) == contextual_heuristic_numpy(x, y)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_matches_pure_python_tables(self, seed):
        pairs = _random_pairs(seed, 80, 8)
        d_e, ni = contextual_heuristic_batch(pairs)
        for p, (x, y) in enumerate(pairs):
            assert (int(d_e[p]), int(ni[p])) == _heuristic_tables(x, y)

    def test_empty_sides(self):
        d_e, ni = contextual_heuristic_batch([("", "abc"), ("abc", ""), ("", "")])
        assert d_e.tolist() == [3, 3, 0]
        assert ni.tolist() == [3, 0, 0]
