"""The interned-corpus layer: encoding, the id store, and its gather."""

import numpy as np
import pytest

from repro.batch import intern_corpus, interning_enabled
from repro.batch.kernels import (
    _PAD_X,
    _PAD_Y,
    _levenshtein_swept,
    levenshtein_batch_numpy,
)


WORDS = ["abc", "", "cab", "abc", "abcd", "dcba", "aaaa"]


def test_corpus_lengths_and_dtypes():
    corpus = intern_corpus(WORDS)
    assert corpus is not None
    assert corpus.lengths.tolist() == [len(w) for w in WORDS]
    assert corpus.block.rows_x.dtype == np.int32
    assert corpus.block.rows_y.dtype == np.int32


def test_corpus_padding_sentinels_differ_per_side():
    corpus = intern_corpus(WORDS)
    # beyond each row's true length the x matrix holds the x sentinel and
    # the y matrix the y sentinel, so padded x never matches padded y
    for i, word in enumerate(WORDS):
        assert (corpus.block.rows_x[i, len(word) :] == _PAD_X).all()
        assert (corpus.block.rows_y[i, len(word) :] == _PAD_Y).all()


def test_encoding_preserves_equality_globally():
    corpus = intern_corpus(WORDS)
    store = corpus.store()
    # identical words at different ids encode identically
    assert store.same(0, 3)
    assert not store.same(0, 2)  # anagram, different symbol order
    assert not store.same(0, 4)  # prefix
    assert store.same(1, 1)


def test_cross_representation_equality_survives():
    corpus = intern_corpus(["ab", ("a", "b"), "ba", (0, 1), (0, 1)])
    store = corpus.store()
    assert store.same(0, 1)  # "ab" == ("a", "b") after normalisation
    assert not store.same(0, 2)
    assert store.same(3, 4)
    assert not store.same(1, 3)


def test_gather_matches_encode_batch_sweep():
    corpus = intern_corpus(WORDS)
    store = corpus.store()
    x_ids = np.array([0, 1, 2, 5, 6, 3])
    y_ids = np.array([4, 0, 2, 6, 1, 5])
    X, Y, mx, my = store.gather(x_ids, y_ids)
    pairs = [(WORDS[i], WORDS[j]) for i, j in zip(x_ids, y_ids)]
    # same integer DP results as the per-call encoding path
    expected = levenshtein_batch_numpy(pairs)
    assert _levenshtein_swept(X, Y, mx, my).tolist() == expected.tolist()


def test_store_with_queries_extends_the_alphabet():
    corpus = intern_corpus(["abc", "cab"])
    store = corpus.store(["xyz", "abz"])
    assert len(store) == 4
    assert store.extra_id(0) == 2
    assert store.raw(3) == "abz"
    assert store.sym(1) == "cab"
    X, Y, mx, my = store.gather(
        np.array([2, 3, 0]), np.array([0, 1, 3])
    )
    expected = levenshtein_batch_numpy(
        [("xyz", "abc"), ("abz", "cab"), ("abc", "abz")]
    )
    assert _levenshtein_swept(X, Y, mx, my).tolist() == expected.tolist()


def test_unencodable_items_return_none():
    assert intern_corpus([object()]) is None
    assert intern_corpus(["abc", 3.5]) is None
    # sequences of unhashable symbols cannot key the alphabet table
    assert intern_corpus([[["nested"]]]) is None


def test_store_rejects_unencodable_queries():
    corpus = intern_corpus(["abc"])
    with pytest.raises(TypeError):
        corpus.store([object()])


def test_interning_enabled_env(monkeypatch):
    assert interning_enabled()
    monkeypatch.setenv("REPRO_INTERN", "0")
    assert not interning_enabled()
    monkeypatch.setenv("REPRO_INTERN", "off")
    assert not interning_enabled()
    monkeypatch.setenv("REPRO_INTERN", "1")
    assert interning_enabled()


def test_index_construction_interns(monkeypatch, small_word_list):
    from repro.core import get_distance
    from repro.index import LaesaIndex

    index = LaesaIndex(small_word_list[:30], get_distance("dmax"), n_pivots=3)
    assert index._corpus is not None
    assert len(index._corpus) == 30
    monkeypatch.setenv("REPRO_INTERN", "0")
    off = LaesaIndex(small_word_list[:30], get_distance("dmax"), n_pivots=3)
    assert off._corpus is None


def test_index_with_uninternable_items_falls_back():
    from repro.index import ExhaustiveIndex

    def length_gap(x, y):
        return abs(len(x) - len(y))

    class Odd:
        def __len__(self):
            return 2

    items = [Odd(), Odd()]
    index = ExhaustiveIndex(items, length_gap)
    assert index._corpus is None
    results = index.bulk_knn([items[0]], 1)
    assert results[0][0][0].distance == 0.0


def test_gather_of_out_of_range_ids_raises_index_error():
    corpus = intern_corpus(WORDS)
    store = corpus.store()  # no extras: valid ids end at len(WORDS) - 1
    bad = np.asarray([len(WORDS)], dtype=np.int64)
    ok = np.asarray([0], dtype=np.int64)
    with pytest.raises(IndexError):
        store.gather(bad, ok)


def test_gather_rows_without_extra_block_raises_index_error():
    # Regression: an id addressing an extra block that was never gathered
    # (lengths cover it, the matrices do not) used to surface as an
    # AttributeError on NoneType deep inside the row stacking; it must be
    # the contract violation it is, pointing at the offending id.
    from repro.batch.corpus import gather_rows

    corpus = intern_corpus(WORDS)
    n = len(WORDS)
    lengths = np.concatenate([corpus.block.lengths, np.asarray([3])])
    with pytest.raises(IndexError, match=f"id {n} .*extra block"):
        gather_rows(
            (corpus.block.rows_x, corpus.block.rows_y),
            None,  # the extra block was never shipped
            lengths,
            n,
            np.asarray([n], dtype=np.int64),
            np.asarray([0], dtype=np.int64),
        )
