"""The reusable shared-memory segment ring (ROADMAP 5c).

Released ephemeral segments park in the runtime's ring and the next
ephemeral publication rewrites one in place instead of creating a fresh
``/dev/shm`` entry -- the per-call segment churn that dominated
high-frequency small batches.  The contract: reuse changes allocation
counts only; attached bytes, fan-out results and teardown hygiene are
bit-identical with the ring on, off (``REPRO_SHM_RING=0``), or
evicting."""

import numpy as np
import pytest

import repro.batch.runtime as runtime
from repro.batch import intern_corpus
from repro.batch.runtime import _RING_CAPACITY, _RING_SEGMENT_MAX


@pytest.fixture
def fresh_runtime():
    rt = runtime.EngineRuntime()
    yield rt
    rt.shutdown()


def _corpus(seed=11, n=120):
    import random

    rng = random.Random(seed)
    return intern_corpus(
        [
            "".join(rng.choice("abcdef") for _ in range(rng.randint(3, 12)))
            for _ in range(n)
        ]
    )


def _publish_release(rt, arr):
    """One ephemeral publish/attach/release cycle; returns the bytes the
    attach saw."""
    spec = rt._publish_array(arr, reusable=True)
    if spec is None:  # pragma: no cover - no shared memory on this host
        pytest.skip("shared memory unavailable")
    attached, shm = runtime._attach_array(spec)
    got = np.array(attached, copy=True)
    runtime.release_attachment([shm])
    rt._release_names({spec.shm_name})
    return got


def test_ring_flag_default_and_opt_out(monkeypatch):
    assert runtime.shm_ring_enabled()
    monkeypatch.setenv("REPRO_SHM_RING", "0")
    assert not runtime.shm_ring_enabled()


def test_released_segment_is_reused(fresh_runtime):
    a = np.arange(64, dtype=np.float64)
    b = np.arange(64, dtype=np.float64) * 3.0
    got_a = _publish_release(fresh_runtime, a)
    assert (got_a == a).all()
    stats = fresh_runtime.ring_stats()
    assert stats["creates"] == 1 and stats["returns"] == 1
    # second publication of a fitting array rewrites the parked segment
    got_b = _publish_release(fresh_runtime, b)
    assert (got_b == b).all()
    stats = fresh_runtime.ring_stats()
    assert stats["reuses"] == 1
    assert stats["creates"] == 1


def test_smaller_payload_reuses_larger_segment(fresh_runtime):
    big = np.arange(256, dtype=np.float64)
    small = np.arange(8, dtype=np.float64) * 7.0
    _publish_release(fresh_runtime, big)
    got = _publish_release(fresh_runtime, small)
    assert (got == small).all()
    assert fresh_runtime.ring_stats()["reuses"] == 1


def test_larger_payload_creates_fresh_segment(fresh_runtime):
    small = np.arange(8, dtype=np.float64)
    big = np.arange(256, dtype=np.float64)
    _publish_release(fresh_runtime, small)
    got = _publish_release(fresh_runtime, big)
    assert (got == big).all()
    assert fresh_runtime.ring_stats()["creates"] == 2


def test_opt_out_disables_reuse(fresh_runtime, monkeypatch):
    monkeypatch.setenv("REPRO_SHM_RING", "0")
    arr = np.arange(32, dtype=np.float64)
    _publish_release(fresh_runtime, arr)
    _publish_release(fresh_runtime, arr * 2)
    stats = fresh_runtime.ring_stats()
    assert stats["reuses"] == 0 and stats["returns"] == 0


def test_oversized_segments_never_enter_the_ring(fresh_runtime):
    huge = np.zeros((_RING_SEGMENT_MAX // 8) + 16, dtype=np.float64)
    _publish_release(fresh_runtime, huge)
    stats = fresh_runtime.ring_stats()
    assert stats["returns"] == 0
    assert not fresh_runtime._ring


def test_ring_capacity_evicts(fresh_runtime):
    specs = [
        fresh_runtime._publish_array(
            np.full(16, float(i)), reusable=True
        )
        for i in range(_RING_CAPACITY + 3)
    ]
    if any(s is None for s in specs):  # pragma: no cover
        pytest.skip("shared memory unavailable")
    fresh_runtime._release_names({s.shm_name for s in specs})
    stats = fresh_runtime.ring_stats()
    assert stats["returns"] == _RING_CAPACITY
    assert stats["evictions"] == 3
    assert len(fresh_runtime._ring) == _RING_CAPACITY


def test_shutdown_unlinks_parked_segments(fresh_runtime):
    arr = np.arange(64, dtype=np.float64)
    spec = fresh_runtime._publish_array(arr, reusable=True)
    if spec is None:  # pragma: no cover
        pytest.skip("shared memory unavailable")
    fresh_runtime._release_names({spec.shm_name})
    assert fresh_runtime._ring
    fresh_runtime.shutdown()
    assert not fresh_runtime._ring
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=spec.shm_name)


def test_persistent_segments_bypass_the_ring(fresh_runtime):
    corpus = _corpus()
    token = fresh_runtime.publish_store(corpus.store())
    if token is None:  # pragma: no cover
        pytest.skip("shared memory unavailable")
    assert fresh_runtime.ring_stats()["creates"] == 0


def test_engine_results_identical_with_ring_on_and_off(monkeypatch):
    """The acceptance check: repeated small bulk queries produce
    bit-identical answers with the ring enabled and disabled, while the
    enabled run actually reuses segments."""
    from repro.core.levenshtein import levenshtein_distance
    from repro.index import LaesaIndex

    import random

    rng = random.Random(3)
    items = [
        "".join(rng.choice("abcdefgh") for _ in range(rng.randint(3, 12)))
        for _ in range(150)
    ]
    queries = items[::10][:8]
    monkeypatch.setenv("REPRO_MIN_PAIRS_PER_WORKER", "1")

    def drive():
        index = LaesaIndex(items, levenshtein_distance, n_pivots=5)
        out = []
        for _ in range(3):
            out.append(
                [
                    ([(r.index, r.distance) for r in results],
                     stats.distance_computations)
                    for results, stats in index.bulk_knn(queries, 3)
                ]
            )
        return out

    runtime.get_runtime().shutdown()
    try:
        with_ring = drive()
        runtime.get_runtime().shutdown()
        monkeypatch.setenv("REPRO_SHM_RING", "0")
        without_ring = drive()
    finally:
        runtime.get_runtime().shutdown()
    assert with_ring == without_ring
