"""Regression tests of the process-global degradation counter semantics
(`DEGRADATION`): snapshot/reset/delta_since behaviour and the
thread-safety the serving tier's metrics surface depends on."""

import threading

import pytest

from repro.batch.runtime import DEGRADATION, DegradationStats


@pytest.fixture()
def stats():
    return DegradationStats()


class TestBasics:
    def test_starts_at_zero_for_every_field(self, stats):
        snapshot = stats.snapshot()
        assert set(snapshot) == set(DegradationStats._FIELDS)
        assert all(v == 0 for v in snapshot.values())

    def test_record_accumulates(self, stats):
        stats.record("pool_timeouts")
        stats.record("pool_timeouts", 2)
        assert stats.snapshot()["pool_timeouts"] == 3

    def test_snapshot_is_a_copy_not_a_view(self, stats):
        before = stats.snapshot()
        stats.record("pool_errors")
        assert before["pool_errors"] == 0

    def test_reset_zeroes_everything(self, stats):
        stats.record("serial_fallbacks", 5)
        stats.reset()
        assert all(v == 0 for v in stats.snapshot().values())

    def test_global_instance_has_all_fields(self):
        assert set(DEGRADATION.snapshot()) == set(DegradationStats._FIELDS)


class TestDeltaSince:
    def test_reports_only_nonzero_increases(self, stats):
        before = stats.snapshot()
        stats.record("pool_retries", 2)
        stats.record("dead_pools")
        assert stats.delta_since(before) == {
            "pool_retries": 2,
            "dead_pools": 1,
        }

    def test_empty_when_nothing_happened(self, stats):
        before = stats.snapshot()
        assert stats.delta_since(before) == {}

    def test_consecutive_intervals_partition_events(self, stats):
        first_base = stats.snapshot()
        stats.record("publish_failures")
        second_base = stats.snapshot()
        stats.record("publish_failures", 3)
        assert stats.delta_since(first_base)["publish_failures"] == 4
        assert stats.delta_since(second_base)["publish_failures"] == 3

    def test_negative_deltas_after_reset_are_clamped_out(self, stats):
        stats.record("stale_attachments", 7)
        before = stats.snapshot()
        stats.reset()
        stats.record("reaped_segments")
        delta = stats.delta_since(before)
        assert "stale_attachments" not in delta  # went down, not up
        assert delta == {"reaped_segments": 1}


class TestThreadSafety:
    def test_concurrent_records_lose_no_increment(self, stats):
        """The serving tier records from worker threads while bulk calls
        record from the event-loop thread; every increment must land."""
        threads, per_thread = 8, 2_000

        def hammer():
            for _ in range(per_thread):
                stats.record("pool_errors")

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert stats.snapshot()["pool_errors"] == threads * per_thread

    def test_snapshots_under_concurrent_recording_are_consistent(self, stats):
        """A reader thread snapshotting mid-traffic must only ever see
        monotonically non-decreasing counts."""
        stop = threading.Event()
        seen = []

        def reader():
            while not stop.is_set():
                seen.append(stats.snapshot()["percall_fallbacks"])

        thread = threading.Thread(target=reader)
        thread.start()
        for _ in range(5_000):
            stats.record("percall_fallbacks")
        stop.set()
        thread.join()
        assert seen == sorted(seen)
        assert stats.snapshot()["percall_fallbacks"] == 5_000
