"""The batch engine against scalar distances: every registry entry,
empty strings, duplicates, mixed-length buckets, both matrix shapes."""

import random

import numpy as np
import pytest

from repro.batch import distances_from, pairwise_matrix, pairwise_values
from repro.batch.engine import _buckets
from repro.core import get_distance, get_spec, list_distances
from repro.core.levenshtein import levenshtein_distance

ALL_NAMES = [spec.name for spec in list_distances()]


def _random_strings(seed, count, max_len, alphabet="abc"):
    rng = random.Random(seed)
    return [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(0, max_len)))
        for _ in range(count)
    ]


@pytest.fixture(scope="module")
def mixed_pairs():
    """Empty strings, duplicates, and pairs spanning several buckets."""
    rng = random.Random(0xBA7)
    short = _random_strings(1, 24, 6)
    long = _random_strings(2, 6, 90, alphabet="acgt")
    pool = short + long + ["", "", short[0], long[0]]
    pairs = [(rng.choice(pool), rng.choice(pool)) for _ in range(120)]
    pairs += [("", ""), ("", "ab"), ("ab", ""), ("ab", "ab")]
    pairs += pairs[:7]  # exact duplicate pairs
    return pairs


@pytest.mark.parametrize("name", ALL_NAMES)
def test_pairwise_values_bit_identical_to_scalar(name, mixed_pairs):
    pairs = mixed_pairs
    if name in ("contextual", "marzal_vidal"):
        pairs = mixed_pairs[:40]  # the expensive scalar fallbacks
    function = get_distance(name)
    values = pairwise_values(name, pairs)
    for p, (x, y) in enumerate(pairs):
        assert values[p] == function(x, y), (name, x, y)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_function_object_resolves_like_name(name):
    pairs = [("abc", "acb"), ("", "x"), ("aa", "aa")]
    by_name = pairwise_values(name, pairs)
    by_function = pairwise_values(get_spec(name).function, pairs)
    assert np.array_equal(by_name, by_function)


def test_raw_levenshtein_returns_ints():
    pairs = [("kitten", "sitting"), ("", ""), ("a", "b")]
    values = pairwise_values(levenshtein_distance, pairs)
    assert values.dtype == np.int64
    assert values.tolist() == [3, 0, 1]


def test_symmetric_matrix_matches_scalar():
    items = _random_strings(3, 18, 9) + ["", "dup", "dup"]
    matrix = pairwise_matrix("yujian_bo", items)
    function = get_distance("yujian_bo")
    assert matrix.shape == (len(items), len(items))
    assert np.array_equal(matrix, matrix.T)
    for i in range(len(items)):
        for j in range(len(items)):
            assert matrix[i, j] == function(items[i], items[j])


def test_rectangular_matrix_matches_scalar():
    xs = _random_strings(4, 7, 8)
    ys = _random_strings(5, 5, 8)
    matrix = pairwise_matrix("dmax", xs, ys)
    function = get_distance("dmax")
    assert matrix.shape == (7, 5)
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            assert matrix[i, j] == function(x, y)


def test_unregistered_callable_falls_back_scalar():
    calls = []

    def exotic(x, y):
        calls.append((x, y))
        return float(abs(len(x) - len(y)))

    values = pairwise_values(exotic, [("a", "bbb"), ("a", "bbb"), ("c", "c")])
    assert values.tolist() == [2.0, 2.0, 0.0]
    # deduped: the repeated pair is computed once, and ("c","c") is NOT
    # shortcut to zero for unknown callables (it was actually called)
    assert calls == [("a", "bbb"), ("c", "c")]


def test_registered_equal_pairs_skip_computation():
    # for registry entries x == y never reaches the kernel or the scalar fn
    values = pairwise_values("contextual", [("same", "same"), ("", "")])
    assert values.tolist() == [0.0, 0.0]


def test_distances_from_row():
    targets = ["a", "ab", "abc", ""]
    row = distances_from("levenshtein", "ab", targets)
    function = get_distance("levenshtein")
    assert row.tolist() == [function("ab", t) for t in targets]


def test_buckets_partition_and_bound_length_spread():
    pairs = [("a" * n, "b" * n) for n in (1, 2, 3, 200, 201, 250)]
    buckets = _buckets(pairs, bucket_size=4)
    seen = sorted(p for bucket in buckets for p in bucket)
    assert seen == list(range(len(pairs)))  # exact partition
    for bucket in buckets:
        sizes = [len(pairs[p][0]) + len(pairs[p][1]) for p in bucket]
        assert max(sizes) <= 2 * min(sizes) + 16  # no word pays gene padding


def test_workers_fan_out_matches_serial(monkeypatch):
    # lower the pool threshold so two real worker chunks actually run
    import repro.batch.engine as engine

    monkeypatch.setattr(engine, "_MIN_PAIRS_PER_WORKER", 8)
    pairs = [
        (x, y)
        for x in _random_strings(6, 12, 10)
        for y in _random_strings(7, 8, 10)
    ]
    serial = pairwise_values("levenshtein", pairs)
    fanned = pairwise_values("levenshtein", pairs, workers=2)
    assert np.array_equal(serial, fanned)


def test_tuple_and_string_representations_agree():
    expected = float(levenshtein_distance("ab", "ba"))
    values = pairwise_values(
        "levenshtein", [("ab", "ba"), (("a", "b"), ("b", "a"))]
    )
    assert values.tolist() == [expected, expected]
