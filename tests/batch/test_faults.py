"""The fault-injection plumbing itself: spec parsing, deterministic
firing, the zero-overhead unarmed path, and the master-process gate."""

import multiprocessing
import os

import pytest

import repro.batch.faults as faults


@pytest.fixture(autouse=True)
def clear_plan_cache():
    faults._PLAN_CACHE = None
    yield
    faults._PLAN_CACHE = None


def test_parse_bare_site_fires_always():
    specs = faults.parse_spec("publish_fail")
    assert specs["publish_fail"].probability == 1.0
    assert not specs["publish_fail"].once


def test_parse_options():
    specs = faults.parse_spec("worker_hang:p=0.1:s=30, shm_attach_fail:once")
    assert specs["worker_hang"].probability == 0.1
    assert specs["worker_hang"].sleep_seconds == 30.0
    assert specs["shm_attach_fail"].once


def test_parse_seed_entry():
    plan = faults.FaultPlan(faults.parse_spec("worker_crash:p=0.2,seed=7"))
    assert plan.seed == 7
    assert "seed" not in plan.specs


def test_unknown_site_fails_loudly():
    with pytest.raises(ValueError, match="unknown fault site"):
        faults.parse_spec("worker_krash")


def test_unknown_option_fails_loudly():
    with pytest.raises(ValueError, match="unknown fault option"):
        faults.parse_spec("worker_crash:q=0.2")


def test_unarmed_is_inert(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    assert faults.active_plan() is None
    assert not faults.fires("publish_fail")
    faults.check("shm_attach_fail")  # must not raise
    faults.worker_task()  # must not crash or hang this process


def test_deterministic_firing_sequence():
    """Same spec, same seed -> identical draw sequence; and the per-site
    streams are independent (arming a second site never perturbs the
    first's draws)."""
    spec = "worker_crash:p=0.3,seed=5"
    seq1 = [
        faults.FaultPlan(faults.parse_spec(spec)).should_fire("worker_crash")
        for _ in range(1)
    ]
    plan_a = faults.FaultPlan(faults.parse_spec(spec))
    plan_b = faults.FaultPlan(
        faults.parse_spec("worker_crash:p=0.3,worker_hang:p=0.5,seed=5")
    )
    draws_a = [plan_a.should_fire("worker_crash") for _ in range(50)]
    draws_b = [plan_b.should_fire("worker_crash") for _ in range(50)]
    assert draws_a == draws_b
    assert seq1[0] == draws_a[0]
    assert any(draws_a) and not all(draws_a)


def test_once_fires_exactly_once():
    plan = faults.FaultPlan(faults.parse_spec("shm_attach_fail:once"))
    assert plan.should_fire("shm_attach_fail")
    assert not any(plan.should_fire("shm_attach_fail") for _ in range(10))


def test_check_raises_when_armed(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "shm_attach_fail")
    with pytest.raises(faults.FaultInjected):
        faults.check("shm_attach_fail")
    # other sites stay quiet
    assert not faults.fires("publish_fail")


def test_worker_task_gated_off_in_master(monkeypatch):
    """An armed crash/hang spec must never fire in a non-daemon process:
    the serial rung of the degradation ladder runs the same task
    functions inline in the master."""
    monkeypatch.setenv("REPRO_FAULTS", "worker_crash,worker_hang:s=0.01")
    assert not multiprocessing.current_process().daemon
    faults.worker_task()  # reaching the next line IS the assertion


def test_plan_cached_per_spec_string(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "publish_fail:p=0.5,seed=1")
    plan = faults.active_plan()
    assert faults.active_plan() is plan  # cached: RNG streams persist
    monkeypatch.setenv("REPRO_FAULTS", "publish_fail:p=0.5,seed=2")
    assert faults.active_plan() is not plan  # new spec, new plan
