"""The batched banded d_MV parametric kernel and its engine wiring.

``pairwise_values_bounded("marzal_vidal", ...)`` must equal
``CountingDistance.within`` slot by slot -- the probe scores feeding the
pruned values are bit-identical to the scalar banded parametric DP, the
regime selection is shared with the scalar twin (one classifier), and
``REPRO_BANDED_BATCH=0`` restores the per-pair scalar probe loop.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import pairwise_values_bounded, pairwise_values_bounded_ids
from repro.batch import intern_corpus
from repro.batch.kernels import mv_banded_probe_batch
from repro.core import get_distance
from repro.core.bounded import _banded_parametric, _edit_budget, mv_bound_plan
from repro.index.base import CountingDistance

INF = float("inf")

REGIMES = {
    "word": ("abcde", 0, 9),
    "dna": ("acgt", 12, 45),
    "digit": ("01234567", 35, 90),
}


def _pairs(seed, regime, count):
    alphabet, lo, hi = REGIMES[regime]
    rng = random.Random(seed)

    def word():
        return "".join(rng.choice(alphabet) for _ in range(rng.randint(lo, hi)))

    return [(word(), word()) for _ in range(count)], rng


def _limits(rng, pairs):
    """Limits spanning every regime of mv_bound_plan (zero, negative,
    >= 1, inf, tight and loose bands), plus duplicates."""
    limits = []
    for _ in pairs:
        roll = rng.random()
        if roll < 0.08:
            limits.append(INF)
        elif roll < 0.16:
            limits.append(rng.choice([1.0, 1.5, -0.2, 0.0]))
        else:
            limits.append(rng.random() * 0.9)
    return limits


def test_probe_scores_bit_identical_to_scalar_probe():
    pairs, rng = _pairs(0x51, "word", 300)
    lams, bands = [], []
    for x, y in pairs:
        lam = rng.random()
        band = _edit_budget(lam * (len(x) + len(y)))
        lams.append(lam)
        bands.append(band)
    scores = mv_banded_probe_batch(pairs, lams, bands)
    for p, ((x, y), lam, band) in enumerate(zip(pairs, lams, bands)):
        if abs(len(x) - len(y)) > band:
            assert np.isinf(scores[p])
            continue
        assert float(scores[p]) == _banded_parametric(x, y, lam, band), (
            p,
            x,
            y,
            lam,
            band,
        )


@pytest.mark.parametrize("regime", sorted(REGIMES))
def test_bounded_values_match_within(regime):
    pairs, rng = _pairs(0xA3, regime, 120)
    pairs += pairs[:20]  # duplicated requests share one probe
    limits = _limits(rng, pairs)
    counter = CountingDistance(get_distance("marzal_vidal"))
    expected = [
        counter.within(x, y, limit) for (x, y), limit in zip(pairs, limits)
    ]
    got = pairwise_values_bounded("marzal_vidal", pairs, limits)
    assert got.tolist() == expected


def test_bounded_ids_match_within():
    items_pairs, rng = _pairs(0xB4, "word", 0)
    alphabet, lo, hi = REGIMES["word"]
    items = [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(lo, hi)))
        for _ in range(50)
    ]
    corpus = intern_corpus(items)
    store = corpus.store(["abced", "", "ddddd"])
    counter = CountingDistance(get_distance("marzal_vidal"))
    x_ids = [rng.randrange(len(store)) for _ in range(200)]
    y_ids = [rng.randrange(len(store)) for _ in range(200)]
    limits = _limits(rng, x_ids)
    got = pairwise_values_bounded_ids(
        "marzal_vidal", store, x_ids, y_ids, limits
    )
    expected = [
        counter.within(store.raw(i), store.raw(j), limit)
        for i, j, limit in zip(x_ids, y_ids, limits)
    ]
    assert got.tolist() == expected


def test_full_table_env_fallback_is_identical(monkeypatch):
    pairs, rng = _pairs(0xC5, "dna", 80)
    limits = _limits(rng, pairs)
    banded = pairwise_values_bounded("marzal_vidal", pairs, limits)
    monkeypatch.setenv("REPRO_BANDED_BATCH", "0")
    scalar_loop = pairwise_values_bounded("marzal_vidal", pairs, limits)
    assert banded.tolist() == scalar_loop.tolist()


def test_plan_matches_twin_regimes():
    # the classifier is the single source of truth: spot-check each tag
    assert mv_bound_plan(4, 4, 1.0) == ("exact", 0)
    assert mv_bound_plan(4, 4, INF) == ("exact", 0)
    tag, value = mv_bound_plan(3, 5, -0.5)
    assert tag == "pruned" and value == 1.0 / 8
    tag, value = mv_bound_plan(2, 9, 0.1)  # gap 7 > band 1
    assert tag == "pruned" and value == 7 / 11
    tag, band = mv_bound_plan(4, 5, 0.3)
    assert tag == "banded" and band == _edit_budget(0.3 * 9)
    tag, band = mv_bound_plan(90, 90, 0.8)  # long strings, wide band
    assert tag == "full"


@settings(max_examples=60, deadline=None)
@given(
    x=st.text(alphabet="abc", max_size=10),
    y=st.text(alphabet="abc", max_size=10),
    limit=st.one_of(
        st.floats(min_value=-0.5, max_value=1.2, allow_nan=False),
        st.just(INF),
    ),
)
def test_bounded_value_property(x, y, limit):
    counter = CountingDistance(get_distance("marzal_vidal"))
    got = pairwise_values_bounded("marzal_vidal", [(x, y)], [limit])[0]
    assert got == counter.within(x, y, limit)
