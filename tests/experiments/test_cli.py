"""The python -m repro.experiments command line."""

import pytest

from repro.experiments.__main__ import main


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out
    assert "tab2" in out


def test_no_argument_lists(capsys):
    assert main([]) == 0
    assert "fig3" in capsys.readouterr().out


def test_unknown_experiment(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_runs_experiment(capsys):
    assert main(["fig1", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "completed" in out


def test_bad_scale_rejected():
    with pytest.raises(SystemExit):
        main(["fig1", "--scale", "enormous"])
