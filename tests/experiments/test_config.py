"""Scale presets."""

import pytest

from repro.experiments.config import SCALES, get_scale


def test_presets():
    assert set(SCALES) == {"smoke", "bench", "default", "paper"}


def test_get_by_name():
    assert get_scale("smoke").name == "smoke"


def test_get_passthrough():
    scale = SCALES["default"]
    assert get_scale(scale) is scale


def test_unknown_name():
    with pytest.raises(KeyError):
        get_scale("huge")


def test_scales_are_ordered_by_size():
    smoke, default, paper = SCALES["smoke"], SCALES["default"], SCALES["paper"]
    assert smoke.dictionary_words < default.dictionary_words < paper.dictionary_words
    assert smoke.fig1_samples < default.fig1_samples < paper.fig1_samples
    assert smoke.laesa_train <= default.laesa_train <= paper.laesa_train


def test_paper_scale_matches_publication():
    paper = SCALES["paper"]
    assert paper.fig1_samples == 8000
    assert paper.laesa_train == 1000
    assert paper.laesa_queries == 1000
    assert paper.laesa_trials == 10
    assert max(paper.pivot_counts) == 300
    assert paper.classify_per_class == 100


def test_custom_scale_accepted():
    import dataclasses

    tiny = dataclasses.replace(SCALES["smoke"], name="custom", fig1_samples=10)
    assert get_scale(tiny).fig1_samples == 10
