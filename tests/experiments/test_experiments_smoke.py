"""End-to-end smoke runs of every experiment, with structural checks.

These use the 'smoke' scale (seconds per experiment).  Shape claims that
need statistical power (Table 1 orderings, Table 2 error levels) are only
asserted loosely here; the default-scale benchmark runs are where the
paper's shapes are reproduced properly.
"""

import pytest

from repro.experiments import EXPERIMENTS, run


class TestRegistry:
    def test_expected_ids(self):
        assert set(EXPERIMENTS) == {
            "fig1", "sec4.1", "fig2", "tab1", "fig3", "fig4", "tab2",
            "fig5", "speed", "kgap",
        }

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run("fig9", scale="smoke")


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return run("fig1", scale="smoke")

    def test_histograms_overlap_heavily(self, result):
        assert result.overlap > 0.8

    def test_high_equality_rate(self, result):
        assert result.equal_fraction > 0.7

    def test_heuristic_mean_at_least_exact(self, result):
        assert result.heuristic.mean >= result.exact.mean - 1e-12

    def test_render(self, result):
        out = result.render()
        assert "dC,h" in out
        assert "Figure 1" in out


class TestAgreement:
    @pytest.fixture(scope="class")
    def result(self):
        return run("sec4.1", scale="smoke")

    def test_three_datasets(self, result):
        assert len(result.reports) == 3

    def test_agreement_rates(self, result):
        for report in result.reports.values():
            assert report.agreement_rate > 0.5

    def test_render(self, result):
        assert "agreement" in result.render()


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return run("fig2", scale="smoke")

    def test_four_normalised_histograms(self, result):
        assert set(result.normalised) == {"dYB", "dC,h", "dMV", "dmax"}

    def test_levenshtein_mean_far_larger(self, result):
        # d_E is unnormalised: its mean dwarfs the normalised ones
        assert result.levenshtein.mean > 5 * max(
            h.mean for h in result.normalised.values()
        )

    def test_render_has_two_panels(self, result):
        out = result.render()
        assert "Normalised distances:" in out
        assert "Levenshtein distance:" in out


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run("tab1", scale="smoke")

    def test_all_cells_present(self, result):
        assert len(result.measured) == 5
        for rhos in result.measured.values():
            assert len(rhos) == 3
            assert all(r > 0 for r in rhos)

    def test_digits_ordering_holds_even_at_smoke_scale(self, result):
        checks = result.ordering_preserved()
        assert checks["hand. digits"]

    def test_render_includes_paper_values(self, result):
        out = result.render()
        assert "40.57" in out  # paper's dYB on the dictionary
        assert "|" in out


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return run("fig3", scale="smoke")

    def test_series_for_all_five_distances(self, result):
        assert set(result.series) == {"dYB", "dC,h", "dMV", "dmax", "dE"}

    def test_zero_pivots_is_exhaustive(self, result):
        for s in result.series.values():
            assert s.computations[0] == pytest.approx(result.n_train)

    def test_pivots_reduce_computations(self, result):
        for s in result.series.values():
            assert s.computations[-1] < s.computations[0]

    def test_contextual_beats_other_normalised(self, result):
        last = {name: s.computations[-1] for name, s in result.series.items()}
        assert last["dC,h"] < last["dYB"]
        assert last["dC,h"] < last["dMV"]

    def test_render(self, result):
        out = result.render()
        assert "number of pivots" in out
        assert "dC,h" in out


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return run("fig4", scale="smoke")

    def test_structure(self, result):
        assert set(result.series) == {"dYB", "dC,h", "dMV", "dmax", "dE"}
        for s in result.series.values():
            assert len(s.computations) == len(result.pivot_counts)

    def test_zero_pivots_is_exhaustive(self, result):
        for s in result.series.values():
            assert s.computations[0] == pytest.approx(result.n_train)


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run("tab2", scale="smoke")

    def test_all_six_distances(self, result):
        assert len(result.laesa) == 6
        assert len(result.exhaustive) == 6

    def test_error_rates_valid(self, result):
        for summary in list(result.laesa.values()) + list(
            result.exhaustive.values()
        ):
            assert 0.0 <= summary.mean_error_rate <= 1.0

    def test_exact_equals_heuristic_error(self, result):
        # the paper: "the same error rate is obtained when the exact
        # contextual distance algorithm is used instead of the heuristic"
        assert result.exhaustive["contextual"].mean_error_rate == pytest.approx(
            result.exhaustive["contextual_heuristic"].mean_error_rate,
            abs=0.15,
        )

    def test_render_includes_paper_columns(self, result):
        out = result.render()
        assert "paper LAESA" in out
        assert "5.19" in out


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return run("fig5", scale="smoke")

    def test_four_samples_each(self, result):
        assert len(result.eights) == 4
        assert len(result.zeros) == 4

    def test_writers_differ(self, result):
        assert len(set(result.eights)) > 1
        assert result.mean_intra_class_distance > 0.0

    def test_render_shows_bitmaps(self, result):
        out = result.render()
        assert "Eights from four writers" in out
        assert "#" in out


class TestKGap:
    @pytest.fixture(scope="class")
    def result(self):
        return run("kgap", scale="smoke")

    def test_three_datasets(self, result):
        assert len(result.distributions) == 3

    def test_mass_at_zero(self, result):
        for dataset in result.distributions:
            assert result.fraction_at_zero(dataset) > 0.6

    def test_render(self, result):
        assert "at k=dE" in result.render()


class TestSpeed:
    @pytest.fixture(scope="class")
    def result(self):
        return run("speed", scale="smoke")

    def test_both_datasets_timed(self, result):
        assert set(result.seconds) == {"dictionary", "digit contours"}

    def test_exact_slower_than_heuristic(self, result):
        for per_distance in result.seconds.values():
            assert per_distance["contextual"] > per_distance["contextual_heuristic"]

    def test_render(self, result):
        assert "ratio vs dE" in result.render()
