"""The shared LAESA sweep machinery behind Figures 3 and 4."""

import random

import pytest

from repro.experiments.laesa_sweep import run_sweep


def _make_trial_factory(seed_words):
    def make_trial(rng: random.Random):
        train = list(seed_words)
        queries = [
            "".join(rng.choice("abcde") for _ in range(rng.randint(2, 6)))
            for _ in range(6)
        ]
        return train, queries

    return make_trial


@pytest.fixture(scope="module")
def sweep(small_word_list):
    return run_sweep(
        title="unit-test sweep",
        scale_name="unit",
        distance_names=("levenshtein", "contextual_heuristic"),
        pivot_counts=(0, 4, 8),
        n_trials=2,
        seed=3,
        make_trial=_make_trial_factory(small_word_list[:50]),
    )


def test_series_keyed_by_display_name(sweep):
    assert set(sweep.series) == {"dE", "dC,h"}


def test_pivot_counts_sorted_and_deduplicated(small_word_list):
    result = run_sweep(
        title="t",
        scale_name="unit",
        distance_names=("levenshtein",),
        pivot_counts=(8, 0, 8, 4),
        n_trials=1,
        seed=1,
        make_trial=_make_trial_factory(small_word_list[:30]),
    )
    assert result.pivot_counts == (0, 4, 8)


def test_zero_pivot_column_is_scan(sweep):
    for series in sweep.series.values():
        assert series.computations[0] == pytest.approx(sweep.n_train)


def test_deviations_present_with_multiple_trials(sweep):
    for series in sweep.series.values():
        assert len(series.computations_dev) == len(sweep.pivot_counts)
        assert all(dev >= 0 for dev in series.computations_dev)


def test_seconds_positive(sweep):
    for series in sweep.series.values():
        assert all(t > 0 for t in series.seconds)


def test_render_contains_both_panels(sweep):
    out = sweep.render()
    assert "distance computations per query" in out
    assert "search time per query" in out
    assert "p=8" in out


def test_pivot_counts_beyond_train_size_are_clamped(small_word_list):
    tiny = small_word_list[:10]
    result = run_sweep(
        title="t",
        scale_name="unit",
        distance_names=("levenshtein",),
        pivot_counts=(0, 50),
        n_trials=1,
        seed=2,
        make_trial=_make_trial_factory(tiny),
    )
    # p=50 > 10 items: effectively 10 pivots; still a valid series
    assert len(result.series["dE"].computations) == 2


class TestSharedPoolMatrix:
    """run_sweep's pool mode: one memmap per distance, per-trial slices."""

    @staticmethod
    def _items_trial(pool):
        def make_trial(rng: random.Random):
            order = list(range(len(pool)))
            rng.shuffle(order)
            train = [pool[i] for i in order[:20]]
            queries = [pool[i] for i in order[20:26]]
            return train, queries

        return make_trial

    @staticmethod
    def _index_trial(pool):
        def make_trial(rng: random.Random):
            order = list(range(len(pool)))
            rng.shuffle(order)
            queries = [pool[i] for i in order[20:26]]
            return order[:20], queries

        return make_trial

    def test_pool_mode_reproduces_the_per_trial_path(self, small_word_list):
        """Same seed, same trials: the shared-memmap sweep must select the
        same pivots and therefore report identical computation counts."""
        pool = small_word_list[:40]
        kwargs = dict(
            title="t",
            scale_name="unit",
            distance_names=("levenshtein", "dmax"),
            pivot_counts=(0, 3, 6),
            n_trials=2,
            seed=11,
        )
        plain = run_sweep(make_trial=self._items_trial(pool), **kwargs)
        pooled = run_sweep(
            make_trial=self._index_trial(pool), pool=pool, **kwargs
        )
        for display in plain.series:
            assert (
                pooled.series[display].computations
                == plain.series[display].computations
            )

    def test_pool_mode_computes_each_matrix_once(
        self, small_word_list, monkeypatch
    ):
        import repro.experiments.laesa_sweep as sweep_mod

        calls = []
        real = sweep_mod.pairwise_matrix_memmap

        def spying(name, items, **kw):
            calls.append(name)
            return real(name, items, **kw)

        monkeypatch.setattr(sweep_mod, "pairwise_matrix_memmap", spying)
        run_sweep(
            title="t",
            scale_name="unit",
            distance_names=("levenshtein",),
            pivot_counts=(0, 4),
            n_trials=3,
            seed=5,
            make_trial=self._index_trial(small_word_list[:30]),
            pool=small_word_list[:30],
        )
        assert calls == ["levenshtein"]  # one memmap, three trials
