"""Test package marker: enables ``from ..conftest import ...`` helpers."""
