"""JSON/CSV export of experiment results."""

import csv
import json

import pytest

from repro.experiments import run
from repro.experiments.export import export_result, result_to_dict, sweep_to_csv


@pytest.fixture(scope="module")
def fig3_result():
    return run("fig3", scale="smoke")


@pytest.fixture(scope="module")
def fig1_result():
    return run("fig1", scale="smoke")


class TestResultToDict:
    def test_sweep_round_trips_through_json(self, fig3_result):
        data = result_to_dict(fig3_result)
        encoded = json.dumps(data)
        decoded = json.loads(encoded)
        assert decoded["pivot_counts"] == list(fig3_result.pivot_counts)
        assert set(decoded["series"]) == set(fig3_result.series)

    def test_histogram_arrays_become_lists(self, fig1_result):
        data = result_to_dict(fig1_result)
        assert isinstance(data["exact"]["counts"], list)
        assert isinstance(data["exact"]["bin_edges"], list)

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            result_to_dict({"not": "a dataclass"})


class TestCsv:
    def test_sweep_csv_rows(self, fig3_result, tmp_path):
        path = tmp_path / "sweep.csv"
        sweep_to_csv(fig3_result, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        expected = len(fig3_result.series) * len(fig3_result.pivot_counts)
        assert len(rows) == expected
        assert {row["distance"] for row in rows} == set(fig3_result.series)
        # numeric columns parse as floats
        assert all(float(row["computations"]) >= 0 for row in rows)


class TestExportResult:
    def test_writes_txt_json_csv_for_sweep(self, fig3_result, tmp_path):
        written = export_result(fig3_result, tmp_path, "fig3")
        names = {p.name for p in written}
        assert names == {"fig3.txt", "fig3.json", "fig3.csv"}
        assert (tmp_path / "fig3.txt").read_text().startswith("Figure 3")

    def test_writes_txt_json_for_non_sweep(self, fig1_result, tmp_path):
        written = export_result(fig1_result, tmp_path, "fig1")
        names = {p.name for p in written}
        assert names == {"fig1.txt", "fig1.json"}

    def test_creates_directory(self, fig1_result, tmp_path):
        target = tmp_path / "nested" / "dir"
        export_result(fig1_result, target, "fig1")
        assert (target / "fig1.json").exists()


def test_cli_save_flag(tmp_path, capsys):
    from repro.experiments.__main__ import main

    assert main(["fig1", "--scale", "smoke", "--save", str(tmp_path)]) == 0
    assert (tmp_path / "fig1.json").exists()
    assert "saved" in capsys.readouterr().out
