"""Per-scale dataset construction and caching."""

from repro.experiments.config import SCALES
from repro.experiments.data import (
    agreement_genes_for,
    dictionary_for,
    digits_for,
    genes_for,
)


def test_sizes_follow_scale():
    smoke = SCALES["smoke"]
    assert len(dictionary_for(smoke)) == smoke.dictionary_words
    assert len(genes_for(smoke)) == smoke.gene_count
    assert len(digits_for(smoke)) == 10 * smoke.digits_per_class


def test_caching_returns_same_object():
    smoke = SCALES["smoke"]
    assert dictionary_for(smoke) is dictionary_for(smoke)
    assert genes_for(smoke) is genes_for(smoke)
    assert digits_for(smoke) is digits_for(smoke)


def test_agreement_genes_use_capped_length():
    smoke = SCALES["smoke"]
    capped = agreement_genes_for(smoke)
    assert capped.length_statistics()["max"] <= smoke.agreement_gene_max_length + 3


def test_scales_share_nothing_when_parameters_differ():
    smoke = SCALES["smoke"]
    bench = SCALES["bench"]
    assert dictionary_for(smoke) is not dictionary_for(bench)
    assert len(dictionary_for(bench)) == bench.dictionary_words


def test_datasets_are_deterministic_across_calls():
    smoke = SCALES["smoke"]
    assert dictionary_for(smoke).items == dictionary_for(smoke).items
