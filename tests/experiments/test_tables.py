"""Text table rendering."""

import pytest

from repro.experiments.tables import Table


def test_render_alignment():
    table = Table(title="T", headers=["name", "value"])
    table.add_row("a", 1.5)
    table.add_row("longer", 0.25)
    out = table.render()
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[2]
    # all data lines equal width or shorter than the header rule
    assert "a" in out and "longer" in out


def test_row_width_validation():
    table = Table(title="T", headers=["a", "b"])
    with pytest.raises(ValueError):
        table.add_row("only-one")


def test_float_formatting():
    table = Table(title="T", headers=["v"])
    table.add_row(3.14159)
    table.add_row(0.0001234)
    table.add_row(123456.0)
    out = table.render()
    assert "3.142" in out
    assert "0.000123" in out
    assert "1.23e+05" in out


def test_nan_rendered_as_dash():
    table = Table(title="T", headers=["v"])
    table.add_row(float("nan"))
    assert "-" in table.render().splitlines()[-1]


def test_notes_rendered():
    table = Table(title="T", headers=["v"], notes=["something important"])
    table.add_row(1)
    assert "note: something important" in table.render()
