"""Synthetic Spanish dictionary."""

import pytest

from repro.datasets import SPANISH_SEED_LEXICON, spanish_dictionary


def test_seed_lexicon_is_plausible():
    assert len(SPANISH_SEED_LEXICON) > 250
    assert "casa" in SPANISH_SEED_LEXICON
    assert all(w == w.lower() for w in SPANISH_SEED_LEXICON)
    assert len(set(SPANISH_SEED_LEXICON)) == len(SPANISH_SEED_LEXICON)


def test_requested_size():
    data = spanish_dictionary(n_words=500, seed=1)
    assert len(data) == 500


def test_words_distinct():
    data = spanish_dictionary(n_words=800, seed=2)
    assert len(set(data.items)) == len(data)


def test_deterministic():
    a = spanish_dictionary(n_words=200, seed=3)
    b = spanish_dictionary(n_words=200, seed=3)
    assert a.items == b.items


def test_seed_changes_output():
    a = spanish_dictionary(n_words=400, seed=4, include_seed_words=False)
    b = spanish_dictionary(n_words=400, seed=5, include_seed_words=False)
    assert a.items != b.items


def test_length_distribution_word_like():
    stats = spanish_dictionary(n_words=2000, seed=6).length_statistics()
    assert 2 <= stats["min"]
    assert 5.0 <= stats["mean"] <= 12.0
    assert stats["max"] <= 22


def test_validation():
    with pytest.raises(ValueError):
        spanish_dictionary(n_words=0)


def test_metadata_records_provenance():
    data = spanish_dictionary(n_words=100, seed=7)
    assert data.metadata["seed"] == 7
    assert "SISAP" in data.metadata["substitute_for"]


def test_exclude_seed_words():
    data = spanish_dictionary(n_words=300, seed=8, include_seed_words=False)
    assert len(data) == 300
