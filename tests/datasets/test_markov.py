"""Markov string generator: training, determinism, length control."""

import random

import pytest

from repro.datasets import MarkovGenerator


CORPUS = ["casa", "cosa", "caso", "masa", "mesa", "pasa", "peso", "sala"]


def test_order_validation():
    with pytest.raises(ValueError):
        MarkovGenerator(order=0)


def test_generate_before_train():
    with pytest.raises(RuntimeError):
        MarkovGenerator().generate(random.Random(0))


def test_generated_symbols_come_from_corpus():
    model = MarkovGenerator(order=2).train(CORPUS)
    alphabet = set("".join(CORPUS))
    rng = random.Random(0)
    for _ in range(50):
        word = model.generate(rng)
        assert set(word) <= alphabet


def test_length_bounds_respected():
    model = MarkovGenerator(order=2).train(CORPUS)
    rng = random.Random(1)
    for _ in range(50):
        word = model.generate(rng, min_length=3, max_length=6)
        assert 3 <= len(word) <= 6


def test_deterministic_under_seed():
    model = MarkovGenerator(order=2).train(CORPUS)
    a = [model.generate(random.Random(7)) for _ in range(5)]
    b = [model.generate(random.Random(7)) for _ in range(5)]
    assert a == b


def test_order1_transitions_only_observed_bigrams():
    model = MarkovGenerator(order=1).train(["abab"])
    rng = random.Random(0)
    for _ in range(20):
        word = model.generate(rng, min_length=1, max_length=10)
        # in "abab" the only transitions are a->b and b->a (plus start->a)
        for first, second in zip(word, word[1:]):
            assert (first, second) in {("a", "b"), ("b", "a")}


def test_incremental_training():
    model = MarkovGenerator(order=1)
    model.train(["aa"])
    model.train(["bb"])
    rng = random.Random(3)
    words = {model.generate(rng, max_length=4) for _ in range(60)}
    assert any("a" in w for w in words)
    assert any("b" in w for w in words)
