"""The digit-contour dataset (NIST SD3 substitute)."""

import random

import pytest

from repro.core import levenshtein_distance
from repro.datasets import digit_contour, handwritten_digits


def test_sizes_and_labels():
    data = handwritten_digits(per_class=3, seed=0)
    assert len(data) == 30
    assert data.classes == list(range(10))
    for digit in range(10):
        assert sum(1 for l in data.labels if l == digit) == 3


def test_items_are_chain_codes():
    data = handwritten_digits(per_class=2, seed=1)
    for item in data.items:
        assert set(item) <= set("01234567")
        assert len(item) >= 8


def test_deterministic():
    a = handwritten_digits(per_class=2, seed=2)
    b = handwritten_digits(per_class=2, seed=2)
    assert a.items == b.items
    assert a.labels == b.labels


def test_writer_variation_within_class():
    data = handwritten_digits(per_class=4, seed=3)
    zeros = [item for item, l in zip(data.items, data.labels) if l == 0]
    assert len(set(zeros)) > 1  # no two identical renderings expected


def test_intra_class_closer_than_inter_class_on_average():
    """The class structure the 1-NN experiments rely on."""
    data = handwritten_digits(per_class=4, seed=4)
    by_class = {}
    for item, label in zip(data.items, data.labels):
        by_class.setdefault(label, []).append(item)

    def norm_d(a, b):
        return levenshtein_distance(a, b) / max(len(a), len(b))

    intra = []
    for members in by_class.values():
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                intra.append(norm_d(members[i], members[j]))
    inter = []
    classes = sorted(by_class)
    for a in classes:
        for b in classes:
            if a < b:
                inter.append(norm_d(by_class[a][0], by_class[b][0]))
    assert sum(intra) / len(intra) < sum(inter) / len(inter)


def test_digit_contour_single():
    code = digit_contour(7, random.Random(0), grid=24)
    assert len(code) >= 8


def test_validation():
    with pytest.raises(ValueError):
        handwritten_digits(per_class=0)


def test_grid_influences_contour_length():
    small = handwritten_digits(per_class=2, seed=5, grid=16)
    large = handwritten_digits(per_class=2, seed=5, grid=32)
    assert (
        large.length_statistics()["mean"] > small.length_statistics()["mean"]
    )
