"""Synthetic Listeria-like gene sequences."""

import pytest

from repro.core import levenshtein_distance
from repro.datasets import listeria_genes


def test_requested_size():
    data = listeria_genes(n_genes=50, seed=0)
    assert len(data) == 50


def test_alphabet():
    data = listeria_genes(n_genes=30, seed=1)
    for gene in data.items:
        assert set(gene) <= set("acgt")


def test_codon_structure():
    data = listeria_genes(n_genes=40, seed=2, family_fraction=0.0)
    for gene in data.items:
        assert len(gene) % 3 == 0
        assert gene.startswith("atg")
        assert gene[-3:] in ("taa", "tag", "tga")


def test_gc_content_close_to_target():
    data = listeria_genes(n_genes=150, seed=3, gc_content=0.38)
    total = sum(len(g) for g in data.items)
    gc = sum(g.count("g") + g.count("c") for g in data.items)
    assert gc / total == pytest.approx(0.38, abs=0.03)


def test_length_spread_is_wide():
    # the property driving Figure 2 / Table 1: very different lengths
    data = listeria_genes(n_genes=200, seed=4, min_length=60, max_length=900)
    stats = data.length_statistics()
    assert stats["max"] / stats["min"] > 4.0


def test_families_produce_near_duplicates():
    data = listeria_genes(
        n_genes=20, seed=5, family_fraction=1.0, family_size=4,
        mutation_rate=0.03, max_length=300,
    )
    # items are shuffled, but families must exist: the minimum pairwise
    # normalised distance over the set is small (sibling genes)
    best = 1.0
    for i in range(len(data)):
        for j in range(i + 1, len(data)):
            a, b = data.items[i], data.items[j]
            best = min(best, levenshtein_distance(a, b) / max(len(a), len(b)))
    assert best < 0.25


def test_independent_genes_are_far_apart():
    data = listeria_genes(
        n_genes=12, seed=6, family_fraction=0.0, max_length=300
    )
    worst = 1.0
    for i in range(len(data)):
        for j in range(i + 1, len(data)):
            a, b = data.items[i], data.items[j]
            worst = min(
                worst, levenshtein_distance(a, b) / max(len(a), len(b))
            )
    assert worst > 0.25


def test_deterministic():
    a = listeria_genes(n_genes=25, seed=6)
    b = listeria_genes(n_genes=25, seed=6)
    assert a.items == b.items


def test_validation():
    with pytest.raises(ValueError):
        listeria_genes(n_genes=0)
    with pytest.raises(ValueError):
        listeria_genes(n_genes=5, gc_content=1.5)
