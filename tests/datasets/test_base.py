"""Dataset container: validation, sampling, splits."""

import random

import pytest

from repro.datasets import Dataset


@pytest.fixture
def labelled():
    items = tuple(f"item{i}" for i in range(30))
    labels = tuple(i % 3 for i in range(30))
    return Dataset(name="toy", items=items, labels=labels)


class TestConstruction:
    def test_label_length_mismatch(self):
        with pytest.raises(ValueError):
            Dataset(name="bad", items=("a", "b"), labels=("x",))

    def test_len_and_getitem(self, labelled):
        assert len(labelled) == 30
        assert labelled[3] == "item3"

    def test_classes(self, labelled):
        assert labelled.classes == [0, 1, 2]

    def test_unlabelled_classes_empty(self):
        data = Dataset(name="u", items=("a",))
        assert data.classes == []


class TestSample:
    def test_sample_size(self, labelled):
        sampled = labelled.sample(10, random.Random(0))
        assert len(sampled) == 10
        assert len(sampled.labels) == 10

    def test_sample_without_replacement(self, labelled):
        sampled = labelled.sample(30, random.Random(0))
        assert sorted(sampled.items) == sorted(labelled.items)

    def test_sample_too_large(self, labelled):
        with pytest.raises(ValueError):
            labelled.sample(31, random.Random(0))

    def test_sample_deterministic(self, labelled):
        a = labelled.sample(5, random.Random(9))
        b = labelled.sample(5, random.Random(9))
        assert a.items == b.items

    def test_labels_follow_items(self, labelled):
        sampled = labelled.sample(12, random.Random(1))
        for item, label in zip(sampled.items, sampled.labels):
            idx = labelled.items.index(item)
            assert labelled.labels[idx] == label


class TestSplit:
    def test_split_sizes(self, labelled):
        head, tail = labelled.split(12, random.Random(0))
        assert len(head) == 12
        assert len(tail) == 18

    def test_split_partition(self, labelled):
        head, tail = labelled.split(10, random.Random(0))
        assert sorted(head.items + tail.items) == sorted(labelled.items)

    def test_split_too_large(self, labelled):
        with pytest.raises(ValueError):
            labelled.split(31, random.Random(0))


class TestStratifiedSplit:
    def test_per_class_counts(self, labelled):
        train, rest = labelled.stratified_split(5, random.Random(0))
        for cls in (0, 1, 2):
            assert sum(1 for l in train.labels if l == cls) == 5
        assert len(train) == 15
        assert len(rest) == 15

    def test_requires_labels(self):
        data = Dataset(name="u", items=("a", "b"))
        with pytest.raises(ValueError):
            data.stratified_split(1, random.Random(0))

    def test_insufficient_class_members(self, labelled):
        with pytest.raises(ValueError):
            labelled.stratified_split(11, random.Random(0))


def test_length_statistics():
    data = Dataset(name="s", items=("a", "bb", "cccc"))
    stats = data.length_statistics()
    assert stats["min"] == 1.0
    assert stats["max"] == 4.0
    assert stats["mean"] == pytest.approx(7 / 3)
