"""Digit glyph rendering: skeletons, styles, bitmaps."""

import random

import numpy as np
import pytest

from repro.datasets import DIGIT_SKELETONS, WriterStyle, render_digit, sample_style


def test_all_ten_digits_defined():
    assert sorted(DIGIT_SKELETONS) == list(range(10))


def test_skeletons_in_unit_square():
    for digit, strokes in DIGIT_SKELETONS.items():
        for stroke in strokes:
            for (x, y) in stroke:
                assert -0.1 <= x <= 1.1, digit
                assert -0.1 <= y <= 1.1, digit


def test_render_shape_and_dtype():
    image = render_digit(3, random.Random(0), grid=28)
    assert image.shape == (28, 28)
    assert image.dtype == bool


def test_render_produces_ink():
    for digit in range(10):
        image = render_digit(digit, random.Random(digit), grid=28)
        assert image.sum() > 20, digit


def test_render_respects_grid():
    image = render_digit(5, random.Random(1), grid=20)
    assert image.shape == (20, 20)


def test_invalid_digit():
    with pytest.raises(ValueError):
        render_digit(10, random.Random(0))


def test_fixed_style_deterministic():
    style = WriterStyle(jitter=0.0)
    a = render_digit(7, random.Random(0), style=style)
    b = render_digit(7, random.Random(99), style=style)
    assert np.array_equal(a, b)  # jitter 0 means rng is unused


def test_styles_vary(rng):
    styles = [sample_style(rng) for _ in range(10)]
    rotations = {s.rotation_deg for s in styles}
    assert len(rotations) > 5


def test_thickness_adds_ink():
    thin = render_digit(1, random.Random(2), style=WriterStyle(thickness=1.0, jitter=0.0))
    thick = render_digit(1, random.Random(2), style=WriterStyle(thickness=2.5, jitter=0.0))
    assert thick.sum() > thin.sum()


def test_digits_visually_distinct():
    # different digits should produce clearly different bitmaps
    style = WriterStyle(jitter=0.0)
    one = render_digit(1, random.Random(0), style=style)
    eight = render_digit(8, random.Random(0), style=style)
    assert (one != eight).sum() > 20
