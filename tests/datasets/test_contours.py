"""Moore tracing and Freeman chain codes."""

import numpy as np

from repro.datasets import FREEMAN_OFFSETS, freeman_chain_code, largest_component


def _image(rows):
    return np.array([[c == "#" for c in row] for row in rows])


class TestLargestComponent:
    def test_picks_bigger_blob(self):
        image = _image([
            "##....",
            "##....",
            "....#.",
        ])
        mask = largest_component(image)
        assert mask.sum() == 4
        assert not mask[2, 4]

    def test_diagonal_connectivity(self):
        image = _image([
            "#.",
            ".#",
        ])
        # 8-connectivity: both pixels form one component
        assert largest_component(image).sum() == 2

    def test_empty(self):
        assert largest_component(_image(["..", ".."])).sum() == 0


class TestFreemanChainCode:
    def test_empty_image(self):
        assert freeman_chain_code(_image(["..", ".."])) == ""

    def test_single_pixel(self):
        assert freeman_chain_code(_image([".#.", "...", "..."])) == ""

    def test_two_by_two_square(self):
        code = freeman_chain_code(_image([
            "....",
            ".##.",
            ".##.",
            "....",
        ]))
        # boundary of a 2x2 square: 4 moves (E, S, W, N)
        assert sorted(code) == sorted("0642")

    def test_horizontal_bar(self):
        code = freeman_chain_code(_image([
            ".....",
            ".###.",
            ".....",
        ]))
        # boundary walks east along the bar then back west
        assert code.count("0") == 2
        assert code.count("4") == 2
        assert len(code) == 4

    def test_codes_are_valid(self):
        code = freeman_chain_code(_image([
            ".....",
            ".###.",
            ".#.#.",
            ".###.",
            ".....",
        ]))
        assert set(code) <= set("01234567")
        assert len(code) >= 8

    def test_chain_closes(self):
        """Following the chain from the start pixel returns to the start."""
        image = _image([
            "......",
            ".####.",
            ".####.",
            ".##...",
            "......",
        ])
        code = freeman_chain_code(image)
        r = c = 0
        for ch in code:
            dr, dc = FREEMAN_OFFSETS[int(ch)]
            r += dr
            c += dc
        assert (r, c) == (0, 0)

    def test_bigger_blob_longer_chain(self):
        small = freeman_chain_code(_image([
            "....",
            ".##.",
            ".##.",
            "....",
        ]))
        big = freeman_chain_code(_image([
            "......",
            ".####.",
            ".####.",
            ".####.",
            ".####.",
            "......",
        ]))
        assert len(big) > len(small)


def test_offsets_are_the_eight_neighbours():
    assert len(FREEMAN_OFFSETS) == 8
    assert len(set(FREEMAN_OFFSETS)) == 8
    for dr, dc in FREEMAN_OFFSETS:
        assert (dr, dc) != (0, 0)
        assert -1 <= dr <= 1 and -1 <= dc <= 1
