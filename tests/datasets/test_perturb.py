"""genqueries-style perturbation."""

import random

import pytest

from repro.core import levenshtein_distance
from repro.datasets import Dataset, perturb, perturbed_queries


class TestPerturb:
    def test_zero_operations_is_identity(self, rng):
        assert perturb("palabra", 0, rng) == "palabra"

    def test_edit_distance_bounded_by_operations(self, rng):
        for _ in range(50):
            base = "perturbacion"
            result = perturb(base, 2, rng)
            assert levenshtein_distance(base, result) <= 2

    def test_usually_changes_string(self, rng):
        changed = sum(
            perturb("palabras", 2, rng) != "palabras" for _ in range(50)
        )
        assert changed > 35

    def test_negative_operations(self, rng):
        with pytest.raises(ValueError):
            perturb("x", -1, rng)

    def test_empty_string_grows_by_insertion(self, rng):
        result = perturb("", 2, rng, alphabet="ab")
        assert len(result) <= 2

    def test_alphabet_respected(self, rng):
        for _ in range(30):
            result = perturb("aaaa", 3, rng, alphabet="xyz")
            assert set(result) <= set("aaaxyz")

    def test_deterministic(self):
        a = perturb("determinista", 3, random.Random(5))
        b = perturb("determinista", 3, random.Random(5))
        assert a == b


class TestPerturbedQueries:
    @pytest.fixture
    def source(self):
        return Dataset(name="s", items=("casa", "cosa", "masa", "mesa"))

    def test_count(self, source, rng):
        queries = perturbed_queries(source, 10, rng, operations=2)
        assert len(queries) == 10

    def test_queries_near_source(self, source, rng):
        queries = perturbed_queries(source, 20, rng, operations=2)
        for q in queries:
            best = min(levenshtein_distance(q, s) for s in source.items)
            assert best <= 2

    def test_alphabet_pooled_from_dataset(self, source, rng):
        queries = perturbed_queries(source, 30, rng, operations=3)
        pooled = set("".join(source.items))
        for q in queries:
            assert set(q) <= pooled
