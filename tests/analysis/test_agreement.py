"""Exact-vs-heuristic agreement reports."""

import random

import pytest

from repro.analysis import heuristic_agreement


def test_report_fields(rng):
    items = ["casa", "cosa", "caso", "cesta", "masa", "pasa"]
    report = heuristic_agreement(items, n_pairs=30, rng=rng)
    assert report.n_pairs == 30
    assert 0 <= report.n_equal <= 30
    assert 0.0 <= report.agreement_rate <= 1.0
    assert report.mean_gap >= 0.0
    assert report.max_gap >= report.mean_gap


def test_high_agreement_on_words():
    gen = random.Random(0)
    items = [
        "".join(gen.choice("abcd") for _ in range(gen.randint(2, 8)))
        for _ in range(40)
    ]
    report = heuristic_agreement(items, n_pairs=200, rng=random.Random(1))
    assert report.agreement_rate > 0.6  # paper reports ~0.9


def test_needs_two_items(rng):
    with pytest.raises(ValueError):
        heuristic_agreement(["solo"], n_pairs=5, rng=rng)


def test_summary_mentions_rate(rng):
    items = ["aa", "ab", "ba", "bb"]
    report = heuristic_agreement(items, n_pairs=10, rng=rng)
    assert "%" in report.summary()


def test_deterministic():
    items = ["word", "ward", "cord", "care", "core"]
    a = heuristic_agreement(items, n_pairs=20, rng=random.Random(5))
    b = heuristic_agreement(items, n_pairs=20, rng=random.Random(5))
    assert a == b
