"""Chávez intrinsic dimensionality."""

import pytest

from repro.analysis import intrinsic_dimensionality, intrinsic_dimensionality_of
from repro.core import get_distance


def test_formula():
    assert intrinsic_dimensionality(2.0, 1.0) == pytest.approx(2.0)
    assert intrinsic_dimensionality(2.0, 1.0, chavez_factor=False) == pytest.approx(4.0)


def test_zero_variance_is_infinite():
    assert intrinsic_dimensionality(1.0, 0.0) == float("inf")


def test_negative_variance_rejected():
    with pytest.raises(ValueError):
        intrinsic_dimensionality(1.0, -0.5)


def test_concentration_raises_dimension():
    # same mean, smaller spread -> higher rho (harder space)
    assert intrinsic_dimensionality(10.0, 0.5) > intrinsic_dimensionality(10.0, 5.0)


def test_of_items():
    items = ["aaa", "aab", "abb", "bbb", "aba", "bab"]
    rho = intrinsic_dimensionality_of(items, get_distance("levenshtein"))
    assert rho > 0.0


def test_dyb_more_concentrated_than_de_on_varied_lengths():
    """A small in-vitro version of the paper's Table 1 claim."""
    import random

    rng = random.Random(0)
    items = [
        "".join(rng.choice("acgt") for _ in range(rng.randint(5, 60)))
        for _ in range(40)
    ]
    rho_yb = intrinsic_dimensionality_of(items, get_distance("yujian_bo"))
    rho_ch = intrinsic_dimensionality_of(
        items, get_distance("contextual_heuristic")
    )
    assert rho_ch < rho_yb
