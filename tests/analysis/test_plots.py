"""ASCII renderers for figures."""

import numpy as np
import pytest

from repro.analysis import DistanceHistogram, render_histograms, render_series


@pytest.fixture
def hist():
    return DistanceHistogram.from_values(
        np.array([0.2, 0.4, 0.4, 0.6, 0.8]), label="demo", bins=8
    )


class TestHistogramRendering:
    def test_contains_legend(self, hist):
        out = render_histograms([hist])
        assert "demo" in out

    def test_multiple_series_get_distinct_markers(self, hist):
        other = DistanceHistogram.from_values(
            np.array([1.0, 1.5]), label="other", bins=8
        )
        out = render_histograms([hist, other])
        assert "o = demo" in out
        assert "x = other" in out

    def test_dimensions(self, hist):
        out = render_histograms([hist], width=40, height=8)
        lines = out.splitlines()
        assert all(len(line) <= 80 for line in lines)
        assert len(lines) >= 8

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_histograms([])


class TestSeriesRendering:
    def test_contains_markers_and_labels(self):
        out = render_series(
            {"dE": ([0, 10, 20], [100, 50, 40]), "dC,h": ([0, 10, 20], [100, 30, 20])},
            x_label="pivots",
        )
        assert "o = dE" in out
        assert "x = dC,h" in out
        assert "pivots" in out

    def test_axis_bounds_shown(self):
        out = render_series({"s": ([0, 300], [1, 800])})
        assert "300" in out
        assert "800" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_series({})

    def test_single_point_series(self):
        out = render_series({"p": ([5], [7])})
        assert "o = p" in out

    def test_constant_series(self):
        out = render_series({"flat": ([0, 1, 2], [3, 3, 3])})
        assert "flat" in out
