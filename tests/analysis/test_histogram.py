"""Distance histograms and pairwise sampling."""

import random

import numpy as np
import pytest

from repro.analysis import DistanceHistogram, pairwise_distance_sample
from repro.core import get_distance


class TestPairwiseSample:
    def test_all_pairs_when_small(self):
        items = ["a", "ab", "abc", "abcd"]
        values = pairwise_distance_sample(items, get_distance("levenshtein"))
        assert len(values) == 6  # C(4, 2)

    def test_sampled_when_capped(self):
        items = [f"w{i}" for i in range(50)]
        values = pairwise_distance_sample(
            items, get_distance("levenshtein"), max_pairs=100,
            rng=random.Random(0),
        )
        assert len(values) == 100

    def test_no_self_pairs(self):
        # distance 0 can only come from duplicate items; with distinct
        # items every sampled value is positive
        items = [f"unique{i}" for i in range(20)]
        values = pairwise_distance_sample(
            items, get_distance("levenshtein"), max_pairs=300,
            rng=random.Random(1),
        )
        assert (values > 0).all()

    def test_needs_two_items(self):
        with pytest.raises(ValueError):
            pairwise_distance_sample(["solo"], get_distance("levenshtein"))


class TestDistanceHistogram:
    def test_from_values_statistics(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        hist = DistanceHistogram.from_values(values, label="t", bins=4)
        assert hist.mean == pytest.approx(2.5)
        assert hist.variance == pytest.approx(np.var(values))
        assert hist.n_values == 4
        assert hist.counts.sum() == 4

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            DistanceHistogram.from_values(np.array([]))

    def test_normalized_counts_sum_to_one(self):
        hist = DistanceHistogram.from_values(np.array([1.0, 1.5, 9.0]), bins=5)
        assert hist.normalized_counts().sum() == pytest.approx(1.0)

    def test_intrinsic_dimensionality_property(self):
        values = np.array([2.0, 2.0, 2.0, 4.0])
        hist = DistanceHistogram.from_values(values, bins=3)
        expected = hist.mean**2 / (2 * hist.variance)
        assert hist.intrinsic_dimensionality == pytest.approx(expected)

    def test_overlap_identical(self):
        values = np.array([1.0, 2.0, 2.5, 3.0])
        a = DistanceHistogram.from_values(values, bins=6, value_range=(0, 4))
        b = DistanceHistogram.from_values(values, bins=6, value_range=(0, 4))
        assert a.overlap(b) == pytest.approx(1.0)

    def test_overlap_disjoint(self):
        a = DistanceHistogram.from_values(
            np.array([0.1, 0.2]), bins=10, value_range=(0, 1)
        )
        b = DistanceHistogram.from_values(
            np.array([0.8, 0.9]), bins=10, value_range=(0, 1)
        )
        assert a.overlap(b) == pytest.approx(0.0)

    def test_overlap_requires_same_binning(self):
        a = DistanceHistogram.from_values(np.array([1.0]), bins=4)
        b = DistanceHistogram.from_values(np.array([2.0]), bins=4)
        with pytest.raises(ValueError):
            a.overlap(b)
