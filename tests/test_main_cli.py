"""The python -m repro distance calculator."""

import pytest

from repro.__main__ import main


def test_no_arguments_lists_distances(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "contextual" in out
    assert "registered distances" in out


def test_pair_computes_all(capsys):
    assert main(["ababa", "baab"]) == 0
    out = capsys.readouterr().out
    assert "0.533333" in out  # d_C = 8/15
    assert "levenshtein" in out


def test_single_distance_flag(capsys):
    assert main(["abaa", "aab", "-d", "levenshtein"]) == 0
    out = capsys.readouterr().out
    assert "2.000000" in out
    assert "marzal" not in out


def test_repeatable_distance_flag(capsys):
    assert main(["a", "b", "-d", "levenshtein", "-d", "yujian_bo"]) == 0
    out = capsys.readouterr().out
    assert "dE" in out and "dYB" in out


def test_unknown_distance_raises():
    with pytest.raises(KeyError):
        main(["a", "b", "-d", "nonexistent"])
