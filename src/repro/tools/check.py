"""AST-based invariant linter for the engine's cross-module contracts.

Six PRs of optimisation accumulated invariants that exist only by
convention; this checker makes them mechanical.  Run it on a tree::

    python -m repro.tools.check src/

Rules (each reports ``path:line: Rn message``; a trailing
``# repro: noqa[Rn]`` comment on the reported line suppresses that rule,
bare ``# repro: noqa`` suppresses all of them):

R1  no raw ``os.environ`` / ``os.getenv`` read of a ``REPRO_*`` name
    outside :mod:`repro.tools.knobs` -- every knob goes through the
    registry's typed accessors;
R2  twin parity: every batch kernel in ``kernels.py`` that dispatches to
    the JIT backend (``jit.<own name>(...)``) has a top-level twin of the
    same name in the sibling ``jit.py`` with identical parameter names
    and order;
R3  shm lifecycle: every class that creates a shared-memory segment
    (``SharedMemory(..., create=True)``) also releases it -- a call whose
    name mentions ``unlink``/``release``/``close`` somewhere in the same
    class -- and the module guards unlink races with an
    ``except FileNotFoundError`` handler;
R4  degradation coverage: every public ``bulk_*`` method on an ``index``
    or ``shard`` class reports degradation -- its body references
    ``_track_degradation`` or delegates to a lockstep driver
    (``_lockstep_drive`` / ``_bulk_knn_lockstep``);
R5  fault-site registration: every string literal passed to
    ``faults.check`` / ``faults.fires`` / ``should_fire`` names a site
    declared in ``faults.py``'s ``SITES`` tuple;
R6  atomic store writes: inside ``repro/store/`` every file write goes
    through the crash-safe helpers in :mod:`repro.store.atomic` -- a
    bare ``open(path, "wb")`` / ``open_memmap(..., mode="w+")`` could
    leave a torn artifact visible; ``atomic.py`` itself is the one
    sanctioned writer.

The checker is pure stdlib ``ast`` -- no imports of the checked code, no
third-party dependencies -- so it runs anywhere the test-suite runs.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["RULES", "Violation", "check_paths", "check_tree", "main"]

#: Rule code -> one-line summary (the linter's public contract).
RULES: Dict[str, str] = {
    "R1": "raw os.environ read of a REPRO_* knob outside repro.tools.knobs",
    "R2": "batch kernel without a matching numba twin in jit.py",
    "R3": "shared-memory creation without paired release/unlink guard",
    "R4": "public bulk_* index/shard method not reporting degradation",
    "R5": "fault site not declared in faults.SITES",
    "R6": "non-atomic file write inside repro/store (use repro.store.atomic)",
}

_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[([^\]]*)\])?", re.IGNORECASE)


@dataclass(frozen=True)
class Violation:
    """One rule hit, pointing at ``path:line``."""

    path: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass
class _Source:
    """A parsed file plus its per-line noqa suppressions."""

    path: Path
    tree: ast.Module
    #: line -> None (suppress every rule) or the set of suppressed codes
    noqa: Dict[int, Optional[Set[str]]]


def _parse_noqa(text: str) -> Dict[int, Optional[Set[str]]]:
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _NOQA.search(line)
        if match is None:
            continue
        codes = match.group(1)
        if codes is None:
            table[lineno] = None  # bare noqa: everything
        else:
            table[lineno] = {
                code.strip().upper() for code in codes.split(",") if code.strip()
            }
    return table


def _load(path: Path) -> Tuple[Optional[_Source], List[Violation]]:
    try:
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
    except (OSError, SyntaxError) as exc:
        return None, [
            Violation(str(path), getattr(exc, "lineno", 1) or 1, "E0", str(exc))
        ]
    return _Source(path, tree, _parse_noqa(text)), []


# ---------------------------------------------------------------------------
# R1: no raw REPRO_* environment reads outside the registry
# ---------------------------------------------------------------------------

def _is_environ_ref(node: ast.expr) -> bool:
    """``os.environ`` or a bare ``environ`` name."""
    if isinstance(node, ast.Attribute) and node.attr == "environ":
        return True
    return isinstance(node, ast.Name) and node.id == "environ"


def _is_getenv_ref(node: ast.expr) -> bool:
    """``os.getenv`` or a bare ``getenv`` name."""
    if isinstance(node, ast.Attribute) and node.attr == "getenv":
        return True
    return isinstance(node, ast.Name) and node.id == "getenv"


def _repro_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value.startswith("REPRO_"):
            return node.value
    return None


def _env_read(node: ast.AST) -> Optional[str]:
    """The REPRO_* name *node* reads from the environment, if any."""
    if isinstance(node, ast.Subscript) and _is_environ_ref(node.value):
        return _repro_name(node.slice)
    if isinstance(node, ast.Call) and node.args:
        func = node.func
        if _is_getenv_ref(func):
            return _repro_name(node.args[0])
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("get", "setdefault", "pop")
            and _is_environ_ref(func.value)
        ):
            return _repro_name(node.args[0])
    return None


def _rule_r1(source: _Source) -> List[Violation]:
    if source.path.name == "knobs.py" and source.path.parent.name == "tools":
        return []  # the registry is the one sanctioned reader
    found = []
    for node in ast.walk(source.tree):
        name = _env_read(node)
        if name is not None:
            found.append(
                Violation(
                    str(source.path),
                    node.lineno,
                    "R1",
                    f"raw environment read of {name}; use the typed "
                    "accessors in repro.tools.knobs",
                )
            )
    return found


# ---------------------------------------------------------------------------
# R2: numpy/numba kernel twin parity
# ---------------------------------------------------------------------------

def _arg_names(fn: ast.FunctionDef) -> List[str]:
    args = fn.args
    return (
        [a.arg for a in args.posonlyargs]
        + [a.arg for a in args.args]
        + [a.arg for a in args.kwonlyargs]
    )


def _dispatches_to_twin(fn: ast.FunctionDef) -> bool:
    """Whether *fn* forwards to ``<backend>.<own name>(...)`` somewhere."""
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == fn.name
        ):
            return True
    return False


def _rule_r2(sources: Sequence[_Source]) -> List[Violation]:
    by_dir: Dict[Path, Dict[str, _Source]] = {}
    for source in sources:
        if source.path.name in ("kernels.py", "jit.py"):
            by_dir.setdefault(source.path.parent, {})[source.path.name] = source
    found = []
    for members in by_dir.values():
        kernels, jit = members.get("kernels.py"), members.get("jit.py")
        if kernels is None or jit is None:
            continue  # nothing to pair against in this directory
        twins = {
            node.name: node
            for node in jit.tree.body
            if isinstance(node, ast.FunctionDef)
        }
        for node in kernels.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if not _dispatches_to_twin(node):
                continue
            twin = twins.get(node.name)
            if twin is None:
                found.append(
                    Violation(
                        str(kernels.path),
                        node.lineno,
                        "R2",
                        f"kernel {node.name} dispatches to the JIT backend "
                        f"but {jit.path.name} defines no twin of that name",
                    )
                )
                continue
            ours, theirs = _arg_names(node), _arg_names(twin)
            if ours != theirs:
                found.append(
                    Violation(
                        str(kernels.path),
                        node.lineno,
                        "R2",
                        f"kernel {node.name} parameters {ours} do not match "
                        f"its JIT twin's {theirs}",
                    )
                )
    return found


# ---------------------------------------------------------------------------
# R3: shared-memory lifecycle pairing
# ---------------------------------------------------------------------------

def _creates_shm(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name != "SharedMemory":
        return False
    for keyword in node.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


_RELEASE_MARKERS = ("unlink", "release", "close", "shutdown")


def _names_release(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name is None:
        return False
    lowered = name.lower()
    return any(marker in lowered for marker in _RELEASE_MARKERS)


def _guards_file_not_found(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler) or node.type is None:
            continue
        exceptions = (
            node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        )
        for exc in exceptions:
            if isinstance(exc, ast.Name) and exc.id == "FileNotFoundError":
                return True
            if isinstance(exc, ast.Attribute) and exc.attr == "FileNotFoundError":
                return True
    return False


def _rule_r3(source: _Source) -> List[Violation]:
    found = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        creation = next(
            (n for n in ast.walk(node) if _creates_shm(n)), None
        )
        if creation is None:
            continue
        if not any(_names_release(n) for n in ast.walk(node)):
            found.append(
                Violation(
                    str(source.path),
                    creation.lineno,
                    "R3",
                    f"class {node.name} creates shared memory but never "
                    "releases it (no unlink/release/close call in the class)",
                )
            )
        if not _guards_file_not_found(source.tree):
            found.append(
                Violation(
                    str(source.path),
                    creation.lineno,
                    "R3",
                    f"class {node.name} creates shared memory but the module "
                    "has no FileNotFoundError guard on the unlink path",
                )
            )
    return found


# ---------------------------------------------------------------------------
# R4: degradation coverage of index bulk paths
# ---------------------------------------------------------------------------

_DEGRADATION_MARKERS = {
    "_track_degradation",
    "_lockstep_drive",
    "_bulk_knn_lockstep",
}


def _references_degradation(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and node.attr in _DEGRADATION_MARKERS:
            return True
        if isinstance(node, ast.Name) and node.id in _DEGRADATION_MARKERS:
            return True
    return False


def _rule_r4(source: _Source) -> List[Violation]:
    if not {"index", "shard"} & set(source.path.parts):
        return []
    found = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if not item.name.startswith("bulk_"):
                continue
            if not _references_degradation(item):
                found.append(
                    Violation(
                        str(source.path),
                        item.lineno,
                        "R4",
                        f"{node.name}.{item.name} neither wraps its body in "
                        "_track_degradation nor delegates to a lockstep "
                        "driver; bulk degradation would go unreported",
                    )
                )
    return found


# ---------------------------------------------------------------------------
# R5: fault-site registration
# ---------------------------------------------------------------------------

def _declared_sites(sources: Sequence[_Source]) -> Optional[Set[str]]:
    for source in sources:
        if source.path.name != "faults.py":
            continue
        for node in source.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "SITES" not in targets:
                continue
            if isinstance(node.value, (ast.Tuple, ast.List)):
                sites = set()
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        sites.add(element.value)
                return sites
    return None


_FAULT_HOOKS = ("check", "fires", "should_fire")


def _rule_r5(sources: Sequence[_Source]) -> List[Violation]:
    sites = _declared_sites(sources)
    if sites is None:
        return []  # no faults.py in the scanned tree: nothing to check
    found = []
    for source in sources:
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _FAULT_HOOKS
                and node.args
            ):
                continue
            literal = node.args[0]
            if not (
                isinstance(literal, ast.Constant)
                and isinstance(literal.value, str)
            ):
                continue
            if literal.value not in sites:
                found.append(
                    Violation(
                        str(source.path),
                        node.lineno,
                        "R5",
                        f"fault site {literal.value!r} is not declared in "
                        f"faults.SITES (known: {', '.join(sorted(sites))})",
                    )
                )
    return found


# ---------------------------------------------------------------------------
# R6: atomic writes inside the artifact store
# ---------------------------------------------------------------------------

#: ``open``-style mode literals: short strings over the mode alphabet.
#: Anything longer or with foreign characters is a path or some other
#: argument, not a mode.
_MODE_LITERAL = re.compile(r"^[rwxab+tU]{1,3}$")

#: Mode characters that make a handle writable (truncate, create,
#: append, or update) -- the ones a crash can tear.
_WRITE_CHARS = frozenset("wax+")

_OPENERS = ("open", "open_memmap")


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _write_mode(node: ast.Call) -> Optional[str]:
    """The write-mode literal *node* opens with, if any."""
    candidates: List[ast.expr] = [
        keyword.value for keyword in node.keywords if keyword.arg == "mode"
    ]
    # positional mode: open(path, "wb") / open_memmap(path, "w+", ...)
    candidates.extend(node.args[1:2])
    for candidate in candidates:
        if not (
            isinstance(candidate, ast.Constant)
            and isinstance(candidate.value, str)
        ):
            continue
        mode = candidate.value
        if _MODE_LITERAL.match(mode) and _WRITE_CHARS & set(mode):
            return mode
    return None


def _rule_r6(source: _Source) -> List[Violation]:
    if "store" not in source.path.parts:
        return []
    if source.path.name == "atomic.py":
        return []  # the sanctioned writer: tmp + fsync + rename lives here
    found = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name not in _OPENERS:
            continue
        mode = _write_mode(node)
        if mode is None:
            continue
        found.append(
            Violation(
                str(source.path),
                node.lineno,
                "R6",
                f"{name}(..., {mode!r}) writes non-atomically inside the "
                "artifact store; route it through repro.store.atomic "
                "(tmp + fsync + rename)",
            )
        )
    return found


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def _suppressed(violation: Violation, source: _Source) -> bool:
    codes = source.noqa.get(violation.line, "missing")
    if codes == "missing":
        return False
    return codes is None or violation.code in codes


def check_paths(paths: Iterable[Path]) -> List[Violation]:
    """Lint every ``.py`` file under *paths*; returns surviving violations."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    sources: List[_Source] = []
    violations: List[Violation] = []
    by_path: Dict[str, _Source] = {}
    for path in files:
        source, errors = _load(path)
        violations.extend(errors)
        if source is not None:
            sources.append(source)
            by_path[str(path)] = source
    for source in sources:
        violations.extend(_rule_r1(source))
        violations.extend(_rule_r3(source))
        violations.extend(_rule_r4(source))
        violations.extend(_rule_r6(source))
    violations.extend(_rule_r2(sources))
    violations.extend(_rule_r5(sources))
    kept = []
    for violation in violations:
        source = by_path.get(violation.path)
        if source is not None and _suppressed(violation, source):
            continue
        kept.append(violation)
    kept.sort(key=lambda v: (v.path, v.line, v.code))
    return kept


def check_tree(root: str) -> List[Violation]:
    """:func:`check_paths` over a single root (string convenience)."""
    return check_paths([Path(root)])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.check",
        description="Run the project invariant linter (rules R1-R6).",
    )
    parser.add_argument(
        "paths", nargs="+", help="files or directories to lint"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table first"
    )
    options = parser.parse_args(argv)
    if options.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
    violations = check_paths([Path(p) for p in options.paths])
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"{len(violations)} invariant violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
