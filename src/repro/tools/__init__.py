"""Static-analysis layer: the env-knob registry and the invariant linter.

Six PRs of optimisation accumulated contracts that previously existed
only by convention -- numpy/numba kernel twins, shm publish/release
pairing, degradation-tracked bulk paths, a dozen ``REPRO_*`` env knobs.
This package makes them mechanical:

* :mod:`repro.tools.knobs` -- the declarative registry of every
  ``REPRO_*`` environment knob plus the typed accessors every consuming
  module reads through (``python -m repro.tools.knobs --markdown``
  regenerates the README table);
* :mod:`repro.tools.check` -- the AST-based invariant linter
  (``python -m repro.tools.check src/``) enforcing rules R1-R5.
"""

from typing import Any

__all__ = ["REGISTRY", "KnobSpec"]


def __getattr__(name: str) -> Any:
    # Lazy re-export: ``python -m repro.tools.knobs`` would otherwise
    # import the module twice (package init + runpy) and warn.
    if name in __all__:
        from . import knobs

        return getattr(knobs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
