"""The declarative registry of every ``REPRO_*`` environment knob.

Every runtime-tunable surface of the engine is an environment variable
prefixed ``REPRO_``; this module is the single place they are declared
(name, type, default, consuming module) and the single place the
environment is actually read.  Consuming modules go through the typed
accessors -- :func:`get_flag`, :func:`get_int`, :func:`get_float`,
:func:`get_str` -- so the invariant linter (rule R1 in
:mod:`repro.tools.check`) can mechanically reject any raw ``os.environ``
read of a ``REPRO_*`` name elsewhere in the tree, and the README's knob
table is generated from the same specs (``python -m repro.tools.knobs
--markdown``; ``--check README.md`` verifies the committed copy).

Accessor semantics match the pre-registry readers bit-for-bit:

* flags are *enabled unless* the value is one of ``0/off/false/no``
  (case-insensitive, surrounding whitespace ignored) -- so unset and
  unrecognised values both mean "on", and ``REPRO_JIT`` expresses its
  opt-out as ``not get_flag("REPRO_JIT")``;
* numeric knobs fall back to the caller-supplied default when the
  variable is unset or blank, and apply the caller's clamp *only* to
  environment-supplied values (defaults are trusted);
* values are re-read per call -- no import-time caching -- so tests and
  operators can flip a knob at any point (``REPRO_JIT`` alone is
  consumed at import, by the backend selection in
  :mod:`repro.batch.jit`).

Defaults recorded in the registry are documentation: several consumers
keep the authoritative default as a monkeypatchable module constant
(e.g. ``repro.batch.engine._MIN_PAIRS_PER_WORKER``) and pass it to the
accessor, so patching the constant keeps working.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

__all__ = [
    "REGISTRY",
    "KnobSpec",
    "get_flag",
    "get_float",
    "get_int",
    "get_str",
    "markdown_table",
    "raw",
]

#: Values that turn a flag knob off (everything else, including unset,
#: means enabled).  Shared by every boolean knob in the fleet.
_OFF_VALUES = frozenset({"0", "off", "false", "no"})

KnobDefault = Union[bool, int, float, str, None]


@dataclass(frozen=True)
class KnobSpec:
    """One declared environment knob.

    ``default`` is the documented effective default (``None`` when the
    knob is an optional override with no standalone default); ``module``
    names the consuming module, for the README table and for humans
    hunting a knob's effect.
    """

    name: str
    type: str  # "flag" | "int" | "float" | "str"
    default: KnobDefault
    description: str
    module: str


def _spec(*specs: KnobSpec) -> Dict[str, KnobSpec]:
    return {spec.name: spec for spec in specs}


#: Every ``REPRO_*`` knob the tree consumes, keyed by name.  Adding an
#: env read anywhere else trips linter rule R1; adding one here without
#: a consumer is harmless but shows up in the README table, so prune.
REGISTRY: Dict[str, KnobSpec] = _spec(
    KnobSpec(
        name="REPRO_MIN_PAIRS_PER_WORKER",
        type="int",
        default=512,
        description=(
            "Minimum unique-pair count before a bulk call fans out over "
            "a process pool (read per call; smaller batches run in-process)."
        ),
        module="repro.batch.engine",
    ),
    KnobSpec(
        name="REPRO_BANDED_BATCH",
        type="flag",
        default=True,
        description=(
            "Allow the banded batch kernels in bounded sweeps; `0` forces "
            "the full-table fallback (identical values, more padded work)."
        ),
        module="repro.batch.engine",
    ),
    KnobSpec(
        name="REPRO_PERSISTENT_POOL",
        type="flag",
        default=True,
        description=(
            "Reuse the persistent supervised process pool across fan-outs; "
            "`0` falls back to a fresh pool per call."
        ),
        module="repro.batch.runtime",
    ),
    KnobSpec(
        name="REPRO_POOL_TIMEOUT",
        type="float",
        default=300.0,
        description=(
            "Baseline per-chunk supervision deadline in seconds, scaled up "
            "for oversized chunks; `<= 0` disables deadlines."
        ),
        module="repro.batch.runtime",
    ),
    KnobSpec(
        name="REPRO_POOL_RETRIES",
        type="int",
        default=1,
        description=(
            "Fresh-pool retry rounds after a failed fan-out before degrading "
            "to the per-call pool (clamped to >= 0)."
        ),
        module="repro.batch.runtime",
    ),
    KnobSpec(
        name="REPRO_SHM_REAPER",
        type="flag",
        default=True,
        description=(
            "Run the startup reaper that unlinks shared-memory segments "
            "orphaned by dead engine processes."
        ),
        module="repro.batch.runtime",
    ),
    KnobSpec(
        name="REPRO_JIT",
        type="flag",
        default=True,
        description=(
            "Use the numba JIT kernel backend when numba is installed "
            "(consumed once at import of `repro.batch.jit`)."
        ),
        module="repro.batch.jit",
    ),
    KnobSpec(
        name="REPRO_RETIRE_CADENCE",
        type="int",
        default=4,
        description=(
            "Bounded-sweep retirement sampling cadence in anti-diagonals "
            "(clamped to >= 1; any cadence is bit-identical to 1)."
        ),
        module="repro.batch.kernels",
    ),
    KnobSpec(
        name="REPRO_FAULTS",
        type="str",
        default=None,
        description=(
            "Fault-injection spec, e.g. `worker_crash:p=0.5,seed=1`; unset "
            "or blank disarms every site (the zero-overhead default)."
        ),
        module="repro.batch.faults",
    ),
    KnobSpec(
        name="REPRO_INTERN",
        type="flag",
        default=True,
        description=(
            "Intern index corpora at construction so bulk paths dispatch "
            "id grids against the shared-memory encoding; `0` opts out."
        ),
        module="repro.batch.corpus",
    ),
    KnobSpec(
        name="REPRO_AESA_BULK_MAX_ITEMS",
        type="int",
        default=None,
        description=(
            "Largest AESA database for which bulk queries front-load the "
            "full `queries x items` sweep (unset: the class default, 512)."
        ),
        module="repro.index.aesa",
    ),
    KnobSpec(
        name="REPRO_SERVE_WINDOW_MS",
        type="float",
        default=2.0,
        description=(
            "Serving-tier coalescing window in milliseconds: requests "
            "arriving within it merge into one bulk call (halved while "
            "the circuit breaker is tripped; `0` batches only what is "
            "already queued)."
        ),
        module="repro.serve.config",
    ),
    KnobSpec(
        name="REPRO_SERVE_MAX_BATCH",
        type="int",
        default=64,
        description=(
            "Most requests one coalesced bulk call may carry; a window "
            "that fills early flushes immediately (clamped to >= 1)."
        ),
        module="repro.serve.config",
    ),
    KnobSpec(
        name="REPRO_SERVE_QUEUE_MAX",
        type="int",
        default=1024,
        description=(
            "Bounded admission queue of the serving tier: submissions "
            "beyond it are shed with `ServerOverloaded` (halved while the "
            "circuit breaker is tripped; clamped to >= 1)."
        ),
        module="repro.serve.config",
    ),
    KnobSpec(
        name="REPRO_SERVE_DEADLINE_MS",
        type="float",
        default=None,
        description=(
            "Default per-request deadline in milliseconds for served "
            "queries (unset: requests without an explicit timeout wait "
            "indefinitely)."
        ),
        module="repro.serve.config",
    ),
    KnobSpec(
        name="REPRO_SERVE_BREAKER_AFTER",
        type="int",
        default=3,
        description=(
            "Consecutive degraded batches before the serving circuit "
            "breaker trips -- window halves and shedding starts earlier; "
            "clean batches recover it (clamped to >= 1)."
        ),
        module="repro.serve.config",
    ),
    KnobSpec(
        name="REPRO_SERVE_MAX_INFLIGHT",
        type="int",
        default=1,
        description=(
            "Coalesced batches allowed to execute concurrently on worker "
            "threads; `1` (the default) serialises index access so "
            "per-batch degradation attribution stays exact."
        ),
        module="repro.serve.config",
    ),
    KnobSpec(
        name="REPRO_STORE_DIR",
        type="str",
        default=None,
        description=(
            "Default root directory for the versioned index artifact "
            "store; `ArtifactStore()` without an explicit root reads it."
        ),
        module="repro.store.artifacts",
    ),
    KnobSpec(
        name="REPRO_STORE_KEEP",
        type="int",
        default=2,
        description=(
            "Snapshot versions retained per store key after a save "
            "(clamped to >= 1; older versions are pruned manifest-first)."
        ),
        module="repro.store.artifacts",
    ),
    KnobSpec(
        name="REPRO_STORE_LOCK_TIMEOUT",
        type="float",
        default=30.0,
        description=(
            "Seconds a saver waits for the per-key store lock before "
            "raising `StoreLockTimeout` (dead holders are taken over "
            "immediately)."
        ),
        module="repro.store.lock",
    ),
    KnobSpec(
        name="REPRO_STORE_VERIFY",
        type="flag",
        default=True,
        description=(
            "Verify per-file SHA-256 checksums before trusting a stored "
            "snapshot; `0` skips hashing (size and identity checks remain)."
        ),
        module="repro.store.artifacts",
    ),
    KnobSpec(
        name="REPRO_SHARD_COUNT",
        type="int",
        default=4,
        description=(
            "Default shard count for `ShardedIndex` when the constructor "
            "is not given an explicit `shards=`; clamped by corpus size "
            "and `REPRO_SHARD_MIN_ITEMS`."
        ),
        module="repro.shard.sharded",
    ),
    KnobSpec(
        name="REPRO_SHARD_MIN_ITEMS",
        type="int",
        default=32,
        description=(
            "Smallest corpus slice worth an independent shard; the "
            "effective shard count is reduced until every shard holds at "
            "least this many items (tiny corpora collapse to one shard)."
        ),
        module="repro.shard.sharded",
    ),
    KnobSpec(
        name="REPRO_SHARD_PARALLEL",
        type="flag",
        default=True,
        description=(
            "Scatter per-shard bulk searches across the persistent worker "
            "pool; `0` runs every shard serially in the master process "
            "(bit-identical, used as the comparison baseline)."
        ),
        module="repro.shard.scatter",
    ),
    KnobSpec(
        name="REPRO_SHM_RING",
        type="flag",
        default=True,
        description=(
            "Recycle released ephemeral shared-memory segments through "
            "the runtime's segment ring so high-frequency small query "
            "batches skip per-call create/unlink churn; `0` restores "
            "unlink-per-call."
        ),
        module="repro.batch.runtime",
    ),
)


def raw(name: str) -> Optional[str]:
    """The raw environment value of registered knob *name* (or ``None``).

    The single point where the fleet touches ``os.environ`` for a
    ``REPRO_*`` variable; unregistered names raise ``KeyError`` so a
    typo cannot silently read an undeclared knob.
    """
    if name not in REGISTRY:
        raise KeyError(
            f"{name} is not a registered knob; declare it in "
            "repro.tools.knobs.REGISTRY first"
        )
    return os.environ.get(name)


def _present(value: Optional[str]) -> bool:
    return value is not None and bool(value.strip())


def get_flag(name: str) -> bool:
    """Flag knob *name*: ``True`` unless set to one of ``0/off/false/no``."""
    return (raw(name) or "").strip().lower() not in _OFF_VALUES


def get_int(
    name: str,
    default: Optional[int] = None,
    minimum: Optional[int] = None,
) -> Optional[int]:
    """Integer knob *name*, or *default* when unset/blank.

    *minimum* clamps environment-supplied values only; the caller's
    default is trusted as-is (it is a module constant, not user input).
    """
    value = raw(name)
    if _present(value):
        parsed = int(value)  # type: ignore[arg-type]
        if minimum is not None:
            parsed = max(minimum, parsed)
        return parsed
    return default


def get_float(name: str, default: Optional[float] = None) -> Optional[float]:
    """Float knob *name*, or *default* when unset/blank."""
    value = raw(name)
    if _present(value):
        return float(value)  # type: ignore[arg-type]
    return default


def get_str(name: str) -> Optional[str]:
    """String knob *name* verbatim, or ``None`` when unset or blank.

    Blank-is-unset matches the flag/numeric accessors, and the verbatim
    value (no strip) preserves spec-string cache keys downstream."""
    value = raw(name)
    if _present(value):
        return value
    return None


# ---------------------------------------------------------------------------
# documentation generation
# ---------------------------------------------------------------------------

def _default_cell(spec: KnobSpec) -> str:
    if spec.default is None:
        return "*(unset)*"
    if spec.type == "flag":
        return "on" if spec.default else "off"
    return f"`{spec.default}`"


def markdown_table() -> str:
    """The README env-knob table, generated from :data:`REGISTRY`."""
    lines = [
        "| Knob | Type | Default | Consumed by | Effect |",
        "| --- | --- | --- | --- | --- |",
    ]
    for name in sorted(REGISTRY):
        spec = REGISTRY[name]
        lines.append(
            f"| `{spec.name}` | {spec.type} | {_default_cell(spec)} "
            f"| `{spec.module}` | {spec.description} |"
        )
    return "\n".join(lines)


_TABLE_START = "<!-- knob-table:start (generated by repro.tools.knobs) -->"
_TABLE_END = "<!-- knob-table:end -->"


def _check_readme(path: str) -> List[str]:
    """Problems with the committed knob table in *path* (empty = in sync)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    if _TABLE_START not in text or _TABLE_END not in text:
        return [
            f"{path} is missing the knob-table markers "
            f"{_TABLE_START!r} / {_TABLE_END!r}"
        ]
    committed = (
        text.split(_TABLE_START, 1)[1].split(_TABLE_END, 1)[0].strip()
    )
    expected = markdown_table()
    if committed != expected:
        return [
            f"{path} knob table is stale; regenerate with "
            "`python -m repro.tools.knobs --markdown` and paste between "
            "the markers"
        ]
    return []


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.knobs",
        description="Inspect the REPRO_* environment-knob registry.",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="print the README knob table and exit",
    )
    parser.add_argument(
        "--check",
        metavar="README",
        help="verify the committed knob table in README is in sync "
        "(exit 1 when stale)",
    )
    options = parser.parse_args(argv)
    if options.markdown:
        print(markdown_table())
        return 0
    if options.check:
        problems = _check_readme(options.check)
        for problem in problems:
            print(problem, file=sys.stderr)
        if problems:
            return 1
        print(f"{options.check}: knob table in sync ({len(REGISTRY)} knobs)")
        return 0
    parser.print_help()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
