"""Dataset containers and deterministic sampling/splitting.

Every generator in this package returns a :class:`Dataset`: an ordered
collection of string items with optional class labels and provenance
metadata.  All randomness flows through explicit ``random.Random``
instances so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """An immutable labelled (or unlabelled) string dataset.

    ``items[i]`` is the i-th string; ``labels[i]`` (when present) its
    class.  ``metadata`` records how the data was generated (seed, scale
    parameters) so experiment outputs are self-describing.
    """

    name: str
    items: Tuple[Any, ...]
    labels: Optional[Tuple[Any, ...]] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.labels is not None and len(self.labels) != len(self.items):
            raise ValueError(
                f"{len(self.labels)} labels for {len(self.items)} items"
            )

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, i: int) -> Any:
        return self.items[i]

    @property
    def classes(self) -> List[Any]:
        """Sorted distinct labels (empty when unlabelled)."""
        if self.labels is None:
            return []
        return sorted(set(self.labels))

    def sample(self, n: int, rng: random.Random) -> "Dataset":
        """Return *n* items drawn without replacement (labels follow)."""
        if n > len(self.items):
            raise ValueError(f"cannot sample {n} from {len(self.items)} items")
        picks = rng.sample(range(len(self.items)), n)
        return Dataset(
            name=f"{self.name}[sample:{n}]",
            items=tuple(self.items[i] for i in picks),
            labels=None
            if self.labels is None
            else tuple(self.labels[i] for i in picks),
            metadata=dict(self.metadata),
        )

    def split(
        self, first: int, rng: random.Random
    ) -> Tuple["Dataset", "Dataset"]:
        """Shuffle and split into (first, rest) -- for unlabelled data."""
        if first > len(self.items):
            raise ValueError(f"cannot take {first} of {len(self.items)} items")
        order = list(range(len(self.items)))
        rng.shuffle(order)
        head, tail = order[:first], order[first:]

        def take(ids: List[int], tag: str) -> "Dataset":
            return Dataset(
                name=f"{self.name}[{tag}]",
                items=tuple(self.items[i] for i in ids),
                labels=None
                if self.labels is None
                else tuple(self.labels[i] for i in ids),
                metadata=dict(self.metadata),
            )

        return take(head, "head"), take(tail, "tail")

    def stratified_split(
        self, per_class: int, rng: random.Random
    ) -> Tuple["Dataset", "Dataset"]:
        """Split a labelled dataset into (train, rest) with exactly
        *per_class* training items per class -- the paper's "100 by class"
        prototype-set protocol of Section 4.4."""
        if self.labels is None:
            raise ValueError("stratified_split requires labels")
        by_class: Dict[Any, List[int]] = {}
        for i, label in enumerate(self.labels):
            by_class.setdefault(label, []).append(i)
        train_ids: List[int] = []
        rest_ids: List[int] = []
        for label in sorted(by_class, key=repr):
            ids = by_class[label]
            if len(ids) < per_class:
                raise ValueError(
                    f"class {label!r} has {len(ids)} items; need {per_class}"
                )
            rng.shuffle(ids)
            train_ids.extend(ids[:per_class])
            rest_ids.extend(ids[per_class:])

        def take(ids: List[int], tag: str) -> "Dataset":
            return Dataset(
                name=f"{self.name}[{tag}]",
                items=tuple(self.items[i] for i in ids),
                labels=tuple(self.labels[i] for i in ids),
                metadata=dict(self.metadata),
            )

        return take(train_ids, "train"), take(rest_ids, "rest")

    def length_statistics(self) -> Dict[str, float]:
        """Min/mean/max item length -- used in experiment provenance."""
        lengths = [len(item) for item in self.items]
        return {
            "min": float(min(lengths)),
            "mean": sum(lengths) / len(lengths),
            "max": float(max(lengths)),
        }
