"""Synthetic handwritten-digit contour dataset (NIST SD3 substitute).

Pipeline: stroke skeleton -> random writer distortion -> bitmap ->
largest-component Moore trace -> Freeman chain code.  Items are chain-code
strings over the alphabet ``'0'..'7'``; labels are the digits 0-9.  At the
default 28x28 grid contours are ~50-90 symbols long, matching the regime
where the paper's digit experiments operate (strings of comparable but
varying length, genuine class structure, heavy writer variation).
"""

from __future__ import annotations

import random
from typing import List, Optional

from .base import Dataset
from .contours import freeman_chain_code
from .glyphs import WriterStyle, render_digit

__all__ = ["digit_contour", "handwritten_digits"]

#: Contours shorter than this are re-drawn (degenerate renderings).
_MIN_CONTOUR = 8


def digit_contour(
    digit: int,
    rng: random.Random,
    grid: int = 28,
    style: Optional[WriterStyle] = None,
) -> str:
    """Render one distorted *digit* and return its Freeman chain code.

    Retries with fresh styles if a pathological distortion produces a
    degenerate (near-empty) bitmap, so the result is always a usable
    contour string.
    """
    for _ in range(32):
        image = render_digit(digit, rng, grid=grid, style=style)
        code = freeman_chain_code(image)
        if len(code) >= _MIN_CONTOUR:
            return code
        style = None  # retry with a new random style
    raise RuntimeError(
        f"could not render a usable contour for digit {digit}"
    )  # pragma: no cover - retries always succeed in practice


def handwritten_digits(
    per_class: int = 100,
    seed: int = 1995,
    grid: int = 28,
) -> Dataset:
    """Generate ``10 * per_class`` labelled digit contour strings.

    Every sample gets its own random writer style, so intra-class variation
    (size, slant, rotation, stroke width) is substantial -- compare the
    paper's Figure 5 showing wildly different '8's and '0's.  Deterministic
    in *seed*.
    """
    if per_class < 1:
        raise ValueError(f"per_class must be >= 1, got {per_class}")
    rng = random.Random(seed)
    items: List[str] = []
    labels: List[int] = []
    for digit in range(10):
        for _ in range(per_class):
            items.append(digit_contour(digit, rng, grid=grid))
            labels.append(digit)
    return Dataset(
        name="handwritten-digits(synthetic)",
        items=tuple(items),
        labels=tuple(labels),
        metadata={
            "seed": seed,
            "per_class": per_class,
            "grid": grid,
            "alphabet": "01234567",
            "substitute_for": "NIST SPECIAL DATABASE 3 contour strings",
        },
    )
