"""Synthetic Spanish dictionary (substitute for the SISAP 86 062-word file).

The real benchmark is not redistributable here, so we train an order-2
character Markov model (:mod:`.markov`) on an embedded seed lexicon of
genuine Spanish words and sample a deduplicated dictionary from it.  What
the paper's dictionary experiments consume is the *distribution of word
lengths and letter statistics* -- both are inherited from the seed lexicon
(alphabet of ~30 letters incl. accents, lengths ~2-15, mean ~8-9).
"""

from __future__ import annotations

import random

from .base import Dataset
from .markov import MarkovGenerator

__all__ = ["SPANISH_SEED_LEXICON", "spanish_dictionary"]

#: A seed lexicon of genuine Spanish words (common vocabulary plus a spread
#: of longer derived forms so generated lengths cover the same range as the
#: SISAP dictionary).
SPANISH_SEED_LEXICON = tuple(
    dict.fromkeys(  # deduplicate while preserving order
        """
    el la los las un una unos unas de del en con por para sin sobre entre
    hasta desde hacia según durante mediante contra ante bajo cabe so tras
    yo tú él ella nosotros vosotros ellos ellas usted ustedes me te se nos
    os le les lo mi tu su nuestro vuestro suyo mío tuyo este ese aquel esta
    esa aquella esto eso aquello alguien nadie algo nada cada cual quien
    cuyo donde cuando como cuanto ser estar haber tener hacer poder decir
    ir ver dar saber querer llegar pasar deber poner parecer quedar creer
    hablar llevar dejar seguir encontrar llamar venir pensar salir volver
    tomar conocer vivir sentir tratar mirar contar empezar esperar buscar
    existir entrar trabajar escribir perder producir ocurrir entender
    pedir recibir recordar terminar permitir aparecer conseguir comenzar
    servir sacar necesitar mantener resultar leer caer cambiar presentar
    crear abrir considerar oír acabar convertir ganar formar traer partir
    morir aceptar realizar suponer comprender lograr explicar preguntar
    tocar reconocer estudiar alcanzar nacer dirigir correr utilizar pagar
    ayudar gustar jugar escuchar cumplir ofrecer descubrir levantar
    intentar usar decidir repetir olvidar valer comer mostrar ocupar
    mover continuar suceder fijar referir acercar dedicar aprender
    comprar subir evitar interesar cerrar echar responder sufrir importar
    obtener observar indicar imaginar soler detener desarrollar señalar
    elegir preparar proponer demostrar significar reunir faltar acompañar
    desear enseñar construir vender representar desaparecer mandar andar
    preferir asegurar crecer surgir matar entregar colocar establecer
    guardar iniciar bastar comunicar casa tiempo año día vez hombre mujer
    vida momento forma parte estado mundo país manera lugar persona hora
    trabajo punto cosa tipo gobierno ejemplo caso niño agua noche nombre
    tierra campo historia sistema cuerpo paz guerra idea ojo palabra
    familia problema mano grupo zona mes ciudad derecho fuerza obra
    cabeza razón puerta amigo muerte dinero política situación papel
    relación aire educación calle fondo interés efecto libro acción modo
    respuesta clase música economía verdad función principio luz sangre
    región base medida fuego mente experiencia artículo conjunto cultura
    energía carácter viaje presión desarrollo seguridad resultado orden
    realidad sociedad empresa centro sentido comunidad condición especie
    árbol corazón jardín pequeño grande bueno malo nuevo viejo mayor
    mejor peor mucho poco todo otro mismo propio cierto claro blanco
    negro rojo verde azul amarillo alto bajo largo corto ancho fácil
    difícil posible imposible importante necesario internacional nacional
    social político económico cultural natural general especial personal
    profesional tradicional universitario extraordinario revolucionario
    responsabilidad administración investigación comunicación información
    organización civilización representación internacionalización
    aproximadamente desafortunadamente independientemente características
    constitucionalidad institucionalización desproporcionado
    electrodoméstico otorrinolaringólogo paralelepípedo
    ventana mesa silla camino montaña río playa bosque cielo estrella
    luna sol viento lluvia nieve fuente piedra puente torre castillo
    iglesia plaza mercado tienda escuela hospital biblioteca museo teatro
    cine restaurante cocina comida bebida pan queso carne pescado fruta
    verdura naranja manzana plátano uva limón tomate cebolla ajo aceite
    vino leche café azúcar sal pimienta caballo perro gato pájaro pez
    vaca toro cerdo oveja cabra gallina conejo ratón serpiente tortuga
    mariposa abeja hormiga araña mosca zapato camisa pantalón falda
    vestido sombrero abrigo guante calcetín corbata reloj anillo collar
    espejo cuchillo tenedor cuchara plato vaso taza botella caja bolsa
    papel lápiz pluma cuaderno carta sello periódico revista televisión
    radio teléfono ordenador máquina coche autobús tren avión barco
    bicicleta motocicleta carretera semáforo gasolina médico enfermera
    abogado ingeniero arquitecto profesor estudiante escritor pintor
    músico actor cantante bailarín cocinero camarero vendedor policía
    bombero soldado rey reina príncipe princesa presidente ministro
    alcalde juez testigo ladrón preso culpable inocente
    """.split()
    )
)


def spanish_dictionary(
    n_words: int = 8000,
    seed: int = 2008,
    order: int = 2,
    include_seed_words: bool = True,
) -> Dataset:
    """Generate a deduplicated Spanish-like dictionary of *n_words* words.

    ``include_seed_words`` mixes the genuine seed lexicon into the output
    (they are valid dictionary words); the rest is sampled from the Markov
    model until *n_words* distinct words exist.  Deterministic in *seed*.
    """
    if n_words < 1:
        raise ValueError(f"n_words must be >= 1, got {n_words}")
    rng = random.Random(seed)
    model = MarkovGenerator(order=order).train(SPANISH_SEED_LEXICON)
    words = set()
    if include_seed_words:
        words.update(SPANISH_SEED_LEXICON[: min(n_words, len(SPANISH_SEED_LEXICON))])
    attempts = 0
    max_attempts = 200 * n_words
    while len(words) < n_words:
        words.add(model.generate(rng, min_length=2, max_length=22))
        attempts += 1
        if attempts > max_attempts:  # pragma: no cover - generous bound
            raise RuntimeError(
                f"could not generate {n_words} distinct words "
                f"(got {len(words)} after {attempts} samples)"
            )
    items = tuple(sorted(words)[:n_words])
    return Dataset(
        name="spanish-dictionary(synthetic)",
        items=items,
        metadata={
            "seed": seed,
            "order": order,
            "n_words": n_words,
            "substitute_for": "SISAP Spanish dictionary (86062 words)",
        },
    )
