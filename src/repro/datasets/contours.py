"""Bitmap outer contours as Freeman chain codes.

NIST's contour strings describe a glyph's boundary as a sequence of moves
over the 8-neighbourhood (Freeman codes 0-7).  This module reproduces that
representation: :func:`freeman_chain_code` traces the outer boundary of
the largest connected component with Moore-neighbour tracing (Jacob's
stopping criterion) and emits one code per boundary move.

Freeman code convention (row axis pointing down, as in image arrays)::

    3 2 1
    4 . 0
    5 6 7

so code 0 is East, 2 is North, 4 is West, 6 is South.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

import numpy as np

__all__ = ["freeman_chain_code", "largest_component", "FREEMAN_OFFSETS"]

#: Freeman code -> (row delta, column delta).
FREEMAN_OFFSETS: Tuple[Tuple[int, int], ...] = (
    (0, 1),  # 0: E
    (-1, 1),  # 1: NE
    (-1, 0),  # 2: N
    (-1, -1),  # 3: NW
    (0, -1),  # 4: W
    (1, -1),  # 5: SW
    (1, 0),  # 6: S
    (1, 1),  # 7: SE
)

_OFFSET_TO_CODE = {offset: code for code, offset in enumerate(FREEMAN_OFFSETS)}

#: Clockwise scan order around a pixel (image coordinates), as required by
#: Moore-neighbour tracing: W, NW, N, NE, E, SE, S, SW.
_CLOCKWISE = ((0, -1), (-1, -1), (-1, 0), (-1, 1), (0, 1), (1, 1), (1, 0), (1, -1))


def largest_component(image: np.ndarray) -> np.ndarray:
    """Return a mask of the largest 8-connected foreground component."""
    image = np.asarray(image, dtype=bool)
    visited = np.zeros_like(image)
    best_mask = np.zeros_like(image)
    best_size = 0
    rows, cols = image.shape
    for r in range(rows):
        for c in range(cols):
            if not image[r, c] or visited[r, c]:
                continue
            queue = deque([(r, c)])
            visited[r, c] = True
            members: List[Tuple[int, int]] = []
            while queue:
                cr, cc = queue.popleft()
                members.append((cr, cc))
                for dr, dc in FREEMAN_OFFSETS:
                    nr, nc = cr + dr, cc + dc
                    if (
                        0 <= nr < rows
                        and 0 <= nc < cols
                        and image[nr, nc]
                        and not visited[nr, nc]
                    ):
                        visited[nr, nc] = True
                        queue.append((nr, nc))
            if len(members) > best_size:
                best_size = len(members)
                best_mask = np.zeros_like(image)
                for mr, mc in members:
                    best_mask[mr, mc] = True
    return best_mask


def freeman_chain_code(image: np.ndarray) -> str:
    """Trace the outer boundary of the largest component of *image*.

    Returns the Freeman chain code as a string of digits ``'0'..'7'``
    (empty for an empty image or a single isolated pixel).  The trace
    starts at the first foreground pixel in row-major order and proceeds
    with Moore-neighbour tracing until the start pixel is re-entered from
    the original backtrack position (Jacob's criterion), so closed shapes
    produce closed boundary strings.
    """
    mask = largest_component(image)
    if not mask.any():
        return ""
    # Pad with a background border so neighbour checks never go out of
    # bounds and the row-major start pixel has a background west neighbour.
    padded = np.zeros((mask.shape[0] + 2, mask.shape[1] + 2), dtype=bool)
    padded[1:-1, 1:-1] = mask
    start_r, start_c = np.argwhere(padded)[0]
    start = (int(start_r), int(start_c))
    backtrack = (start[0], start[1] - 1)  # west neighbour: background
    codes: List[str] = []
    current = start
    # Moore tracing is deterministic in the state (current, backtrack), so
    # the walk is eventually periodic.  The boundary is exactly one period
    # of the cycle; a possible acyclic lead-in (rare, for thin shapes whose
    # first re-entry into the start pixel carries a different backtrack) is
    # dropped by remembering how many codes were emitted when each state
    # was first reached.
    seen = {(current, backtrack): 0}
    max_steps = 8 * int(mask.sum()) + 8
    for _ in range(max_steps):
        offset = (backtrack[0] - current[0], backtrack[1] - current[1])
        scan_from = _CLOCKWISE.index(offset)
        next_pixel = None
        for step in range(1, 9):
            dr, dc = _CLOCKWISE[(scan_from + step) % 8]
            candidate = (current[0] + dr, current[1] + dc)
            if padded[candidate]:
                next_pixel = candidate
                break
            backtrack = candidate
        if next_pixel is None:
            return ""  # isolated pixel: no boundary moves
        move = (next_pixel[0] - current[0], next_pixel[1] - current[1])
        current = next_pixel
        codes.append(str(_OFFSET_TO_CODE[move]))
        state = (current, backtrack)
        if state in seen:
            return "".join(codes[seen[state] :])
        seen[state] = len(codes)
    return "".join(codes)  # pragma: no cover - cycle always found
