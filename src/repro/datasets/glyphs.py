"""Stroke-skeleton digit glyphs and their rasterisation.

Substitute for NIST SPECIAL DATABASE 3: each digit 0-9 is defined as a set
of connected polyline strokes in the unit square; a *writer style* (random
rotation, slant, anisotropic scale, stroke thickness and per-point jitter)
distorts the skeleton before rendering, mirroring the paper's observation
that "orientation and sizes are widely different from scribe to scribe".
The rendered bitmaps are then traced into Freeman chain codes by
:mod:`.contours`, giving the same *representation* the paper's contour
strings use (an 8-symbol alphabet).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["DIGIT_SKELETONS", "WriterStyle", "sample_style", "render_digit"]

Point = Tuple[float, float]
Polyline = Tuple[Point, ...]


def _arc(
    cx: float,
    cy: float,
    rx: float,
    ry: float,
    start_deg: float,
    end_deg: float,
    n_points: int = 16,
) -> Polyline:
    """Sample an elliptic arc as a polyline (degrees, counter-clockwise)."""
    points = []
    for t in range(n_points + 1):
        angle = math.radians(start_deg + (end_deg - start_deg) * t / n_points)
        points.append((cx + rx * math.cos(angle), cy + ry * math.sin(angle)))
    return tuple(points)


def _line(*points: Point) -> Polyline:
    return tuple(points)


#: Connected stroke skeletons for the digits, in unit coordinates
#: (x right, y up).  Every digit's strokes intersect, so the rendered
#: bitmap is a single connected component and has one outer contour.
DIGIT_SKELETONS: Dict[int, Tuple[Polyline, ...]] = {
    0: (_arc(0.5, 0.5, 0.30, 0.44, 0, 360, 28),),
    1: (_line((0.32, 0.72), (0.52, 0.95), (0.52, 0.05)),),
    2: (
        _arc(0.5, 0.70, 0.28, 0.24, 165, -15, 14)
        + _line((0.74, 0.62), (0.22, 0.05))[1:],
        _line((0.22, 0.05), (0.80, 0.05)),
    ),
    3: (
        _arc(0.48, 0.72, 0.26, 0.22, 150, -80, 14),
        _arc(0.48, 0.28, 0.28, 0.24, 80, -150, 14),
    ),
    4: (
        _line((0.66, 0.95), (0.66, 0.05)),
        _line((0.66, 0.95), (0.20, 0.35)),
        _line((0.20, 0.35), (0.85, 0.35)),
    ),
    5: (
        _line((0.78, 0.95), (0.26, 0.95), (0.26, 0.55)),
        _arc(0.50, 0.32, 0.30, 0.27, 115, -160, 16),
    ),
    6: (
        _line((0.72, 0.92), (0.45, 0.72), (0.29, 0.48), (0.24, 0.30)),
        _arc(0.50, 0.28, 0.26, 0.23, 0, 360, 24),
    ),
    7: (_line((0.20, 0.95), (0.80, 0.95), (0.40, 0.05)),),
    8: (
        _arc(0.5, 0.70, 0.24, 0.21, 0, 360, 22),
        _arc(0.5, 0.28, 0.28, 0.24, 0, 360, 24),
    ),
    9: (
        _arc(0.5, 0.68, 0.26, 0.22, 0, 360, 22),
        _line((0.76, 0.68), (0.73, 0.35), (0.58, 0.05)),
    ),
}


@dataclass(frozen=True)
class WriterStyle:
    """Per-sample distortion parameters (one synthetic "scribe hand")."""

    rotation_deg: float = 0.0
    slant: float = 0.0  # horizontal shear: x' = x + slant * (y - 0.5)
    scale_x: float = 1.0
    scale_y: float = 1.0
    thickness: float = 1.6  # stroke half-width in pixels, at grid=28
    jitter: float = 0.012  # per-point displacement (unit coordinates)


def sample_style(rng: random.Random) -> WriterStyle:
    """Draw a writer style with NIST-like variability."""
    return WriterStyle(
        rotation_deg=rng.gauss(0.0, 9.0),
        slant=rng.gauss(0.0, 0.18),
        scale_x=rng.uniform(0.72, 1.05),
        scale_y=rng.uniform(0.78, 1.05),
        thickness=rng.uniform(1.25, 2.2),
        jitter=rng.uniform(0.004, 0.02),
    )


def _transform(
    strokes: Sequence[Polyline], style: WriterStyle, rng: random.Random
) -> List[List[Point]]:
    """Apply jitter, shear, scale and rotation around the glyph centre."""
    angle = math.radians(style.rotation_deg)
    cos_a, sin_a = math.cos(angle), math.sin(angle)
    out: List[List[Point]] = []
    for stroke in strokes:
        transformed: List[Point] = []
        for (x, y) in stroke:
            x += rng.gauss(0.0, style.jitter)
            y += rng.gauss(0.0, style.jitter)
            x += style.slant * (y - 0.5)  # shear
            x = 0.5 + (x - 0.5) * style.scale_x  # anisotropic scale
            y = 0.5 + (y - 0.5) * style.scale_y
            dx, dy = x - 0.5, y - 0.5  # rotation about the centre
            transformed.append(
                (0.5 + cos_a * dx - sin_a * dy, 0.5 + sin_a * dx + cos_a * dy)
            )
        out.append(transformed)
    return out


def _draw_segment(
    image: np.ndarray,
    p0: Point,
    p1: Point,
    half_width: float,
) -> None:
    """Stamp a thick segment onto *image* (distance-to-segment test)."""
    grid = image.shape[0]
    x0, y0 = p0
    x1, y1 = p1
    lo_c = max(0, int(math.floor(min(x0, x1) - half_width - 1)))
    hi_c = min(grid - 1, int(math.ceil(max(x0, x1) + half_width + 1)))
    lo_r = max(0, int(math.floor(min(y0, y1) - half_width - 1)))
    hi_r = min(grid - 1, int(math.ceil(max(y0, y1) + half_width + 1)))
    if lo_c > hi_c or lo_r > hi_r:
        return
    cols = np.arange(lo_c, hi_c + 1, dtype=float)
    rows = np.arange(lo_r, hi_r + 1, dtype=float)
    cc, rr = np.meshgrid(cols, rows)
    vx, vy = x1 - x0, y1 - y0
    seg_len_sq = vx * vx + vy * vy
    if seg_len_sq == 0.0:
        dist_sq = (cc - x0) ** 2 + (rr - y0) ** 2
    else:
        t = ((cc - x0) * vx + (rr - y0) * vy) / seg_len_sq
        np.clip(t, 0.0, 1.0, out=t)
        dist_sq = (cc - (x0 + t * vx)) ** 2 + (rr - (y0 + t * vy)) ** 2
    image[lo_r : hi_r + 1, lo_c : hi_c + 1] |= dist_sq <= half_width * half_width


def render_digit(
    digit: int,
    rng: random.Random,
    grid: int = 28,
    style: WriterStyle = None,
) -> np.ndarray:
    """Render one distorted digit as a ``grid x grid`` boolean bitmap.

    Row 0 is the *top* of the glyph (image convention); the unit-square
    skeleton (y up) is flipped accordingly.  When *style* is None a random
    writer style is drawn from *rng*.
    """
    if digit not in DIGIT_SKELETONS:
        raise ValueError(f"digit must be 0..9, got {digit}")
    if style is None:
        style = sample_style(rng)
    strokes = _transform(DIGIT_SKELETONS[digit], style, rng)
    image = np.zeros((grid, grid), dtype=bool)
    margin = 2.5
    span = grid - 2 * margin
    half_width = style.thickness * grid / 28.0
    for stroke in strokes:
        pixels = [
            (margin + x * span, margin + (1.0 - y) * span) for (x, y) in stroke
        ]
        for p0, p1 in zip(pixels, pixels[1:]):
            _draw_segment(image, p0, p1, half_width)
    return image
