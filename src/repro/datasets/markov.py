"""Order-k Markov chains over symbols, for realistic synthetic strings.

The Spanish-dictionary substitute trains an order-2 chain on an embedded
seed lexicon and samples new words from it: generated words then share the
letter statistics and length distribution of real Spanish, which is what
the paper's dictionary experiments actually exercise.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

__all__ = ["MarkovGenerator"]

_START = object()
_END = object()


class MarkovGenerator:
    """Character-level order-k Markov model with explicit end-of-string.

    Trained by counting (context -> next symbol) transitions, where the
    context is the last *order* symbols (padded with a start marker).  The
    end of each training string is a first-class event, so generated string
    lengths follow the training distribution naturally.
    """

    def __init__(self, order: int = 2) -> None:
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        self.order = order
        self._transitions: Dict[Tuple, Tuple[List, List[int]]] = {}
        self._counts: Dict[Tuple, Dict[Hashable, int]] = {}
        self._trained = False

    def train(self, corpus: Iterable[Sequence[Hashable]]) -> "MarkovGenerator":
        """Count transitions from *corpus*; may be called repeatedly."""
        for string in corpus:
            context = (_START,) * self.order
            for symbol in string:
                bucket = self._counts.setdefault(context, {})
                bucket[symbol] = bucket.get(symbol, 0) + 1
                context = context[1:] + (symbol,)
            bucket = self._counts.setdefault(context, {})
            bucket[_END] = bucket.get(_END, 0) + 1
        self._transitions = {
            ctx: (list(options), list(options.values()))
            for ctx, options in self._counts.items()
        }
        self._trained = True
        return self

    def generate(
        self,
        rng: random.Random,
        min_length: int = 1,
        max_length: int = 64,
    ) -> str:
        """Sample one string with length in ``[min_length, max_length]``.

        End-of-string events before *min_length* are re-drawn when the
        context offers alternatives; generation is truncated at
        *max_length*.  Only usable for ``str`` training data (the library's
        generators all use characters).
        """
        if not self._trained:
            raise RuntimeError("generate() before train()")
        while True:  # reject strings that end too early with no alternative
            context = (_START,) * self.order
            out: List[str] = []
            ok = True
            while len(out) < max_length:
                options, weights = self._transitions[context]
                symbol = rng.choices(options, weights)[0]
                if symbol is _END:
                    if len(out) >= min_length:
                        break
                    non_end = [
                        (s, w)
                        for s, w in zip(options, weights)
                        if s is not _END
                    ]
                    if not non_end:
                        ok = False
                        break
                    symbols, ws = zip(*non_end)
                    symbol = rng.choices(symbols, ws)[0]
                out.append(symbol)
                context = context[1:] + (symbol,)
            if ok and len(out) >= min_length:
                return "".join(out)
