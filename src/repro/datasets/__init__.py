"""Deterministic synthetic stand-ins for the paper's three datasets.

* :func:`spanish_dictionary` -- Markov-generated Spanish-like words
  (substitute for the SISAP 86 062-word dictionary);
* :func:`listeria_genes` -- codon-structured low-GC DNA with mutated
  families (substitute for the SISAP Listeria gene set);
* :func:`handwritten_digits` -- distorted stroke glyphs traced into
  Freeman chain codes (substitute for NIST SD3 contour strings);
* :func:`perturbed_queries` -- genqueries-style query sets.

Each substitution is documented in DESIGN.md Section 4 together with the
argument for why it preserves the behaviour the experiments measure.
"""

from .base import Dataset
from .contours import FREEMAN_OFFSETS, freeman_chain_code, largest_component
from .digits import digit_contour, handwritten_digits
from .dna import listeria_genes
from .glyphs import DIGIT_SKELETONS, WriterStyle, render_digit, sample_style
from .markov import MarkovGenerator
from .perturb import perturb, perturbed_queries
from .words import SPANISH_SEED_LEXICON, spanish_dictionary

__all__ = [
    "Dataset",
    "spanish_dictionary",
    "SPANISH_SEED_LEXICON",
    "listeria_genes",
    "handwritten_digits",
    "digit_contour",
    "render_digit",
    "sample_style",
    "WriterStyle",
    "DIGIT_SKELETONS",
    "freeman_chain_code",
    "largest_component",
    "FREEMAN_OFFSETS",
    "MarkovGenerator",
    "perturb",
    "perturbed_queries",
]
