"""Synthetic gene sequences (substitute for the SISAP Listeria genes).

The paper's gene dataset (20 660 genes of *Listeria monocytogenes*) is
not available offline.  What its experiments exercise is: a 4-letter
alphabet, *long* strings, and a *wide spread of lengths* -- the published
Levenshtein histogram for genes spans 0..2500, i.e. distances are
dominated by length differences; this is exactly what makes ``d_YB``
saturate and ``d_C,h`` spread (Figure 2 / Table 1).

The generator reproduces those properties:

* genes are codon-structured: start codon ``atg``, a log-uniform number of
  body codons, one stop codon;
* base composition matches Listeria's low-GC genome (GC ~ 38%);
* sequences come in mutated *families* (paralogue-like), so the distance
  histogram has both near-duplicate mass and far-apart mass.
"""

from __future__ import annotations

import math
import random
from typing import List

from .base import Dataset

__all__ = ["listeria_genes"]

_STOP_CODONS = ("taa", "tag", "tga")


def _draw_base(rng: random.Random, gc_content: float) -> str:
    """One nucleotide with the requested GC fraction (AT/GC split evenly)."""
    r = rng.random()
    half_gc = gc_content / 2.0
    if r < half_gc:
        return "g"
    if r < gc_content:
        return "c"
    if r < gc_content + (1.0 - gc_content) / 2.0:
        return "a"
    return "t"


def _random_gene(
    rng: random.Random,
    min_length: int,
    max_length: int,
    gc_content: float,
) -> str:
    """One codon-structured gene with log-uniform body length."""
    lo = max(2, min_length // 3)
    hi = max(lo + 1, max_length // 3)
    n_codons = int(round(math.exp(rng.uniform(math.log(lo), math.log(hi)))))
    n_codons = max(lo, min(hi, n_codons))
    body = "".join(
        _draw_base(rng, gc_content) for _ in range(3 * (n_codons - 2))
    )
    return "atg" + body + rng.choice(_STOP_CODONS)


def _mutate(gene: str, rng: random.Random, rate: float) -> str:
    """Point-mutate, insert and delete bases at the given per-base rate."""
    out: List[str] = []
    alphabet = "acgt"
    for base in gene:
        r = rng.random()
        if r < rate / 3.0:
            continue  # deletion
        if r < 2.0 * rate / 3.0:
            out.append(rng.choice(alphabet))  # substitution
        else:
            out.append(base)
        if rng.random() < rate / 3.0:
            out.append(rng.choice(alphabet))  # insertion
    return "".join(out) if out else "atg"


def listeria_genes(
    n_genes: int = 1000,
    seed: int = 1926,
    min_length: int = 60,
    max_length: int = 900,
    gc_content: float = 0.38,
    family_fraction: float = 0.35,
    family_size: int = 4,
    mutation_rate: float = 0.08,
) -> Dataset:
    """Generate *n_genes* Listeria-like gene sequences.

    ``family_fraction`` of the output comes from mutated families of
    ``family_size`` members each (near-duplicates at mutation distance);
    the rest are independent genes (far apart).  Deterministic in *seed*.

    The default 60..900 length range is a scaled-down version of real gene
    lengths (the paper's histogram reaches d_E ~ 2500) so the cubic/
    quadratic distances stay laptop-friendly; pass ``max_length=3000`` for
    paper-scale strings.
    """
    if n_genes < 1:
        raise ValueError(f"n_genes must be >= 1, got {n_genes}")
    if not 0.0 <= gc_content <= 1.0:
        raise ValueError(f"gc_content must be in [0,1], got {gc_content}")
    rng = random.Random(seed)
    items: List[str] = []
    n_family_members = int(n_genes * family_fraction)
    while len(items) < n_family_members:
        ancestor = _random_gene(rng, min_length, max_length, gc_content)
        for _ in range(min(family_size, n_family_members - len(items))):
            items.append(_mutate(ancestor, rng, mutation_rate))
    while len(items) < n_genes:
        items.append(_random_gene(rng, min_length, max_length, gc_content))
    rng.shuffle(items)
    return Dataset(
        name="listeria-genes(synthetic)",
        items=tuple(items),
        metadata={
            "seed": seed,
            "n_genes": n_genes,
            "min_length": min_length,
            "max_length": max_length,
            "gc_content": gc_content,
            "substitute_for": "SISAP Listeria monocytogenes genes (20660)",
        },
    )
