"""genqueries-style query generation by edit perturbation.

The paper's Section 4.3 builds dictionary query sets "using the program
genqueries ... with a perturbation of two operations over the training
dataset".  :func:`perturb` applies exactly *k* random edit operations to a
string; :func:`perturbed_queries` draws base strings from a dataset and
perturbs each.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .base import Dataset

__all__ = ["perturb", "perturbed_queries"]


def perturb(
    string: str,
    operations: int,
    rng: random.Random,
    alphabet: Optional[Sequence[str]] = None,
) -> str:
    """Apply exactly *operations* random edit operations to *string*.

    Each operation is drawn uniformly from {insert, delete, substitute}
    (deletion/substitution only when the current string is non-empty);
    inserted/substituted symbols come from *alphabet* (default: the
    symbols of *string*).  Note the edit distance to the original is *at
    most* ``operations`` -- random edits can cancel out, exactly as with
    the original genqueries tool.
    """
    if operations < 0:
        raise ValueError(f"operations must be >= 0, got {operations}")
    symbols = list(alphabet) if alphabet else sorted(set(string))
    if not symbols:
        symbols = ["a"]
    current = list(string)
    for _ in range(operations):
        choices = ["insert"]
        if current:
            choices += ["delete", "substitute"]
        op = rng.choice(choices)
        if op == "insert":
            current.insert(rng.randint(0, len(current)), rng.choice(symbols))
        elif op == "delete":
            current.pop(rng.randrange(len(current)))
        else:
            pos = rng.randrange(len(current))
            current[pos] = rng.choice(symbols)
    return "".join(current)


def perturbed_queries(
    source: Dataset,
    n_queries: int,
    rng: random.Random,
    operations: int = 2,
    alphabet: Optional[Sequence[str]] = None,
) -> List[str]:
    """Draw *n_queries* strings from *source* (with replacement) and
    perturb each with exactly *operations* edit operations.

    When *alphabet* is omitted it is pooled over the whole dataset, so
    insertions can introduce symbols the base string lacks (as genqueries
    does)."""
    if alphabet is None:
        pooled = set()
        for item in source.items:
            pooled.update(item)
        alphabet = sorted(pooled)
    return [
        perturb(
            source.items[rng.randrange(len(source.items))],
            operations,
            rng,
            alphabet,
        )
        for _ in range(n_queries)
    ]
