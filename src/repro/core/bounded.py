"""Bounded (early-exit) twins of the Levenshtein-backed distances.

A metric index holding a current best radius ``r`` does not need the exact
distance of a candidate that cannot win -- it only needs *some* value
``> r`` to discard it.  Each function here takes ``(x, y, limit)`` and
honours the contract of :func:`~repro.core.levenshtein.levenshtein_bounded`:

* if ``d(x, y) <= limit`` the exact distance is returned;
* otherwise the returned value is guaranteed to exceed ``limit`` (and may
  be an underestimate of the true distance, but never of ``limit``).

The normalised family reduces to a bounded edit distance by inverting the
normalisation: ``d_E / f(|x|, |y|) <= r`` iff ``d_E <= r * f(|x|, |y|)``
(with the Yujian--Bo form solved for ``d_E``), so Ukkonen's band prunes
exactly the right candidates.  The pruned return values replay each
distance's formula at ``k + 1`` (one more edit than the largest feasible
count), which is strictly above ``limit`` by construction.

:func:`bounded_for` maps a registered distance *function* to its bounded
twin, which is how :class:`~repro.index.base.CountingDistance` discovers
early-exit support without the index layer knowing distance names.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

from .levenshtein import levenshtein_bounded, levenshtein_distance
from .types import DistanceFunction, StringLike, require_strings

__all__ = [
    "BoundedDistanceFunction",
    "bounded_levenshtein",
    "bounded_dmax",
    "bounded_dsum",
    "bounded_dmin",
    "bounded_yujian_bo",
    "bounded_contextual_heuristic",
    "bounded_marzal_vidal",
    "mv_bound_plan",
    "mv_pruned_value",
    "contextual_edit_budget",
    "contextual_pruned_value",
    "register_bounded",
    "bounded_for",
]

#: ``(x, y, limit) -> float`` with the exact-or-above-limit contract.
BoundedDistanceFunction = Callable[[StringLike, StringLike, float], float]

#: A tiny slack so ``r * f`` landing exactly on an integer keeps that
#: integer feasible despite float rounding (overshooting only means the
#: exact distance is computed slightly more often -- never a wrong prune).
_EPS = 1e-9


def _edit_budget(scaled: float) -> int:
    """Largest edit count consistent with a normalised limit ``scaled``."""
    return int(math.floor(scaled + _EPS))


def bounded_levenshtein(x: StringLike, y: StringLike, limit: float) -> float:
    """Early-exit ``d_E`` as a float (the registry's Levenshtein entry)."""
    return float(levenshtein_bounded(x, y, limit))


def bounded_dmax(x: StringLike, y: StringLike, limit: float) -> float:
    """Early-exit ``d_max = d_E / max(|x|, |y|)``."""
    x, y = require_strings(x, y)
    longest = max(len(x), len(y))
    if longest == 0:
        return 0.0
    k = _edit_budget(limit * longest)
    d = levenshtein_bounded(x, y, k)
    if d <= k:
        return d / longest
    return (k + 1) / longest


def bounded_dsum(x: StringLike, y: StringLike, limit: float) -> float:
    """Early-exit ``d_sum = d_E / (|x| + |y|)``."""
    x, y = require_strings(x, y)
    total = len(x) + len(y)
    if total == 0:
        return 0.0
    k = _edit_budget(limit * total)
    d = levenshtein_bounded(x, y, k)
    if d <= k:
        return d / total
    return (k + 1) / total


def bounded_dmin(x: StringLike, y: StringLike, limit: float) -> float:
    """Early-exit ``d_min = d_E / min(|x|, |y|)``."""
    x, y = require_strings(x, y)
    shortest = min(len(x), len(y))
    if shortest == 0:
        return 0.0 if x == y else float("inf")
    k = _edit_budget(limit * shortest)
    d = levenshtein_bounded(x, y, k)
    if d <= k:
        return d / shortest
    return (k + 1) / shortest


def bounded_yujian_bo(x: StringLike, y: StringLike, limit: float) -> float:
    """Early-exit ``d_YB = 2 d_E / (|x| + |y| + d_E)``.

    ``d_YB <= r``  iff  ``d_E <= r (|x| + |y|) / (2 - r)`` for ``r < 2``;
    since ``d_YB <= 1`` always, limits ``>= 1`` cannot prune.
    """
    x, y = require_strings(x, y)
    if not x and not y:
        return 0.0
    total = len(x) + len(y)
    if limit >= 1.0:
        d = levenshtein_distance(x, y)
        return 2.0 * d / (total + d)
    if limit < 0.0:
        # every pair has d_YB >= 0 > limit is impossible to satisfy exactly;
        # x == y was not shortcut by callers, so compute the cheap band-0.
        k = 0
    else:
        k = _edit_budget(limit * total / (2.0 - limit))
    d = levenshtein_bounded(x, y, k)
    if d <= k:
        return 2.0 * d / (total + d)
    return 2.0 * (k + 1) / (total + k + 1)


# ---------------------------------------------------------------------------
# banded twin of the contextual heuristic d_C,h
# ---------------------------------------------------------------------------

#: Sentinel for "no tight path" in the twin-table ni recurrence.
_NEG = -(1 << 30)


def contextual_edit_budget(limit: float, total: int) -> int:
    """Largest ``d_E`` any pair with ``d_C,h <= limit`` can have.

    A path with ``k`` paid operations costs at least ``2k / (total + k)``
    (each operation acts on a string no longer than ``(total + k) / 2``,
    the peak of the canonical path -- the same bound
    :func:`~repro.core.contextual.contextual_distance` uses to cap its
    ``k`` axis).  Inverting: ``d_C,h <= limit`` forces
    ``d_E <= limit * total / (2 - limit)``.  Values ``>= 2`` never prune
    (the bound is always below 2), so they return ``total``: the band
    covers the whole table.
    """
    if limit >= 2.0:
        return total
    if limit < 0.0:
        return -1
    return min(total, _edit_budget(limit * total / (2.0 - limit)))


def contextual_pruned_value(k: int, total: int) -> float:
    """The above-limit value returned when ``d_E`` provably exceeds ``k``:
    the cost lower bound ``2 (k+1) / (total + k + 1)`` of any internal
    path with ``k + 1`` paid operations.  Strictly above any ``limit``
    whose budget (per :func:`contextual_edit_budget`) is ``k``, and a
    lower bound of the true ``d_C,h`` in exact arithmetic (the computed
    heuristic accumulates harmonic sums in floats, so it can land an ulp
    below this directly-rounded closed form -- irrelevant to the within()
    contract, which only compares pruned values against the limit)."""
    return 2.0 * (k + 1) / (total + k + 1)


def _banded_heuristic_tables(
    x: StringLike, y: StringLike, bound: int
) -> Optional[Tuple[int, int]]:
    """Ukkonen-banded twin tables: ``(d_E, Ni)`` when ``d_E <= bound``.

    Only cells with ``|i - j| <= bound`` are evaluated, each row in
    ``O(bound)``; a row whose surviving cells all exceed *bound* aborts
    the sweep (returns None, like
    :func:`~repro.core.levenshtein.levenshtein_within`).

    Exactness inside the band: every minimum-cost edit path of total cost
    ``<= bound`` stays within the band (``|i - j|`` never exceeds the
    cost paid so far), and a tight transition into a cell whose distance
    is ``<= bound`` can only come from an exact in-band predecessor
    (out-of-band or capped cells hold values ``> bound`` and so are never
    tight for such a cell) -- hence both the distance *and* the
    max-insertion count ``Ni`` of the final cell are exact whenever the
    distance is within the bound.  Caller guarantees ``bound >= 0`` and
    ``abs(len(x) - len(y)) <= bound``.
    """
    m, n = len(x), len(y)
    infinity = bound + 1
    prev_d = [j if j <= bound else infinity for j in range(n + 1)]
    prev_ni = list(range(n + 1))  # ni[0][j] = j (pure insertions)
    for i in range(1, m + 1):
        xi = x[i - 1]
        lo = max(1, i - bound)
        hi = min(n, i + bound)
        cur_d = [infinity] * (n + 1)
        cur_ni = [_NEG] * (n + 1)
        if i <= bound:
            cur_d[0] = i
            cur_ni[0] = 0  # ni[i][0] = 0 (pure deletions)
        row_min = cur_d[0]
        for j in range(lo, hi + 1):
            yj = y[j - 1]
            diag = prev_d[j - 1] + (0 if xi == yj else 1)
            up = prev_d[j] + 1
            left = cur_d[j - 1] + 1
            d = diag if diag < up else up
            if left < d:
                d = left
            if d > infinity:
                d = infinity
            cur_d[j] = d
            best = _NEG
            if diag == d and prev_ni[j - 1] > best:
                best = prev_ni[j - 1]
            if up == d and prev_ni[j] > best:
                best = prev_ni[j]
            if left == d and cur_ni[j - 1] + 1 > best:
                best = cur_ni[j - 1] + 1
            cur_ni[j] = best
            if d < row_min:
                row_min = d
        if row_min > bound:
            return None  # every surviving cell already exceeds the bound
        prev_d, prev_ni = cur_d, cur_ni
    if prev_d[n] <= bound:
        return prev_d[n], prev_ni[n]
    return None


def bounded_contextual_heuristic(
    x: StringLike, y: StringLike, limit: float
) -> float:
    """Early-exit contextual heuristic ``d_C,h`` (banded twin tables).

    Exact whenever ``d_C,h(x, y) <= limit``; otherwise returns a value
    guaranteed to exceed *limit* (a lower bound of the true distance, up
    to float rounding of the harmonic sums on the exact side).  The
    band width is the edit budget of :func:`contextual_edit_budget`:
    ``d_C,h <= limit`` forces ``d_E`` under the budget, so Ukkonen's band
    either recovers the exact ``(d_E, Ni)`` (one
    :func:`~repro.core.contextual.canonical_cost` evaluation away from
    the heuristic's value) or proves the pair hopeless after
    ``O(budget * min(|x|, |y|))`` work.
    """
    x, y = require_strings(x, y)
    if x == y:
        return 0.0
    m, n = len(x), len(y)
    total = m + n
    k = contextual_edit_budget(limit, total)
    if k >= total:
        # the band covers the whole table: nothing to prune
        from .contextual import contextual_distance_heuristic

        return contextual_distance_heuristic(x, y)
    if k < 0 or abs(m - n) > k:
        # d_E >= |m - n| already busts the budget without any DP
        return contextual_pruned_value(max(k, abs(m - n) - 1), total)
    tables = _banded_heuristic_tables(x, y, k)
    if tables is None:
        return contextual_pruned_value(k, total)
    d_e, ni = tables
    from .contextual import canonical_cost

    cost = canonical_cost(m, n, d_e, ni)
    if cost is None:  # pragma: no cover - the DP guarantees feasibility
        raise AssertionError(f"infeasible heuristic for {x!r}, {y!r}")
    return cost


# ---------------------------------------------------------------------------
# banded twin of the Marzal--Vidal normalised distance d_MV
# ---------------------------------------------------------------------------

#: Float-noise margin for the parametric prune test: scores this close to
#: zero fall through to the exact computation (never a wrong prune, only
#: an occasional unnecessary full evaluation).
_MV_EPS = 1e-9

#: Above this (len(x)+len(y)) the probe may use the numpy anti-diagonal
#: parametric kernel (same crossover as the Dinkelbach solver itself).
_MV_NUMPY_PROBE_THRESHOLD = 80

#: Banded-cell budget under which the pure-Python banded probe beats the
#: full-table numpy sweep even for long strings (narrow bands are the
#: common case late in a k-NN search, when the radius is small).
_MV_BANDED_CELL_LIMIT = 4096


def _banded_parametric(
    x: StringLike, y: StringLike, lam: float, band: int
) -> float:
    """Minimum of ``W(pi) - lam * L(pi)`` over paths inside the band.

    The banded variant of
    :func:`~repro.core.marzal_vidal._parametric_best_path` (unit costs):
    cells with ``|i - j| > band`` are treated as unreachable, which is
    sound for the pruning probe because every out-of-band path performs
    more than *band* indels.  Returns only the minimal score (the probe
    does not need the witness path).
    """
    m, n = len(x), len(y)
    inf = float("inf")
    paid = 1.0 - lam
    prev = [inf] * (n + 1)
    prev[0] = 0.0
    for j in range(1, min(n, band) + 1):
        prev[j] = j * paid
    for i in range(1, m + 1):
        xi = x[i - 1]
        lo = max(1, i - band)
        hi = min(n, i + band)
        cur = [inf] * (n + 1)
        if i <= band:
            cur[0] = i * paid
        for j in range(lo, hi + 1):
            step = -lam if xi == y[j - 1] else paid
            best = prev[j - 1] + step
            up = prev[j] + paid
            if up < best:
                best = up
            left = cur[j - 1] + paid
            if left < best:
                best = left
            cur[j] = best
        prev = cur
    return prev[n]


def mv_bound_plan(m: int, n: int, limit: float) -> Tuple[str, float]:
    """Classify one bounded ``d_MV`` request from lengths and limit only.

    The single source of truth for the regime selection of
    :func:`bounded_marzal_vidal` *and* of the batched bounded path in
    :mod:`repro.batch.engine` (which must replay the scalar twin bit for
    bit, so the two may never drift).  Returns ``(tag, aux)``:

    * ``("exact", 0)`` -- the limit cannot prune (``limit >= 1``, the
      unit-cost ``d_MV`` ceiling): compute the full distance;
    * ``("pruned", value)`` -- a closed form already decides the request
      (negative limits, or ``|m - n|`` busting the band): return *value*;
    * ``("full", band)`` -- probe with the full-table parametric kernel
      (wide band on long strings; the pruned value uses the full score
      as its slack, so this branch changes the *value*, not just the
      speed);
    * ``("banded", band)`` -- probe with the banded parametric DP at
      ``lam = limit`` inside ``|i - j| <= band``.

    Caller guarantees ``x != y`` (the zero case never reaches a probe).
    """
    total = m + n
    if limit >= 1.0:
        # unit-cost d_MV never exceeds 1: the limit cannot prune
        return "exact", 0
    if limit < 0.0:
        # any x != y pays >= 1 weight over <= total columns
        return "pruned", 1.0 / total
    band = _edit_budget(limit * total)
    if abs(m - n) > band:
        # every path performs >= |m - n| indels over <= total columns
        return "pruned", abs(m - n) / total
    if (
        total >= _MV_NUMPY_PROBE_THRESHOLD
        and (2 * band + 1) * min(m, n) >= _MV_BANDED_CELL_LIMIT
    ):
        return "full", band
    return "banded", band


def mv_pruned_value(limit: float, total: int, band: int, score: float) -> float:
    """The above-limit value a *banded* probe with a positive *score*
    proves: out-of-band paths pay more than *band* indels, so their
    score is at least ``band + 1 - limit * total > 0`` and the global
    parametric minimum is bounded below by the smaller of the two."""
    slack = min(score, band + 1 - limit * total)
    return limit + slack / total


def bounded_marzal_vidal(x: StringLike, y: StringLike, limit: float) -> float:
    """Early-exit Marzal--Vidal ``d_MV`` via a banded parametric probe.

    ``d_MV <= r`` iff some editing path has ``W(pi) - r * L(pi) <= 0``,
    which is exactly the Dinkelbach parametric problem evaluated at
    ``lam = r``.  One banded alignment DP therefore decides prunability:

    * a strictly positive minimum proves every path's ratio exceeds
      *limit* -- return ``limit + slack / (|x| + |y|)``, a true lower
      bound of ``d_MV`` that exceeds *limit*;
    * otherwise the exact distance is at most *limit*: compute and
      return it via :func:`~repro.core.marzal_vidal.mv_normalized_distance`
      (bit-identical to the full evaluation by construction).

    The band is sound because any path with ``W <= limit * L`` performs
    at most ``limit * (|x| + |y|)`` indels; wider excursions pay more
    weight than the ratio allows, so they can only make the probe's
    minimum larger.  Regime selection lives in :func:`mv_bound_plan`,
    shared with the batched bounded path.
    """
    x, y = require_strings(x, y)
    if x == y:
        return 0.0
    from .marzal_vidal import mv_normalized_distance

    m, n = len(x), len(y)
    total = m + n
    tag, aux = mv_bound_plan(m, n, limit)
    if tag == "exact":
        return mv_normalized_distance(x, y)
    if tag == "pruned":
        return aux
    band = int(aux)
    # Probe selection is identical on every kernel backend (the branch
    # changes the pruned *value*, not just the speed); the JIT backend
    # merely swaps each probe for its compiled bit-identical twin.
    from ._kernels import jit_backend

    jit = jit_backend()
    if tag == "full":
        # wide band on long strings: the full-table anti-diagonal kernel
        # is cheaper than banded Python; a full-table minimum is a valid
        # (indeed stronger) probe, and its slack needs no band term
        if jit is not None:
            weight, length = jit.parametric_alignment(x, y, limit)
        else:
            from ._kernels import parametric_alignment_numpy

            weight, length = parametric_alignment_numpy(x, y, limit)
        score = weight - limit * length
        if score <= _MV_EPS:
            return mv_normalized_distance(x, y)
        return limit + score / total
    if jit is not None:
        score = jit.banded_parametric(x, y, limit, band)
    else:
        score = _banded_parametric(x, y, limit, band)
    if score <= _MV_EPS:
        return mv_normalized_distance(x, y)
    return mv_pruned_value(limit, total, band, score)


_BOUNDED: Dict[DistanceFunction, BoundedDistanceFunction] = {}


def register_bounded(
    function: DistanceFunction, bounded: BoundedDistanceFunction
) -> None:
    """Associate a distance function with its early-exit twin."""
    _BOUNDED[function] = bounded


def bounded_for(
    function: DistanceFunction,
) -> Optional[BoundedDistanceFunction]:
    """The bounded twin registered for *function*, or None."""
    return _BOUNDED.get(function)


# The raw integer Levenshtein gets its twin here; the registry wires the
# float-valued registered functions as it builds its specs.
register_bounded(levenshtein_distance, levenshtein_bounded)
