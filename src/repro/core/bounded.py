"""Bounded (early-exit) twins of the Levenshtein-backed distances.

A metric index holding a current best radius ``r`` does not need the exact
distance of a candidate that cannot win -- it only needs *some* value
``> r`` to discard it.  Each function here takes ``(x, y, limit)`` and
honours the contract of :func:`~repro.core.levenshtein.levenshtein_bounded`:

* if ``d(x, y) <= limit`` the exact distance is returned;
* otherwise the returned value is guaranteed to exceed ``limit`` (and may
  be an underestimate of the true distance, but never of ``limit``).

The normalised family reduces to a bounded edit distance by inverting the
normalisation: ``d_E / f(|x|, |y|) <= r`` iff ``d_E <= r * f(|x|, |y|)``
(with the Yujian--Bo form solved for ``d_E``), so Ukkonen's band prunes
exactly the right candidates.  The pruned return values replay each
distance's formula at ``k + 1`` (one more edit than the largest feasible
count), which is strictly above ``limit`` by construction.

:func:`bounded_for` maps a registered distance *function* to its bounded
twin, which is how :class:`~repro.index.base.CountingDistance` discovers
early-exit support without the index layer knowing distance names.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from .levenshtein import levenshtein_bounded, levenshtein_distance
from .types import DistanceFunction, StringLike, require_strings

__all__ = [
    "BoundedDistanceFunction",
    "bounded_levenshtein",
    "bounded_dmax",
    "bounded_dsum",
    "bounded_dmin",
    "bounded_yujian_bo",
    "register_bounded",
    "bounded_for",
]

#: ``(x, y, limit) -> float`` with the exact-or-above-limit contract.
BoundedDistanceFunction = Callable[[StringLike, StringLike, float], float]

#: A tiny slack so ``r * f`` landing exactly on an integer keeps that
#: integer feasible despite float rounding (overshooting only means the
#: exact distance is computed slightly more often -- never a wrong prune).
_EPS = 1e-9


def _edit_budget(scaled: float) -> int:
    """Largest edit count consistent with a normalised limit ``scaled``."""
    return int(math.floor(scaled + _EPS))


def bounded_levenshtein(x: StringLike, y: StringLike, limit: float) -> float:
    """Early-exit ``d_E`` as a float (the registry's Levenshtein entry)."""
    return float(levenshtein_bounded(x, y, limit))


def bounded_dmax(x: StringLike, y: StringLike, limit: float) -> float:
    """Early-exit ``d_max = d_E / max(|x|, |y|)``."""
    x, y = require_strings(x, y)
    longest = max(len(x), len(y))
    if longest == 0:
        return 0.0
    k = _edit_budget(limit * longest)
    d = levenshtein_bounded(x, y, k)
    if d <= k:
        return d / longest
    return (k + 1) / longest


def bounded_dsum(x: StringLike, y: StringLike, limit: float) -> float:
    """Early-exit ``d_sum = d_E / (|x| + |y|)``."""
    x, y = require_strings(x, y)
    total = len(x) + len(y)
    if total == 0:
        return 0.0
    k = _edit_budget(limit * total)
    d = levenshtein_bounded(x, y, k)
    if d <= k:
        return d / total
    return (k + 1) / total


def bounded_dmin(x: StringLike, y: StringLike, limit: float) -> float:
    """Early-exit ``d_min = d_E / min(|x|, |y|)``."""
    x, y = require_strings(x, y)
    shortest = min(len(x), len(y))
    if shortest == 0:
        return 0.0 if x == y else float("inf")
    k = _edit_budget(limit * shortest)
    d = levenshtein_bounded(x, y, k)
    if d <= k:
        return d / shortest
    return (k + 1) / shortest


def bounded_yujian_bo(x: StringLike, y: StringLike, limit: float) -> float:
    """Early-exit ``d_YB = 2 d_E / (|x| + |y| + d_E)``.

    ``d_YB <= r``  iff  ``d_E <= r (|x| + |y|) / (2 - r)`` for ``r < 2``;
    since ``d_YB <= 1`` always, limits ``>= 1`` cannot prune.
    """
    x, y = require_strings(x, y)
    if not x and not y:
        return 0.0
    total = len(x) + len(y)
    if limit >= 1.0:
        d = levenshtein_distance(x, y)
        return 2.0 * d / (total + d)
    if limit < 0.0:
        # every pair has d_YB >= 0 > limit is impossible to satisfy exactly;
        # x == y was not shortcut by callers, so compute the cheap band-0.
        k = 0
    else:
        k = _edit_budget(limit * total / (2.0 - limit))
    d = levenshtein_bounded(x, y, k)
    if d <= k:
        return 2.0 * d / (total + d)
    return 2.0 * (k + 1) / (total + k + 1)


_BOUNDED: Dict[DistanceFunction, BoundedDistanceFunction] = {}


def register_bounded(
    function: DistanceFunction, bounded: BoundedDistanceFunction
) -> None:
    """Associate a distance function with its early-exit twin."""
    _BOUNDED[function] = bounded


def bounded_for(
    function: DistanceFunction,
) -> Optional[BoundedDistanceFunction]:
    """The bounded twin registered for *function*, or None."""
    return _BOUNDED.get(function)


# The raw integer Levenshtein gets its twin here; the registry wires the
# float-valued registered functions as it builds its specs.
register_bounded(levenshtein_distance, levenshtein_bounded)
