"""Naive length-ratio normalisations of the edit distance (Section 2.2).

``d_sum = d_E / (|x|+|y|)``, ``d_max = d_E / max(|x|,|y|)`` and
``d_min = d_E / min(|x|,|y|)`` are the obvious first attempts at
normalisation.  None of them is a metric: the paper gives explicit
triangle-inequality counterexamples, which this module records as data so
tests and examples can replay them verbatim.

``d_max`` matters beyond being a strawman: in the paper's Table 2 it
achieves the *best* classification error, while its non-metricity makes
triangle-inequality-based search (LAESA) formally unsound (though
empirically harmless in Table 2).
"""

from __future__ import annotations

from typing import Tuple

from .levenshtein import levenshtein_distance
from .types import DistanceFunction, StringLike, require_strings

__all__ = [
    "sum_normalized_distance",
    "max_normalized_distance",
    "min_normalized_distance",
    "TRIANGLE_COUNTEREXAMPLES",
    "triangle_defect",
]


def sum_normalized_distance(x: StringLike, y: StringLike) -> float:
    """``d_sum(x, y) = d_E(x, y) / (|x| + |y|)`` (0 for two empty strings).

    Not a metric: ``d_sum(ab, ba) > d_sum(ab, aba) + d_sum(aba, ba)``.
    """
    x, y = require_strings(x, y)
    total = len(x) + len(y)
    if total == 0:
        return 0.0
    return levenshtein_distance(x, y) / total


def max_normalized_distance(x: StringLike, y: StringLike) -> float:
    """``d_max(x, y) = d_E(x, y) / max(|x|, |y|)`` (0 for two empty strings).

    Not a metric (same witness as ``d_sum``); bounded by 1.
    """
    x, y = require_strings(x, y)
    longest = max(len(x), len(y))
    if longest == 0:
        return 0.0
    return levenshtein_distance(x, y) / longest


def min_normalized_distance(x: StringLike, y: StringLike) -> float:
    """``d_min(x, y) = d_E(x, y) / min(|x|, |y|)``.

    Not a metric (witness ``x=b, y=ba, z=aa``); moreover it is infinite
    against the empty string unless both strings are empty, which this
    implementation reports as ``float('inf')``.
    """
    x, y = require_strings(x, y)
    shortest = min(len(x), len(y))
    if shortest == 0:
        return 0.0 if x == y else float("inf")
    return levenshtein_distance(x, y) / shortest


#: The triangle-inequality counterexamples quoted in Section 2.2, as
#: ``(distance_name, (x, y, z))`` with the violation ``d(x,z) > d(x,y)+d(y,z)``.
TRIANGLE_COUNTEREXAMPLES: Tuple[Tuple[str, Tuple[str, str, str]], ...] = (
    ("dsum", ("ab", "aba", "ba")),
    ("dmax", ("ab", "aba", "ba")),
    ("dmin", ("b", "ba", "aa")),
)


def triangle_defect(
    distance: DistanceFunction, x: StringLike, y: StringLike, z: StringLike
) -> float:
    """Return ``d(x, z) - (d(x, y) + d(y, z))``; positive means violation."""
    return distance(x, z) - (distance(x, y) + distance(y, z))
