"""The contextual normalised edit distance ``d_C`` (the paper's contribution).

Each elementary operation ``u -> v`` costs ``1/max(|u|, |v|)``: substituting
or deleting in a string of length ``m`` costs ``1/m``; inserting into it
costs ``1/(m+1)``.  ``d_C(x, y)`` is the cheapest total over all rewriting
paths from ``x`` to ``y``.

Two results from Section 3 make the distance computable:

* only *internal* paths matter (Proposition 1), and along an internal path
  the optimum is reached by doing all insertions first, substitutions on the
  longest intermediate string, and deletions last (Lemma 1);
* consequently a path is characterised by its paid-operation count ``k`` and
  its insertion count ``Ni``; its cost is the closed form ``D(k, Ni)``
  implemented by :func:`canonical_cost`, and ``D`` is minimised (for fixed
  ``k``) by the *maximum* feasible ``Ni``.

**Algorithm 1** therefore tabulates ``ni[i][j][k]`` -- the maximum number of
insertions over internal paths from ``x[:i]`` to ``y[:j]`` with exactly
``k`` paid operations -- and minimises ``D(k, ni[|x|][|y|][k])`` over ``k``.
Complexity ``O(|x| * |y| * (|x|+|y|))``; we vectorise the ``k`` axis with
numpy.

The **heuristic** ``d_C,h`` (Section 4.1) evaluates only the *minimal*
feasible ``k`` per cell -- i.e. ``k = d_E(x, y)`` with the maximum insertion
count among minimum-cost edit paths -- and runs in ``O(|x| * |y|)``.  It is
an upper bound on ``d_C`` and agrees with it in the vast majority of cases
(the paper reports ~90%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ._kernels import jit_backend as _jit
from .harmonic import harmonic_range
from .types import StringLike, require_strings

__all__ = [
    "contextual_distance",
    "contextual_distance_heuristic",
    "contextual_edit_path",
    "canonical_cost",
    "contextual_profile",
    "KPoint",
]

#: Sentinel for "no internal path with this k" (stays negative under +1 updates).
_NEG = -(1 << 30)

#: Above this (len(x)+len(y)) threshold the heuristic uses the numpy
#: anti-diagonal kernel.  Calibrated with benchmarks/bench_kernels.py: the
#: pure-Python twin tables win below ~260 combined symbols (per-call numpy
#: overhead dominates), the vectorised kernel wins beyond.  Treated as
#: zero when the optional numba backend is active -- a compiled kernel
#: wins at every length.
_NUMPY_THRESHOLD = 260


def _heuristic_pair(x, y) -> Tuple[int, int]:
    """Backend-dispatched ``(d_E, Ni)`` twin tables for one pair."""
    jit = _jit()
    if jit is not None:  # compiled backend: threshold drops to zero
        return jit.contextual_heuristic_single(x, y)
    if len(x) + len(y) >= _NUMPY_THRESHOLD:
        from ._kernels import contextual_heuristic_numpy

        return contextual_heuristic_numpy(x, y)
    return _heuristic_tables(x, y)


def canonical_cost(m: int, n: int, k: int, ni: int) -> Optional[float]:
    """Cost ``D(k, Ni)`` of the canonical internal path (Section 3.1).

    The canonical path from a length-``m`` string to a length-``n`` string
    performs ``Ni`` insertions first (growing ``m`` to the peak ``m + Ni``),
    then ``Ns`` substitutions at the peak, then ``Nd`` deletions (shrinking
    to ``n``)::

        D = sum_{i=m+1}^{m+Ni} 1/i  +  Ns/(m+Ni)  +  sum_{i=n+1}^{n+Nd} 1/i

    with ``Nd = m - n + Ni`` and ``Ns = k - Ni - Nd``.  Returns ``None``
    when the combination is infeasible (negative ``Ni``, ``Nd`` or ``Ns``).
    """
    if ni < 0:
        return None
    nd = m - n + ni
    ns = k - ni - nd
    if nd < 0 or ns < 0:
        return None
    peak = m + ni
    cost = harmonic_range(m, peak)
    if ns:
        cost += ns / peak
    cost += harmonic_range(n, n + nd)
    return cost


@dataclass(frozen=True)
class KPoint:
    """One feasible paid-operation count in the exact DP's final column.

    ``k`` paid operations, of which ``ni`` insertions (the maximum possible),
    ``ns`` substitutions and ``nd`` deletions, with canonical cost ``cost``.
    """

    k: int
    ni: int
    ns: int
    nd: int
    cost: float


def _insertion_table_final_py(x, y, k_max):
    """Pure-Python variant of :func:`_insertion_table_final` for short
    strings, where per-call numpy overhead dominates the actual work."""
    m, n = len(x), len(y)
    kk = k_max + 1
    prev = [[_NEG] * kk for _ in range(n + 1)]
    for j in range(min(n, k_max) + 1):
        prev[j][j] = j
    for i in range(1, m + 1):
        xi = x[i - 1]
        cur = [[_NEG] * kk for _ in range(n + 1)]
        if i <= k_max:
            cur[0][i] = 0
        for j in range(1, n + 1):
            eq = xi == y[j - 1]
            row = cur[j]
            diag = prev[j - 1]
            up = prev[j]
            left = cur[j - 1]
            for k in range(kk):
                best = diag[k] if eq else (diag[k - 1] if k else _NEG)
                if k:
                    v = up[k - 1]
                    if v > best:
                        best = v
                    v = left[k - 1] + 1
                    if v > best:
                        best = v
                row[k] = best
        prev = cur
    return prev[n]


#: Below this (len(x)+len(y)) bound the exact DP runs in pure Python.
_EXACT_PY_THRESHOLD = 48


def _insertion_table_final(x, y, k_max=None):
    """Run Algorithm 1's DP and return ``ni[|x|][|y|][:]`` as a vector.

    Entry ``k`` holds the maximum number of insertions over internal paths
    from ``x`` to ``y`` with exactly ``k`` paid operations, or a large
    negative sentinel when no such path exists.  Rows are processed one at a
    time (memory ``O(|y| * k_max)``); the ``k`` axis is vectorised with
    numpy for long strings and looped in Python for short ones.

    ``k_max`` truncates the paid-operation axis: paths using more than
    ``k_max`` operations are ignored.  Callers that can bound the optimum
    (see :func:`contextual_distance`) use this to shrink the cubic factor.
    """
    m, n = len(x), len(y)
    if k_max is None or k_max > m + n:
        k_max = m + n
    jit = _jit()
    if jit is not None:  # compiled backend: thresholds drop to zero
        return jit.insertion_table_final(x, y, k_max)
    if m + n < _EXACT_PY_THRESHOLD:
        return _insertion_table_final_py(x, y, k_max)
    kk = k_max + 1
    # Row 0: from the empty prefix of x, the only internal path to y[:j]
    # is j insertions => ni[0][j][j] = j.
    prev = np.full((n + 1, kk), _NEG, dtype=np.int64)
    for j in range(min(n, k_max) + 1):
        prev[j, j] = j

    def shifted(vec: np.ndarray) -> np.ndarray:
        """Return vec indexed at k-1 (k=0 gets the sentinel)."""
        out = np.empty_like(vec)
        out[0] = _NEG
        out[1:] = vec[:-1]
        return out

    cur = np.empty_like(prev)
    for i in range(1, m + 1):
        xi = x[i - 1]
        # Column 0: only path from x[:i] to the empty string is i deletions.
        cur[0, :] = _NEG
        if i <= k_max:
            cur[0, i] = 0
        for j in range(1, n + 1):
            if xi == y[j - 1]:
                best = prev[j - 1].copy()  # free match, same k
            else:
                best = shifted(prev[j - 1])  # paid substitution
            np.maximum(best, shifted(prev[j]), out=best)  # deletion
            np.maximum(best, shifted(cur[j - 1]) + 1, out=best)  # insertion
            cur[j] = best
        prev, cur = cur, prev
    return prev[n]


def contextual_profile(x: StringLike, y: StringLike) -> List[KPoint]:
    """Return every feasible ``(k, Ni, Ns, Nd, cost)`` for the pair.

    This is the final column of Algorithm 1's DP, evaluated through
    :func:`canonical_cost` -- useful for inspecting *why* the heuristic
    (which only looks at the smallest ``k``) occasionally loses.
    """
    x, y = require_strings(x, y)
    m, n = len(x), len(y)
    final = _insertion_table_final(x, y)
    points: List[KPoint] = []
    for k in range(m + n + 1):
        ni = int(final[k])
        if ni < 0:
            continue
        cost = canonical_cost(m, n, k, ni)
        if cost is None:
            continue
        nd = m - n + ni
        points.append(KPoint(k=k, ni=ni, ns=k - ni - nd, nd=nd, cost=cost))
    return points


def contextual_distance(x: StringLike, y: StringLike) -> float:
    """Exact contextual normalised edit distance ``d_C(x, y)`` (Algorithm 1).

    The DP's paid-operation axis is pruned with a sound bound: any path
    with ``k`` paid operations has at most ``(k + |y| - |x|) / 2``
    insertions, so its peak length is at most ``(|x| + |y| + k) / 2`` and
    its cost at least ``2k / (|x| + |y| + k)``.  The heuristic (an upper
    bound ``B`` computed first in quadratic time) therefore caps the useful
    ``k`` at ``B (|x| + |y|) / (2 - B)``, which in practice shrinks the
    cubic factor to a small constant multiple of ``d_E``.

    >>> round(contextual_distance("ababa", "baab"), 10) == round(8 / 15, 10)
    True
    """
    x, y = require_strings(x, y)
    if x == y:
        return 0.0
    m, n = len(x), len(y)
    # Quadratic upper bound (and d_E) from the heuristic's twin tables.
    d_e, ni_h = _heuristic_pair(x, y)
    upper = canonical_cost(m, n, d_e, ni_h)
    if upper is None:  # pragma: no cover - the DP guarantees feasibility
        raise AssertionError(f"infeasible heuristic for {x!r}, {y!r}")
    if upper < 2.0:
        k_max = int((upper * (m + n)) / (2.0 - upper) + 1e-9)
    else:
        k_max = m + n
    k_max = min(max(k_max, d_e), m + n)
    best = upper
    final = _insertion_table_final(x, y, k_max)
    for k in range(k_max + 1):
        ni = int(final[k])
        if ni < 0:
            continue
        cost = canonical_cost(m, n, k, ni)
        if cost is not None and cost < best:
            best = cost
    return best


def _full_insertion_table(x, y):
    """The complete ``ni[i][j][k]`` table (pure Python, analysis sizes).

    Path recovery needs every cell, not just the final column, so memory
    is ``O(|x| * |y| * (|x|+|y|))`` -- fine for the explanation-sized
    strings :func:`contextual_edit_path` targets.
    """
    m, n = len(x), len(y)
    kk = m + n + 1
    table = [[[_NEG] * kk for _ in range(n + 1)] for _ in range(m + 1)]
    for j in range(n + 1):
        table[0][j][j] = j
    for i in range(1, m + 1):
        xi = x[i - 1]
        table[i][0][i] = 0
        for j in range(1, n + 1):
            eq = xi == y[j - 1]
            row = table[i][j]
            diag = table[i - 1][j - 1]
            up = table[i - 1][j]
            left = table[i][j - 1]
            for k in range(kk):
                best = diag[k] if eq else (diag[k - 1] if k else _NEG)
                if k:
                    v = up[k - 1]
                    if v > best:
                        best = v
                    v = left[k - 1] + 1
                    if v > best:
                        best = v
                row[k] = best
    return table


def contextual_edit_path(x: StringLike, y: StringLike) -> "EditPath":
    """Recover an *optimal* contextual edit path from ``x`` to ``y``.

    Backtracks Algorithm 1's DP at the optimal ``(k, Ni)`` to an alignment
    and emits it in the canonical temporal order of Lemma 1 -- all
    insertions first, substitutions at the peak length, matches, then
    deletions -- as a replayable :class:`~repro.core.paths.EditPath`:
    ``apply_ops(x, path.ops)`` reconstructs ``y`` and
    ``path.contextual_weight`` equals ``contextual_distance(x, y)``
    (both are asserted by the test-suite).

    Memory is cubic in the input lengths; this is an explanation tool for
    human-sized strings, not a bulk-distance API.
    """
    from .paths import EditOp, EditPath

    x, y = require_strings(x, y)
    m, n = len(x), len(y)
    if x == y:
        return EditPath(
            tuple(EditOp("match", i, s, s) for i, s in enumerate(x)),
            source=x,
            target=y,
        )
    table = _full_insertion_table(x, y)
    final = table[m][n]
    best_cost = float("inf")
    best_k = -1
    for k in range(m + n + 1):
        ni = int(final[k])
        if ni < 0:
            continue
        cost = canonical_cost(m, n, k, ni)
        if cost is not None and cost < best_cost:
            best_cost = cost
            best_k = k
    # Backtrack the alignment achieving (best_k, ni[m][n][best_k]).
    columns = []  # ('match'|'sub'|'ins'|'del', x_index, y_index)
    i, j, k = m, n, best_k
    value = table[m][n][best_k]
    while i > 0 or j > 0:
        if i > 0 and j > 0 and x[i - 1] == y[j - 1] \
                and table[i - 1][j - 1][k] == value:
            columns.append(("match", i - 1, j - 1))
            i -= 1
            j -= 1
        elif (
            i > 0 and j > 0 and k > 0 and x[i - 1] != y[j - 1]
            and table[i - 1][j - 1][k - 1] == value
        ):
            columns.append(("sub", i - 1, j - 1))
            i -= 1
            j -= 1
            k -= 1
        elif i > 0 and k > 0 and table[i - 1][j][k - 1] == value:
            columns.append(("del", i - 1, -1))
            i -= 1
            k -= 1
        elif j > 0 and k > 0 and table[i][j - 1][k - 1] == value - 1:
            columns.append(("ins", -1, j - 1))
            j -= 1
            k -= 1
            value -= 1
        else:  # pragma: no cover - the DP guarantees a predecessor
            raise AssertionError(
                f"backtrack stuck at ({i}, {j}, {k}) for {x!r} -> {y!r}"
            )
    columns.reverse()
    # Emit in canonical temporal order.  ``tokens`` models the current
    # string as a list of column ids; positions are looked up live.
    ops = []
    token_cols = [idx for idx, (kind, _, _) in enumerate(columns)
                  if kind != "ins"]

    def position_of(col_idx: int) -> int:
        return token_cols.index(col_idx)

    for idx, (kind, _, yj) in enumerate(columns):  # 1) insertions
        if kind == "ins":
            pos = sum(1 for c in token_cols if c < idx)
            token_cols.insert(pos, idx)
            ops.append(EditOp("insert", pos, None, y[yj]))
    for idx, (kind, xi, yj) in enumerate(columns):  # 2) substitutions
        if kind == "sub":
            ops.append(EditOp("substitute", position_of(idx), x[xi], y[yj]))
    for idx, (kind, xi, yj) in enumerate(columns):  # 3) matches (free)
        if kind == "match":
            ops.append(EditOp("match", position_of(idx), x[xi], y[yj]))
    for idx, (kind, xi, _) in enumerate(columns):  # 4) deletions
        if kind == "del":
            pos = position_of(idx)
            token_cols.pop(pos)
            ops.append(EditOp("delete", pos, x[xi], None))
    return EditPath(tuple(ops), source=x, target=y)


def _heuristic_tables(x: str, y: str) -> Tuple[int, int]:
    """Return ``(d_E(x, y), Ni)`` where ``Ni`` is the maximum insertion
    count over *minimum-cost* internal edit paths.

    Pure-Python two-row DP.  A transition into ``(i, j)`` is considered
    only when it is *tight* (it achieves ``d[i][j]``), which restricts the
    search to minimum-cost paths -- precisely the paper's heuristic of
    evaluating ``ni[i][j][k]`` at the least feasible ``k`` only.
    """
    m, n = len(x), len(y)
    prev_d = list(range(n + 1))
    prev_ni = list(range(n + 1))  # ni[0][j] = j
    for i in range(1, m + 1):
        xi = x[i - 1]
        cur_d = [i] + [0] * n
        cur_ni = [0] + [0] * n  # ni[i][0] = 0
        for j in range(1, n + 1):
            if xi == y[j - 1]:
                diag = prev_d[j - 1]
            else:
                diag = prev_d[j - 1] + 1
            up = prev_d[j] + 1
            left = cur_d[j - 1] + 1
            d = diag if diag < up else up
            if left < d:
                d = left
            cur_d[j] = d
            best = _NEG
            if diag == d and prev_ni[j - 1] > best:
                best = prev_ni[j - 1]
            if up == d and prev_ni[j] > best:
                best = prev_ni[j]
            if left == d and cur_ni[j - 1] + 1 > best:
                best = cur_ni[j - 1] + 1
            cur_ni[j] = best
        prev_d, prev_ni = cur_d, cur_ni
    return prev_d[n], prev_ni[n]


def contextual_distance_heuristic(x: StringLike, y: StringLike) -> float:
    """Quadratic heuristic ``d_C,h(x, y)`` (Section 4.1).

    Evaluates the canonical cost only at ``k = d_E(x, y)`` (the least
    feasible paid-operation count) with the maximum insertion count among
    minimum-cost paths.  Always ``>= contextual_distance(x, y)``, equal in
    the vast majority of cases.
    """
    x, y = require_strings(x, y)
    if x == y:
        return 0.0
    k, ni = _heuristic_pair(x, y)
    cost = canonical_cost(len(x), len(y), k, ni)
    if cost is None:  # pragma: no cover - the DP guarantees feasibility
        raise AssertionError(
            f"heuristic produced infeasible (k={k}, ni={ni}) for {x!r}, {y!r}"
        )
    return cost
