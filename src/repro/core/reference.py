"""Brute-force reference implementations (test oracles).

Nothing here is fast; everything here is *obviously correct*.  The
test-suite validates each production DP against these on small inputs:

* :func:`dijkstra_rewrite` -- shortest path over the full rewrite graph
  (all strings up to a length bound), with a pluggable per-operation cost;
* :func:`dijkstra_contextual` / :func:`dijkstra_edit` -- instantiations for
  ``d_C`` and ``d_E``;
* :func:`brute_force_marzal_vidal` -- ``min W/L`` by enumerating every
  alignment path.

The length bound ``|x| + |y|`` for the contextual distance is justified by
the paper's Theorem 1 (part 1): paths through longer intermediate strings
are provably more expensive than the canonical all-insertions-first path,
whose peak length never exceeds ``|x| + |y|``.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Hashable, Optional, Tuple

from .paths import contextual_op_cost
from .types import StringLike, as_symbols

__all__ = [
    "dijkstra_rewrite",
    "dijkstra_contextual",
    "dijkstra_edit",
    "brute_force_marzal_vidal",
]

#: (length_before, kind, before_symbol, after_symbol) -> cost
OpCost = Callable[[int, str, Optional[Hashable], Optional[Hashable]], float]


def dijkstra_rewrite(
    x: StringLike,
    y: StringLike,
    op_cost: OpCost,
    alphabet: Optional[Tuple[Hashable, ...]] = None,
    max_length: Optional[int] = None,
) -> float:
    """Exact shortest rewrite cost from *x* to *y* over all paths.

    Explores every string over *alphabet* (default: the symbols of *x* and
    *y*) of length at most *max_length* (default ``|x| + |y|``), connecting
    strings by single-symbol insertions, deletions and substitutions priced
    by *op_cost*.  Exponential state space: intended for strings whose
    combined length is at most ~8.
    """
    source = tuple(as_symbols(x))
    target = tuple(as_symbols(y))
    if source == target:
        return 0.0
    if alphabet is None:
        alphabet = tuple(sorted(set(source) | set(target), key=repr))
    if max_length is None:
        max_length = len(source) + len(target)

    dist: Dict[Tuple[Hashable, ...], float] = {source: 0.0}
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u == target:
            return d
        if d > dist.get(u, float("inf")):
            continue
        length = len(u)

        def relax(v: Tuple[Hashable, ...], cost: float) -> None:
            nd = d + cost
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))

        for pos in range(length):  # deletions and substitutions
            deleted = u[:pos] + u[pos + 1 :]
            relax(deleted, op_cost(length, "delete", u[pos], None))
            for symbol in alphabet:
                if symbol != u[pos]:
                    substituted = u[:pos] + (symbol,) + u[pos + 1 :]
                    relax(
                        substituted,
                        op_cost(length, "substitute", u[pos], symbol),
                    )
        if length < max_length:  # insertions
            for pos in range(length + 1):
                for symbol in alphabet:
                    inserted = u[:pos] + (symbol,) + u[pos:]
                    relax(inserted, op_cost(length, "insert", None, symbol))
    raise ValueError(
        "target unreachable -- max_length smaller than len(y)?"
    )  # pragma: no cover


def dijkstra_contextual(
    x: StringLike, y: StringLike, max_length: Optional[int] = None
) -> float:
    """Oracle for ``d_C``: true shortest path with costs ``1/max(|u|,|v|)``."""

    def cost(length_before, kind, before, after):
        return contextual_op_cost(length_before, kind)

    return dijkstra_rewrite(x, y, cost, max_length=max_length)


def dijkstra_edit(x: StringLike, y: StringLike) -> float:
    """Oracle for ``d_E``: unit cost per operation."""

    def cost(length_before, kind, before, after):
        return 1.0

    return dijkstra_rewrite(x, y, cost)


def brute_force_marzal_vidal(x: StringLike, y: StringLike) -> float:
    """Oracle for unit-cost ``d_MV``: enumerate every alignment path and
    minimise ``W / L`` directly."""
    x = as_symbols(x)
    y = as_symbols(y)
    m, n = len(x), len(y)
    if m == 0 and n == 0:
        return 0.0
    best = float("inf")

    def walk(i: int, j: int, weight: int, length: int) -> None:
        nonlocal best
        if i == m and j == n:
            ratio = weight / length
            if ratio < best:
                best = ratio
            return
        if i < m:
            walk(i + 1, j, weight + 1, length + 1)  # delete x[i]
        if j < n:
            walk(i, j + 1, weight + 1, length + 1)  # insert y[j]
        if i < m and j < n:
            paid = 0 if x[i] == y[j] else 1
            walk(i + 1, j + 1, weight + paid, length + 1)

    walk(0, 0, 0, 0)
    return best
