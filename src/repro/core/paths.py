"""Explicit edit paths and the three path weights used by the paper.

The paper reasons about *paths* ``pi = (x = w_0 -> w_1 -> ... -> w_k = y)``
and attaches three quantities to them:

* ``d_E(pi)`` -- the edit weight: the number of *paid* operations
  (insertions, deletions, substitutions of distinct symbols);
* ``l_E(pi)`` -- the length of the *marked* path: paid operations plus the
  zero-cost matches (Example 3: ``l_E(abaa -> bbaa -> baa -> baab) = 5``);
* ``d_C(pi)`` -- the contextual weight: each paid operation ``u -> v``
  contributes ``1 / max(|u|, |v|)``.

This module gives those notions a concrete, testable form.  Distances are
*minima over paths*; having an explicit path type lets the test-suite verify
each DP against exhaustively enumerated or Dijkstra-discovered paths, and
lets examples show users what an optimal rewriting actually looks like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional, Tuple

from .types import StringLike, as_symbols

__all__ = [
    "EditOp",
    "EditPath",
    "apply_ops",
    "contextual_op_cost",
    "path_edit_weight",
    "path_length",
    "path_contextual_weight",
]

_KINDS = ("match", "substitute", "insert", "delete")


@dataclass(frozen=True)
class EditOp:
    """One elementary operation in an edit path.

    ``position`` indexes the *current* string at the time the operation is
    applied (for ``insert`` it is the index the new symbol will occupy).
    ``before`` / ``after`` are the symbols consumed / produced; ``None``
    marks the absent side of an insertion or deletion.
    """

    kind: str
    position: int
    before: Optional[Hashable]
    after: Optional[Hashable]

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown edit operation kind: {self.kind!r}")
        if self.kind == "insert" and self.after is None:
            raise ValueError("insert requires an 'after' symbol")
        if self.kind == "delete" and self.before is None:
            raise ValueError("delete requires a 'before' symbol")
        if self.kind in ("match", "substitute") and (
            self.before is None or self.after is None
        ):
            raise ValueError(f"{self.kind} requires both symbols")
        if self.kind == "match" and self.before != self.after:
            raise ValueError("match requires equal symbols")
        if self.kind == "substitute" and self.before == self.after:
            raise ValueError("substitute requires distinct symbols")

    @property
    def is_paid(self) -> bool:
        """True when the operation contributes to the edit weight."""
        return self.kind != "match"


@dataclass(frozen=True)
class EditPath:
    """An edit path: a sequence of operations from ``source`` to ``target``.

    Operation positions refer to the evolving string, so paths recovered by
    :func:`repro.core.levenshtein.edit_script` can be replayed with
    :func:`apply_ops` and verified to land on ``target`` (the test-suite
    does exactly that).
    """

    ops: Tuple[EditOp, ...]
    source: StringLike = ""
    target: StringLike = ""

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def edit_weight(self) -> int:
        """``d_E(pi)``: the number of paid operations."""
        return path_edit_weight(self.ops)

    @property
    def marked_length(self) -> int:
        """``l_E(pi)``: paid operations plus zero-cost matches."""
        return path_length(self.ops)

    @property
    def contextual_weight(self) -> float:
        """``d_C(pi)``: sum of ``1/max(|u|,|v|)`` over paid operations."""
        return path_contextual_weight(self.ops, self.source)

    def intermediate_strings(self) -> List[Tuple[Hashable, ...]]:
        """Replay the path, returning every intermediate string
        ``w_0 .. w_k`` as tuples of symbols."""
        current = list(as_symbols(self.source))
        states = [tuple(current)]
        for op in self.ops:
            _apply_in_place(current, op)
            states.append(tuple(current))
        return states


def _apply_in_place(current: List[Hashable], op: EditOp) -> None:
    """Apply one operation to *current*, validating symbols as we go."""
    if op.kind == "insert":
        if not 0 <= op.position <= len(current):
            raise ValueError(f"insert position {op.position} out of range")
        current.insert(op.position, op.after)
        return
    if not 0 <= op.position < len(current):
        raise ValueError(f"{op.kind} position {op.position} out of range")
    if current[op.position] != op.before:
        raise ValueError(
            f"{op.kind} at {op.position}: expected symbol {op.before!r}, "
            f"found {current[op.position]!r}"
        )
    if op.kind == "delete":
        del current[op.position]
    elif op.kind in ("substitute", "match"):
        current[op.position] = op.after


def apply_ops(source: StringLike, ops: Iterable[EditOp]) -> Tuple[Hashable, ...]:
    """Apply *ops* to *source* and return the resulting symbol tuple."""
    current = list(as_symbols(source))
    for op in ops:
        _apply_in_place(current, op)
    return tuple(current)


def contextual_op_cost(length_before: int, kind: str) -> float:
    """Contextual cost of one operation applied to a string of
    ``length_before`` symbols.

    For ``u -> v`` the paper charges ``1/max(|u|, |v|)``: substitutions and
    deletions cost ``1/|u|``; insertions cost ``1/(|u|+1)``; matches are
    free.  Raises when the operation is impossible (deleting from the empty
    string).
    """
    if kind == "match":
        return 0.0
    if kind == "insert":
        return 1.0 / (length_before + 1)
    if kind in ("substitute", "delete"):
        if length_before <= 0:
            raise ValueError(f"cannot {kind} on the empty string")
        return 1.0 / length_before
    raise ValueError(f"unknown edit operation kind: {kind!r}")


def path_edit_weight(ops: Iterable[EditOp]) -> int:
    """``d_E(pi)``: count the paid operations in *ops*."""
    return sum(1 for op in ops if op.is_paid)


def path_length(ops: Iterable[EditOp]) -> int:
    """``l_E(pi)``: total number of operations, matches included."""
    return sum(1 for _ in ops)


def path_contextual_weight(ops: Iterable[EditOp], source: StringLike) -> float:
    """``d_C(pi)``: replay *ops* from *source*, summing contextual costs."""
    current_length = len(as_symbols(source))
    total = 0.0
    for op in ops:
        total += contextual_op_cost(current_length, op.kind)
        if op.kind == "insert":
            current_length += 1
        elif op.kind == "delete":
            current_length -= 1
    return total
