"""Distance registry: the named distance functions every experiment uses.

The paper compares five or six distances throughout Section 4; the
experiment harness, benchmarks and examples all refer to them by the short
names registered here so that a table/figure reproduction is a list of
names, not a list of imports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .bounded import (
    BoundedDistanceFunction,
    bounded_contextual_heuristic,
    bounded_dmax,
    bounded_dmin,
    bounded_dsum,
    bounded_levenshtein,
    bounded_marzal_vidal,
    bounded_yujian_bo,
    register_bounded,
)
from .contextual import contextual_distance, contextual_distance_heuristic
from .levenshtein import levenshtein_distance
from .marzal_vidal import mv_normalized_distance
from .ratios import (
    max_normalized_distance,
    min_normalized_distance,
    sum_normalized_distance,
)
from .types import DistanceFunction, StringLike
from .yujian_bo import yb_normalized_distance

__all__ = ["DistanceSpec", "get_distance", "get_spec", "list_distances",
           "PAPER_NORMALISED", "PAPER_ALL"]


@dataclass(frozen=True)
class DistanceSpec:
    """Registry entry for a named distance.

    ``is_metric`` records the paper's classification (used to annotate
    experiment output; LAESA is formally sound only for metrics).
    ``display`` is the label used in rendered tables/figures, matching the
    paper's notation.  ``bounded``, when present, is the early-exit twin
    ``(x, y, limit) -> float`` (exact below the limit, above it otherwise)
    that triangle-inequality indexes use to abandon hopeless candidates.
    """

    name: str
    display: str
    function: DistanceFunction
    is_metric: bool
    normalised: bool
    notes: str = ""
    bounded: Optional[BoundedDistanceFunction] = None


def _levenshtein_float(x: StringLike, y: StringLike) -> float:
    return float(levenshtein_distance(x, y))


_REGISTRY: Dict[str, DistanceSpec] = {}


def _register(spec: DistanceSpec) -> None:
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate distance name: {spec.name}")
    _REGISTRY[spec.name] = spec
    if spec.bounded is not None:
        register_bounded(spec.function, spec.bounded)


_register(
    DistanceSpec(
        name="levenshtein",
        display="dE",
        function=_levenshtein_float,
        is_metric=True,
        normalised=False,
        notes="plain Levenshtein distance (Wagner-Fischer)",
        bounded=bounded_levenshtein,
    )
)
_register(
    DistanceSpec(
        name="contextual",
        display="dC",
        function=contextual_distance,
        is_metric=True,
        normalised=True,
        notes="exact contextual normalised edit distance (Algorithm 1, cubic)",
    )
)
_register(
    DistanceSpec(
        name="contextual_heuristic",
        display="dC,h",
        function=contextual_distance_heuristic,
        is_metric=False,
        normalised=True,
        notes="quadratic heuristic; upper bound on dC, equal ~90% of the time",
        bounded=bounded_contextual_heuristic,
    )
)
_register(
    DistanceSpec(
        name="marzal_vidal",
        display="dMV",
        function=mv_normalized_distance,
        is_metric=False,
        normalised=True,
        notes="normalised edit distance of Marzal & Vidal 1993 "
        "(metricity open for unit costs)",
        bounded=bounded_marzal_vidal,
    )
)
_register(
    DistanceSpec(
        name="yujian_bo",
        display="dYB",
        function=yb_normalized_distance,
        is_metric=True,
        normalised=True,
        notes="normalised Levenshtein metric of Yujian & Bo 2007",
        bounded=bounded_yujian_bo,
    )
)
_register(
    DistanceSpec(
        name="dmax",
        display="dmax",
        function=max_normalized_distance,
        is_metric=False,
        normalised=True,
        notes="dE / max(|x|,|y|); not a metric (Section 2.2)",
        bounded=bounded_dmax,
    )
)
_register(
    DistanceSpec(
        name="dsum",
        display="dsum",
        function=sum_normalized_distance,
        is_metric=False,
        normalised=True,
        notes="dE / (|x|+|y|); not a metric (Section 2.2)",
        bounded=bounded_dsum,
    )
)
_register(
    DistanceSpec(
        name="dmin",
        display="dmin",
        function=min_normalized_distance,
        is_metric=False,
        normalised=True,
        notes="dE / min(|x|,|y|); not a metric (Section 2.2)",
        bounded=bounded_dmin,
    )
)

#: The normalised distances of Figure 2 / Table 1, in the paper's order.
PAPER_NORMALISED: Tuple[str, ...] = (
    "yujian_bo",
    "contextual_heuristic",
    "marzal_vidal",
    "dmax",
)

#: The full comparison set of Figures 3/4 and Tables 1/2.
PAPER_ALL: Tuple[str, ...] = PAPER_NORMALISED + ("levenshtein",)


def get_spec(name: str) -> DistanceSpec:
    """Return the :class:`DistanceSpec` registered under *name*."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown distance {name!r}; known: {known}") from None


def get_distance(name: str) -> DistanceFunction:
    """Return the distance function registered under *name*."""
    return get_spec(name).function


def list_distances() -> List[DistanceSpec]:
    """All registered distances, in registration order."""
    return list(_REGISTRY.values())
