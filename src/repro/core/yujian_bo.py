"""Yujian–Bo normalised Levenshtein distance ``d_YB`` [Yujian & Bo 2007].

``d_YB(x, y) = 2 * d_E(x, y) / (|x| + |y| + d_E(x, y))``

Yujian and Bo proved this is a metric (for unit costs, and for generalised
costs satisfying mild conditions).  Values lie in ``[0, 1]``.  The paper
under reproduction observes that rewriting it as

``d_YB(x, y) = 2 - 2 (|x| + |y|) / (|x| + |y| + d_E(x, y))``

shows the edit distance's influence saturates for very different strings,
which is why its distance histograms are strongly concentrated (high
intrinsic dimensionality) in Section 4.2.
"""

from __future__ import annotations

from .generalized import CostModel, UNIT_COSTS, generalized_edit_distance
from .levenshtein import levenshtein_distance
from .types import StringLike, require_strings

__all__ = ["yb_normalized_distance", "yb_generalized_distance"]


def yb_normalized_distance(x: StringLike, y: StringLike) -> float:
    """Unit-cost ``d_YB(x, y)``.

    >>> yb_normalized_distance("ab", "ab")
    0.0
    >>> yb_normalized_distance("", "aaa")
    1.0
    """
    x, y = require_strings(x, y)
    if not x and not y:
        return 0.0
    d = levenshtein_distance(x, y)
    return 2.0 * d / (len(x) + len(y) + d)


def yb_generalized_distance(
    x: StringLike, y: StringLike, costs: CostModel = UNIT_COSTS
) -> float:
    """Generalised ``d_YB`` with weighted operations.

    Follows Yujian & Bo's construction: the string-mass terms ``|x|`` and
    ``|y|`` become the cost of deleting all of ``x`` and inserting all of
    ``y`` respectively, and ``d_E`` becomes the weighted edit distance.
    The result is a metric when the cost model is symmetric and satisfies
    the triangle conditions of their Theorem (the unit model trivially
    does).
    """
    x, y = require_strings(x, y)
    if not x and not y:
        return 0.0
    ged = generalized_edit_distance(x, y, costs)
    mass_x = sum(costs.delete(a) for a in x)
    mass_y = sum(costs.insert(b) for b in y)
    denominator = mass_x + mass_y + ged
    if denominator == 0.0:
        return 0.0
    return 2.0 * ged / denominator
