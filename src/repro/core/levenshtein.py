"""The Levenshtein (edit) distance ``d_E`` and its supporting machinery.

Implements the classic Wagner–Fischer dynamic programme [Wagner & Fisher
1974], plus the pieces the rest of the library builds on:

* :func:`levenshtein_distance` -- the distance itself (two-row DP, with an
  optional numpy anti-diagonal kernel for long inputs);
* :func:`levenshtein_matrix` -- the full ``(|x|+1) x (|y|+1)`` DP table,
  needed by the contextual heuristic and by Marzal--Vidal;
* :func:`edit_script` -- one optimal internal edit path recovered from the
  table (used for alignments and for ``l_E``, the *marked path length* of
  the paper's Example 3);
* :func:`alignment` -- a column-wise alignment view for pretty-printing.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ._kernels import jit_backend as _jit
from .paths import EditOp, EditPath
from .types import StringLike, require_strings

__all__ = [
    "levenshtein_distance",
    "levenshtein_within",
    "levenshtein_bounded",
    "levenshtein_matrix",
    "edit_script",
    "alignment",
    "internal_path_length",
]

#: Above this (len(x)+len(y)) threshold the numpy kernel wins over pure
#: Python.  Treated as zero when the optional numba backend is active
#: (``_jit`` -- :func:`repro.core._kernels.jit_backend`, the library's
#: one shared cache of the numba probe): a compiled kernel has no
#: per-diagonal dispatch cost, so it wins at every length.
_NUMPY_THRESHOLD = 128


def levenshtein_distance(x: StringLike, y: StringLike) -> int:
    """Return ``d_E(x, y)``: the minimum number of single-symbol insertions,
    deletions and substitutions turning *x* into *y*.

    >>> levenshtein_distance("abaa", "aab")
    2
    """
    x, y = require_strings(x, y)
    if len(x) < len(y):
        x, y = y, x  # keep the inner row short
    if not y:
        return len(x)
    jit = _jit()
    if jit is not None:  # compiled backend: threshold drops to zero
        return jit.levenshtein_single(x, y)
    if len(x) + len(y) >= _NUMPY_THRESHOLD:
        from ._kernels import levenshtein_numpy

        return levenshtein_numpy(x, y)
    previous = list(range(len(y) + 1))
    for i, xi in enumerate(x, start=1):
        current = [i]
        append = current.append
        prev_diag = i - 1  # previous[j-1] before this row overwrote it
        for j, yj in enumerate(y, start=1):
            cost_diag = prev_diag if xi == yj else prev_diag + 1
            prev_diag = previous[j]
            append(min(cost_diag, prev_diag + 1, current[j - 1] + 1))
        previous = current
    return previous[-1]


def levenshtein_within(
    x: StringLike, y: StringLike, bound: int
) -> Optional[int]:
    """Return ``d_E(x, y)`` if it is at most *bound*, else ``None``.

    Ukkonen's banded DP: only cells with ``|i - j| <= bound`` can lie on a
    path of cost ``<= bound``, so each row costs ``O(bound)`` and the whole
    check ``O(bound * min(|x|, |y|))`` -- the workhorse behind dictionary
    lookups with a small tolerated error (see ``examples/spellcheck.py``
    for the metric-index alternative).

    >>> levenshtein_within("abaa", "aab", 2)
    2
    >>> levenshtein_within("abaa", "aab", 1) is None
    True
    """
    if bound < 0:
        raise ValueError(f"bound must be >= 0, got {bound}")
    x, y = require_strings(x, y)
    m, n = len(x), len(y)
    if abs(m - n) > bound:
        return None
    if n == 0:
        return m if m <= bound else None
    infinity = bound + 1
    previous = [j if j <= bound else infinity for j in range(n + 1)]
    for i in range(1, m + 1):
        xi = x[i - 1]
        lo = max(1, i - bound)
        hi = min(n, i + bound)
        current = [infinity] * (n + 1)
        if i <= bound:
            current[0] = i
        row_min = current[0]
        for j in range(lo, hi + 1):
            yj = y[j - 1]
            best = previous[j - 1] + (0 if xi == yj else 1)
            up = previous[j] + 1
            if up < best:
                best = up
            left = current[j - 1] + 1
            if left < best:
                best = left
            if best > infinity:
                best = infinity
            current[j] = best
            if best < row_min:
                row_min = best
        if row_min > bound:
            return None  # every surviving cell already exceeds the bound
        previous = current
    return previous[n] if previous[n] <= bound else None


def levenshtein_bounded(x: StringLike, y: StringLike, limit: float) -> int:
    """Early-exit ``d_E``: exact when ``d_E(x, y) <= limit``, else a lower
    bound that is guaranteed to exceed *limit*.

    The total-order contract metric indexes need: a caller holding a best
    radius ``r`` can call ``levenshtein_bounded(q, u, r)`` and compare the
    result against ``r`` exactly as if it were the true distance -- any
    candidate it discards would also have been discarded by the full
    ``d_E``, at a fraction of the cost (Ukkonen's band makes the check
    ``O(limit * min(|x|, |y|))`` instead of ``O(|x| * |y|)``).

    >>> levenshtein_bounded("abaa", "aab", 2)
    2
    >>> levenshtein_bounded("abaa", "aab", 1) > 1
    True
    """
    x, y = require_strings(x, y)
    m, n = len(x), len(y)
    if limit >= m + n:  # band covers the whole table; plain DP is cheaper
        return levenshtein_distance(x, y)
    bound = int(limit) if limit >= 0 else -1
    if bound < 0:
        # nothing to compute: every distance is >= 0 > limit except x == y
        return 0 if x == y else max(abs(m - n), 1)
    exact = levenshtein_within(x, y, bound)
    if exact is not None:
        return exact
    # pruned: |m - n| is a valid lower bound and may beat bound + 1
    return max(bound + 1, abs(m - n))


def levenshtein_matrix(x: StringLike, y: StringLike) -> List[List[int]]:
    """Return the full Wagner–Fischer table ``d`` with
    ``d[i][j] = d_E(x[:i], y[:j])``.

    The table is the substrate for path recovery (:func:`edit_script`) and
    for the contextual heuristic's ``ni`` companion table.
    """
    x, y = require_strings(x, y)
    rows = len(x) + 1
    cols = len(y) + 1
    d = [[0] * cols for _ in range(rows)]
    for i in range(1, rows):
        d[i][0] = i
    d[0] = list(range(cols))
    for i in range(1, rows):
        xi = x[i - 1]
        row = d[i]
        above = d[i - 1]
        for j in range(1, cols):
            cost_diag = above[j - 1] + (0 if xi == y[j - 1] else 1)
            row[j] = min(cost_diag, above[j] + 1, row[j - 1] + 1)
    return d


def edit_script(x: StringLike, y: StringLike) -> EditPath:
    """Recover one optimal internal edit path from *x* to *y*.

    Ties are broken to prefer, in order: match/substitution, then
    insertion, then deletion.  Matches are recorded as zero-cost ``match``
    operations so the returned path is the *marked* internal path of the
    paper (its length is ``l_E``).

    Positions refer to the *evolving* string when the operations are
    applied left-to-right: at the step that handles alignment column
    ``(i, j)`` the string is ``y[:j] + x[i:]``, so matches, substitutions
    and insertions act at position ``j`` and deletions at position ``j``
    as well (the first not-yet-processed symbol).  This makes the script
    directly replayable with :func:`repro.core.paths.apply_ops`.
    """
    x, y = require_strings(x, y)
    d = levenshtein_matrix(x, y)
    ops: List[EditOp] = []
    i, j = len(x), len(y)
    while i > 0 or j > 0:
        here = d[i][j]
        if i > 0 and j > 0 and x[i - 1] == y[j - 1] and here == d[i - 1][j - 1]:
            ops.append(EditOp("match", j - 1, x[i - 1], y[j - 1]))
            i -= 1
            j -= 1
        elif i > 0 and j > 0 and here == d[i - 1][j - 1] + 1:
            ops.append(EditOp("substitute", j - 1, x[i - 1], y[j - 1]))
            i -= 1
            j -= 1
        elif j > 0 and here == d[i][j - 1] + 1:
            ops.append(EditOp("insert", j - 1, None, y[j - 1]))
            j -= 1
        else:
            ops.append(EditOp("delete", j, x[i - 1], None))
            i -= 1
    ops.reverse()
    return EditPath(tuple(ops), source=x, target=y)


def internal_path_length(x: StringLike, y: StringLike) -> int:
    """Return ``l_E(pi)`` for an optimal marked path: the number of
    alignment columns (paid operations *plus* zero-cost matches).

    This is the denominator Marzal–Vidal normalise by along a path; for an
    optimal Levenshtein path it equals ``len(edit_script(x, y))``.
    """
    return len(edit_script(x, y).ops)


def alignment(x: StringLike, y: StringLike) -> Tuple[str, str, str]:
    """Return a three-line alignment view ``(top, middle, bottom)``.

    The middle line marks each column: ``|`` match, ``*`` substitution,
    ``+`` insertion, ``-`` deletion.  Symbols are rendered with ``str``;
    gaps with ``.``.  Intended for small demonstrations and doctests:

    >>> alignment("abaa", "aab")
    ('abaa', '|-|*', 'a.ab')
    """
    path = edit_script(x, y)
    top: List[str] = []
    mid: List[str] = []
    bot: List[str] = []
    marks = {"match": "|", "substitute": "*", "insert": "+", "delete": "-"}
    for op in path.ops:
        top.append("." if op.before is None else str(op.before))
        bot.append("." if op.after is None else str(op.after))
        mid.append(marks[op.kind])
    return "".join(top), "".join(mid), "".join(bot)
