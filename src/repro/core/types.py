"""Shared types and input normalisation for string distances.

Every distance in this library accepts *symbol sequences*: ``str`` (each
character is a symbol), or any ``Sequence`` of hashable symbols (tuples of
Freeman chain-code directions, lists of codon strings, ...).  Internally the
algorithms only compare symbols for equality, so nothing more than
``Sequence[Hashable]`` is required.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence, Tuple, Union

__all__ = [
    "Symbols",
    "StringLike",
    "DistanceFunction",
    "as_symbols",
    "require_strings",
]

#: A normalised symbol sequence (what the kernels consume).
Symbols = Union[str, Tuple[Hashable, ...]]

#: Anything a public distance function accepts.
StringLike = Union[str, Sequence[Hashable]]

#: The signature shared by every distance in the library.
DistanceFunction = Callable[[StringLike, StringLike], float]


def as_symbols(value: StringLike) -> Symbols:
    """Normalise *value* to something indexable with O(1) ``len``.

    Strings pass through untouched (they are already immutable symbol
    sequences); other sequences are converted to tuples so that downstream
    code can safely hash, slice and cache them.
    """
    if isinstance(value, str):
        return value
    if isinstance(value, tuple):
        return value
    if isinstance(value, Sequence):
        return tuple(value)
    raise TypeError(
        f"expected a string or a sequence of symbols, got {type(value).__name__}"
    )


def require_strings(x: StringLike, y: StringLike) -> Tuple[Symbols, Symbols]:
    """Normalise a pair of inputs, raising a uniform error for bad types."""
    return as_symbols(x), as_symbols(y)
