"""Harmonic numbers and partial harmonic sums.

The contextual edit distance charges ``1/max(|u|, |v|)`` per elementary
operation ``u -> v``.  Along a canonical internal path (insertions first,
then substitutions, then deletions -- Lemma 1 of the paper), the total cost
of the insertion and deletion phases is a *partial harmonic sum*:

* ``Ni`` insertions growing a string from length ``m`` cost
  ``1/(m+1) + ... + 1/(m+Ni) = H(m+Ni) - H(m)``;
* ``Nd`` deletions shrinking a string down to length ``n`` cost
  ``1/(n+Nd) + ... + 1/(n+1) = H(n+Nd) - H(n)``.

Evaluating the cost functional ``D(k, Ni)`` for every feasible ``k`` is the
inner loop of Algorithm 1, so partial sums must be O(1).  This module keeps a
process-wide growable prefix table of ``H(n)`` values.
"""

from __future__ import annotations

from typing import List

__all__ = ["harmonic", "harmonic_range", "HarmonicTable"]


class HarmonicTable:
    """Growable table of harmonic numbers ``H(0..n)`` with O(1) lookups.

    ``H(0) = 0`` and ``H(n) = 1 + 1/2 + ... + 1/n``.  The table extends
    itself on demand and never shrinks, so repeated distance computations
    amortise to a handful of float additions.
    """

    def __init__(self, initial_size: int = 256) -> None:
        self._values: List[float] = [0.0]
        self.grow(initial_size)

    def grow(self, n: int) -> None:
        """Ensure ``H(i)`` is tabulated for every ``i <= n``."""
        values = self._values
        for i in range(len(values), n + 1):
            values.append(values[-1] + 1.0 / i)

    def value(self, n: int) -> float:
        """Return ``H(n)``; raises ``ValueError`` for negative ``n``."""
        if n < 0:
            raise ValueError(f"harmonic number undefined for n={n}")
        if n >= len(self._values):
            self.grow(max(n, 2 * len(self._values)))
        return self._values[n]

    def partial(self, low: int, high: int) -> float:
        """Return ``1/(low+1) + ... + 1/high`` (i.e. ``H(high) - H(low)``).

        Returns 0.0 when ``high <= low``; raises for negative bounds.
        """
        if low < 0 or high < 0:
            raise ValueError(f"negative bounds: low={low}, high={high}")
        if high <= low:
            return 0.0
        return self.value(high) - self.value(low)


_TABLE = HarmonicTable()


def harmonic(n: int) -> float:
    """Return the harmonic number ``H(n) = sum_{i=1..n} 1/i`` (``H(0)=0``)."""
    return _TABLE.value(n)


def harmonic_range(low: int, high: int) -> float:
    """Return ``sum_{i=low+1..high} 1/i``, the cost of growing a string
    from length ``low`` to length ``high`` one insertion at a time (or the
    mirror-image deletion cost)."""
    return _TABLE.partial(low, high)
