"""Numpy anti-diagonal kernels for long strings.

The Wagner–Fischer recurrence has a left-neighbour dependency that defeats
row-wise vectorisation, but every dependency of a cell on anti-diagonal
``t = i + j`` lies on diagonals ``t-1`` and ``t-2``, so processing the
table diagonal-by-diagonal turns each step into a handful of slice
operations.  This pays off once strings are a few dozen symbols long (DNA
sequences and digit contours in the paper's datasets are hundreds of
symbols), while the pure-Python kernels in :mod:`.levenshtein` and
:mod:`.contextual` stay faster for short words.

Both kernels are cross-checked against their pure-Python twins by the
test-suite on randomised inputs.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import numpy as np

from .types import Symbols

__all__ = [
    "encode_pair",
    "jit_backend",
    "levenshtein_numpy",
    "contextual_heuristic_numpy",
    "parametric_alignment_numpy",
]

_NEG = -(1 << 30)

#: Cached reference to the optional compiled backend; "unresolved" until
#: the first kernel-threshold decision asks for it.
_JIT_BACKEND = "unresolved"


def jit_backend():
    """The active numba backend (:mod:`repro.batch.jit`) or None.

    When this returns a module, the scalar distance entry points treat
    their ``_NUMPY_THRESHOLD`` as zero: the compiled kernel replaces both
    the pure-Python and the numpy anti-diagonal paths at every length.
    Resolved lazily (and only once) so importing :mod:`repro.core` never
    pays for a numba probe.
    """
    global _JIT_BACKEND
    if _JIT_BACKEND == "unresolved":
        try:
            from ..batch import jit

            _JIT_BACKEND = jit if jit.active() else None
        except Exception:  # pragma: no cover - defensive import guard
            _JIT_BACKEND = None
    return _JIT_BACKEND


def encode_pair(x: Symbols, y: Symbols) -> Tuple[np.ndarray, np.ndarray]:
    """Map the symbols of *x* and *y* to small ints for vector comparison."""
    codes: Dict[Hashable, int] = {}
    out = []
    for s in (x, y):
        arr = np.empty(len(s), dtype=np.int64)
        for idx, symbol in enumerate(s):
            code = codes.get(symbol)
            if code is None:
                code = len(codes)
                codes[symbol] = code
            arr[idx] = code
        out.append(arr)
    return out[0], out[1]


def levenshtein_numpy(x: Symbols, y: Symbols) -> int:
    """Anti-diagonal Levenshtein distance; equivalent to the pure kernel."""
    cx, cy = encode_pair(x, y)
    m, n = len(cx), len(cy)
    if m == 0:
        return n
    if n == 0:
        return m
    size = m + 1
    inf = m + n + 1
    prev2 = np.full(size, inf, dtype=np.int64)  # diagonal t-2
    prev = np.full(size, inf, dtype=np.int64)  # diagonal t-1
    prev2[0] = 0  # cell (0, 0)
    prev[0] = 1  # cell (0, 1)
    if m >= 1:
        prev[1] = 1  # cell (1, 0)
    for t in range(2, m + n + 1):
        cur = np.full(size, inf, dtype=np.int64)
        lo = max(0, t - n)
        hi = min(m, t)
        if lo == 0:
            cur[0] = t  # cell (0, t): t insertions
        if hi == t:
            cur[t] = t  # cell (t, 0): t deletions
        a = max(1, lo)
        b = min(hi, t - 1)
        if a <= b:
            # interior cells i in [a, b], j = t - i in [1, n]
            xs = cx[a - 1 : b]  # x[i-1]
            ys = cy[t - b - 1 : t - a][::-1]  # y[j-1] = y[t-i-1]
            sub = prev2[a - 1 : b] + (xs != ys)
            dele = prev[a - 1 : b] + 1
            ins = prev[a : b + 1] + 1
            cur[a : b + 1] = np.minimum(np.minimum(sub, dele), ins)
        prev2, prev = prev, cur
    return int(prev[m])


def contextual_heuristic_numpy(x: Symbols, y: Symbols) -> Tuple[int, int]:
    """Anti-diagonal version of the contextual heuristic's twin tables.

    Returns ``(d_E(x, y), Ni)`` where ``Ni`` is the maximum number of
    insertions over minimum-cost internal edit paths -- the inputs of the
    heuristic's single :func:`~repro.core.contextual.canonical_cost`
    evaluation.
    """
    cx, cy = encode_pair(x, y)
    m, n = len(cx), len(cy)
    if m == 0:
        return n, n
    if n == 0:
        return m, 0
    size = m + 1
    inf = m + n + 1
    prev2_d = np.full(size, inf, dtype=np.int64)
    prev_d = np.full(size, inf, dtype=np.int64)
    prev2_ni = np.full(size, _NEG, dtype=np.int64)
    prev_ni = np.full(size, _NEG, dtype=np.int64)
    prev2_d[0] = 0
    prev2_ni[0] = 0  # ni[0][0] = 0
    prev_d[0] = 1
    prev_ni[0] = 1  # ni[0][1] = 1 (one insertion)
    prev_d[1] = 1
    prev_ni[1] = 0  # ni[1][0] = 0 (one deletion)
    for t in range(2, m + n + 1):
        cur_d = np.full(size, inf, dtype=np.int64)
        cur_ni = np.full(size, _NEG, dtype=np.int64)
        lo = max(0, t - n)
        hi = min(m, t)
        if lo == 0:
            cur_d[0] = t
            cur_ni[0] = t  # ni[0][t] = t insertions
        if hi == t:
            cur_d[t] = t
            cur_ni[t] = 0  # ni[t][0] = 0 insertions
        a = max(1, lo)
        b = min(hi, t - 1)
        if a <= b:
            xs = cx[a - 1 : b]
            ys = cy[t - b - 1 : t - a][::-1]
            diag = prev2_d[a - 1 : b] + (xs != ys)
            up = prev_d[a - 1 : b] + 1  # deletion of x[i-1]
            left = prev_d[a : b + 1] + 1  # insertion of y[j-1]
            d = np.minimum(np.minimum(diag, up), left)
            cur_d[a : b + 1] = d
            # max insertions over tight transitions only
            ni = np.where(diag == d, prev2_ni[a - 1 : b], _NEG)
            np.maximum(ni, np.where(up == d, prev_ni[a - 1 : b], _NEG), out=ni)
            np.maximum(
                ni, np.where(left == d, prev_ni[a : b + 1] + 1, _NEG), out=ni
            )
            cur_ni[a : b + 1] = ni
        prev2_d, prev_d = prev_d, cur_d
        prev2_ni, prev_ni = prev_ni, cur_ni
    return int(prev_d[m]), int(prev_ni[m])


def parametric_alignment_numpy(
    x: Symbols, y: Symbols, lam: float
) -> Tuple[float, int]:
    """Unit-cost parametric alignment: solve ``min_pi W(pi) - lam * L(pi)``.

    The inner step of the Dinkelbach solver for the Marzal–Vidal
    normalised distance (:mod:`.marzal_vidal`), vectorised over
    anti-diagonals.  Matches cost ``-lam``; paid operations ``1 - lam``.
    Returns ``(W, L)`` of the minimising path (W = paid operations).
    """
    cx, cy = encode_pair(x, y)
    m, n = len(cx), len(cy)
    if m == 0:
        return float(n), n
    if n == 0:
        return float(m), m
    size = m + 1
    inf = float("inf")
    paid = 1.0 - lam
    free = -lam
    # score / weight / length per diagonal
    prev2_s = np.full(size, inf)
    prev_s = np.full(size, inf)
    prev2_w = np.zeros(size)
    prev_w = np.zeros(size)
    prev2_l = np.zeros(size, dtype=np.int64)
    prev_l = np.zeros(size, dtype=np.int64)
    prev2_s[0] = 0.0
    prev_s[0] = paid  # cell (0,1): one insertion
    prev_w[0] = 1.0
    prev_l[0] = 1
    prev_s[1] = paid  # cell (1,0): one deletion
    prev_w[1] = 1.0
    prev_l[1] = 1
    for t in range(2, m + n + 1):
        cur_s = np.full(size, inf)
        cur_w = np.zeros(size)
        cur_l = np.zeros(size, dtype=np.int64)
        lo = max(0, t - n)
        hi = min(m, t)
        if lo == 0:
            cur_s[0] = t * paid
            cur_w[0] = float(t)
            cur_l[0] = t
        if hi == t:
            cur_s[t] = t * paid
            cur_w[t] = float(t)
            cur_l[t] = t
        a = max(1, lo)
        b = min(hi, t - 1)
        if a <= b:
            xs = cx[a - 1 : b]
            ys = cy[t - b - 1 : t - a][::-1]
            match = xs == ys
            diag_step_w = np.where(match, 0.0, 1.0)
            diag_step_s = np.where(match, free, paid)
            diag_s = prev2_s[a - 1 : b] + diag_step_s
            up_s = prev_s[a - 1 : b] + paid
            left_s = prev_s[a : b + 1] + paid
            best = np.minimum(np.minimum(diag_s, up_s), left_s)
            cur_s[a : b + 1] = best
            # carry (W, L) of whichever candidate achieved the best score
            w = np.where(
                left_s == best,
                prev_w[a : b + 1] + 1.0,
                np.where(
                    up_s == best,
                    prev_w[a - 1 : b] + 1.0,
                    prev2_w[a - 1 : b] + diag_step_w,
                ),
            )
            ln = np.where(
                left_s == best,
                prev_l[a : b + 1] + 1,
                np.where(
                    up_s == best, prev_l[a - 1 : b] + 1, prev2_l[a - 1 : b] + 1
                ),
            )
            cur_w[a : b + 1] = w
            cur_l[a : b + 1] = ln
        prev2_s, prev_s = prev_s, cur_s
        prev2_w, prev_w = prev_w, cur_w
        prev2_l, prev_l = prev_l, cur_l
    return float(prev_w[m]), int(prev_l[m])
