"""Metric-axiom checking (Definition 1 of the paper).

A distance ``d`` is a metric when ``d(x,y) = 0 <=> x = y``, it is
symmetric, and the triangle inequality ``d(x,y) + d(y,z) >= d(x,z)``
holds.  The paper's whole point is that ``d_C`` satisfies all three while
the naive ratio normalisations do not -- so the library ships a checker
that *finds witnesses*, used both by the test-suite (exhaustively over
small string universes, and by hypothesis sampling) and by
``examples/metric_properties.py``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .types import DistanceFunction, StringLike

__all__ = [
    "MetricReport",
    "check_metric",
    "all_strings",
]


@dataclass(frozen=True)
class MetricReport:
    """Outcome of checking the three metric axioms over a finite point set.

    Each violation list holds concrete witnesses; an empty report means no
    violation was found *on the points checked* (not a proof of metricity).
    """

    points_checked: int
    identity_violations: Tuple[Tuple[StringLike, StringLike], ...]
    symmetry_violations: Tuple[Tuple[StringLike, StringLike], ...]
    triangle_violations: Tuple[Tuple[StringLike, StringLike, StringLike], ...]

    @property
    def is_metric(self) -> bool:
        """True when no axiom was violated on the checked points."""
        return not (
            self.identity_violations
            or self.symmetry_violations
            or self.triangle_violations
        )

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.is_metric:
            return (
                f"no violation over {self.points_checked} points "
                "(consistent with being a metric)"
            )
        parts = []
        if self.identity_violations:
            parts.append(f"{len(self.identity_violations)} identity")
        if self.symmetry_violations:
            parts.append(f"{len(self.symmetry_violations)} symmetry")
        if self.triangle_violations:
            parts.append(f"{len(self.triangle_violations)} triangle")
        return "NOT a metric: " + ", ".join(parts) + " violation(s)"


def all_strings(alphabet: Sequence[str], max_length: int) -> List[str]:
    """Every string over *alphabet* of length 0..max_length (lexicographic).

    >>> all_strings("ab", 1)
    ['', 'a', 'b']
    """
    out: List[str] = []
    for length in range(max_length + 1):
        for combo in itertools.product(alphabet, repeat=length):
            out.append("".join(combo))
    return out


def check_metric(
    distance: DistanceFunction,
    points: Iterable[StringLike],
    tolerance: float = 1e-9,
    max_violations: int = 10,
    assume_symmetric: bool = False,
) -> MetricReport:
    """Check the metric axioms of *distance* over *points*.

    Complexity is cubic in the number of points (every ordered triple is
    tested for the triangle inequality), so keep the point set small --
    the intended use is exhaustive small-universe checks.

    Off-diagonal evaluations go through the pair-batched engine
    (:mod:`repro.batch`): each distinct pair is computed once, cached in
    the table, and never recomputed by the cubic triangle scan.  With
    ``assume_symmetric=True`` only the upper triangle (plus the diagonal)
    is evaluated -- ``C(n, 2) + n`` computations -- and mirrored; the
    symmetry probe is then skipped, since it could only confirm the
    assumption.  The default evaluates both orientations (still batched)
    so asymmetric impostors are caught.  Diagonal entries ``d(x, x)`` are
    always obtained by *calling the function* -- the engine's equal-pair
    shortcut would otherwise assume the very reflexivity axiom this
    checker exists to probe.
    """
    pts = list(points)
    n = len(pts)
    identity: List[Tuple[StringLike, StringLike]] = []
    symmetry: List[Tuple[StringLike, StringLike]] = []
    triangle: List[Tuple[StringLike, StringLike, StringLike]] = []

    from ..batch import pairwise_values

    table = np.zeros((n, n), dtype=float)
    if assume_symmetric:
        upper = [(pts[i], pts[j]) for i in range(n) for j in range(i + 1, n)]
        values = pairwise_values(distance, upper)
        pos = 0
        for i in range(n):
            row = values[pos : pos + n - i - 1]
            table[i, i + 1 :] = row
            table[i + 1 :, i] = row
            pos += n - i - 1
    else:
        ordered = [
            (pts[i], pts[j]) for i in range(n) for j in range(n) if i != j
        ]
        values = pairwise_values(distance, ordered)
        pos = 0
        for i in range(n):
            for j in range(n):
                if j != i:
                    table[i, j] = values[pos]
                    pos += 1
    for i in range(n):
        table[i, i] = distance(pts[i], pts[i])

    for i in range(n):
        if table[i][i] > tolerance and len(identity) < max_violations:
            identity.append((pts[i], pts[i]))
        for j in range(i + 1, n):
            same = pts[i] == pts[j]
            if not same and table[i][j] <= tolerance:
                if len(identity) < max_violations:
                    identity.append((pts[i], pts[j]))
            if not assume_symmetric and (
                abs(table[i][j] - table[j][i]) > tolerance
            ):
                if len(symmetry) < max_violations:
                    symmetry.append((pts[i], pts[j]))

    for i in range(n):
        for j in range(n):
            if j == i:
                continue
            dij = table[i][j]
            for k in range(n):
                if table[i][k] - (dij + table[j][k]) > tolerance:
                    if len(triangle) < max_violations:
                        triangle.append((pts[i], pts[j], pts[k]))
                    else:
                        break
    return MetricReport(
        points_checked=n,
        identity_violations=tuple(identity),
        symmetry_violations=tuple(symmetry),
        triangle_violations=tuple(triangle),
    )
