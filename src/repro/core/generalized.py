"""Generalised (weighted) edit distances and the contextual extension's
failure mode (the paper's "further works" remark).

A :class:`CostModel` assigns positive weights to deletions, insertions and
substitutions.  On top of it this module provides:

* :func:`generalized_edit_distance` -- weighted Wagner–Fischer;
* :func:`naive_contextual_generalized_internal` -- the *naive* extension of
  the contextual idea to weighted operations, computed the way Algorithm 1
  would (canonical internal paths only);
* :func:`naive_contextual_generalized_optimal` -- the true optimum over all
  rewriting paths (small-input Dijkstra);
* :func:`internal_failure_example` -- a constructive demonstration of the
  paper's closing remark: with weighted operations, the best path may
  insert *cheap dummy symbols* purely to lengthen the string so that the
  expensive substitutions are discounted, then erase them -- so internal
  paths (and hence Algorithm 1's strategy) no longer suffice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

from .types import StringLike, require_strings

__all__ = [
    "CostModel",
    "UNIT_COSTS",
    "generalized_edit_distance",
    "naive_contextual_generalized_internal",
    "naive_contextual_generalized_optimal",
    "padded_contextual_generalized",
    "internal_failure_example",
    "InternalFailure",
]


@dataclass(frozen=True)
class CostModel:
    """Weights for the three elementary operations.

    ``substitution``/``insertion``/``deletion`` are mappings applied per
    symbol (pair); missing entries fall back to the defaults.  Matching
    symbols always cost 0 regardless of the substitution table.
    """

    substitution: Dict[Tuple[Hashable, Hashable], float] = field(
        default_factory=dict
    )
    insertion: Dict[Hashable, float] = field(default_factory=dict)
    deletion: Dict[Hashable, float] = field(default_factory=dict)
    default_substitution: float = 1.0
    default_insertion: float = 1.0
    default_deletion: float = 1.0

    def substitute(self, a: Hashable, b: Hashable) -> float:
        """Cost of rewriting symbol *a* into *b* (0 when equal)."""
        if a == b:
            return 0.0
        cost = self.substitution.get((a, b))
        if cost is None:
            cost = self.substitution.get((b, a))
        return self.default_substitution if cost is None else cost

    def insert(self, b: Hashable) -> float:
        """Cost of inserting symbol *b*."""
        return self.insertion.get(b, self.default_insertion)

    def delete(self, a: Hashable) -> float:
        """Cost of deleting symbol *a*."""
        return self.deletion.get(a, self.default_deletion)


#: The unit model: every paid operation costs 1 (plain Levenshtein).
UNIT_COSTS = CostModel()


def generalized_edit_distance(
    x: StringLike, y: StringLike, costs: CostModel = UNIT_COSTS
) -> float:
    """Weighted edit distance (two-row Wagner–Fischer over *costs*)."""
    x, y = require_strings(x, y)
    m, n = len(x), len(y)
    prev = [0.0] * (n + 1)
    for j in range(1, n + 1):
        prev[j] = prev[j - 1] + costs.insert(y[j - 1])
    for i in range(1, m + 1):
        xi = x[i - 1]
        del_cost = costs.delete(xi)
        cur = [prev[0] + del_cost] + [0.0] * n
        for j in range(1, n + 1):
            yj = y[j - 1]
            best = prev[j - 1] + costs.substitute(xi, yj)
            up = prev[j] + del_cost
            if up < best:
                best = up
            left = cur[j - 1] + costs.insert(yj)
            if left < best:
                best = left
            cur[j] = best
        prev = cur
    return prev[n]


def _canonical_alignment_cost(
    m: int,
    n: int,
    insert_weights: Tuple[float, ...],
    delete_weights: Tuple[float, ...],
    substitution_total: float,
) -> float:
    """Cost of an internal path with the given operation multiset under the
    optimal temporal order.

    Lemma 1 generalises to weighted operations: since every operation
    ``u -> v`` costs ``w / max(|u|, |v|)`` and lengthening the string never
    hurts, the optimum performs all insertions first, substitutions at the
    peak length ``m + ni``, and deletions last.  Within the insertion
    (resp. deletion) phase the lengths ``m+1..m+ni`` (resp. ``n+nd..n+1``)
    are fixed, so by the rearrangement inequality the heaviest weights are
    paired with the longest strings.
    """
    ni, nd = len(insert_weights), len(delete_weights)
    peak = m + ni
    total = 0.0
    for rank, w in enumerate(sorted(insert_weights), start=1):
        total += w / (m + rank)
    if substitution_total:
        total += substitution_total / peak
    for rank, w in enumerate(sorted(delete_weights), start=1):
        total += w / (n + rank)
    return total


def naive_contextual_generalized_internal(
    x: StringLike, y: StringLike, costs: CostModel = UNIT_COSTS
) -> float:
    """Naive weighted contextual distance restricted to *internal* paths.

    Every operation ``u -> v`` costs ``w(op) / max(|u|, |v|)``.  Internal
    paths are exactly the alignments of ``x`` and ``y`` (Proposition 1),
    with the temporal order chosen optimally; we enumerate every alignment
    (grid path) recursively and evaluate its canonical-order cost.  For
    unit costs this equals ``d_C`` -- the test-suite cross-checks that --
    and for general costs it is the quantity an Algorithm-1-style method
    would compute.  :func:`internal_failure_example` shows it can
    *overestimate* the true optimum.  Exponential in the input lengths --
    analysis tool only.
    """
    x, y = require_strings(x, y)
    m, n = len(x), len(y)
    if x == y:
        return 0.0
    best = float("inf")
    inserts: list = []
    deletes: list = []

    def walk(i: int, j: int, substitution_total: float) -> None:
        nonlocal best
        if i == m and j == n:
            cost = _canonical_alignment_cost(
                m, n, tuple(inserts), tuple(deletes), substitution_total
            )
            if cost < best:
                best = cost
            return
        if i < m:
            deletes.append(costs.delete(x[i]))
            walk(i + 1, j, substitution_total)
            deletes.pop()
        if j < n:
            inserts.append(costs.insert(y[j]))
            walk(i, j + 1, substitution_total)
            inserts.pop()
        if i < m and j < n:
            walk(i + 1, j + 1, substitution_total + costs.substitute(x[i], y[j]))

    walk(0, 0, 0.0)
    return best


def naive_contextual_generalized_optimal(
    x: StringLike,
    y: StringLike,
    costs: CostModel = UNIT_COSTS,
    alphabet: Optional[Tuple[Hashable, ...]] = None,
    max_length: Optional[int] = None,
) -> float:
    """True optimum of the naive weighted contextual distance.

    Dijkstra over the full rewrite graph (strings up to ``max_length``,
    default ``|x| + |y|``), allowing *non-internal* moves such as inserting
    cheap dummy symbols.  Exponential state space -- small inputs only
    (this is an analysis/verification tool, not a production distance).
    """
    from .reference import dijkstra_rewrite

    def op_cost(length_before, kind, before, after):
        if kind == "insert":
            return costs.insert(after) / (length_before + 1)
        if kind == "delete":
            return costs.delete(before) / length_before
        return costs.substitute(before, after) / length_before

    return dijkstra_rewrite(
        x, y, op_cost, alphabet=alphabet, max_length=max_length
    )


def padded_contextual_generalized(
    x: StringLike,
    y: StringLike,
    costs: CostModel = UNIT_COSTS,
    max_padding: int = 8,
    dummy_alphabet: Optional[Tuple[Hashable, ...]] = None,
) -> float:
    """Weighted contextual distance over the *padded-internal* path family.

    A constructive answer to the paper's closing remark: since the
    weighted optimum may insert cheap dummy symbols to dilute expensive
    substitutions, extend the internal family with explicit padding --
    insert ``p`` copies of the cheapest dummy symbol first (lengths
    ``m+1 .. m+p``), run the canonical internal path on the lengthened
    strings, and delete the dummies last (lengths ``n+p .. n+1``).  The
    minimum over alignments and ``p <= max_padding`` is returned.

    Properties (all covered by tests):

    * never worse than :func:`naive_contextual_generalized_internal`
      (``p = 0`` reproduces it);
    * never better than the true optimum
      (:func:`naive_contextual_generalized_optimal`);
    * recovers the optimum on the paper's failure example;
    * for unit costs, padding never helps (Theorem 1), so it equals
      ``d_C`` exactly.

    Like the other ``*_generalized`` functions this enumerates alignments
    and is exponential -- an analysis tool for small strings, not a
    production distance.
    """
    if max_padding < 0:
        raise ValueError(f"max_padding must be >= 0, got {max_padding}")
    x, y = require_strings(x, y)
    m, n = len(x), len(y)
    if x == y:
        return 0.0
    if dummy_alphabet is None:
        symbols = set(x) | set(y)
        symbols.update(costs.insertion)
        symbols.update(costs.deletion)
        dummy_alphabet = tuple(symbols) if symbols else ("#",)
    dummy = min(dummy_alphabet, key=lambda s: costs.insert(s) + costs.delete(s))
    ins_w = costs.insert(dummy)
    del_w = costs.delete(dummy)

    best = float("inf")
    inserts: list = []
    deletes: list = []

    def walk(i: int, j: int, substitution_total: float, padding: int) -> None:
        nonlocal best
        if i == m and j == n:
            pad_in = sum(ins_w / (m + t) for t in range(1, padding + 1))
            pad_out = sum(del_w / (n + t) for t in range(1, padding + 1))
            cost = pad_in + pad_out + _canonical_alignment_cost(
                m + padding, n + padding,
                tuple(inserts), tuple(deletes), substitution_total,
            )
            if cost < best:
                best = cost
            return
        if i < m:
            deletes.append(costs.delete(x[i]))
            walk(i + 1, j, substitution_total, padding)
            deletes.pop()
        if j < n:
            inserts.append(costs.insert(y[j]))
            walk(i, j + 1, substitution_total, padding)
            inserts.pop()
        if i < m and j < n:
            walk(
                i + 1, j + 1,
                substitution_total + costs.substitute(x[i], y[j]),
                padding,
            )

    for padding in range(max_padding + 1):
        walk(0, 0, 0.0, padding)
    return best


@dataclass(frozen=True)
class InternalFailure:
    """A witness that internal paths are not optimal for weighted contexts."""

    x: str
    y: str
    costs: CostModel
    internal_cost: float
    optimal_cost: float

    @property
    def gap(self) -> float:
        """How much the internal-only strategy overpays."""
        return self.internal_cost - self.optimal_cost


def internal_failure_example() -> InternalFailure:
    """Reproduce the paper's conclusion remark with concrete numbers.

    Substituting ``a -> b`` costs 10; the dummy symbol ``c`` costs 0.1 to
    insert or delete.  Going from ``"a"`` to ``"b"`` the best *internal*
    path pays ``10`` (substitute in a length-1 string), whereas inserting
    three ``c``'s first dilutes the substitution to ``10/4`` and the
    clean-up deletions are nearly free -- a strictly cheaper non-internal
    path, so Lemma 1 / Algorithm 1 do not carry over to weighted costs.
    """
    costs = CostModel(
        substitution={("a", "b"): 10.0},
        insertion={"c": 0.1, "b": 10.0},
        deletion={"c": 0.1, "a": 10.0},
        default_substitution=10.0,
        default_insertion=10.0,
        default_deletion=10.0,
    )
    x, y = "a", "b"
    internal = naive_contextual_generalized_internal(x, y, costs)
    optimal = naive_contextual_generalized_optimal(
        x, y, costs, alphabet=("a", "b", "c"), max_length=4
    )
    return InternalFailure(
        x=x, y=y, costs=costs, internal_cost=internal, optimal_cost=optimal
    )
