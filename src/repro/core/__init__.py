"""Core string distances: the paper's contextual distance and every
comparator it is evaluated against.

Quick orientation:

* :func:`contextual_distance` / :func:`contextual_distance_heuristic` --
  the paper's contribution (Section 3) and its fast heuristic (Section 4.1);
* :func:`levenshtein_distance` -- plain ``d_E``;
* :func:`mv_normalized_distance` -- Marzal–Vidal ``d_MV``;
* :func:`yb_normalized_distance` -- Yujian–Bo ``d_YB``;
* :func:`max_normalized_distance` & friends -- the naive ratios of
  Section 2.2 (not metrics);
* :func:`get_distance` -- name-based registry used by the experiments.
"""

from .bounded import (
    BoundedDistanceFunction,
    bounded_contextual_heuristic,
    bounded_for,
    bounded_marzal_vidal,
    register_bounded,
)
from .contextual import (
    KPoint,
    canonical_cost,
    contextual_distance,
    contextual_distance_heuristic,
    contextual_edit_path,
    contextual_profile,
)
from .generalized import (
    CostModel,
    UNIT_COSTS,
    generalized_edit_distance,
    internal_failure_example,
    naive_contextual_generalized_internal,
    naive_contextual_generalized_optimal,
    padded_contextual_generalized,
)
from .harmonic import harmonic, harmonic_range
from .levenshtein import (
    alignment,
    edit_script,
    internal_path_length,
    levenshtein_bounded,
    levenshtein_distance,
    levenshtein_matrix,
    levenshtein_within,
)
from .marzal_vidal import mv_normalized_distance, mv_normalized_distance_fractional
from .metric import MetricReport, all_strings, check_metric
from .paths import (
    EditOp,
    EditPath,
    apply_ops,
    contextual_op_cost,
    path_contextual_weight,
    path_edit_weight,
    path_length,
)
from .ratios import (
    TRIANGLE_COUNTEREXAMPLES,
    max_normalized_distance,
    min_normalized_distance,
    sum_normalized_distance,
    triangle_defect,
)
from .registry import (
    PAPER_ALL,
    PAPER_NORMALISED,
    DistanceSpec,
    get_distance,
    get_spec,
    list_distances,
)
from .types import DistanceFunction, StringLike, as_symbols
from .yujian_bo import yb_generalized_distance, yb_normalized_distance

__all__ = [
    # contextual
    "contextual_distance",
    "contextual_distance_heuristic",
    "contextual_edit_path",
    "contextual_profile",
    "canonical_cost",
    "KPoint",
    # levenshtein
    "levenshtein_distance",
    "levenshtein_within",
    "levenshtein_bounded",
    "levenshtein_matrix",
    "edit_script",
    "alignment",
    "internal_path_length",
    # other normalisations
    "mv_normalized_distance",
    "mv_normalized_distance_fractional",
    "yb_normalized_distance",
    "yb_generalized_distance",
    "max_normalized_distance",
    "min_normalized_distance",
    "sum_normalized_distance",
    "TRIANGLE_COUNTEREXAMPLES",
    "triangle_defect",
    # generalized
    "CostModel",
    "UNIT_COSTS",
    "generalized_edit_distance",
    "naive_contextual_generalized_internal",
    "naive_contextual_generalized_optimal",
    "padded_contextual_generalized",
    "internal_failure_example",
    # paths
    "EditOp",
    "EditPath",
    "apply_ops",
    "contextual_op_cost",
    "path_contextual_weight",
    "path_edit_weight",
    "path_length",
    # harmonic
    "harmonic",
    "harmonic_range",
    # bounded (early-exit) twins
    "BoundedDistanceFunction",
    "bounded_contextual_heuristic",
    "bounded_marzal_vidal",
    "bounded_for",
    "register_bounded",
    # metric checking
    "MetricReport",
    "check_metric",
    "all_strings",
    # registry
    "DistanceSpec",
    "get_distance",
    "get_spec",
    "list_distances",
    "PAPER_ALL",
    "PAPER_NORMALISED",
    # types
    "DistanceFunction",
    "StringLike",
    "as_symbols",
]
