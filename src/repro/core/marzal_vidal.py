"""Marzal–Vidal normalised edit distance ``d_MV`` [Marzal & Vidal 1993].

``d_MV(x, y) = min over editing paths pi of  W(pi) / L(pi)``

where ``W`` is the path's edit weight and ``L`` its *length* -- the number
of elementary operations including zero-cost matches (the paper's
``l_E(pi)``).  Note the minimum is over *paths*, not ``min W / min L``:
a longer, slightly-more-expensive path can win the ratio, which is exactly
why the computation needs a dedicated DP.

Two solvers are provided:

* :func:`mv_normalized_distance` -- the exact cubic DP of the original
  paper: tabulate ``W[i][j][L]`` (minimum weight over paths of length
  exactly ``L``) and minimise ``W[m][n][L] / L`` over ``L``; the ``L`` axis
  is numpy-vectorised.
* :func:`mv_normalized_distance_fractional` -- Dinkelbach-style fractional
  programming: repeatedly solve the *parametric* problem
  ``min_pi W(pi) - lam * L(pi)`` (a plain quadratic DP) and update ``lam``
  to the achieved ratio; converges in a handful of iterations.

With unit costs ``d_MV`` takes values in ``[0, 1]``.  Marzal and Vidal
proved it is *not* a metric for general cost matrices; whether the
unit-cost case is a metric is open (Section 2.2 of the reproduced paper);
the test-suite probes the triangle inequality by sampling.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .generalized import CostModel, UNIT_COSTS
from .types import StringLike, require_strings

__all__ = [
    "mv_normalized_distance",
    "mv_normalized_distance_fractional",
]

_INF = float("inf")


def _weight_by_length_final(
    x: StringLike, y: StringLike, costs: CostModel
) -> np.ndarray:
    """Return ``W[m][n][:]``: minimal path weight for each exact length L."""
    m, n = len(x), len(y)
    ll = m + n + 1  # L ranges over 0..m+n
    prev = np.full((n + 1, ll), _INF)
    for j in range(n + 1):  # from the empty prefix: j insertions
        prev[j, j] = sum(costs.insert(y[t]) for t in range(j))

    def shifted(vec: np.ndarray) -> np.ndarray:
        out = np.empty_like(vec)
        out[0] = _INF
        out[1:] = vec[:-1]
        return out

    cur = np.empty_like(prev)
    for i in range(1, m + 1):
        xi = x[i - 1]
        del_cost = costs.delete(xi)
        cur[0, :] = _INF
        cur[0, i] = prev[0, i - 1] + del_cost  # i deletions, length i
        for j in range(1, n + 1):
            yj = y[j - 1]
            diag = shifted(prev[j - 1]) + costs.substitute(xi, yj)
            best = np.minimum(diag, shifted(prev[j]) + del_cost)
            np.minimum(best, shifted(cur[j - 1]) + costs.insert(yj), out=best)
            cur[j] = best
        prev, cur = cur, prev
    return prev[n]


#: Above this (len(x)+len(y)) threshold solver="auto" switches from the
#: cubic DP to the (equally exact, much faster) Dinkelbach iteration.
_FRACTIONAL_THRESHOLD = 80


def mv_normalized_distance(
    x: StringLike,
    y: StringLike,
    costs: CostModel = UNIT_COSTS,
    solver: str = "auto",
) -> float:
    """Exact ``d_MV(x, y)``.

    ``solver`` selects the algorithm: ``"dp"`` is the original cubic
    weight-by-length DP, ``"fractional"`` the Dinkelbach iteration (exact
    as well -- the test-suite cross-checks them on thousands of pairs), and
    ``"auto"`` (default) uses Dinkelbach, which is strictly faster at every
    length while returning the same value.

    >>> mv_normalized_distance("abaa", "aab")  # d_E = 2 over a 4-column path
    0.5
    """
    x, y = require_strings(x, y)
    m, n = len(x), len(y)
    if m == 0 and n == 0:
        return 0.0
    if solver == "auto":
        solver = "fractional"
    if solver == "fractional":
        return mv_normalized_distance_fractional(x, y, costs)
    if solver != "dp":
        raise ValueError(f"unknown solver {solver!r}; use auto, dp or fractional")
    final = _weight_by_length_final(x, y, costs)
    lengths = np.arange(m + n + 1, dtype=float)
    lengths[0] = np.nan  # L = 0 is only feasible for two empty strings
    with np.errstate(invalid="ignore"):
        ratios = final / lengths
    best = np.nanmin(ratios[1:]) if m + n >= 1 else 0.0
    return float(best)


def _parametric_best_path(
    x: StringLike, y: StringLike, lam: float, costs: CostModel
) -> Tuple[float, int]:
    """Solve ``min_pi W(pi) - lam * L(pi)``; return (W, L) of the argmin.

    A standard quadratic alignment DP where every operation's cost is
    shifted by ``-lam`` (matches cost ``-lam``); ``(W, L)`` of the winning
    path are carried through the table.
    """
    m, n = len(x), len(y)
    # Each cell holds (score, weight, length); score = weight - lam * length.
    prev = [(0.0, 0.0, 0)] * (n + 1)
    acc_w = 0.0
    for j in range(1, n + 1):
        acc_w += costs.insert(y[j - 1])
        prev[j] = (acc_w - lam * j, acc_w, j)
    for i in range(1, m + 1):
        xi = x[i - 1]
        del_cost = costs.delete(xi)
        first_w = prev[0][1] + del_cost
        cur = [(first_w - lam * i, first_w, i)] + [(0.0, 0.0, 0)] * n
        for j in range(1, n + 1):
            yj = y[j - 1]
            sub_cost = costs.substitute(xi, yj)
            s_diag, w_diag, l_diag = prev[j - 1]
            cand = (s_diag + sub_cost - lam, w_diag + sub_cost, l_diag + 1)
            s_up, w_up, l_up = prev[j]
            up = (s_up + del_cost - lam, w_up + del_cost, l_up + 1)
            if up[0] < cand[0]:
                cand = up
            s_left, w_left, l_left = cur[j - 1]
            ins_cost = costs.insert(yj)
            left = (s_left + ins_cost - lam, w_left + ins_cost, l_left + 1)
            if left[0] < cand[0]:
                cand = left
            cur[j] = cand
        prev = cur
    _, weight, length = prev[n]
    return weight, length


def mv_normalized_distance_fractional(
    x: StringLike,
    y: StringLike,
    costs: CostModel = UNIT_COSTS,
    max_iterations: int = 64,
    tolerance: float = 1e-12,
) -> float:
    """``d_MV`` via Dinkelbach fractional programming.

    Starts from ``lam = 0`` and repeats ``lam <- W(pi*) / L(pi*)`` where
    ``pi*`` minimises the parametric score; the sequence of ratios is
    non-increasing and reaches the optimum in finitely many steps.  Agrees
    with :func:`mv_normalized_distance` (the tests verify this) while doing
    only a few quadratic passes.
    """
    x, y = require_strings(x, y)
    if len(x) == 0 and len(y) == 0:
        return 0.0
    if costs is UNIT_COSTS:
        from ._kernels import jit_backend

        jit = jit_backend()
        if jit is not None:
            # compiled Dinkelbach: one encode, all parametric passes and
            # the ratio iteration inside the kernel (every length -- a
            # compiled kernel has no per-call dispatch crossover)
            return jit.mv_distance(x, y, max_iterations, tolerance)
    use_numpy = costs is UNIT_COSTS and len(x) + len(y) >= _FRACTIONAL_THRESHOLD
    if use_numpy:
        from ._kernels import parametric_alignment_numpy

    lam = 0.0
    for _ in range(max_iterations):
        if use_numpy:
            weight, length = parametric_alignment_numpy(x, y, lam)
        else:
            weight, length = _parametric_best_path(x, y, lam, costs)
        if length == 0:  # pragma: no cover - both strings empty, handled above
            return 0.0
        ratio = weight / length
        if abs(ratio - lam) <= tolerance:
            return ratio
        lam = ratio
    return lam  # pragma: no cover - Dinkelbach converges well before this
