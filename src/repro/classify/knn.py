"""Nearest-neighbour classification over any search index (Section 4.4).

"When a new unlabelled test sample is used as a query, this object is
classified with the same label as its nearest neighbour in the training
set."  The classifier is parametric in the index factory, so the same code
runs Table 2's LAESA column and its exhaustive-search column.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..index.base import NearestNeighborIndex, SearchStats
from ..index.exhaustive import ExhaustiveIndex

__all__ = ["NearestNeighborClassifier", "ClassificationStats"]

IndexFactory = Callable[[Sequence[Any], Callable[[Any, Any], float]], NearestNeighborIndex]


@dataclass(frozen=True)
class ClassificationStats:
    """Aggregate cost of classifying a batch of queries."""

    n_queries: int
    errors: int
    distance_computations: int
    elapsed_seconds: float

    @property
    def error_rate(self) -> float:
        """Fraction of misclassified queries (the paper's Table 2 metric,
        there expressed as a percentage)."""
        return self.errors / self.n_queries if self.n_queries else 0.0

    @property
    def computations_per_query(self) -> float:
        return (
            self.distance_computations / self.n_queries if self.n_queries else 0.0
        )

    @property
    def seconds_per_query(self) -> float:
        return self.elapsed_seconds / self.n_queries if self.n_queries else 0.0


class NearestNeighborClassifier:
    """k-NN classifier (k=1 by default, as in the paper).

    Parameters
    ----------
    distance:
        Any distance function over the item type.
    index_factory:
        Builds the search structure from ``(items, distance)``; defaults to
        exhaustive scan.  Pass e.g.
        ``lambda items, d: LaesaIndex(items, d, n_pivots=40)`` for LAESA.
    k:
        Number of neighbours voting (majority, ties broken by the nearest
        of the tied classes).
    """

    def __init__(
        self,
        distance: Callable[[Any, Any], float],
        index_factory: Optional[IndexFactory] = None,
        k: int = 1,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.distance = distance
        self.index_factory = index_factory or ExhaustiveIndex
        self.k = k
        self._index: Optional[NearestNeighborIndex] = None
        self._labels: Optional[List[Any]] = None

    def fit(
        self, items: Sequence[Any], labels: Sequence[Any]
    ) -> "NearestNeighborClassifier":
        """Index the training items; labels align by position."""
        if len(items) != len(labels):
            raise ValueError(
                f"{len(items)} items but {len(labels)} labels"
            )
        if len(items) < self.k:
            raise ValueError(
                f"k={self.k} larger than training set of {len(items)}"
            )
        self._index = self.index_factory(items, self.distance)
        self._labels = list(labels)
        return self

    def _require_fitted(self) -> NearestNeighborIndex:
        if self._index is None or self._labels is None:
            raise RuntimeError("classifier used before fit()")
        return self._index

    def _vote(self, results) -> Any:
        """Label for one distance-sorted result list (majority, nearest
        tied class wins)."""
        if self.k == 1:
            return self._labels[results[0].index]
        votes = Counter(self._labels[r.index] for r in results)
        top = max(votes.values())
        tied = {label for label, count in votes.items() if count == top}
        for r in results:  # results are distance-sorted: nearest tied wins
            if self._labels[r.index] in tied:
                return self._labels[r.index]
        raise AssertionError("unreachable: tie set comes from results")

    def predict_one(self, item: Any) -> Tuple[Any, SearchStats]:
        """Classify one item; returns ``(label, per-query SearchStats)``."""
        index = self._require_fitted()
        results, stats = index.knn(item, self.k)
        return self._vote(results), stats

    def predict_batch(
        self, items: Sequence[Any]
    ) -> List[Tuple[Any, SearchStats]]:
        """Classify a whole batch through the index's ``bulk_knn`` path.

        For exhaustive indexes the entire ``queries x items`` pair grid
        runs through the pair-batched distance engine in one sweep; LAESA
        and AESA indexes batch their pivot phase the same way and feed
        the per-query elimination loops from the precomputed cache.  The
        returned labels and per-query stats match ``predict_one`` item by
        item (including ``distance_computations``).
        """
        index = self._require_fitted()
        return [
            (self._vote(results), stats)
            for results, stats in index.bulk_knn(items, self.k)
        ]

    def evaluate(
        self, items: Sequence[Any], labels: Sequence[Any]
    ) -> ClassificationStats:
        """Classify every item and aggregate error rate and search cost.

        Queries go through the index's :meth:`bulk_knn`, so exhaustive
        scans push the whole query batch through the pair-batched engine
        in one sweep, and LAESA/AESA batch their query-to-pivot phase the
        same way before running the per-query elimination loops.
        """
        if len(items) != len(labels):
            raise ValueError(f"{len(items)} items but {len(labels)} labels")
        errors = 0
        computations = 0
        elapsed = 0.0
        for (predicted, stats), truth in zip(self.predict_batch(items), labels):
            if predicted != truth:
                errors += 1
            computations += stats.distance_computations
            elapsed += stats.elapsed_seconds
        return ClassificationStats(
            n_queries=len(items),
            errors=errors,
            distance_computations=computations,
            elapsed_seconds=elapsed,
        )
