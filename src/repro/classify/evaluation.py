"""The paper's repeated-trial evaluation protocol (Section 4.4).

"All the experiments were repeated with ten different prototype sets (...)
and 1000 different samples.  Therefore, results were obtained as an
average over 10000 experiments."  :func:`repeated_classification` runs
that protocol: for each trial a fresh stratified prototype (training) set
is drawn, the remaining labelled data provides the queries, and error
rates are averaged with their deviation.

Each trial's query batch is classified through the index's
``bulk_knn`` entry point: the exhaustive-search column of Table 2 runs
one pair-batched engine sweep per trial (``n_test x n_train`` distances
stacked into anti-diagonal kernels) instead of a million scalar DP calls,
and the LAESA column batches its ``n_test x n_pivots`` phase the same way
before the per-query elimination loops run.  Both sweeps auto-shard over
a process pool when the machine and batch size justify it; the reported
distance-computation counts are unchanged by design.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..datasets.base import Dataset
from .knn import IndexFactory, NearestNeighborClassifier

__all__ = ["TrialSummary", "repeated_classification", "confusion_matrix"]


@dataclass(frozen=True)
class TrialSummary:
    """Mean and deviation of per-trial error rates, plus search costs."""

    n_trials: int
    error_rates: Tuple[float, ...]
    mean_computations_per_query: float
    mean_seconds_per_query: float

    @property
    def mean_error_rate(self) -> float:
        return sum(self.error_rates) / len(self.error_rates)

    @property
    def error_rate_deviation(self) -> float:
        """Sample standard deviation across trials (0 for one trial)."""
        if len(self.error_rates) < 2:
            return 0.0
        mean = self.mean_error_rate
        var = sum((e - mean) ** 2 for e in self.error_rates) / (
            len(self.error_rates) - 1
        )
        return math.sqrt(var)

    def summary(self) -> str:
        return (
            f"error {100.0 * self.mean_error_rate:.2f}% "
            f"± {100.0 * self.error_rate_deviation:.2f} "
            f"({self.n_trials} trials, "
            f"{self.mean_computations_per_query:.1f} comps/query)"
        )


def repeated_classification(
    data: Dataset,
    distance: Callable[[Any, Any], float],
    index_factory: Optional[IndexFactory] = None,
    per_class: int = 100,
    n_test: int = 1000,
    n_trials: int = 10,
    seed: int = 0xC1A55,
    k: int = 1,
) -> TrialSummary:
    """Run *n_trials* independent prototype-set/query-set splits.

    Each trial stratifies *per_class* training items per class; *n_test*
    queries are sampled from the held-out remainder.  Deterministic in
    *seed*.
    """
    if data.labels is None:
        raise ValueError("repeated_classification requires a labelled dataset")
    rng = random.Random(seed)
    error_rates: List[float] = []
    total_comps = 0
    total_time = 0.0
    total_queries = 0
    for _ in range(n_trials):
        train, rest = data.stratified_split(per_class, rng)
        n_queries = min(n_test, len(rest))
        if n_queries == 0:
            raise ValueError(
                "no held-out items left for queries; lower per_class"
            )
        picks = rng.sample(range(len(rest)), n_queries)
        queries = [rest.items[i] for i in picks]
        truths = [rest.labels[i] for i in picks]
        classifier = NearestNeighborClassifier(
            distance, index_factory=index_factory, k=k
        ).fit(train.items, train.labels)
        stats = classifier.evaluate(queries, truths)
        error_rates.append(stats.error_rate)
        total_comps += stats.distance_computations
        total_time += stats.elapsed_seconds
        total_queries += stats.n_queries
    return TrialSummary(
        n_trials=n_trials,
        error_rates=tuple(error_rates),
        mean_computations_per_query=total_comps / total_queries,
        mean_seconds_per_query=total_time / total_queries,
    )


def confusion_matrix(
    classifier: NearestNeighborClassifier,
    items: Sequence[Any],
    labels: Sequence[Any],
) -> Dict[Tuple[Any, Any], int]:
    """``(true_label, predicted_label) -> count`` over the given queries.

    Queries run through
    :meth:`~repro.classify.knn.NearestNeighborClassifier.predict_batch`,
    so exhaustive indexes classify the whole batch in one pair-batched
    engine sweep.
    """
    matrix: Dict[Tuple[Any, Any], int] = {}
    for (predicted, _), truth in zip(
        classifier.predict_batch(items), labels
    ):
        key = (truth, predicted)
        matrix[key] = matrix.get(key, 0) + 1
    return matrix
