"""1-NN classification with the paper's repeated-trial protocol."""

from .evaluation import TrialSummary, confusion_matrix, repeated_classification
from .knn import ClassificationStats, NearestNeighborClassifier

__all__ = [
    "NearestNeighborClassifier",
    "ClassificationStats",
    "repeated_classification",
    "confusion_matrix",
    "TrialSummary",
]
