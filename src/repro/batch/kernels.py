"""Pair-batched anti-diagonal kernels.

The kernels in :mod:`repro.core._kernels` vectorise the Wagner–Fischer
recurrence *within* one pair of strings by walking the DP table
anti-diagonal by anti-diagonal.  This module lifts the same recurrences to
a whole *batch* of pairs at once: the per-pair diagonal vectors are stacked
into a ``(P, size)`` matrix and every diagonal step becomes a handful of
2-D slice operations shared by all ``P`` pairs.

Correctness with padding
------------------------
Pairs in a batch are padded to the longest ``(|x|, |y|)`` of the batch
with sentinel symbols that never compare equal (``-1`` for ``x``, ``-2``
for ``y``).  A Wagner–Fischer cell ``(i, j)`` depends only on the prefixes
``x[:i]`` and ``y[:j]``, so the sub-table ``i <= |x_p|, j <= |y_p|`` of
the padded table is *exactly* the table of the real pair -- the padded
cells beyond it are computed but never read.  Each pair's answer lives on
anti-diagonal ``t = |x_p| + |y_p|`` and is harvested when the sweep passes
it.

Encoded inputs
--------------
Every batch kernel has an ``*_encoded`` twin taking pre-encoded
``(X, Y, mx, my)`` matrices directly -- the interned-corpus runtime
(:mod:`repro.batch.corpus`) gathers those out of a database encoded once
at index-build time, so repeated bulk queries skip ``encode_batch``
entirely.  The pair-list entry points are thin ``encode_batch`` +
``*_encoded`` compositions.

Length bucketing (so that short pairs do not pay for the padding of long
ones) lives in :mod:`repro.batch.engine`; these kernels assume the caller
already grouped pairs of broadly similar length.

Both kernels are cross-checked against their scalar twins by the
test-suite on randomised inputs, including empty strings and duplicates.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from ..core._kernels import jit_backend as _jit_backend
from ..core.types import Symbols
from ..tools import knobs

#: Encoded kernel-input aliases (the ``(X, Y, mx, my)`` contract of
#: :func:`encode_batch` / :meth:`~repro.batch.corpus.PairStore.gather`):
#: ``IntMatrix`` holds padded per-pair symbol codes, ``IntVector`` the
#: true lengths (or integer budgets), ``FloatVector`` per-pair reals.
IntMatrix = npt.NDArray[np.integer]
IntVector = npt.NDArray[np.integer]
FloatVector = npt.NDArray[np.floating]
BoolVector = npt.NDArray[np.bool_]

__all__ = [
    "encode_batch",
    "levenshtein_batch",
    "levenshtein_batch_encoded",
    "levenshtein_batch_numpy",
    "levenshtein_batch_bounded",
    "levenshtein_batch_bounded_encoded",
    "levenshtein_batch_bounded_numpy",
    "contextual_heuristic_batch",
    "contextual_heuristic_batch_encoded",
    "contextual_heuristic_batch_numpy",
    "contextual_heuristic_batch_bounded",
    "contextual_heuristic_batch_bounded_encoded",
    "contextual_heuristic_batch_bounded_numpy",
    "mv_banded_probe_batch",
    "mv_banded_probe_batch_encoded",
    "mv_banded_probe_batch_encoded_numpy",
]

_NEG = -(1 << 30)

#: Padding sentinels; negative so they never collide with real codes and
#: distinct from each other so padded x never matches padded y.
_PAD_X = -1
_PAD_Y = -2

#: Default retirement-sampling cadence for the banded bounded sweeps:
#: per-pair window minima (the retirement test) are computed every this
#: many diagonals instead of every diagonal.  Retirement is purely an
#: optimisation -- a pair that retires a few diagonals later produces the
#: identical ``(value, exact)`` output -- so any cadence is bit-identical
#: to cadence 1 (asserted by the tests); sampling just shaves the two
#: window reductions per diagonal on buckets that rarely retire.
_RETIRE_CADENCE = 4


def _retire_cadence() -> int:
    """The retirement sampling cadence, honouring ``REPRO_RETIRE_CADENCE``
    (read per call; values < 1 clamp to 1 == check every diagonal)."""
    value = knobs.get_int("REPRO_RETIRE_CADENCE", minimum=1)
    if value is not None:
        return value
    return _RETIRE_CADENCE


def _encode_one(seq: Symbols, codes: Dict[Hashable, int]) -> np.ndarray:
    """Encode one symbol sequence with the shared code dictionary."""
    if isinstance(seq, str):
        # Code points preserve equality and need no dictionary.  Codes only
        # have to be consistent *within* a pair (rows never compare across
        # pairs), so code points and dictionary codes may coexist in one
        # batch as long as both sides of a pair use the same scheme.
        return np.frombuffer(seq.encode("utf-32-le"), dtype=np.uint32).astype(
            np.int64
        )
    arr = np.empty(len(seq), dtype=np.int64)
    for idx, symbol in enumerate(seq):
        code = codes.get(symbol)
        if code is None:
            code = len(codes)
            codes[symbol] = code
        arr[idx] = code
    return arr


def encode_batch(
    pairs: Sequence[Tuple[Symbols, Symbols]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Encode and pad *pairs* into ``(X, Y, mx, my)``.

    ``X`` is ``(P, M)`` with ``M = max |x_p|`` (padded with ``_PAD_X``),
    ``Y`` likewise with ``_PAD_Y``; ``mx``/``my`` hold the true lengths.
    Symbols are mapped to integers that preserve equality *within each
    pair*: pure-``str`` pairs use raw code points, anything else goes
    through one shared code dictionary.  Mixed pairs (``str`` vs tuple)
    use the dictionary for both sides so cross-representation equality
    (``"ab"`` vs ``("a", "b")``) survives encoding.
    """
    P = len(pairs)
    codes: Dict[Hashable, int] = {}
    xs_enc: List[np.ndarray] = []
    ys_enc: List[np.ndarray] = []
    for x, y in pairs:
        if isinstance(x, str) and isinstance(y, str):
            xs_enc.append(_encode_one(x, codes))
            ys_enc.append(_encode_one(y, codes))
        else:
            xs_enc.append(_encode_one(tuple(x), codes))
            ys_enc.append(_encode_one(tuple(y), codes))
    mx = np.fromiter((len(a) for a in xs_enc), dtype=np.int64, count=P)
    my = np.fromiter((len(a) for a in ys_enc), dtype=np.int64, count=P)
    M = int(mx.max()) if P else 0
    N = int(my.max()) if P else 0
    X = np.full((P, M), _PAD_X, dtype=np.int64)
    Y = np.full((P, N), _PAD_Y, dtype=np.int64)
    for p in range(P):
        X[p, : mx[p]] = xs_enc[p]
        Y[p, : my[p]] = ys_enc[p]
    return X, Y, mx, my


# ---------------------------------------------------------------------------
# backend dispatchers
# ---------------------------------------------------------------------------


def levenshtein_batch(pairs: Sequence[Tuple[Symbols, Symbols]]) -> np.ndarray:
    """Levenshtein distance of every pair (backend-dispatched).

    Routes to the compiled kernels of :mod:`repro.batch.jit` when numba
    is available, and to :func:`levenshtein_batch_numpy` otherwise; the
    two backends return identical ``int64`` values (same integer DP).
    """
    jit = _jit_backend()
    if jit is not None:
        return jit.levenshtein_batch(pairs)
    return levenshtein_batch_numpy(pairs)


def levenshtein_batch_encoded(
    X: IntMatrix, Y: IntMatrix, mx: IntVector, my: IntVector
) -> np.ndarray:
    """:func:`levenshtein_batch` over pre-encoded matrices."""
    jit = _jit_backend()
    if jit is not None:
        return jit.levenshtein_batch_encoded(X, Y, mx, my)
    return _levenshtein_swept(X, Y, mx, my)


def contextual_heuristic_batch(
    pairs: Sequence[Tuple[Symbols, Symbols]],
) -> Tuple[np.ndarray, np.ndarray]:
    """``(d_E, Ni)`` twin tables of every pair (backend-dispatched).

    Same dispatch rule as :func:`levenshtein_batch`; both backends
    compute the identical integer twin-table recurrence.
    """
    jit = _jit_backend()
    if jit is not None:
        return jit.contextual_heuristic_batch(pairs)
    return contextual_heuristic_batch_numpy(pairs)


def contextual_heuristic_batch_encoded(
    X: IntMatrix, Y: IntMatrix, mx: IntVector, my: IntVector
) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`contextual_heuristic_batch` over pre-encoded matrices."""
    jit = _jit_backend()
    if jit is not None:
        return jit.contextual_heuristic_batch_encoded(X, Y, mx, my)
    return _contextual_swept(X, Y, mx, my)


def levenshtein_batch_bounded(
    pairs: Sequence[Tuple[Symbols, Symbols]], bounds: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Banded bounded ``d_E`` of every pair (backend-dispatched).

    ``bounds[p]`` is pair ``p``'s edit budget.  Returns ``(values,
    exact)``: ``exact[p]`` is True iff the true distance is at most the
    budget, in which case ``values[p]`` is that exact distance; pruned
    pairs hold ``bounds[p] + 1`` (any value above the budget would do --
    callers replay their own closed-form pruned values).  The two
    backends agree bit for bit: exactness below the budget is a property
    of Ukkonen's band, not of the sweep order.
    """
    jit = _jit_backend()
    if jit is not None:
        return jit.levenshtein_batch_bounded(pairs, bounds)
    return levenshtein_batch_bounded_numpy(pairs, bounds)


def levenshtein_batch_bounded_encoded(
    X: IntMatrix,
    Y: IntMatrix,
    mx: IntVector,
    my: IntVector,
    bounds: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`levenshtein_batch_bounded` over pre-encoded matrices."""
    jit = _jit_backend()
    if jit is not None:
        return jit.levenshtein_batch_bounded_encoded(X, Y, mx, my, bounds)
    return _levenshtein_swept_bounded(X, Y, mx, my, bounds)


def contextual_heuristic_batch_bounded(
    pairs: Sequence[Tuple[Symbols, Symbols]], bounds: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Banded bounded twin tables of every pair (backend-dispatched).

    Returns ``(d_e, ni, exact)`` with the same contract as
    :func:`levenshtein_batch_bounded`: exact ``(d_E, Ni)`` whenever
    ``d_E <= bounds[p]``, a pruned sentinel (``bounds[p] + 1``, ``0``)
    otherwise.
    """
    jit = _jit_backend()
    if jit is not None:
        return jit.contextual_heuristic_batch_bounded(pairs, bounds)
    return contextual_heuristic_batch_bounded_numpy(pairs, bounds)


def contextual_heuristic_batch_bounded_encoded(
    X: IntMatrix,
    Y: IntMatrix,
    mx: IntVector,
    my: IntVector,
    bounds: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`contextual_heuristic_batch_bounded` over pre-encoded
    matrices."""
    jit = _jit_backend()
    if jit is not None:
        return jit.contextual_heuristic_batch_bounded_encoded(
            X, Y, mx, my, bounds
        )
    return _contextual_swept_bounded(X, Y, mx, my, bounds)


def mv_banded_probe_batch(
    pairs: Sequence[Tuple[Symbols, Symbols]],
    lams: Sequence[float],
    bands: Sequence[int],
) -> np.ndarray:
    """Banded parametric probe scores of every pair (backend-dispatched).

    ``scores[p]`` is the minimum of ``W(pi) - lams[p] * L(pi)`` over
    alignment paths of pair ``p`` staying inside the band
    ``|i - j| <= bands[p]`` -- bit-identical, per pair, to the scalar
    probe ``repro.core.bounded._banded_parametric`` (and to its compiled
    twin on the numba backend).  ``+inf`` when the band excludes the
    final cell (``|len(x)-len(y)| > bands[p]``), exactly like the scalar
    probe.  This is the decision kernel of the batched bounded ``d_MV``
    path: a strictly positive score proves ``d_MV > lam``.
    """
    X, Y, mx, my = encode_batch(pairs)
    return mv_banded_probe_batch_encoded(X, Y, mx, my, lams, bands)


def mv_banded_probe_batch_encoded(
    X: IntMatrix,
    Y: IntMatrix,
    mx: IntVector,
    my: IntVector,
    lams: Sequence[float],
    bands: Sequence[int],
) -> np.ndarray:
    """:func:`mv_banded_probe_batch` over pre-encoded matrices."""
    jit = _jit_backend()
    if jit is not None:
        return jit.mv_banded_probe_batch_encoded(X, Y, mx, my, lams, bands)
    return mv_banded_probe_batch_encoded_numpy(X, Y, mx, my, lams, bands)


# ---------------------------------------------------------------------------
# numpy sweeps (full tables)
# ---------------------------------------------------------------------------


def levenshtein_batch_numpy(
    pairs: Sequence[Tuple[Symbols, Symbols]],
) -> np.ndarray:
    """Levenshtein distance of every pair, swept diagonal-by-diagonal.

    Returns an ``int64`` array aligned with *pairs*.  Equivalent to
    ``[levenshtein_distance(x, y) for x, y in pairs]`` (the tests verify
    this), but every anti-diagonal step runs once for the whole batch.
    """
    if len(pairs) == 0:
        return np.zeros(0, dtype=np.int64)
    return _levenshtein_swept(*encode_batch(pairs))


def _levenshtein_swept(
    X: IntMatrix, Y: IntMatrix, mx: IntVector, my: IntVector
) -> np.ndarray:
    P = len(mx)
    out = np.zeros(P, dtype=np.int64)
    if P == 0:
        return out
    # Empty-sided pairs are pure insertions/deletions; exclude them from
    # the sweep (whose t=0/1 seed diagonals assume both sides non-empty).
    trivial = (mx == 0) | (my == 0)
    out[trivial] = np.maximum(mx, my)[trivial]
    if trivial.all():
        return out
    M, N = X.shape[1], Y.shape[1]
    size = M + 1
    inf = M + N + 1
    # pair rows harvested per diagonal, computed once up front
    done_at: Dict[int, List[int]] = {}
    for p in range(P):
        if not (mx[p] and my[p]):
            continue  # empty-sided pairs were answered above
        done_at.setdefault(int(mx[p] + my[p]), []).append(p)
    prev2 = np.full((P, size), inf, dtype=np.int64)  # diagonal t-2
    prev = np.full((P, size), inf, dtype=np.int64)  # diagonal t-1
    prev2[:, 0] = 0  # cell (0, 0)
    prev[:, 0] = 1  # cell (0, 1)
    prev[:, 1] = 1  # cell (1, 0)
    cur = np.empty((P, size), dtype=np.int64)
    for t in range(2, M + N + 1):
        lo = max(0, t - N)
        hi = min(M, t)
        a = max(1, lo)
        b = min(hi, t - 1)
        # sentinel columns just outside the written window; later
        # diagonals read at most one cell beyond it, so a full-row fill
        # is unnecessary
        cur[:, a - 1] = inf
        if b + 1 <= M:
            cur[:, b + 1] = inf
        if lo == 0:
            cur[:, 0] = t  # cell (0, t): t insertions
        if hi == t:
            cur[:, t] = t  # cell (t, 0): t deletions
        if a <= b:
            xs = X[:, a - 1 : b]  # x[i-1]
            ys = Y[:, t - b - 1 : t - a][:, ::-1]  # y[j-1] = y[t-i-1]
            sub = prev2[:, a - 1 : b] + (xs != ys)
            step = np.minimum(prev[:, a - 1 : b], prev[:, a : b + 1]) + 1
            np.minimum(sub, step, out=cur[:, a : b + 1])
        ready = done_at.get(t)
        if ready is not None:
            idx = np.asarray(ready, dtype=np.int64)
            out[idx] = cur[idx, mx[idx]]
        prev2, prev, cur = prev, cur, prev2
    return out


def contextual_heuristic_batch_numpy(
    pairs: Sequence[Tuple[Symbols, Symbols]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Twin tables of the contextual heuristic for every pair.

    Returns ``(d_e, ni)`` arrays aligned with *pairs*: the Levenshtein
    distance and the maximum insertion count over minimum-cost internal
    edit paths -- the two inputs of one
    :func:`~repro.core.contextual.canonical_cost` evaluation.  Matches
    :func:`~repro.core._kernels.contextual_heuristic_numpy` pair by pair.

    The twin tables are carried as ONE packed integer per cell,
    ``pack = d * K - ni`` with ``K`` larger than any feasible ``ni``:
    minimising ``pack`` is exactly the lexicographic (minimise ``d``,
    then maximise ``ni``) rule of the heuristic, so the whole tight-
    transition ``where``/``maximum`` chain of the two-array formulation
    collapses into one 3-way ``minimum`` -- half the numpy dispatches
    per anti-diagonal, which is where the batched sweep's time goes.
    The transition deltas follow directly: a match adds ``0``, a
    substitution ``K`` (``d+1``, ``ni`` kept), a deletion ``K`` and an
    insertion ``K - 1`` (``d+1``, ``ni+1``).  ``ni <= d`` always
    (insertions are paid operations), so packs stay non-negative and
    decode as ``d = ceil(pack / K)``, ``ni = d * K - pack``.
    """
    if len(pairs) == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    return _contextual_swept(*encode_batch(pairs))


def _contextual_swept(
    X: IntMatrix, Y: IntMatrix, mx: IntVector, my: IntVector
) -> Tuple[np.ndarray, np.ndarray]:
    P = len(mx)
    out_d = np.zeros(P, dtype=np.int64)
    out_ni = np.zeros(P, dtype=np.int64)
    if P == 0:
        return out_d, out_ni
    x_empty = mx == 0
    y_empty = (my == 0) & ~x_empty
    out_d[x_empty] = my[x_empty]
    out_ni[x_empty] = my[x_empty]  # pure insertions
    out_d[y_empty] = mx[y_empty]
    out_ni[y_empty] = 0  # pure deletions
    if (x_empty | y_empty).all():
        return out_d, out_ni
    M, N = X.shape[1], Y.shape[1]
    size = M + 1
    K = M + N + 2  # strictly above any feasible ni
    inf = (M + N + 1) * K  # above any feasible pack, overflow-safe
    # pair rows harvested per diagonal, computed once up front
    done_at: Dict[int, List[int]] = {}
    for p in range(P):
        if not (mx[p] and my[p]):
            continue  # empty-sided pairs were answered above
        done_at.setdefault(int(mx[p] + my[p]), []).append(p)
    prev2 = np.full((P, size), inf, dtype=np.int64)
    prev = np.full((P, size), inf, dtype=np.int64)
    prev2[:, 0] = 0  # (0, 0): d=0, ni=0
    prev[:, 0] = K - 1  # (0, 1): d=1, ni=1 (one insertion)
    prev[:, 1] = K  # (1, 0): d=1, ni=0 (one deletion)
    cur = np.empty((P, size), dtype=np.int64)
    for t in range(2, M + N + 1):
        lo = max(0, t - N)
        hi = min(M, t)
        a = max(1, lo)
        b = min(hi, t - 1)
        # sentinel columns just outside the written window: later
        # diagonals read at most one cell beyond it, so a full-row fill
        # is unnecessary
        if a >= 1:
            cur[:, a - 1] = inf
        if b + 1 <= M:
            cur[:, b + 1] = inf
        if lo == 0:
            cur[:, 0] = t * K - t  # (0, t): d=t, ni=t insertions
        if hi == t:
            cur[:, t] = t * K  # (t, 0): d=t, ni=0
        if a <= b:
            xs = X[:, a - 1 : b]
            ys = Y[:, t - b - 1 : t - a][:, ::-1]
            diag = prev2[:, a - 1 : b] + (xs != ys) * K
            step = np.minimum(
                prev[:, a - 1 : b] + K,  # deletion of x[i-1]
                prev[:, a : b + 1] + (K - 1),  # insertion of y[j-1]
            )
            np.minimum(diag, step, out=cur[:, a : b + 1])
        ready = done_at.get(t)
        if ready is not None:
            idx = np.asarray(ready, dtype=np.int64)
            pack = cur[idx, mx[idx]]
            d = -(-pack // K)  # ceil: ni = 0 packs sit exactly on d * K
            out_d[idx] = d
            out_ni[idx] = d * K - pack
        prev2, prev, cur = prev, cur, prev2
    return out_d, out_ni


# ---------------------------------------------------------------------------
# banded bounded batch sweeps
# ---------------------------------------------------------------------------
#
# The bounded twins only need the exact DP result when it fits the pair's
# edit budget; above the budget any witness value ``> budget`` suffices
# (the engine replays each request's closed-form pruned value itself).
# Carrying the budgets through the batch sweep therefore allows three
# savings over the full-table kernels:
#
# * the active window of each anti-diagonal is clamped to the *widest
#   surviving band* in the bucket (``|2i - t| <= B`` with
#   ``B = max(bounds[live])``), so tight-radius buckets touch a thin
#   stripe of the padded table instead of all of it;
# * per-pair minima of the last two diagonals are sampled every
#   ``_RETIRE_CADENCE`` diagonals (env ``REPRO_RETIRE_CADENCE``), and a
#   pair whose minima both exceed its own budget is *retired* (all later
#   cells derive from those diagonals by non-negative increments, so its
#   final value provably busts the budget) -- the anti-diagonal analogue
#   of the scalar twins' row-abort.  Sampling cannot change any output:
#   a pair that retires a few diagonals late still reports the same
#   pruned sentinel, and harvest (which runs every diagonal) compares
#   the final cell against the budget either way;
# * once at least half a bucket has retired or harvested, the matrices
#   are compacted to the surviving rows, so the bucket physically shrinks
#   mid-sweep.
#
# Exactness inside the band is Ukkonen's argument per pair: the computed
# window always contains the pair's own band (the shared clamp uses
# ``B >= bounds[p]``), any min-cost path of cost ``<= bounds[p]`` stays
# inside that band, and a final value ``<= bounds[p]`` is therefore the
# true one -- so ``exact[p]`` iff the true distance fits the budget, with
# the exact value (and, for the twin tables, the exact ``Ni``) in that
# case.  Out-of-window neighbours are sentinel-infinity, which only makes
# band-edge cells *larger*, never smaller, preserving both directions.


def levenshtein_batch_bounded_numpy(
    pairs: Sequence[Tuple[Symbols, Symbols]], bounds: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Banded bounded ``d_E`` sweep (see the block comment above).

    Returns ``(values, exact)``: exact distances where they fit the
    per-pair budgets, ``bounds[p] + 1`` where they provably do not.
    """
    if len(pairs) == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=bool)
    X, Y, mx, my = encode_batch(pairs)
    return _levenshtein_swept_bounded(X, Y, mx, my, bounds)


def _levenshtein_swept_bounded(
    X: IntMatrix,
    Y: IntMatrix,
    mx: IntVector,
    my: IntVector,
    bounds: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray]:
    P = len(mx)
    out = np.zeros(P, dtype=np.int64)
    exact = np.zeros(P, dtype=bool)
    if P == 0:
        return out, exact
    b_all = np.minimum(
        np.maximum(np.asarray(bounds, dtype=np.int64), 0), mx + my
    )
    gap = np.abs(mx - my)
    pruned = gap > b_all  # d_E >= |m - n| already busts the budget
    trivial = ((mx == 0) | (my == 0)) & ~pruned
    out[trivial] = np.maximum(mx, my)[trivial]
    exact[trivial] = True  # gap <= budget and d_E == gap for empty sides
    out[pruned] = b_all[pruned] + 1
    rows = np.nonzero(~trivial & ~pruned)[0]
    if len(rows) == 0:
        return out, exact
    X, Y = X[rows], Y[rows]
    mx, my, b = mx[rows], my[rows], b_all[rows]
    M, N = X.shape[1], Y.shape[1]
    size = M + 1
    inf = M + N + 2
    final = mx + my
    cadence = _retire_cadence()
    since_check = 0
    prev_win = (0, min(M, 1))  # written window of diagonal 1
    live = np.ones(len(rows), dtype=bool)
    prev2 = np.full((len(rows), size), inf, dtype=np.int64)
    prev = np.full((len(rows), size), inf, dtype=np.int64)
    prev2[:, 0] = 0  # cell (0, 0)
    prev[:, 0] = 1  # cell (0, 1)
    prev[:, 1] = 1  # cell (1, 0)
    cur = np.empty((len(rows), size), dtype=np.int64)
    for t in range(2, M + N + 1):
        if not live.any():
            break
        # widest surviving band; >= 1 so the window never goes empty and
        # its edges move by at most one column per diagonal (the sweep's
        # sentinel bookkeeping relies on that, exactly like the full
        # kernels' one-cell-beyond-the-window reads)
        B = max(int(b[live].max()), 1)
        lo = max(0, t - N)
        hi = min(M, t)
        L = max(lo, (t - B + 1) // 2)  # ceil((t - B) / 2)
        H = min(hi, (t + B) // 2)
        a = max(1, L)
        bb = min(H, t - 1)
        cur[:, a - 1] = inf
        if bb + 1 <= M:
            cur[:, bb + 1] = inf
        if L == 0:
            cur[:, 0] = t  # cell (0, t): t insertions
        if H == t:
            cur[:, t] = t  # cell (t, 0): t deletions
        if a <= bb:
            xs = X[:, a - 1 : bb]
            ys = Y[:, t - bb - 1 : t - a][:, ::-1]
            sub = prev2[:, a - 1 : bb] + (xs != ys)
            step = np.minimum(prev[:, a - 1 : bb], prev[:, a : bb + 1]) + 1
            np.minimum(sub, step, out=cur[:, a : bb + 1])
        ready = live & (final == t)
        if ready.any():
            idx = np.nonzero(ready)[0]
            vals = cur[idx, mx[idx]]
            ok = vals <= b[idx]
            out[rows[idx]] = np.where(ok, vals, b[idx] + 1)
            exact[rows[idx]] = ok
            live[idx] = False
        since_check += 1
        if since_check >= cadence and live.any():
            # retirement check, sampled: minima of the last two diagonals
            # over their written windows (all later cells derive from
            # them by non-negative increments)
            since_check = 0
            min_cur = cur[:, L : H + 1].min(axis=1)
            min_prev = prev[:, prev_win[0] : prev_win[1] + 1].min(axis=1)
            dead = live & (min_cur > b) & (min_prev > b)
            if dead.any():
                idx = np.nonzero(dead)[0]
                out[rows[idx]] = b[idx] + 1
                live[idx] = False
        prev2, prev, cur = prev, cur, prev2
        prev_win = (L, H)
        n_live = int(live.sum())
        if n_live and n_live * 2 <= len(rows):
            keep = np.nonzero(live)[0]
            rows, X, Y = rows[keep], X[keep], Y[keep]
            mx, my, b, final = mx[keep], my[keep], b[keep], final[keep]
            prev2, prev, cur = prev2[keep], prev[keep], cur[keep]
            live = np.ones(n_live, dtype=bool)
    return out, exact


def contextual_heuristic_batch_bounded_numpy(
    pairs: Sequence[Tuple[Symbols, Symbols]], bounds: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Banded bounded twin-table sweep (packed cells, see block comment).

    Returns ``(d_e, ni, exact)``: the exact twin values where ``d_E``
    fits the per-pair budgets, the pruned sentinel ``(bounds[p] + 1, 0)``
    where it provably does not.  Retirement compares the packed minima
    against ``bounds[p] * K``: ``pack = d * K - ni`` with ``ni <= d``
    keeps ``pack > b * K`` equivalent to ``d > b``.
    """
    if len(pairs) == 0:
        zeros = np.zeros(0, dtype=np.int64)
        return zeros, zeros.copy(), np.zeros(0, dtype=bool)
    X, Y, mx, my = encode_batch(pairs)
    return _contextual_swept_bounded(X, Y, mx, my, bounds)


def _contextual_swept_bounded(
    X: IntMatrix,
    Y: IntMatrix,
    mx: IntVector,
    my: IntVector,
    bounds: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    P = len(mx)
    out_d = np.zeros(P, dtype=np.int64)
    out_ni = np.zeros(P, dtype=np.int64)
    exact = np.zeros(P, dtype=bool)
    if P == 0:
        return out_d, out_ni, exact
    b_all = np.minimum(
        np.maximum(np.asarray(bounds, dtype=np.int64), 0), mx + my
    )
    gap = np.abs(mx - my)
    pruned = gap > b_all
    x_empty = (mx == 0) & ~pruned
    y_empty = (my == 0) & ~x_empty & ~pruned
    out_d[x_empty] = my[x_empty]
    out_ni[x_empty] = my[x_empty]  # pure insertions
    out_d[y_empty] = mx[y_empty]
    out_ni[y_empty] = 0  # pure deletions
    exact[x_empty | y_empty] = True
    out_d[pruned] = b_all[pruned] + 1
    rows = np.nonzero(~x_empty & ~y_empty & ~pruned)[0]
    if len(rows) == 0:
        return out_d, out_ni, exact
    X, Y = X[rows], Y[rows]
    mx, my, b = mx[rows], my[rows], b_all[rows]
    M, N = X.shape[1], Y.shape[1]
    size = M + 1
    K = M + N + 2  # strictly above any feasible ni
    inf = (M + N + 1) * K
    final = mx + my
    cadence = _retire_cadence()
    since_check = 0
    prev_win = (0, min(M, 1))  # written window of diagonal 1
    live = np.ones(len(rows), dtype=bool)
    prev2 = np.full((len(rows), size), inf, dtype=np.int64)
    prev = np.full((len(rows), size), inf, dtype=np.int64)
    prev2[:, 0] = 0  # (0, 0): d=0, ni=0
    prev[:, 0] = K - 1  # (0, 1): d=1, ni=1 (one insertion)
    prev[:, 1] = K  # (1, 0): d=1, ni=0 (one deletion)
    cur = np.empty((len(rows), size), dtype=np.int64)
    for t in range(2, M + N + 1):
        if not live.any():
            break
        B = max(int(b[live].max()), 1)
        lo = max(0, t - N)
        hi = min(M, t)
        L = max(lo, (t - B + 1) // 2)
        H = min(hi, (t + B) // 2)
        a = max(1, L)
        bb = min(H, t - 1)
        cur[:, a - 1] = inf
        if bb + 1 <= M:
            cur[:, bb + 1] = inf
        if L == 0:
            cur[:, 0] = t * K - t  # (0, t): d=t, ni=t insertions
        if H == t:
            cur[:, t] = t * K  # (t, 0): d=t, ni=0
        if a <= bb:
            xs = X[:, a - 1 : bb]
            ys = Y[:, t - bb - 1 : t - a][:, ::-1]
            diag = prev2[:, a - 1 : bb] + (xs != ys) * K
            step = np.minimum(
                prev[:, a - 1 : bb] + K,  # deletion of x[i-1]
                prev[:, a : bb + 1] + (K - 1),  # insertion of y[j-1]
            )
            np.minimum(diag, step, out=cur[:, a : bb + 1])
        ready = live & (final == t)
        if ready.any():
            idx = np.nonzero(ready)[0]
            pack = cur[idx, mx[idx]]
            d = -(-pack // K)
            ok = d <= b[idx]
            out_d[rows[idx]] = np.where(ok, d, b[idx] + 1)
            out_ni[rows[idx]] = np.where(ok, d * K - pack, 0)
            exact[rows[idx]] = ok
            live[idx] = False
        since_check += 1
        if since_check >= cadence and live.any():
            since_check = 0
            min_cur = cur[:, L : H + 1].min(axis=1)
            min_prev = prev[:, prev_win[0] : prev_win[1] + 1].min(axis=1)
            dead = live & (min_cur > b * K) & (min_prev > b * K)
            if dead.any():
                idx = np.nonzero(dead)[0]
                out_d[rows[idx]] = b[idx] + 1
                live[idx] = False
        prev2, prev, cur = prev, cur, prev2
        prev_win = (L, H)
        n_live = int(live.sum())
        if n_live and n_live * 2 <= len(rows):
            keep = np.nonzero(live)[0]
            rows, X, Y = rows[keep], X[keep], Y[keep]
            mx, my, b, final = mx[keep], my[keep], b[keep], final[keep]
            prev2, prev, cur = prev2[keep], prev[keep], cur[keep]
            live = np.ones(n_live, dtype=bool)
    return out_d, out_ni, exact


# ---------------------------------------------------------------------------
# banded parametric probe batch (the bounded d_MV decision kernel)
# ---------------------------------------------------------------------------
#
# ``d_MV <= lam`` iff some editing path has ``W(pi) - lam * L(pi) <= 0``,
# so one banded alignment DP per pair decides prunability (see
# ``repro.core.bounded.bounded_marzal_vidal``).  This sweep lifts the
# scalar probe to a batch:
#
# * the anti-diagonal window is clamped to the widest band among pairs
#   still awaiting their final diagonal, like the integer bounded sweeps;
# * bands are enforced **per pair**: cells with ``|i - j| > bands[p]``
#   are forced to ``+inf`` for pair ``p`` even when the shared window
#   computed them, because the probe's *score itself* is the result (the
#   engine turns it into the pruned value ``lam + slack / total``) -- a
#   wider-than-requested band would admit more paths and change the
#   score, unlike the integer kernels whose out-of-band values are
#   discarded by the exactness test;
# * pairs retire at harvest (their final diagonal).  There is no
#   value-based early retirement: parametric steps can be *negative*
#   (a match adds ``-lam``), so diagonal minima are not lower bounds of
#   later cells -- the scalar probe has no row-abort either;
# * the bucket compacts once at least half its pairs have harvested.
#
# Per-cell arithmetic replays the scalar probe's expressions exactly
# (same two-operand sums, same 3-way minimum), so scores are
# bit-identical to ``_banded_parametric`` -- asserted by the tests.


def mv_banded_probe_batch_encoded_numpy(
    X: IntMatrix,
    Y: IntMatrix,
    mx: IntVector,
    my: IntVector,
    lams: Sequence[float],
    bands: Sequence[int],
) -> np.ndarray:
    """Banded parametric probe scores (numpy sweep; see block comment)."""
    P = len(mx)
    scores = np.zeros(P, dtype=np.float64)
    if P == 0:
        return scores
    lams = np.asarray(lams, dtype=np.float64)
    bands = np.asarray(bands, dtype=np.int64)
    paid = 1.0 - lams
    inf = np.inf
    final = mx + my
    # the band must reach the final cell at all; otherwise the scalar
    # probe returns +inf (its final cell is never written)
    unreachable = np.abs(mx - my) > bands
    scores[unreachable] = inf
    # diagonals 0 and 1 are the sweep's seeds; answer them directly
    f1 = (final == 1) & ~unreachable
    scores[f1] = paid[f1]  # one indel; |m-n| = 1 <= band here
    sweep = (final >= 2) & ~unreachable
    rows = np.nonzero(sweep)[0]
    if len(rows) == 0:
        return scores  # final == 0 pairs keep score 0.0 (the empty path)
    X, Y = X[rows], Y[rows]
    mx, my = mx[rows], my[rows]
    lams, paid, bands, final = lams[rows], paid[rows], bands[rows], final[rows]
    M, N = X.shape[1], Y.shape[1]
    size = M + 1
    live = np.ones(len(rows), dtype=bool)
    prev2 = np.full((len(rows), size), inf, dtype=np.float64)
    prev = np.full((len(rows), size), inf, dtype=np.float64)
    prev2[:, 0] = 0.0  # cell (0, 0): the empty path
    in_band = bands >= 1
    prev[:, 0] = np.where(in_band, paid, inf)  # cell (0, 1): one insertion
    if size > 1:
        prev[:, 1] = np.where(in_band, paid, inf)  # cell (1, 0): one deletion
    cur = np.empty((len(rows), size), dtype=np.float64)
    for t in range(2, M + N + 1):
        if not live.any():
            break
        B = max(int(bands[live].max()), 1)
        lo = max(0, t - N)
        hi = min(M, t)
        L = max(lo, (t - B + 1) // 2)
        H = min(hi, (t + B) // 2)
        a = max(1, L)
        bb = min(H, t - 1)
        cur[:, a - 1] = inf
        if bb + 1 <= M:
            cur[:, bb + 1] = inf
        if L == 0:
            # cell (0, t): t insertions, in-band only while t <= band
            cur[:, 0] = np.where(t <= bands, t * paid, inf)
        if H == t:
            # cell (t, 0): t deletions
            cur[:, t] = np.where(t <= bands, t * paid, inf)
        if a <= bb:
            xs = X[:, a - 1 : bb]
            ys = Y[:, t - bb - 1 : t - a][:, ::-1]
            # -lam on a match, (1 - lam) on a substitution: `(xs != ys)
            # - lam` lands on exactly the scalar probe's two step values
            step = (xs != ys) - lams[:, None]
            diag = prev2[:, a - 1 : bb] + step
            gap = (
                np.minimum(prev[:, a - 1 : bb], prev[:, a : bb + 1])
                + paid[:, None]
            )
            block = np.minimum(diag, gap)
            # per-pair band enforcement (see block comment)
            cols = np.arange(a, bb + 1)
            off = np.abs(2 * cols - t)[None, :] > bands[:, None]
            cur[:, a : bb + 1] = np.where(off, inf, block)
        ready = live & (final == t)
        if ready.any():
            idx = np.nonzero(ready)[0]
            scores[rows[idx]] = cur[idx, mx[idx]]
            live[idx] = False
        prev2, prev, cur = prev, cur, prev2
        n_live = int(live.sum())
        if n_live and n_live * 2 <= len(rows):
            keep = np.nonzero(live)[0]
            rows, X, Y = rows[keep], X[keep], Y[keep]
            mx, my, final = mx[keep], my[keep], final[keep]
            lams, paid, bands = lams[keep], paid[keep], bands[keep]
            prev2, prev, cur = prev2[keep], prev[keep], cur[keep]
            live = np.ones(n_live, dtype=bool)
    return scores
