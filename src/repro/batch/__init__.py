"""Pair-batched distance computation.

The scalar distance functions in :mod:`repro.core` compute one pair per
Python call; this subpackage computes *many* pairs per numpy dispatch by
stacking same-length-bucket pairs into one anti-diagonal sweep, and layers
deduplication, symmetry exploitation and optional process-pool fan-out on
top.  The index, classification, experiment and metric-checking layers all
route their bulk distance needs through here.

Entry points:

* :func:`pairwise_values` -- distances for an explicit pair list;
* :func:`pairwise_values_bounded` -- early-exit distances with per-pair
  limits, bit-identical to ``CountingDistance.within`` (the batched
  candidate phase of the lockstep ``bulk_knn`` drivers);
* :func:`pairwise_matrix` -- a full (or symmetric upper-triangle) matrix;
* :func:`pairwise_matrix_blocks` -- the matrix streamed as row-block
  shards (bounded memory for paper-scale gene sets);
* :func:`pairwise_matrix_memmap` -- the streamed matrix written into an
  on-disk ``.npy`` memmap;
* :func:`distances_from`  -- one item against many;
* :func:`levenshtein_batch` / :func:`contextual_heuristic_batch` -- the
  raw pair-batched kernels.

Every entry point defaults to ``workers="auto"``: unique-pair chunks fan
out over a process pool when the machine and the batch size justify it.
The fan-out is *supervised*: dead or wedged workers surface as failed
chunks (per-chunk deadlines) and walk a degradation ladder -- fresh-pool
retry, per-call pool, in-process serial -- that preserves bit-identical
results (:data:`DEGRADATION` counts the events,
:class:`DegradedExecutionWarning` announces them, and
:mod:`repro.batch.faults` injects the failures on demand for the chaos
suite).
"""

from .corpus import InternedCorpus, PairStore, intern_corpus, interning_enabled
from .engine import (
    distances_from,
    pairwise_matrix,
    pairwise_matrix_blocks,
    pairwise_matrix_memmap,
    pairwise_values,
    pairwise_values_bounded,
    pairwise_values_bounded_ids,
    pairwise_values_ids,
)
from .kernels import (
    contextual_heuristic_batch,
    contextual_heuristic_batch_bounded,
    encode_batch,
    levenshtein_batch,
    levenshtein_batch_bounded,
    mv_banded_probe_batch,
)
from .faults import FaultInjected
from .runtime import (
    DEGRADATION,
    DegradationStats,
    DegradedExecutionWarning,
    EngineRuntime,
    get_runtime,
    persistent_pool_enabled,
    reap_orphaned_segments,
)

__all__ = [
    "pairwise_values",
    "pairwise_values_ids",
    "pairwise_values_bounded",
    "pairwise_values_bounded_ids",
    "pairwise_matrix",
    "pairwise_matrix_blocks",
    "pairwise_matrix_memmap",
    "distances_from",
    "levenshtein_batch",
    "levenshtein_batch_bounded",
    "contextual_heuristic_batch",
    "contextual_heuristic_batch_bounded",
    "mv_banded_probe_batch",
    "encode_batch",
    "InternedCorpus",
    "PairStore",
    "intern_corpus",
    "interning_enabled",
    "EngineRuntime",
    "get_runtime",
    "persistent_pool_enabled",
    "DEGRADATION",
    "DegradationStats",
    "DegradedExecutionWarning",
    "FaultInjected",
    "reap_orphaned_segments",
]
