"""Pair-batched distance computation.

The scalar distance functions in :mod:`repro.core` compute one pair per
Python call; this subpackage computes *many* pairs per numpy dispatch by
stacking same-length-bucket pairs into one anti-diagonal sweep, and layers
deduplication, symmetry exploitation and optional process-pool fan-out on
top.  The index, classification, experiment and metric-checking layers all
route their bulk distance needs through here.

Entry points:

* :func:`pairwise_values` -- distances for an explicit pair list;
* :func:`pairwise_matrix` -- a full (or symmetric upper-triangle) matrix;
* :func:`distances_from`  -- one item against many;
* :func:`levenshtein_batch` / :func:`contextual_heuristic_batch` -- the
  raw pair-batched kernels.
"""

from .engine import distances_from, pairwise_matrix, pairwise_values
from .kernels import contextual_heuristic_batch, encode_batch, levenshtein_batch

__all__ = [
    "pairwise_values",
    "pairwise_matrix",
    "distances_from",
    "levenshtein_batch",
    "contextual_heuristic_batch",
    "encode_batch",
]
