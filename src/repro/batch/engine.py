"""The pair-batched distance engine.

Every consumer in the library used to compute distances one Python call at
a time.  This module is the bulk entry point they now share:

* :func:`pairwise_values` -- evaluate a distance over an explicit list of
  ``(x, y)`` pairs, deduplicating repeated pairs, shortcutting ``x == y``
  for registered distances, length-bucketing the rest and running the
  pair-batched anti-diagonal kernels of :mod:`repro.batch.kernels` over
  each bucket (with optional :mod:`multiprocessing` fan-out);
* :func:`pairwise_matrix` -- a full distance matrix; when ``ys is None``
  only the upper triangle is computed and mirrored (the symmetric case);
* :func:`distances_from` -- one item against many (pivot rows, linear
  scans).

Which distances are batched
---------------------------
``levenshtein`` and the length-ratio family (``dmax``, ``dsum``,
``dmin``, ``yujian_bo``) reduce to one batched ``d_E`` sweep plus a
closed-form per-pair normalisation; ``contextual_heuristic`` reduces to
the batched twin-table sweep plus one ``canonical_cost`` evaluation per
pair.  The final per-pair arithmetic deliberately replays the *scalar*
implementations' expressions so batch results are bit-identical to the
scalar ones (asserted by the tests).  Everything else (exact ``d_C``,
``d_MV``, arbitrary user callables) falls back to one scalar call per
*unique* pair -- the dedupe and symmetry savings still apply.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core import registry
from ..core.contextual import canonical_cost
from ..core.levenshtein import levenshtein_distance
from ..core.types import Symbols, as_symbols
from .kernels import contextual_heuristic_batch, levenshtein_batch

__all__ = ["pairwise_values", "pairwise_matrix", "distances_from"]

DistanceLike = Union[str, Callable[[Any, Any], float]]

#: Internal name for the raw (int-valued) Levenshtein function.
_LEV_INT = "__levenshtein_int__"

#: Registered names whose value is a closed form of ``d_E`` and lengths.
_LEV_FAMILY = ("levenshtein", "dmax", "dsum", "dmin", "yujian_bo", _LEV_INT)

#: Default number of pairs per kernel bucket: large enough to amortise the
#: per-diagonal numpy dispatch over many pairs, small enough that padding
#: (pairs are sorted by combined length first) stays modest.
_BUCKET_SIZE = 256

#: Minimum unique-pair count before a process pool is worth its start-up.
_MIN_PAIRS_PER_WORKER = 512


def _resolve(distance: DistanceLike) -> Tuple[Optional[str], Callable]:
    """Map *distance* to ``(batch_name, scalar_fn)``.

    ``batch_name`` is the registry name driving the batched fast path, or
    ``None`` for unregistered callables (scalar fallback).
    """
    if isinstance(distance, str):
        return distance, registry.get_distance(distance)
    if distance is levenshtein_distance:
        return _LEV_INT, distance
    for spec in registry.list_distances():
        if spec.function is distance:
            return spec.name, distance
    return None, distance


def _lev_finalize(
    name: str, pairs: Sequence[Tuple[Symbols, Symbols]], d_e: np.ndarray
) -> np.ndarray:
    """Apply the scalar normalisation formulas to batched ``d_E`` values.

    Python-level arithmetic on ints, mirroring the expressions in
    :mod:`repro.core.ratios` / :mod:`repro.core.yujian_bo` exactly, so the
    floats are bit-identical to the scalar implementations.
    """
    if name == _LEV_INT:
        return d_e.copy()
    out = np.empty(len(pairs), dtype=float)
    for p, (x, y) in enumerate(pairs):
        d = int(d_e[p])
        m, n = len(x), len(y)
        if name == "levenshtein":
            out[p] = float(d)
        elif name == "dmax":
            longest = max(m, n)
            out[p] = d / longest if longest else 0.0
        elif name == "dsum":
            total = m + n
            out[p] = d / total if total else 0.0
        elif name == "dmin":
            shortest = min(m, n)
            if shortest == 0:
                out[p] = 0.0 if x == y else float("inf")
            else:
                out[p] = d / shortest
        elif name == "yujian_bo":
            out[p] = 2.0 * d / (m + n + d) if (m or n) else 0.0
        else:  # pragma: no cover - guarded by _LEV_FAMILY membership
            raise AssertionError(f"not a levenshtein-family name: {name}")
    return out


def _buckets(
    pairs: Sequence[Tuple[Symbols, Symbols]], bucket_size: int
) -> List[List[int]]:
    """Group pair indices by combined length to keep kernel padding low.

    Pairs are sorted by ``|x| + |y|`` and chunked; a chunk also closes
    early when the next pair is much longer than the chunk's first (so one
    gene never drags a bucket of words up to its padding).
    """
    order = sorted(range(len(pairs)), key=lambda p: len(pairs[p][0]) + len(pairs[p][1]))
    buckets: List[List[int]] = []
    current: List[int] = []
    first_size = 0
    for p in order:
        size = len(pairs[p][0]) + len(pairs[p][1])
        if current and (
            len(current) >= bucket_size or size > 2 * first_size + 16
        ):
            buckets.append(current)
            current = []
        if not current:
            first_size = size
        current.append(p)
    if current:
        buckets.append(current)
    return buckets


def _evaluate_batched(
    name: str, pairs: Sequence[Tuple[Symbols, Symbols]]
) -> np.ndarray:
    """Batched evaluation of one of the kernel-backed distances."""
    out = np.empty(len(pairs), dtype=np.int64 if name == _LEV_INT else float)
    for bucket in _buckets(pairs, _BUCKET_SIZE):
        chunk = [pairs[p] for p in bucket]
        if name == "contextual_heuristic":
            d_e, ni = contextual_heuristic_batch(chunk)
            for slot, p in enumerate(bucket):
                x, y = pairs[p]
                if x == y:
                    out[p] = 0.0
                    continue
                cost = canonical_cost(
                    len(x), len(y), int(d_e[slot]), int(ni[slot])
                )
                if cost is None:  # pragma: no cover - DP guarantees feasibility
                    raise AssertionError(
                        f"infeasible heuristic for {x!r}, {y!r}"
                    )
                out[p] = cost
        else:
            values = _lev_finalize(name, chunk, levenshtein_batch(chunk))
            out[bucket] = values
    return out


def _evaluate_unique(
    name: Optional[str],
    fn: Callable,
    pairs: Sequence[Tuple[Symbols, Symbols]],
) -> np.ndarray:
    """Evaluate every (already unique) pair, batched when possible."""
    if name in _LEV_FAMILY or name == "contextual_heuristic":
        return _evaluate_batched(name, pairs)
    return np.asarray([fn(x, y) for x, y in pairs], dtype=float)


def _mp_evaluate(args: Tuple[str, List[Tuple[Symbols, Symbols]]]) -> np.ndarray:
    """Process-pool worker: evaluate one chunk of pairs by registry name."""
    name, chunk = args
    if name in _LEV_FAMILY or name == "contextual_heuristic":
        return _evaluate_batched(name, chunk)
    return np.asarray(
        [registry.get_distance(name)(x, y) for x, y in chunk], dtype=float
    )


def _fan_out(
    name: str,
    pairs: List[Tuple[Symbols, Symbols]],
    workers: int,
) -> Optional[np.ndarray]:
    """Evaluate *pairs* across a process pool; None if the pool fails.

    Chunks are contiguous slices of the (caller-sorted) pair list; child
    processes re-resolve the distance from its registry *name*, so only
    strings/tuples cross the process boundary.
    """
    import multiprocessing

    chunk_count = min(workers, max(1, len(pairs) // _MIN_PAIRS_PER_WORKER))
    if chunk_count < 2:
        return None
    bounds = np.linspace(0, len(pairs), chunk_count + 1).astype(int)
    chunks = [
        (name, pairs[bounds[c] : bounds[c + 1]]) for c in range(chunk_count)
    ]
    try:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platforms without fork
            ctx = multiprocessing.get_context()
        with ctx.Pool(processes=chunk_count) as pool:
            parts = pool.map(_mp_evaluate, chunks)
    except Exception:  # pragma: no cover - sandboxed/forbidden fork
        return None
    return np.concatenate(parts)


def pairwise_values(
    distance: DistanceLike,
    pairs: Sequence[Tuple[Any, Any]],
    *,
    workers: Optional[int] = None,
) -> np.ndarray:
    """Evaluate *distance* over *pairs*, returning an aligned 1-D array.

    ``distance`` is a registry name, a registered distance function, the
    raw :func:`~repro.core.levenshtein.levenshtein_distance`, or any other
    callable (scalar fallback).  Repeated pairs are computed once; for
    registered distances ``x == y`` pairs are 0 without computation.
    Inputs are normalised with :func:`~repro.core.types.as_symbols`, so
    equal content in different representations (``"ab"`` vs
    ``("a", "b")``) also dedupes.

    ``workers`` > 1 fans unique-pair chunks out over a process pool (only
    for distances resolvable by registry name; silently serial when the
    platform forbids subprocesses or the batch is too small to pay for
    pool start-up).

    Items that are not symbol sequences (or whose symbols are not
    hashable) cannot be normalised or deduplicated; for unregistered
    callables such pairs are evaluated with a plain scalar loop so
    arbitrary item types keep working through the index layer.
    """
    n = len(pairs)
    name, fn = _resolve(distance)
    registered = name is not None
    slot_of: Dict[Tuple[Symbols, Symbols], int] = {}
    unique: List[Tuple[Symbols, Symbols]] = []
    take_from = np.empty(n, dtype=np.int64)
    zero_mask = np.zeros(n, dtype=bool)
    try:
        for p, (raw_x, raw_y) in enumerate(pairs):
            pair = (as_symbols(raw_x), as_symbols(raw_y))
            if registered and pair[0] == pair[1]:
                zero_mask[p] = True
                take_from[p] = -1
                continue
            slot = slot_of.get(pair)
            if slot is None:
                slot = len(unique)
                slot_of[pair] = slot
                unique.append(pair)
            take_from[p] = slot
    except TypeError:
        # non-sequence items or unhashable symbols: registered distances
        # could not have accepted them anyway, so this is the arbitrary-
        # callable case -- evaluate verbatim, pair by pair
        return np.asarray([fn(x, y) for x, y in pairs], dtype=float)
    values: Optional[np.ndarray] = None
    if workers and workers > 1 and registered and unique:
        values = _fan_out(name, unique, workers)
    if values is None:
        values = _evaluate_unique(name, fn, unique)
    if len(unique):
        dtype = values.dtype
    else:
        dtype = np.int64 if name == _LEV_INT else float
    out = np.zeros(n, dtype=dtype)
    filled = ~zero_mask
    if filled.any():
        out[filled] = values[take_from[filled]]
    return out


def pairwise_matrix(
    distance: DistanceLike,
    xs: Sequence[Any],
    ys: Optional[Sequence[Any]] = None,
    *,
    workers: Optional[int] = None,
) -> np.ndarray:
    """Full distance matrix ``D[i, j] = d(xs[i], (ys or xs)[j])``.

    When ``ys is None`` the distance is taken to be symmetric: only the
    upper triangle (including the diagonal) is evaluated and mirrored, so
    an ``n x n`` matrix costs ``C(n, 2) + n`` unique-pair evaluations --
    fewer still after dedupe and the registered ``x == y`` shortcut.
    """
    if ys is None:
        n = len(xs)
        pairs = [(xs[i], xs[j]) for i in range(n) for j in range(i, n)]
        flat = pairwise_values(distance, pairs, workers=workers)
        matrix = np.zeros((n, n), dtype=flat.dtype)
        pos = 0
        for i in range(n):
            row = flat[pos : pos + n - i]
            matrix[i, i:] = row
            matrix[i:, i] = row
            pos += n - i
        return matrix
    pairs = [(x, y) for x in xs for y in ys]
    flat = pairwise_values(distance, pairs, workers=workers)
    return flat.reshape(len(xs), len(ys))


def distances_from(
    distance: DistanceLike,
    source: Any,
    targets: Sequence[Any],
    *,
    workers: Optional[int] = None,
) -> np.ndarray:
    """Distances from one *source* to every target (one matrix row)."""
    return pairwise_values(
        distance, [(source, t) for t in targets], workers=workers
    )
