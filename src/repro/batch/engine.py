"""The pair-batched distance engine.

Every consumer in the library used to compute distances one Python call at
a time.  This module is the bulk entry point they now share:

* :func:`pairwise_values` -- evaluate a distance over an explicit list of
  ``(x, y)`` pairs, deduplicating repeated pairs, shortcutting ``x == y``
  for registered distances, length-bucketing the rest and running the
  pair-batched anti-diagonal kernels of :mod:`repro.batch.kernels` over
  each bucket (with optional :mod:`multiprocessing` fan-out);
* :func:`pairwise_matrix` -- a full distance matrix; when ``ys is None``
  only the upper triangle is computed and mirrored (the symmetric case);
* :func:`pairwise_matrix_blocks` -- the same matrix as a stream of
  row-block shards, so consumers can fold over matrices that would not
  fit in memory (paper-scale gene sets);
* :func:`pairwise_matrix_memmap` -- the streaming evaluation written
  straight into an on-disk ``.npy`` memmap;
* :func:`distances_from` -- one item against many (pivot rows, linear
  scans).

Sharding is automatic: every entry point defaults to ``workers="auto"``,
which fans unique-pair chunks over a process pool whenever the machine
has more than one core and every worker would receive at least
``_MIN_PAIRS_PER_WORKER`` pairs -- big consumers (Table 2 trials, AESA
preprocessing, histogram sweeps, bulk query phases) parallelise without
opting in pair-list by pair-list.  Pass an integer to force a pool size,
or ``None``/``0``/``1`` to force serial evaluation.  The pool itself is
the **persistent** one of :mod:`repro.batch.runtime` (spawned once,
reused across calls; ``REPRO_PERSISTENT_POOL=0`` restores the old
one-pool-per-call behaviour bit-identically).

Interned dispatch
-----------------
:func:`pairwise_values_ids` and :func:`pairwise_values_bounded_ids` are
the id-space twins of the two pair-list entry points: callers holding an
interned corpus (:mod:`repro.batch.corpus`) dispatch ``(id, id)`` pairs
against matrices encoded once at index-build time, so repeated bulk
queries skip normalisation, content hashing and ``encode_batch``
entirely; sharded fan-out sends workers only id arrays against a
shared-memory publication of the corpus.  Values are bit-identical to
the raw-pair entry points (same kernels, same replay arithmetic --
asserted by the tests).

Which distances are batched
---------------------------
``levenshtein`` and the length-ratio family (``dmax``, ``dsum``,
``dmin``, ``yujian_bo``) reduce to one batched ``d_E`` sweep plus a
closed-form per-pair normalisation; ``contextual_heuristic`` reduces to
the batched twin-table sweep plus one ``canonical_cost`` evaluation per
pair.  The final per-pair arithmetic deliberately replays the *scalar*
implementations' expressions so batch results are bit-identical to the
scalar ones (asserted by the tests).  Everything else (exact ``d_C``,
``d_MV``, arbitrary user callables) falls back to one scalar call per
*unique* pair -- the dedupe and symmetry savings still apply.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
    cast,
)

import numpy as np

from ..core import registry
from ..core._kernels import jit_backend
from ..tools import knobs
from ..core.bounded import (
    _MV_EPS,
    _edit_budget,
    bounded_for,
    contextual_edit_budget,
    contextual_pruned_value,
    mv_bound_plan,
    mv_pruned_value,
)
from ..core.contextual import canonical_cost
from ..core.levenshtein import levenshtein_distance
from ..core.marzal_vidal import mv_normalized_distance
from ..core.types import Symbols, as_symbols
from .kernels import (
    contextual_heuristic_batch,
    contextual_heuristic_batch_bounded,
    contextual_heuristic_batch_bounded_encoded,
    contextual_heuristic_batch_encoded,
    encode_batch,
    levenshtein_batch,
    levenshtein_batch_bounded,
    levenshtein_batch_bounded_encoded,
    levenshtein_batch_encoded,
    mv_banded_probe_batch,
    mv_banded_probe_batch_encoded,
)

if TYPE_CHECKING:
    from .corpus import PairStore

__all__ = [
    "pairwise_values",
    "pairwise_values_ids",
    "pairwise_values_bounded",
    "pairwise_values_bounded_ids",
    "pairwise_matrix",
    "pairwise_matrix_blocks",
    "pairwise_matrix_memmap",
    "distances_from",
]

_INF = float("inf")

DistanceLike = Union[str, Callable[[Any, Any], float]]

#: ``workers`` accepted by every entry point: ``"auto"`` (default),
#: a pool size, or ``None``/``0``/``1`` for serial evaluation.
Workers = Union[int, str, None]

#: Internal name for the raw (int-valued) Levenshtein function.
_LEV_INT = "__levenshtein_int__"

#: Registered names whose value is a closed form of ``d_E`` and lengths.
_LEV_FAMILY = ("levenshtein", "dmax", "dsum", "dmin", "yujian_bo", _LEV_INT)

#: Default number of pairs per kernel bucket: large enough to amortise the
#: per-diagonal numpy dispatch over many pairs, small enough that padding
#: (pairs are sorted by combined length first) stays modest.
_BUCKET_SIZE = 256

#: Minimum unique-pair count before a process pool is worth its start-up.
#: Overridable fleet-wide via the ``REPRO_MIN_PAIRS_PER_WORKER``
#: environment variable (read per call, see :func:`_min_pairs_per_worker`).
_MIN_PAIRS_PER_WORKER = 512


def _min_pairs_per_worker() -> int:
    """The sharding threshold, honouring ``REPRO_MIN_PAIRS_PER_WORKER``.

    The module constant stays the authoritative (and monkeypatchable)
    default; the registry accessor only overrides it when the variable
    is set."""
    value = knobs.get_int("REPRO_MIN_PAIRS_PER_WORKER")
    if value is not None:
        return value
    return _MIN_PAIRS_PER_WORKER


def _banded_batch_enabled() -> bool:
    """Whether :func:`pairwise_values_bounded` may use the banded batch
    kernels; ``REPRO_BANDED_BATCH=0`` forces the full-table fallback
    (identical values, more padded work -- a debugging escape hatch)."""
    return knobs.get_flag("REPRO_BANDED_BATCH")


def _is_batched(name: Optional[str]) -> bool:
    """Whether *name* has a batched kernel path in `_evaluate_batched`.

    The Levenshtein family and the contextual heuristic always do; exact
    ``d_C`` and ``d_MV`` gain one when the numba backend is active (their
    compiled per-pair kernels run a whole bucket per call)."""
    if name in _LEV_FAMILY or name == "contextual_heuristic":
        return True
    return name in ("marzal_vidal", "contextual") and jit_backend() is not None


def has_batched_kernel(distance: DistanceLike) -> bool:
    """Whether the engine evaluates *distance* through batch kernels --
    consumers whose batching strategy only pays when the per-distance
    cost amortises (AESA's front-loaded grid sweep) consult this instead
    of hard-coding distance names."""
    name, _ = _resolve(distance)
    return _is_batched(name)

#: Default row-block height for the streaming matrix entry points.
_BLOCK_ROWS = 256


def _cpu_count() -> int:
    """Worker budget for ``workers="auto"`` (monkeypatched in tests)."""
    return os.cpu_count() or 1


def _resolve_workers(workers: Workers, n_unique: int, registered: bool) -> int:
    """Turn the ``workers`` argument into a concrete pool size (<2 = serial).

    ``"auto"`` shards over all cores when the distance is resolvable by
    registry name (a prerequisite for crossing the process boundary), the
    process may fork (not already a pool worker), and every worker would
    receive at least ``_MIN_PAIRS_PER_WORKER`` unique pairs -- i.e. when
    ``n_unique // cpu_count >= _MIN_PAIRS_PER_WORKER``.
    """
    if isinstance(workers, str) and workers != "auto":
        raise ValueError(
            f"workers must be 'auto', an int, or None; got {workers!r}"
        )
    if not registered or n_unique == 0:
        return 0
    if workers == "auto":
        import multiprocessing

        if multiprocessing.current_process().daemon:
            return 0  # pool workers cannot spawn nested pools
        cpus = _cpu_count()
        if cpus >= 2 and n_unique // cpus >= _min_pairs_per_worker():
            return cpus
        return 0
    if workers is None:
        return 0
    return int(workers)


def _resolve(distance: DistanceLike) -> Tuple[Optional[str], Callable]:
    """Map *distance* to ``(batch_name, scalar_fn)``.

    ``batch_name`` is the registry name driving the batched fast path, or
    ``None`` for unregistered callables (scalar fallback).
    """
    if isinstance(distance, str):
        return distance, registry.get_distance(distance)
    if distance is levenshtein_distance:
        return _LEV_INT, distance
    for spec in registry.list_distances():
        if spec.function is distance:
            return spec.name, distance
    return None, distance


def _lev_value(name: str, m: int, n: int, d: int) -> float:
    """One normalised value from an exact ``d_E``, replaying the scalar
    expressions of :mod:`repro.core.ratios` / :mod:`repro.core.yujian_bo`
    exactly so the floats are bit-identical to the scalar functions.

    Lengths suffice: the only branch that used to inspect the symbols
    (``d_min`` with an empty side) is decided by ``d == 0``, which holds
    iff ``x == y`` for an exact ``d_E``.
    """
    if name == _LEV_INT:
        return d
    if name == "levenshtein":
        return float(d)
    if name == "dmax":
        longest = max(m, n)
        return d / longest if longest else 0.0
    if name == "dsum":
        total = m + n
        return d / total if total else 0.0
    if name == "dmin":
        shortest = min(m, n)
        if shortest == 0:
            return 0.0 if d == 0 else float("inf")
        return d / shortest
    if name == "yujian_bo":
        return 2.0 * d / (m + n + d) if (m or n) else 0.0
    raise AssertionError(  # pragma: no cover - guarded by _LEV_FAMILY
        f"not a levenshtein-family name: {name}"
    )


def _lev_finalize(
    name: str, mx: np.ndarray, my: np.ndarray, d_e: np.ndarray
) -> np.ndarray:
    """Apply the scalar normalisation formulas to batched ``d_E`` values."""
    if name == _LEV_INT:
        return d_e.copy()
    out = np.empty(len(d_e), dtype=float)
    for p in range(len(d_e)):
        out[p] = _lev_value(name, int(mx[p]), int(my[p]), int(d_e[p]))
    return out


def _sizes_buckets(sizes: Sequence[int], bucket_size: int) -> List[List[int]]:
    """Group indices by size to keep kernel padding low.

    Indices are sorted by size and chunked; a chunk also closes early
    when the next entry is much longer than the chunk's first (so one
    gene never drags a bucket of words up to its padding).
    """
    order = sorted(range(len(sizes)), key=lambda p: sizes[p])
    buckets: List[List[int]] = []
    current: List[int] = []
    first_size = 0
    for p in order:
        size = sizes[p]
        if current and (
            len(current) >= bucket_size or size > 2 * first_size + 16
        ):
            buckets.append(current)
            current = []
        if not current:
            first_size = size
        current.append(p)
    if current:
        buckets.append(current)
    return buckets


def _buckets(
    pairs: Sequence[Tuple[Symbols, Symbols]], bucket_size: int
) -> List[List[int]]:
    """Group pair indices by combined length (see :func:`_sizes_buckets`)."""
    return _sizes_buckets(
        [len(x) + len(y) for x, y in pairs], bucket_size
    )


def _evaluate_encoded(
    name: str,
    X: np.ndarray,
    Y: np.ndarray,
    mx: np.ndarray,
    my: np.ndarray,
) -> np.ndarray:
    """One kernel sweep over an already-encoded (single-bucket) chunk.

    The shared back half of :func:`_evaluate_batched` and the interned
    id-dispatch paths: everything downstream of encoding works from the
    code matrices and lengths alone (``d_C,h``'s ``canonical_cost``
    replay included -- equal pairs recover ``(d_E, Ni) = (0, 0)`` from
    the DP, so their cost is 0.0 without a symbol comparison).
    """
    if name == "contextual_heuristic":
        d_e, ni = contextual_heuristic_batch_encoded(X, Y, mx, my)
        out = np.empty(len(mx), dtype=float)
        for p in range(len(mx)):
            cost = canonical_cost(int(mx[p]), int(my[p]), int(d_e[p]), int(ni[p]))
            if cost is None:  # pragma: no cover - DP guarantees feasibility
                raise AssertionError(f"infeasible heuristic at slot {p}")
            out[p] = cost
        return out
    if name == "marzal_vidal":  # jit-only: gated by _is_batched
        return jit_backend().mv_distance_batch_encoded(X, Y, mx, my)
    if name == "contextual":  # jit-only: gated by _is_batched
        return jit_backend().contextual_distance_batch_encoded(X, Y, mx, my)
    return _lev_finalize(name, mx, my, levenshtein_batch_encoded(X, Y, mx, my))


def _evaluate_batched(
    name: str, pairs: Sequence[Tuple[Symbols, Symbols]]
) -> np.ndarray:
    """Batched evaluation of one of the kernel-backed distances."""
    out = np.empty(len(pairs), dtype=np.int64 if name == _LEV_INT else float)
    for bucket in _buckets(pairs, _BUCKET_SIZE):
        chunk = [pairs[p] for p in bucket]
        X, Y, mx, my = encode_batch(chunk)
        out[bucket] = _evaluate_encoded(name, X, Y, mx, my)
    return out


def _evaluate_ids(
    name: str, store: "PairStore", x_ids: np.ndarray, y_ids: np.ndarray
) -> np.ndarray:
    """Batched evaluation of kernel-backed distances over store ids:
    bucket by combined length, *gather* (never re-encode) each bucket's
    kernel inputs out of the store's interned matrices, sweep."""
    sizes = store.lengths[x_ids] + store.lengths[y_ids]
    out = np.empty(len(x_ids), dtype=np.int64 if name == _LEV_INT else float)
    for bucket in _sizes_buckets(sizes.tolist(), _BUCKET_SIZE):
        idx = np.asarray(bucket, dtype=np.int64)
        X, Y, mx, my = store.gather(x_ids[idx], y_ids[idx])
        out[idx] = _evaluate_encoded(name, X, Y, mx, my)
    return out


def _evaluate_unique(
    name: Optional[str],
    fn: Callable,
    pairs: Sequence[Tuple[Symbols, Symbols]],
    raw_pairs: Sequence[Tuple[Any, Any]],
) -> np.ndarray:
    """Evaluate every (already unique) pair, batched when possible.

    Scalar fallbacks are called on ``raw_pairs`` -- each slot's original
    item representations -- so representation-sensitive callables see
    exactly what a plain loop would have handed them; the normalised
    ``pairs`` feed the kernels (and the dedupe that aligned the lists).
    """
    if _is_batched(name):
        return _evaluate_batched(name, pairs)
    return np.asarray([fn(x, y) for x, y in raw_pairs], dtype=float)


#: Worker-lifetime memo of registry resolutions: a persistent-pool
#: worker serves many task shards over its life, and resolving the
#: distance (a registry scan) per shard was pure overhead.  Harmless in
#: per-call pools too (each worker simply resolves once).
_WORKER_FNS: Dict[str, Callable] = {}


def _worker_fn(name: str) -> Callable:
    """Resolve *name* once per worker lifetime."""
    fn = _WORKER_FNS.get(name)
    if fn is None:
        fn = registry.get_distance(name)
        _WORKER_FNS[name] = fn
    return fn


def _mp_evaluate(args: Tuple[str, List[Tuple[Symbols, Symbols]]]) -> np.ndarray:
    """Process-pool worker: evaluate one chunk of pairs by registry name."""
    from . import faults

    faults.worker_task()
    name, chunk = args
    if _is_batched(name):
        return _evaluate_batched(name, chunk)
    fn = _worker_fn(name)
    return np.asarray([fn(x, y) for x, y in chunk], dtype=float)


def _mp_evaluate_ids(
    args: Tuple[str, Any, np.ndarray, np.ndarray],
) -> np.ndarray:
    """Process-pool worker: evaluate one chunk of *id pairs* against a
    shared-memory store publication -- only the name, the token and two
    id arrays crossed the process boundary."""
    from . import faults
    from . import runtime as _runtime

    faults.worker_task()
    name, token, x_ids, y_ids = args
    store, ephemeral = _runtime.attach_store(token)
    try:
        return _evaluate_ids(name, store, x_ids, y_ids)
    finally:
        _runtime.release_attachment(ephemeral)


#: Sentinel for "this chunk failed on this rung" (``None`` is a valid
#: worker return only for broken workers, but keep failure explicit).
_CHUNK_FAILED = object()


def _percall_map(
    worker: Callable[[Any], Any],
    chunks: List[Any],
    sizes: List[Optional[int]],
) -> Optional[List[Any]]:
    """The per-call-pool rung: one disposable pool sized to *chunks*,
    every chunk awaited under its :func:`~repro.batch.runtime.chunk_deadline`
    (all chunks run concurrently, so deadlines are measured from one
    shared submission instant -- a round of failures costs one deadline,
    not one per chunk).  Per-chunk failures come back as
    :data:`_CHUNK_FAILED`; ``None`` when no pool could be created."""
    import multiprocessing

    from . import runtime as _runtime

    try:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platforms without fork
            ctx = multiprocessing.get_context()
        pool = ctx.Pool(processes=len(chunks))
    except Exception:  # pragma: no cover - sandboxed/forbidden fork
        return None
    results: List[Any] = []
    try:
        start = time.monotonic()
        try:
            handles = [pool.apply_async(worker, (chunk,)) for chunk in chunks]
        except Exception:  # pool broke at submit time
            return None
        for handle, size in zip(handles, sizes):
            deadline = _runtime.chunk_deadline(size)
            try:
                if deadline is None:
                    results.append(handle.get())
                else:
                    remaining = start + deadline - time.monotonic()
                    results.append(handle.get(max(0.001, remaining)))
            except Exception:
                results.append(_CHUNK_FAILED)
    finally:
        _runtime.dispose_pool(
            pool, kill=any(r is _CHUNK_FAILED for r in results)
        )
    return results


def _map_chunks(
    worker: Callable[[Any], Any],
    chunks: List[Any],
    workers: int,
    sizes: Optional[List[int]] = None,
    serial: Optional[Callable[[Any], Any]] = None,
) -> List[Any]:
    """Run *chunks* through the degradation ladder.

    Rungs, healthiest first -- every rung computes the very same values
    (same task function, same kernels), so degradation changes latency,
    never results:

    1. the persistent pool under supervision
       (:meth:`~repro.batch.runtime.EngineRuntime.supervised_map`:
       per-chunk deadlines, health-checked pool, fresh-pool retries);
    2. a disposable per-call pool for whatever chunks still failed
       (also the whole path when ``REPRO_PERSISTENT_POOL=0``);
    3. in-process serial evaluation of the stragglers via *serial*
       (defaults to calling *worker* inline) -- cannot fail, so the
       ladder always terminates with complete results.

    Returns the per-chunk results, or ``None`` when pooling was never
    available at all (no fork, no subprocesses) -- the quiet pre-existing
    contract, under which callers evaluate serially themselves.  *sizes*
    (pairs per chunk) scales the supervision deadlines.
    """
    from . import runtime as _runtime

    n = len(chunks)
    all_sizes: List[Optional[int]] = (
        list(sizes) if sizes is not None else [None] * n
    )
    if not _runtime.persistent_pool_enabled():
        parts = _percall_map(worker, chunks, all_sizes)
        if parts is None:
            return None
        if any(r is _CHUNK_FAILED for r in parts):
            # historic contract: a failed per-call pool means the caller
            # re-evaluates serially -- but say so, it's a degradation
            warnings.warn(
                "engine fan-out: per-call pool failed; "
                "falling back to in-process serial evaluation",
                _runtime.DegradedExecutionWarning,
                stacklevel=2,
            )
            _runtime.DEGRADATION.record("serial_fallbacks", n)
            return None
        return parts
    supervised = _runtime.get_runtime().supervised_map(
        worker, chunks, workers, sizes=sizes
    )
    if supervised is None:
        return None  # no pool at all: quiet serial fallback upstream
    results, failed = supervised
    if not failed:
        return results
    _runtime.DEGRADATION.record("percall_fallbacks", len(failed))
    warnings.warn(
        f"engine fan-out: {len(failed)}/{n} chunk(s) still failing after "
        "pool retries; degrading to a per-call pool",
        _runtime.DegradedExecutionWarning,
        stacklevel=2,
    )
    retried = _percall_map(
        worker,
        [chunks[i] for i in failed],
        [all_sizes[i] for i in failed],
    )
    stragglers: List[int] = []
    if retried is None:
        stragglers = failed
    else:
        for part, i in zip(retried, failed):
            if part is _CHUNK_FAILED:
                stragglers.append(i)
            else:
                results[i] = part
    if not stragglers:
        return results
    _runtime.DEGRADATION.record("serial_fallbacks", len(stragglers))
    warnings.warn(
        f"engine fan-out: {len(stragglers)}/{n} chunk(s) degraded to "
        "in-process serial evaluation",
        _runtime.DegradedExecutionWarning,
        stacklevel=2,
    )
    run = serial if serial is not None else worker
    for i in stragglers:
        results[i] = run(chunks[i])
    return results


def _fan_out(
    name: str,
    pairs: List[Tuple[Symbols, Symbols]],
    workers: int,
) -> Optional[np.ndarray]:
    """Evaluate *pairs* across a process pool; None if the pool fails.

    Chunks are contiguous slices of the (caller-sorted) pair list; child
    processes re-resolve the distance from its registry *name*, so only
    strings/tuples cross the process boundary.
    """
    chunk_count = min(workers, max(1, len(pairs) // _min_pairs_per_worker()))
    if chunk_count < 2:
        return None
    bounds = np.linspace(0, len(pairs), chunk_count + 1).astype(int)
    chunks = [
        (name, pairs[bounds[c] : bounds[c + 1]]) for c in range(chunk_count)
    ]
    sizes = [len(chunk[1]) for chunk in chunks]
    parts = _map_chunks(_mp_evaluate, chunks, chunk_count, sizes=sizes)
    if parts is None:
        return None
    return np.concatenate(parts)


def _fan_out_ids(
    name: str,
    store: "PairStore",
    x_ids: np.ndarray,
    y_ids: np.ndarray,
    workers: int,
) -> Optional[np.ndarray]:
    """Evaluate id pairs across the persistent pool via a shared-memory
    publication of *store*; None when anything is unavailable (the
    caller then evaluates serially -- identical values).

    The corpus block is published once per corpus and cached by every
    worker for its lifetime; the per-call query block is published
    ephemerally and unlinked as soon as the call returns.  Only the id
    arrays travel per task.
    """
    from . import runtime as _runtime

    if not _runtime.persistent_pool_enabled():
        return None
    chunk_count = min(workers, max(1, len(x_ids) // _min_pairs_per_worker()))
    if chunk_count < 2:
        return None
    rt = _runtime.get_runtime()
    token = rt.publish_store(store)
    if token is None:
        return None
    bounds = np.linspace(0, len(x_ids), chunk_count + 1).astype(int)
    chunks = [
        (name, token, x_ids[bounds[c] : bounds[c + 1]], y_ids[bounds[c] : bounds[c + 1]])
        for c in range(chunk_count)
    ]
    sizes = [int(bounds[c + 1] - bounds[c]) for c in range(chunk_count)]

    def _serial(chunk: Tuple[str, Any, np.ndarray, np.ndarray]) -> np.ndarray:
        # the ladder's last rung must not depend on shared memory (the
        # publication may be the very thing that failed): evaluate the
        # chunk's ids against the master-side store instead
        _name, _token, cx, cy = chunk
        return _evaluate_ids(_name, store, cx, cy)

    try:
        parts = _map_chunks(
            _mp_evaluate_ids, chunks, chunk_count, sizes=sizes, serial=_serial
        )
    finally:
        rt.release_block(token.extra)
    if parts is None:
        return None
    return np.concatenate(parts)


def pairwise_values(
    distance: DistanceLike,
    pairs: Sequence[Tuple[Any, Any]],
    *,
    workers: Workers = "auto",
) -> np.ndarray:
    """Evaluate *distance* over *pairs*, returning an aligned 1-D array.

    ``distance`` is a registry name, a registered distance function, the
    raw :func:`~repro.core.levenshtein.levenshtein_distance`, or any other
    callable (scalar fallback).  Repeated pairs are computed once; for
    registered distances ``x == y`` pairs are 0 without computation.
    Inputs are normalised with :func:`~repro.core.types.as_symbols`, so
    equal content in different representations (``"ab"`` vs
    ``("a", "b")``) also dedupes.

    ``workers`` defaults to ``"auto"``: unique-pair chunks fan out over a
    process pool whenever the machine has more than one core and every
    worker would receive at least ``_MIN_PAIRS_PER_WORKER`` pairs (only
    for distances resolvable by registry name; silently serial when the
    platform forbids subprocesses).  An integer forces the pool size;
    ``None``/``0``/``1`` force serial evaluation.

    Unregistered callables are always invoked on the *original* item
    representations (the normalised form only keys the dedupe), so
    representation-sensitive callables behave exactly as in a plain
    loop; note that of several raw pairs sharing one normalised key only
    the first is evaluated.  Items that are not symbol sequences (or
    whose symbols are not hashable) cannot be normalised or deduplicated
    at all; such pairs are evaluated with a plain scalar loop so
    arbitrary item types keep working through the index layer.
    """
    n = len(pairs)
    name, fn = _resolve(distance)
    registered = name is not None
    slot_of: Dict[Tuple[Symbols, Symbols], int] = {}
    unique: List[Tuple[Symbols, Symbols]] = []
    unique_raw: List[Tuple[Any, Any]] = []  # first-seen raw pair per slot
    take_from = np.empty(n, dtype=np.int64)
    zero_mask = np.zeros(n, dtype=bool)
    try:
        for p, (raw_x, raw_y) in enumerate(pairs):
            pair = (as_symbols(raw_x), as_symbols(raw_y))
            if registered and pair[0] == pair[1]:
                zero_mask[p] = True
                take_from[p] = -1
                continue
            slot = slot_of.get(pair)
            if slot is None:
                slot = len(unique)
                slot_of[pair] = slot
                unique.append(pair)
                unique_raw.append((raw_x, raw_y))
            take_from[p] = slot
    except TypeError:
        # non-sequence items or unhashable symbols: registered distances
        # could not have accepted them anyway, so this is the arbitrary-
        # callable case -- evaluate verbatim, pair by pair
        return np.asarray([fn(x, y) for x, y in pairs], dtype=float)
    values: Optional[np.ndarray] = None
    n_workers = _resolve_workers(workers, len(unique), registered)
    if n_workers > 1 and unique:
        values = _fan_out(name, unique, n_workers)
    if values is None:
        values = _evaluate_unique(name, fn, unique, unique_raw)
    if len(unique):
        dtype = values.dtype
    else:
        dtype = np.int64 if name == _LEV_INT else float
    out = np.zeros(n, dtype=dtype)
    filled = ~zero_mask
    if filled.any():
        out[filled] = values[take_from[filled]]
    return out


def pairwise_values_ids(
    distance: DistanceLike,
    store: "PairStore",
    x_ids: Sequence[int],
    y_ids: Sequence[int],
    *,
    workers: Workers = "auto",
) -> np.ndarray:
    """:func:`pairwise_values` over interned store ids.

    ``store`` is a :class:`~repro.batch.corpus.PairStore`; entry ``p``
    equals ``pairwise_values(distance, [(store.raw(x_ids[p]),
    store.raw(y_ids[p]))])[0]`` bit for bit, but kernel inputs are
    *gathered* from the store's encoded matrices instead of re-encoded,
    deduplication keys on integer id pairs instead of content, and
    sharded fan-out ships only id arrays against a shared-memory
    publication of the store (persistent pool).  Distances without a
    batched kernel path fall back to :func:`pairwise_values` on the
    stored raw items -- identical behaviour, including for arbitrary
    representation-sensitive callables.

    Two deliberate differences from content-keyed dedupe: distinct ids
    holding equal content are evaluated per id pair (their kernel result
    is identical), and the ``x == y`` shortcut triggers on ``id_x ==
    id_y`` (duplicated items still evaluate to the same 0.0 through the
    kernels).
    """
    x_ids = np.asarray(x_ids, dtype=np.int64)
    y_ids = np.asarray(y_ids, dtype=np.int64)
    if len(x_ids) != len(y_ids):
        raise ValueError(
            f"{len(x_ids)} x_ids but {len(y_ids)} y_ids; they must align"
        )
    n = len(x_ids)
    name, _ = _resolve(distance)
    if name is None or not _is_batched(name):
        pairs = [
            (store.raw(int(i)), store.raw(int(j)))
            for i, j in zip(x_ids, y_ids)
        ]
        return pairwise_values(distance, pairs, workers=workers)
    dtype = np.int64 if name == _LEV_INT else float
    out = np.zeros(n, dtype=dtype)
    if n == 0:
        return out
    # id-level dedupe: one composite key per ordered id pair
    n_store = len(store)
    composite = x_ids * n_store + y_ids
    uniq, take_from = np.unique(composite, return_inverse=True)
    ux = uniq // n_store
    uy = uniq % n_store
    # registered x == y shortcut on ids (values stay 0 either way)
    nonzero = np.nonzero(ux != uy)[0]
    values = np.zeros(len(uniq), dtype=dtype)
    if len(nonzero):
        ux_nz, uy_nz = ux[nonzero], uy[nonzero]
        n_workers = _resolve_workers(workers, len(nonzero), True)
        part: Optional[np.ndarray] = None
        if n_workers > 1:
            part = _fan_out_ids(name, store, ux_nz, uy_nz, n_workers)
        if part is None:
            part = _evaluate_ids(name, store, ux_nz, uy_nz)
        values[nonzero] = part
    out[:] = values[take_from]
    return out


def _lev_bounded_int(
    m: int, n: int, limit: float, d: int, exact: bool
) -> int:
    """Replay :func:`~repro.core.levenshtein.levenshtein_bounded` from a
    banded-kernel result: same exact-below / above-limit values, no DP.

    ``exact`` records whether the kernel proved ``d`` is the true
    distance (its budget always covers this request's, so ``not exact``
    implies the true distance exceeds every bound tested here).
    """
    if limit >= m + n:
        return d  # budget == m + n: the kernel was exact
    bound = int(limit) if limit >= 0 else -1
    if bound < 0:
        return 0 if exact and d == 0 else max(abs(m - n), 1)
    if exact and d <= bound:
        return d
    return max(bound + 1, abs(m - n))


def _replay_bounded_lev(
    name: str, m: int, n: int, limit: float, d: int, exact: bool
) -> float:
    """Replay the Levenshtein-family bounded twin at *limit* from a banded
    batch-kernel result.

    Each branch mirrors the matching function in :mod:`repro.core.bounded`
    expression by expression; the scalar twins decide "exact vs pruned" by
    comparing their banded DP result against the edit budget ``k``, and
    that comparison is equivalent to ``true d_E <= k``.  The batch kernel
    ran with the *maximum* budget over this pair's requests, so ``exact
    and d <= k`` is exactly that test (``not exact`` means the true
    distance exceeds the kernel budget, hence every request's ``k``), and
    replaying reproduces the scalar values bit for bit (asserted by the
    tests against :meth:`CountingDistance.within`).  Lengths suffice:
    the one branch that used to compare symbols (``d_min`` with an empty
    side) holds iff both sides are empty.
    """
    if limit == _INF:  # within() skips the twin entirely at +inf
        return _lev_value(name, m, n, d)  # budget == total: exact
    if name in ("levenshtein", _LEV_INT):
        value = _lev_bounded_int(m, n, limit, d, exact)
        return value if name == _LEV_INT else float(value)
    if name == "dmax":
        longest = max(m, n)
        if longest == 0:
            return 0.0
        k = _edit_budget(limit * longest)
        return d / longest if exact and d <= k else (k + 1) / longest
    if name == "dsum":
        total = m + n
        if total == 0:
            return 0.0
        k = _edit_budget(limit * total)
        return d / total if exact and d <= k else (k + 1) / total
    if name == "dmin":
        shortest = min(m, n)
        if shortest == 0:
            # x == y iff both empty: equal content implies equal lengths
            return 0.0 if m == n else float("inf")
        k = _edit_budget(limit * shortest)
        return d / shortest if exact and d <= k else (k + 1) / shortest
    if name == "yujian_bo":
        total = m + n
        if total == 0:
            return 0.0
        if limit >= 1.0:
            return 2.0 * d / (total + d)  # budget == total: exact
        k = 0 if limit < 0.0 else _edit_budget(limit * total / (2.0 - limit))
        if exact and d <= k:
            return 2.0 * d / (total + d)
        return 2.0 * (k + 1) / (total + k + 1)
    raise AssertionError(  # pragma: no cover - guarded by _LEV_FAMILY
        f"not a levenshtein-family name: {name}"
    )


def _replay_bounded_contextual(
    same: bool, m: int, n: int, limit: float, d_e: int, ni: int, exact: bool
) -> float:
    """Replay ``bounded_contextual_heuristic`` from a banded twin-table
    kernel result.

    The twin's banded DP recovers exactly these integers whenever
    ``d_E`` fits the edit budget (``exact`` from the kernel, whose
    budget covers this request's), so the canonical-cost branch is
    bit-identical; the pruned branches replay the twin's closed forms.
    ``same`` is the twin's leading ``x == y`` shortcut (callers decide
    it from content or from interned encoded rows).
    """
    if same:
        return 0.0
    total = m + n
    k = total if limit == _INF else contextual_edit_budget(limit, total)
    if exact and (k >= total or d_e <= k):
        cost = canonical_cost(m, n, d_e, ni)
        if cost is None:  # pragma: no cover - DP guarantees feasibility
            raise AssertionError(f"infeasible heuristic ({m}, {n}) slot")
        return cost
    if abs(m - n) > k:
        return contextual_pruned_value(max(k, abs(m - n) - 1), total)
    return contextual_pruned_value(k, total)


def _kernel_budget(name: str, m: int, n: int, limit: float) -> int:
    """The edit budget the banded kernel must honour for one request.

    Derived by inverting each twin's normalisation exactly as the scalar
    functions in :mod:`repro.core.bounded` do; the replay needs the true
    ``d_E`` (and ``Ni``) precisely when it is at most this bound, and
    only closed forms of the lengths and the limit otherwise.  Requests
    whose replay always needs the exact value (``inf`` limits, budgets
    past the table) return the pair's combined length, which makes the
    band cover the whole table.
    """
    total = m + n
    if limit == _INF:
        return total
    if name == "contextual_heuristic":
        k = contextual_edit_budget(limit, total)
    elif name in ("levenshtein", _LEV_INT):
        if limit >= total:
            return total
        k = int(limit) if limit >= 0 else -1
    elif name == "dmax":
        longest = max(m, n)
        if longest == 0:
            return 0
        k = _edit_budget(limit * longest)
    elif name == "dsum":
        if total == 0:
            return 0
        k = _edit_budget(limit * total)
    elif name == "dmin":
        shortest = min(m, n)
        if shortest == 0:
            return 0
        k = _edit_budget(limit * shortest)
    elif name == "yujian_bo":
        if limit >= 1.0:
            return total
        k = 0 if limit < 0.0 else _edit_budget(limit * total / (2.0 - limit))
    else:  # pragma: no cover - guarded by the caller
        return total
    return min(max(k, 0), total)


def pairwise_values_bounded(
    distance: DistanceLike,
    pairs: Sequence[Tuple[Any, Any]],
    limits: Sequence[float],
    *,
    workers: Workers = None,
) -> np.ndarray:
    """Early-exit twin of :func:`pairwise_values` with per-pair limits.

    Entry ``i`` equals what ``CountingDistance.within(x_i, y_i,
    limits[i])`` returns -- bit for bit -- so a batched candidate phase
    (the lockstep ``bulk_knn`` drivers) can group the bounded candidate
    evaluations of many queries into one call without perturbing any
    search result:

    * exact value whenever the true distance is ``<= limits[i]``;
    * some value ``> limits[i]`` otherwise;
    * ``limits[i] == inf`` (or a distance without a registered twin)
      degrades to the full distance, exactly like ``within``.

    Kernel-backed distances (the Levenshtein family and the contextual
    heuristic) run one deduplicated *banded* batched sweep: each unique
    pair carries the widest edit budget over its requests into the
    kernels of :mod:`repro.batch.kernels`, which clamp the anti-diagonal
    window to the bucket's widest surviving band and retire pairs whose
    diagonal minima bust their budget -- tight limits touch a thin
    stripe of the padded tables instead of all of them.  Each request's
    bounded arithmetic is then replayed at its own limit from the
    ``(value, exact)`` kernel result; buckets with nothing to prune (and
    runs under ``REPRO_BANDED_BATCH=0``) fall back to the full-table
    kernels, bit-identically.  ``marzal_vidal`` requests run the batched
    banded *parametric* kernel: every unique banded-regime ``(pair,
    limit)`` probe joins one anti-diagonal float sweep whose scores are
    bit-identical to the scalar probe, and only probes that cannot prune
    pay a full Dinkelbach evaluation (``REPRO_BANDED_BATCH=0`` restores
    the one-scalar-probe-per-request loop).  Remaining twins evaluate
    the scalar twin per unique ``(pair, limit)``.  ``workers`` is
    accepted for signature parity but the bounded path always runs
    serially -- the lockstep drivers call it once per (small) round,
    where a pool could never amortise.
    """
    n = len(pairs)
    if len(limits) != n:
        raise ValueError(
            f"{n} pairs but {len(limits)} limits; they must align"
        )
    name, fn = _resolve(distance)
    bounded_fn = bounded_for(fn)
    if bounded_fn is None:
        # no early-exit twin registered: within() falls back to the full
        # distance at every limit, and so does the batched path
        return pairwise_values(distance, pairs, workers=workers)
    if name == "marzal_vidal" and _banded_batch_enabled():
        return _bounded_mv_raw(fn, bounded_fn, pairs, limits)
    if name not in _LEV_FAMILY and name != "contextual_heuristic":
        # scalar twin (e.g. d_MV's banded parametric probe): dedupe on
        # (pair, limit) and call the twin exactly as within() would
        out = np.empty(n, dtype=float)
        cache: Dict[Tuple[Symbols, Symbols, float], float] = {}
        for p, ((raw_x, raw_y), raw_limit) in enumerate(zip(pairs, limits)):
            limit = float(raw_limit)
            try:
                # items with unhashable symbols normalise but cannot key
                # the cache; evaluate them verbatim like within() would
                key = (as_symbols(raw_x), as_symbols(raw_y), limit)
                value = cache.get(key)
            except TypeError:
                key = None
                value = None
            if value is None:
                if limit == _INF:
                    value = fn(raw_x, raw_y)
                else:
                    value = bounded_fn(raw_x, raw_y, limit)
                if key is not None:
                    cache[key] = value
            out[p] = value
        return out
    try:
        norm = [(as_symbols(x), as_symbols(y)) for x, y in pairs]
        slot_of: Dict[Tuple[Symbols, Symbols], int] = {}
        unique: List[Tuple[Symbols, Symbols]] = []
        take = np.empty(n, dtype=np.int64)
        for p, pair in enumerate(norm):
            slot = slot_of.get(pair)
            if slot is None:
                slot = len(unique)
                slot_of[pair] = slot
                unique.append(pair)
            take[p] = slot
    except TypeError:
        # non-normalisable items, or symbols the dedupe cannot hash (the
        # batch kernels could not encode them either): mirror within()
        # pair by pair -- the scalar twins only compare symbols by ==
        return np.asarray(
            [
                fn(x, y)
                if float(limit) == _INF
                else bounded_fn(x, y, float(limit))
                for (x, y), limit in zip(pairs, limits)
            ],
            dtype=float,
        )
    contextual = name == "contextual_heuristic"
    # Per-unique-pair kernel budget: the widest budget over that pair's
    # requests.  Exactness at the maximum budget decides every smaller
    # one (exact there and d <= k, or provably above every k).
    limits_f = [float(limit) for limit in limits]
    bounds = np.zeros(len(unique), dtype=np.int64)
    for p, (x, y) in enumerate(norm):
        slot = take[p]
        budget = _kernel_budget(name, len(x), len(y), limits_f[p])
        if budget > bounds[slot]:
            bounds[slot] = budget
    banded_enabled = _banded_batch_enabled()
    d_unique = np.zeros(len(unique), dtype=np.int64)
    ni_unique = np.zeros(len(unique), dtype=np.int64)
    exact_unique = np.ones(len(unique), dtype=bool)
    for bucket in _buckets(unique, _BUCKET_SIZE):
        chunk = [unique[i] for i in bucket]
        chunk_bounds = bounds[bucket]
        # full-table fallback: when no budget in the bucket is below its
        # pair's combined length the band covers every table anyway, so
        # the plain kernels (no window/retirement bookkeeping) win
        banded = banded_enabled and bool(
            (
                chunk_bounds
                < np.asarray([len(x) + len(y) for x, y in chunk])
            ).any()
        )
        if contextual:
            if banded:
                d_chunk, ni_chunk, exact_chunk = (
                    contextual_heuristic_batch_bounded(chunk, chunk_bounds)
                )
                exact_unique[bucket] = exact_chunk
            else:
                d_chunk, ni_chunk = contextual_heuristic_batch(chunk)
            d_unique[bucket] = d_chunk
            ni_unique[bucket] = ni_chunk
        else:
            if banded:
                d_chunk, exact_chunk = levenshtein_batch_bounded(
                    chunk, chunk_bounds
                )
                exact_unique[bucket] = exact_chunk
            else:
                d_chunk = levenshtein_batch(chunk)
            d_unique[bucket] = d_chunk
    out = np.empty(n, dtype=np.int64 if name == _LEV_INT else float)
    for p, (x, y) in enumerate(norm):
        slot = int(take[p])
        limit = limits_f[p]
        exact = bool(exact_unique[slot])
        if contextual:
            out[p] = _replay_bounded_contextual(
                x == y,
                len(x),
                len(y),
                limit,
                int(d_unique[slot]),
                int(ni_unique[slot]),
                exact,
            )
        else:
            out[p] = _replay_bounded_lev(
                name, len(x), len(y), limit, int(d_unique[slot]), exact
            )
    return out


def _mv_bounded_values(
    bounded_fn: Callable,
    syms: List[Tuple[Symbols, Symbols]],
    sames: List[bool],
    limits: List[float],
    gather: Optional[Callable] = None,
) -> np.ndarray:
    """Bounded ``d_MV`` values for a list of unique requests.

    Every request is classified by :func:`~repro.core.bounded.mv_bound_plan`
    (the scalar twin's own regime selector, so the two can never drift):
    closed-form regimes are answered in place, full-table-probe regimes
    call the scalar twin (*bounded_fn* -- it IS that path), and all
    banded-regime probes join length-bucketed
    :func:`~repro.batch.kernels.mv_banded_probe_batch` sweeps whose
    scores are bit-identical to the scalar probe; only probes that fail
    to prune pay a full Dinkelbach evaluation, exactly like the twin.
    ``gather`` (interned dispatch) supplies pre-encoded kernel inputs for
    a list of request positions; without it the probe buckets encode
    their symbol pairs on the fly.
    """
    count = len(syms)
    out = np.empty(count, dtype=float)
    probe: List[int] = []
    probe_band: List[int] = []
    for i in range(count):
        x, y = syms[i]
        if sames[i]:
            out[i] = 0.0
            continue
        tag, aux = mv_bound_plan(len(x), len(y), limits[i])
        if tag == "exact":
            # the limit cannot prune: within() computes the full distance
            # (the registered d_MV function) at inf and the twin does the
            # same from 1.0 up -- one function either way
            out[i] = mv_normalized_distance(x, y)
        elif tag == "pruned":
            out[i] = aux
        elif tag == "full":
            # wide band on long strings: the scalar twin already probes
            # with the full-table parametric kernel there; calling it is
            # the identity-by-construction path
            out[i] = bounded_fn(x, y, limits[i])
        else:
            probe.append(i)
            probe_band.append(int(aux))
    if probe:
        sizes = [len(syms[i][0]) + len(syms[i][1]) for i in probe]
        for bucket in _sizes_buckets(sizes, _BUCKET_SIZE):
            sel = [probe[k] for k in bucket]
            bands = np.asarray([probe_band[k] for k in bucket], dtype=np.int64)
            lams = np.asarray([limits[i] for i in sel], dtype=np.float64)
            if gather is None:
                scores = mv_banded_probe_batch(
                    [syms[i] for i in sel], lams, bands
                )
            else:
                X, Y, mx, my = gather(sel)
                scores = mv_banded_probe_batch_encoded(X, Y, mx, my, lams, bands)
            for k, i in enumerate(sel):
                x, y = syms[i]
                score = float(scores[k])
                if score <= _MV_EPS:
                    out[i] = mv_normalized_distance(x, y)
                else:
                    out[i] = mv_pruned_value(
                        limits[i], len(x) + len(y), int(bands[k]), score
                    )
    return out


def _bounded_mv_raw(
    fn: Callable,
    bounded_fn: Callable,
    pairs: Sequence[Tuple[Any, Any]],
    limits: Sequence[float],
) -> np.ndarray:
    """The ``marzal_vidal`` branch of :func:`pairwise_values_bounded`:
    dedupe on ``(pair, limit)``, answer through :func:`_mv_bounded_values`."""
    n = len(pairs)
    try:
        norm = [(as_symbols(x), as_symbols(y)) for x, y in pairs]
        limits_f = [float(limit) for limit in limits]
        slot_of: Dict[Tuple[Symbols, Symbols, float], int] = {}
        syms: List[Tuple[Symbols, Symbols]] = []
        sames: List[bool] = []
        u_limits: List[float] = []
        take = np.empty(n, dtype=np.int64)
        for p, pair in enumerate(norm):
            key = (pair[0], pair[1], limits_f[p])
            slot = slot_of.get(key)
            if slot is None:
                slot = len(syms)
                slot_of[key] = slot
                syms.append(pair)
                sames.append(pair[0] == pair[1])
                u_limits.append(limits_f[p])
            take[p] = slot
    except TypeError:
        # unhashable symbols: mirror within() pair by pair
        return np.asarray(
            [
                fn(x, y)
                if float(limit) == _INF
                else bounded_fn(x, y, float(limit))
                for (x, y), limit in zip(pairs, limits)
            ],
            dtype=float,
        )
    values = _mv_bounded_values(bounded_fn, syms, sames, u_limits)
    return values[take]


def _bounded_mv_ids(
    bounded_fn: Callable[..., Tuple[float, bool]],
    store: "PairStore",
    x_ids: np.ndarray,
    y_ids: np.ndarray,
    limits: Sequence[float],
) -> np.ndarray:
    """The ``marzal_vidal`` branch of :func:`pairwise_values_bounded_ids`:
    dedupe on ``(id, id, limit)``, gather probe inputs from the store."""
    n = len(x_ids)
    limits_f = [float(limit) for limit in limits]
    slot_of: Dict[Tuple[int, int, float], int] = {}
    u_x: List[int] = []
    u_y: List[int] = []
    u_limits: List[float] = []
    take = np.empty(n, dtype=np.int64)
    for p in range(n):
        key = (int(x_ids[p]), int(y_ids[p]), limits_f[p])
        slot = slot_of.get(key)
        if slot is None:
            slot = len(u_x)
            slot_of[key] = slot
            u_x.append(key[0])
            u_y.append(key[1])
            u_limits.append(limits_f[p])
        take[p] = slot
    syms = [(store.sym(i), store.sym(j)) for i, j in zip(u_x, u_y)]
    sames = [store.same(i, j) for i, j in zip(u_x, u_y)]

    def gather(
        sel: List[int],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        return store.gather(
            np.asarray([u_x[i] for i in sel], dtype=np.int64),
            np.asarray([u_y[i] for i in sel], dtype=np.int64),
        )

    values = _mv_bounded_values(bounded_fn, syms, sames, u_limits, gather)
    return values[take]


def pairwise_values_bounded_ids(
    distance: DistanceLike,
    store: "PairStore",
    x_ids: Sequence[int],
    y_ids: Sequence[int],
    limits: Sequence[float],
) -> np.ndarray:
    """:func:`pairwise_values_bounded` over interned store ids.

    Entry ``p`` is bit-identical to ``CountingDistance.within(
    store.raw(x_ids[p]), store.raw(y_ids[p]), limits[p])`` -- the same
    guarantee as the raw-pair entry point, with the same banded batch
    sweeps -- but deduplication keys on integer id pairs and every kernel
    input is *gathered* from the store's interned matrices instead of
    normalised, hashed and re-encoded per call.  This is what each
    lockstep bulk-query round dispatches
    (:meth:`~repro.index.base.NearestNeighborIndex._lockstep_drive`).

    Distances without a registered twin degrade to full distances
    (:func:`pairwise_values_ids`); twins outside the kernel families
    evaluate the scalar twin per unique ``(id pair, limit)`` on the
    stored raw items, exactly as ``within`` would.
    """
    x_ids = np.asarray(x_ids, dtype=np.int64)
    y_ids = np.asarray(y_ids, dtype=np.int64)
    n = len(x_ids)
    if len(y_ids) != n or len(limits) != n:
        raise ValueError(
            f"{n} x_ids but {len(y_ids)} y_ids and {len(limits)} limits; "
            "they must align"
        )
    name, fn = _resolve(distance)
    bounded_fn = bounded_for(fn)
    if bounded_fn is None:
        # no early-exit twin: within() computes full distances
        return pairwise_values_ids(distance, store, x_ids, y_ids, workers=None)
    if name == "marzal_vidal" and _banded_batch_enabled():
        return _bounded_mv_ids(bounded_fn, store, x_ids, y_ids, limits)
    if name not in _LEV_FAMILY and name != "contextual_heuristic":
        # scalar twin: dedupe on (id pair, limit), call the twin on the
        # stored raw items exactly as within() would
        out = np.empty(n, dtype=float)
        cache: Dict[Tuple[int, int, float], float] = {}
        for p in range(n):
            limit = float(limits[p])
            key = (int(x_ids[p]), int(y_ids[p]), limit)
            value = cache.get(key)
            if value is None:
                raw_x, raw_y = store.raw(key[0]), store.raw(key[1])
                if limit == _INF:
                    value = fn(raw_x, raw_y)
                else:
                    value = bounded_fn(raw_x, raw_y, limit)
                cache[key] = value
            out[p] = value
        return out
    contextual = name == "contextual_heuristic"
    lens = store.lengths
    limits_f = [float(limit) for limit in limits]
    n_store = len(store)
    composite = x_ids * n_store + y_ids
    uniq, take = np.unique(composite, return_inverse=True)
    ux = uniq // n_store
    uy = uniq % n_store
    # Per-unique-pair kernel budget: the widest budget over that pair's
    # requests (exactness at the maximum budget decides every smaller one).
    bounds = np.zeros(len(uniq), dtype=np.int64)
    for p in range(n):
        slot = take[p]
        budget = _kernel_budget(
            name, int(lens[x_ids[p]]), int(lens[y_ids[p]]), limits_f[p]
        )
        if budget > bounds[slot]:
            bounds[slot] = budget
    banded_enabled = _banded_batch_enabled()
    d_unique = np.zeros(len(uniq), dtype=np.int64)
    ni_unique = np.zeros(len(uniq), dtype=np.int64)
    exact_unique = np.ones(len(uniq), dtype=bool)
    sizes = (lens[ux] + lens[uy]).tolist()
    for bucket in _sizes_buckets(sizes, _BUCKET_SIZE):
        idx = np.asarray(bucket, dtype=np.int64)
        X, Y, mx, my = store.gather(ux[idx], uy[idx])
        chunk_bounds = bounds[idx]
        # full-table fallback: when no budget in the bucket is below its
        # pair's combined length the band covers every table anyway
        banded = banded_enabled and bool((chunk_bounds < mx + my).any())
        if contextual:
            if banded:
                d_chunk, ni_chunk, exact_chunk = (
                    contextual_heuristic_batch_bounded_encoded(
                        X, Y, mx, my, chunk_bounds
                    )
                )
                exact_unique[idx] = exact_chunk
            else:
                d_chunk, ni_chunk = contextual_heuristic_batch_encoded(
                    X, Y, mx, my
                )
            d_unique[idx] = d_chunk
            ni_unique[idx] = ni_chunk
        else:
            if banded:
                d_chunk, exact_chunk = levenshtein_batch_bounded_encoded(
                    X, Y, mx, my, chunk_bounds
                )
                exact_unique[idx] = exact_chunk
            else:
                d_chunk = levenshtein_batch_encoded(X, Y, mx, my)
            d_unique[idx] = d_chunk
    out = np.empty(n, dtype=np.int64 if name == _LEV_INT else float)
    same_cache: Dict[int, bool] = {}
    for p in range(n):
        slot = int(take[p])
        limit = limits_f[p]
        exact = bool(exact_unique[slot])
        m, n_len = int(lens[x_ids[p]]), int(lens[y_ids[p]])
        if contextual:
            same = same_cache.get(slot)
            if same is None:
                same = store.same(int(ux[slot]), int(uy[slot]))
                same_cache[slot] = same
            out[p] = _replay_bounded_contextual(
                same,
                m,
                n_len,
                limit,
                int(d_unique[slot]),
                int(ni_unique[slot]),
                exact,
            )
        else:
            out[p] = _replay_bounded_lev(
                name, m, n_len, limit, int(d_unique[slot]), exact
            )
    return out


def pairwise_matrix(
    distance: DistanceLike,
    xs: Sequence[Any],
    ys: Optional[Sequence[Any]] = None,
    *,
    workers: Workers = "auto",
) -> np.ndarray:
    """Full distance matrix ``D[i, j] = d(xs[i], (ys or xs)[j])``.

    When ``ys is None`` the distance is taken to be symmetric: only the
    upper triangle (including the diagonal) is evaluated and mirrored, so
    an ``n x n`` matrix costs ``C(n, 2) + n`` unique-pair evaluations --
    fewer still after dedupe and the registered ``x == y`` shortcut.
    """
    if ys is None:
        n = len(xs)
        flat = pairwise_values(
            distance, _triangle_pairs(xs, 0, n), workers=workers
        )
        matrix = np.zeros((n, n), dtype=flat.dtype)
        _mirror_triangle_strip(matrix, flat, 0, n)
        return matrix
    pairs = [(x, y) for x in xs for y in ys]
    flat = pairwise_values(distance, pairs, workers=workers)
    return flat.reshape(len(xs), len(ys))


def _triangle_pairs(
    xs: Sequence[Any], start: int, stop: int
) -> List[Tuple[Any, Any]]:
    """Upper-triangle pairs (diagonal included) for rows start..stop."""
    n = len(xs)
    return [(xs[i], xs[j]) for i in range(start, stop) for j in range(i, n)]


def _mirror_triangle_strip(
    out: np.ndarray, flat: np.ndarray, start: int, stop: int
) -> None:
    """Write the row strip evaluated by :func:`_triangle_pairs` into
    *out*, mirroring each row's tail into the matching column."""
    n = out.shape[0]
    pos = 0
    for i in range(start, stop):
        row = flat[pos : pos + n - i]
        out[i, i:] = row
        out[i:, i] = row
        pos += n - i


def pairwise_matrix_blocks(
    distance: DistanceLike,
    xs: Sequence[Any],
    ys: Optional[Sequence[Any]] = None,
    *,
    block_rows: int = _BLOCK_ROWS,
    workers: Workers = "auto",
) -> Iterator[Tuple[int, int, np.ndarray]]:
    """Stream the matrix of :func:`pairwise_matrix` as row-block shards.

    Yields ``(start, stop, block)`` where ``block[r]`` holds the distances
    from ``xs[start + r]`` to every column item (``ys``, or ``xs`` itself
    when ``ys is None``).  Peak memory is one ``block_rows x n_cols``
    shard plus that block's unique pairs, so paper-scale gene sets whose
    full matrix exceeds memory can be folded over (or spilled to disk via
    :func:`pairwise_matrix_memmap`).

    Dedupe, the registered ``x == y`` shortcut and ``workers`` sharding
    all apply per block; the cross-diagonal mirroring of
    :func:`pairwise_matrix` does not (a streamed block cannot reuse rows
    that were never materialised), which is the memory-for-compute
    trade-off this entry point exists to make.
    """
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    cols = xs if ys is None else ys
    for start in range(0, len(xs), block_rows):
        stop = min(start + block_rows, len(xs))
        pairs = [(xs[i], c) for i in range(start, stop) for c in cols]
        flat = pairwise_values(distance, pairs, workers=workers)
        yield start, stop, flat.reshape(stop - start, len(cols))


def pairwise_matrix_memmap(
    distance: DistanceLike,
    xs: Sequence[Any],
    ys: Optional[Sequence[Any]] = None,
    *,
    path: Union[str, "os.PathLike[str]"],
    block_rows: int = _BLOCK_ROWS,
    workers: Workers = "auto",
    close: bool = False,
) -> np.memmap:
    """:func:`pairwise_matrix` streamed into an on-disk ``.npy`` memmap.

    Evaluates the matrix block by block (bounded memory, exactly like
    :func:`pairwise_matrix_blocks`) and writes each shard straight into a
    ``numpy.lib.format`` file at *path*, so the result can be reopened in
    a later process with ``np.load(path, mmap_mode="r")``.  The symmetric
    case (``ys is None``) evaluates only upper-triangle row strips and
    mirrors them through the memmap, keeping :func:`pairwise_matrix`'s
    ``C(n, 2) + n`` evaluation saving without holding the matrix in RAM.

    Returns the still-open *writable* memmap (flushed) by default.  With
    ``close=True`` the writable handle is flushed and **closed** before
    returning a fresh read-only mapping of the same file -- long-lived
    consumers (sweep pools, the artifact store) should prefer this: a
    dangling writable mapping holds the file descriptor hostage and one
    stray ``out[...] =`` from a later bug silently corrupts the matrix
    on disk.
    """
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    n_rows = len(xs)
    n_cols = n_rows if ys is None else len(ys)
    out = np.lib.format.open_memmap(
        os.fspath(path), mode="w+", dtype=float, shape=(n_rows, n_cols)
    )
    if ys is None:
        for start in range(0, n_rows, block_rows):
            stop = min(start + block_rows, n_rows)
            flat = pairwise_values(
                distance, _triangle_pairs(xs, start, stop), workers=workers
            )
            _mirror_triangle_strip(out, flat, start, stop)
    else:
        for start, stop, block in pairwise_matrix_blocks(
            distance, xs, ys, block_rows=block_rows, workers=workers
        ):
            out[start:stop] = block
    out.flush()
    if close:
        mm = out._mmap
        del out  # drop the writable view before closing its buffer
        if mm is not None:
            mm.close()
        readonly = np.load(os.fspath(path), mmap_mode="r", allow_pickle=False)
        return cast(np.memmap, readonly)
    return out


def distances_from(
    distance: DistanceLike,
    source: Any,
    targets: Sequence[Any],
    *,
    workers: Workers = "auto",
) -> np.ndarray:
    """Distances from one *source* to every target (one matrix row)."""
    return pairwise_values(
        distance, [(source, t) for t in targets], workers=workers
    )
