"""The pair-batched distance engine.

Every consumer in the library used to compute distances one Python call at
a time.  This module is the bulk entry point they now share:

* :func:`pairwise_values` -- evaluate a distance over an explicit list of
  ``(x, y)`` pairs, deduplicating repeated pairs, shortcutting ``x == y``
  for registered distances, length-bucketing the rest and running the
  pair-batched anti-diagonal kernels of :mod:`repro.batch.kernels` over
  each bucket (with optional :mod:`multiprocessing` fan-out);
* :func:`pairwise_matrix` -- a full distance matrix; when ``ys is None``
  only the upper triangle is computed and mirrored (the symmetric case);
* :func:`pairwise_matrix_blocks` -- the same matrix as a stream of
  row-block shards, so consumers can fold over matrices that would not
  fit in memory (paper-scale gene sets);
* :func:`pairwise_matrix_memmap` -- the streaming evaluation written
  straight into an on-disk ``.npy`` memmap;
* :func:`distances_from` -- one item against many (pivot rows, linear
  scans).

Sharding is automatic: every entry point defaults to ``workers="auto"``,
which fans unique-pair chunks over a process pool whenever the machine
has more than one core and every worker would receive at least
``_MIN_PAIRS_PER_WORKER`` pairs -- big consumers (Table 2 trials, AESA
preprocessing, histogram sweeps, bulk query phases) parallelise without
opting in pair-list by pair-list.  Pass an integer to force a pool size,
or ``None``/``0``/``1`` to force serial evaluation.

Which distances are batched
---------------------------
``levenshtein`` and the length-ratio family (``dmax``, ``dsum``,
``dmin``, ``yujian_bo``) reduce to one batched ``d_E`` sweep plus a
closed-form per-pair normalisation; ``contextual_heuristic`` reduces to
the batched twin-table sweep plus one ``canonical_cost`` evaluation per
pair.  The final per-pair arithmetic deliberately replays the *scalar*
implementations' expressions so batch results are bit-identical to the
scalar ones (asserted by the tests).  Everything else (exact ``d_C``,
``d_MV``, arbitrary user callables) falls back to one scalar call per
*unique* pair -- the dedupe and symmetry savings still apply.
"""

from __future__ import annotations

import os
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core import registry
from ..core._kernels import jit_backend
from ..core.bounded import (
    _edit_budget,
    bounded_for,
    contextual_edit_budget,
    contextual_pruned_value,
)
from ..core.contextual import canonical_cost
from ..core.levenshtein import levenshtein_distance
from ..core.types import Symbols, as_symbols
from .kernels import (
    contextual_heuristic_batch,
    contextual_heuristic_batch_bounded,
    levenshtein_batch,
    levenshtein_batch_bounded,
)

__all__ = [
    "pairwise_values",
    "pairwise_values_bounded",
    "pairwise_matrix",
    "pairwise_matrix_blocks",
    "pairwise_matrix_memmap",
    "distances_from",
]

_INF = float("inf")

DistanceLike = Union[str, Callable[[Any, Any], float]]

#: ``workers`` accepted by every entry point: ``"auto"`` (default),
#: a pool size, or ``None``/``0``/``1`` for serial evaluation.
Workers = Union[int, str, None]

#: Internal name for the raw (int-valued) Levenshtein function.
_LEV_INT = "__levenshtein_int__"

#: Registered names whose value is a closed form of ``d_E`` and lengths.
_LEV_FAMILY = ("levenshtein", "dmax", "dsum", "dmin", "yujian_bo", _LEV_INT)

#: Default number of pairs per kernel bucket: large enough to amortise the
#: per-diagonal numpy dispatch over many pairs, small enough that padding
#: (pairs are sorted by combined length first) stays modest.
_BUCKET_SIZE = 256

#: Minimum unique-pair count before a process pool is worth its start-up.
#: Overridable fleet-wide via the ``REPRO_MIN_PAIRS_PER_WORKER``
#: environment variable (read per call, see :func:`_min_pairs_per_worker`).
_MIN_PAIRS_PER_WORKER = 512


def _min_pairs_per_worker() -> int:
    """The sharding threshold, honouring ``REPRO_MIN_PAIRS_PER_WORKER``."""
    env = os.environ.get("REPRO_MIN_PAIRS_PER_WORKER")
    if env is not None and env.strip():
        return int(env)
    return _MIN_PAIRS_PER_WORKER


def _banded_batch_enabled() -> bool:
    """Whether :func:`pairwise_values_bounded` may use the banded batch
    kernels; ``REPRO_BANDED_BATCH=0`` forces the full-table fallback
    (identical values, more padded work -- a debugging escape hatch)."""
    return os.environ.get("REPRO_BANDED_BATCH", "").strip().lower() not in {
        "0",
        "off",
        "false",
        "no",
    }


def _is_batched(name: Optional[str]) -> bool:
    """Whether *name* has a batched kernel path in `_evaluate_batched`.

    The Levenshtein family and the contextual heuristic always do; exact
    ``d_C`` and ``d_MV`` gain one when the numba backend is active (their
    compiled per-pair kernels run a whole bucket per call)."""
    if name in _LEV_FAMILY or name == "contextual_heuristic":
        return True
    return name in ("marzal_vidal", "contextual") and jit_backend() is not None

#: Default row-block height for the streaming matrix entry points.
_BLOCK_ROWS = 256


def _cpu_count() -> int:
    """Worker budget for ``workers="auto"`` (monkeypatched in tests)."""
    return os.cpu_count() or 1


def _resolve_workers(workers: Workers, n_unique: int, registered: bool) -> int:
    """Turn the ``workers`` argument into a concrete pool size (<2 = serial).

    ``"auto"`` shards over all cores when the distance is resolvable by
    registry name (a prerequisite for crossing the process boundary), the
    process may fork (not already a pool worker), and every worker would
    receive at least ``_MIN_PAIRS_PER_WORKER`` unique pairs -- i.e. when
    ``n_unique // cpu_count >= _MIN_PAIRS_PER_WORKER``.
    """
    if isinstance(workers, str) and workers != "auto":
        raise ValueError(
            f"workers must be 'auto', an int, or None; got {workers!r}"
        )
    if not registered or n_unique == 0:
        return 0
    if workers == "auto":
        import multiprocessing

        if multiprocessing.current_process().daemon:
            return 0  # pool workers cannot spawn nested pools
        cpus = _cpu_count()
        if cpus >= 2 and n_unique // cpus >= _min_pairs_per_worker():
            return cpus
        return 0
    if workers is None:
        return 0
    return int(workers)


def _resolve(distance: DistanceLike) -> Tuple[Optional[str], Callable]:
    """Map *distance* to ``(batch_name, scalar_fn)``.

    ``batch_name`` is the registry name driving the batched fast path, or
    ``None`` for unregistered callables (scalar fallback).
    """
    if isinstance(distance, str):
        return distance, registry.get_distance(distance)
    if distance is levenshtein_distance:
        return _LEV_INT, distance
    for spec in registry.list_distances():
        if spec.function is distance:
            return spec.name, distance
    return None, distance


def _lev_value(name: str, x: Symbols, y: Symbols, d: int):
    """One normalised value from an exact ``d_E``, replaying the scalar
    expressions of :mod:`repro.core.ratios` / :mod:`repro.core.yujian_bo`
    exactly so the floats are bit-identical to the scalar functions."""
    m, n = len(x), len(y)
    if name == _LEV_INT:
        return d
    if name == "levenshtein":
        return float(d)
    if name == "dmax":
        longest = max(m, n)
        return d / longest if longest else 0.0
    if name == "dsum":
        total = m + n
        return d / total if total else 0.0
    if name == "dmin":
        shortest = min(m, n)
        if shortest == 0:
            return 0.0 if x == y else float("inf")
        return d / shortest
    if name == "yujian_bo":
        return 2.0 * d / (m + n + d) if (m or n) else 0.0
    raise AssertionError(  # pragma: no cover - guarded by _LEV_FAMILY
        f"not a levenshtein-family name: {name}"
    )


def _lev_finalize(
    name: str, pairs: Sequence[Tuple[Symbols, Symbols]], d_e: np.ndarray
) -> np.ndarray:
    """Apply the scalar normalisation formulas to batched ``d_E`` values."""
    if name == _LEV_INT:
        return d_e.copy()
    out = np.empty(len(pairs), dtype=float)
    for p, (x, y) in enumerate(pairs):
        out[p] = _lev_value(name, x, y, int(d_e[p]))
    return out


def _buckets(
    pairs: Sequence[Tuple[Symbols, Symbols]], bucket_size: int
) -> List[List[int]]:
    """Group pair indices by combined length to keep kernel padding low.

    Pairs are sorted by ``|x| + |y|`` and chunked; a chunk also closes
    early when the next pair is much longer than the chunk's first (so one
    gene never drags a bucket of words up to its padding).
    """
    order = sorted(range(len(pairs)), key=lambda p: len(pairs[p][0]) + len(pairs[p][1]))
    buckets: List[List[int]] = []
    current: List[int] = []
    first_size = 0
    for p in order:
        size = len(pairs[p][0]) + len(pairs[p][1])
        if current and (
            len(current) >= bucket_size or size > 2 * first_size + 16
        ):
            buckets.append(current)
            current = []
        if not current:
            first_size = size
        current.append(p)
    if current:
        buckets.append(current)
    return buckets


def _evaluate_batched(
    name: str, pairs: Sequence[Tuple[Symbols, Symbols]]
) -> np.ndarray:
    """Batched evaluation of one of the kernel-backed distances."""
    out = np.empty(len(pairs), dtype=np.int64 if name == _LEV_INT else float)
    for bucket in _buckets(pairs, _BUCKET_SIZE):
        chunk = [pairs[p] for p in bucket]
        if name == "contextual_heuristic":
            d_e, ni = contextual_heuristic_batch(chunk)
            for slot, p in enumerate(bucket):
                x, y = pairs[p]
                if x == y:
                    out[p] = 0.0
                    continue
                cost = canonical_cost(
                    len(x), len(y), int(d_e[slot]), int(ni[slot])
                )
                if cost is None:  # pragma: no cover - DP guarantees feasibility
                    raise AssertionError(
                        f"infeasible heuristic for {x!r}, {y!r}"
                    )
                out[p] = cost
        elif name == "marzal_vidal":  # jit-only: gated by _is_batched
            out[bucket] = jit_backend().mv_distance_batch(chunk)
        elif name == "contextual":  # jit-only: gated by _is_batched
            out[bucket] = jit_backend().contextual_distance_batch(chunk)
        else:
            values = _lev_finalize(name, chunk, levenshtein_batch(chunk))
            out[bucket] = values
    return out


def _evaluate_unique(
    name: Optional[str],
    fn: Callable,
    pairs: Sequence[Tuple[Symbols, Symbols]],
    raw_pairs: Sequence[Tuple[Any, Any]],
) -> np.ndarray:
    """Evaluate every (already unique) pair, batched when possible.

    Scalar fallbacks are called on ``raw_pairs`` -- each slot's original
    item representations -- so representation-sensitive callables see
    exactly what a plain loop would have handed them; the normalised
    ``pairs`` feed the kernels (and the dedupe that aligned the lists).
    """
    if _is_batched(name):
        return _evaluate_batched(name, pairs)
    return np.asarray([fn(x, y) for x, y in raw_pairs], dtype=float)


def _mp_evaluate(args: Tuple[str, List[Tuple[Symbols, Symbols]]]) -> np.ndarray:
    """Process-pool worker: evaluate one chunk of pairs by registry name."""
    name, chunk = args
    if _is_batched(name):
        return _evaluate_batched(name, chunk)
    return np.asarray(
        [registry.get_distance(name)(x, y) for x, y in chunk], dtype=float
    )


def _fan_out(
    name: str,
    pairs: List[Tuple[Symbols, Symbols]],
    workers: int,
) -> Optional[np.ndarray]:
    """Evaluate *pairs* across a process pool; None if the pool fails.

    Chunks are contiguous slices of the (caller-sorted) pair list; child
    processes re-resolve the distance from its registry *name*, so only
    strings/tuples cross the process boundary.
    """
    import multiprocessing

    chunk_count = min(workers, max(1, len(pairs) // _min_pairs_per_worker()))
    if chunk_count < 2:
        return None
    bounds = np.linspace(0, len(pairs), chunk_count + 1).astype(int)
    chunks = [
        (name, pairs[bounds[c] : bounds[c + 1]]) for c in range(chunk_count)
    ]
    try:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platforms without fork
            ctx = multiprocessing.get_context()
        with ctx.Pool(processes=chunk_count) as pool:
            parts = pool.map(_mp_evaluate, chunks)
    except Exception:  # pragma: no cover - sandboxed/forbidden fork
        return None
    return np.concatenate(parts)


def pairwise_values(
    distance: DistanceLike,
    pairs: Sequence[Tuple[Any, Any]],
    *,
    workers: Workers = "auto",
) -> np.ndarray:
    """Evaluate *distance* over *pairs*, returning an aligned 1-D array.

    ``distance`` is a registry name, a registered distance function, the
    raw :func:`~repro.core.levenshtein.levenshtein_distance`, or any other
    callable (scalar fallback).  Repeated pairs are computed once; for
    registered distances ``x == y`` pairs are 0 without computation.
    Inputs are normalised with :func:`~repro.core.types.as_symbols`, so
    equal content in different representations (``"ab"`` vs
    ``("a", "b")``) also dedupes.

    ``workers`` defaults to ``"auto"``: unique-pair chunks fan out over a
    process pool whenever the machine has more than one core and every
    worker would receive at least ``_MIN_PAIRS_PER_WORKER`` pairs (only
    for distances resolvable by registry name; silently serial when the
    platform forbids subprocesses).  An integer forces the pool size;
    ``None``/``0``/``1`` force serial evaluation.

    Unregistered callables are always invoked on the *original* item
    representations (the normalised form only keys the dedupe), so
    representation-sensitive callables behave exactly as in a plain
    loop; note that of several raw pairs sharing one normalised key only
    the first is evaluated.  Items that are not symbol sequences (or
    whose symbols are not hashable) cannot be normalised or deduplicated
    at all; such pairs are evaluated with a plain scalar loop so
    arbitrary item types keep working through the index layer.
    """
    n = len(pairs)
    name, fn = _resolve(distance)
    registered = name is not None
    slot_of: Dict[Tuple[Symbols, Symbols], int] = {}
    unique: List[Tuple[Symbols, Symbols]] = []
    unique_raw: List[Tuple[Any, Any]] = []  # first-seen raw pair per slot
    take_from = np.empty(n, dtype=np.int64)
    zero_mask = np.zeros(n, dtype=bool)
    try:
        for p, (raw_x, raw_y) in enumerate(pairs):
            pair = (as_symbols(raw_x), as_symbols(raw_y))
            if registered and pair[0] == pair[1]:
                zero_mask[p] = True
                take_from[p] = -1
                continue
            slot = slot_of.get(pair)
            if slot is None:
                slot = len(unique)
                slot_of[pair] = slot
                unique.append(pair)
                unique_raw.append((raw_x, raw_y))
            take_from[p] = slot
    except TypeError:
        # non-sequence items or unhashable symbols: registered distances
        # could not have accepted them anyway, so this is the arbitrary-
        # callable case -- evaluate verbatim, pair by pair
        return np.asarray([fn(x, y) for x, y in pairs], dtype=float)
    values: Optional[np.ndarray] = None
    n_workers = _resolve_workers(workers, len(unique), registered)
    if n_workers > 1 and unique:
        values = _fan_out(name, unique, n_workers)
    if values is None:
        values = _evaluate_unique(name, fn, unique, unique_raw)
    if len(unique):
        dtype = values.dtype
    else:
        dtype = np.int64 if name == _LEV_INT else float
    out = np.zeros(n, dtype=dtype)
    filled = ~zero_mask
    if filled.any():
        out[filled] = values[take_from[filled]]
    return out


def _lev_bounded_int(
    x: Symbols, y: Symbols, limit: float, d: int, exact: bool
) -> int:
    """Replay :func:`~repro.core.levenshtein.levenshtein_bounded` from a
    banded-kernel result: same exact-below / above-limit values, no DP.

    ``exact`` records whether the kernel proved ``d`` is the true
    distance (its budget always covers this request's, so ``not exact``
    implies the true distance exceeds every bound tested here).
    """
    m, n = len(x), len(y)
    if limit >= m + n:
        return d  # budget == m + n: the kernel was exact
    bound = int(limit) if limit >= 0 else -1
    if bound < 0:
        return 0 if exact and d == 0 else max(abs(m - n), 1)
    if exact and d <= bound:
        return d
    return max(bound + 1, abs(m - n))


def _replay_bounded_lev(
    name: str, x: Symbols, y: Symbols, limit: float, d: int, exact: bool
):
    """Replay the Levenshtein-family bounded twin at *limit* from a banded
    batch-kernel result.

    Each branch mirrors the matching function in :mod:`repro.core.bounded`
    expression by expression; the scalar twins decide "exact vs pruned" by
    comparing their banded DP result against the edit budget ``k``, and
    that comparison is equivalent to ``true d_E <= k``.  The batch kernel
    ran with the *maximum* budget over this pair's requests, so ``exact
    and d <= k`` is exactly that test (``not exact`` means the true
    distance exceeds the kernel budget, hence every request's ``k``), and
    replaying reproduces the scalar values bit for bit (asserted by the
    tests against :meth:`CountingDistance.within`).
    """
    if limit == _INF:  # within() skips the twin entirely at +inf
        return _lev_value(name, x, y, d)  # budget == total: exact
    m, n = len(x), len(y)
    if name in ("levenshtein", _LEV_INT):
        value = _lev_bounded_int(x, y, limit, d, exact)
        return value if name == _LEV_INT else float(value)
    if name == "dmax":
        longest = max(m, n)
        if longest == 0:
            return 0.0
        k = _edit_budget(limit * longest)
        return d / longest if exact and d <= k else (k + 1) / longest
    if name == "dsum":
        total = m + n
        if total == 0:
            return 0.0
        k = _edit_budget(limit * total)
        return d / total if exact and d <= k else (k + 1) / total
    if name == "dmin":
        shortest = min(m, n)
        if shortest == 0:
            return 0.0 if x == y else float("inf")
        k = _edit_budget(limit * shortest)
        return d / shortest if exact and d <= k else (k + 1) / shortest
    if name == "yujian_bo":
        if not x and not y:
            return 0.0
        total = m + n
        if limit >= 1.0:
            return 2.0 * d / (total + d)  # budget == total: exact
        k = 0 if limit < 0.0 else _edit_budget(limit * total / (2.0 - limit))
        if exact and d <= k:
            return 2.0 * d / (total + d)
        return 2.0 * (k + 1) / (total + k + 1)
    raise AssertionError(  # pragma: no cover - guarded by _LEV_FAMILY
        f"not a levenshtein-family name: {name}"
    )


def _replay_bounded_contextual(
    x: Symbols, y: Symbols, limit: float, d_e: int, ni: int, exact: bool
) -> float:
    """Replay ``bounded_contextual_heuristic`` from a banded twin-table
    kernel result.

    The twin's banded DP recovers exactly these integers whenever
    ``d_E`` fits the edit budget (``exact`` from the kernel, whose
    budget covers this request's), so the canonical-cost branch is
    bit-identical; the pruned branches replay the twin's closed forms.
    """
    if x == y:
        return 0.0
    m, n = len(x), len(y)
    total = m + n
    k = total if limit == _INF else contextual_edit_budget(limit, total)
    if exact and (k >= total or d_e <= k):
        cost = canonical_cost(m, n, d_e, ni)
        if cost is None:  # pragma: no cover - DP guarantees feasibility
            raise AssertionError(f"infeasible heuristic for {x!r}, {y!r}")
        return cost
    if abs(m - n) > k:
        return contextual_pruned_value(max(k, abs(m - n) - 1), total)
    return contextual_pruned_value(k, total)


def _kernel_budget(name: str, x: Symbols, y: Symbols, limit: float) -> int:
    """The edit budget the banded kernel must honour for one request.

    Derived by inverting each twin's normalisation exactly as the scalar
    functions in :mod:`repro.core.bounded` do; the replay needs the true
    ``d_E`` (and ``Ni``) precisely when it is at most this bound, and
    only closed forms of the lengths and the limit otherwise.  Requests
    whose replay always needs the exact value (``inf`` limits, budgets
    past the table) return the pair's combined length, which makes the
    band cover the whole table.
    """
    m, n = len(x), len(y)
    total = m + n
    if limit == _INF:
        return total
    if name == "contextual_heuristic":
        k = contextual_edit_budget(limit, total)
    elif name in ("levenshtein", _LEV_INT):
        if limit >= total:
            return total
        k = int(limit) if limit >= 0 else -1
    elif name == "dmax":
        longest = max(m, n)
        if longest == 0:
            return 0
        k = _edit_budget(limit * longest)
    elif name == "dsum":
        if total == 0:
            return 0
        k = _edit_budget(limit * total)
    elif name == "dmin":
        shortest = min(m, n)
        if shortest == 0:
            return 0
        k = _edit_budget(limit * shortest)
    elif name == "yujian_bo":
        if limit >= 1.0:
            return total
        k = 0 if limit < 0.0 else _edit_budget(limit * total / (2.0 - limit))
    else:  # pragma: no cover - guarded by the caller
        return total
    return min(max(k, 0), total)


def pairwise_values_bounded(
    distance: DistanceLike,
    pairs: Sequence[Tuple[Any, Any]],
    limits: Sequence[float],
    *,
    workers: Workers = None,
) -> np.ndarray:
    """Early-exit twin of :func:`pairwise_values` with per-pair limits.

    Entry ``i`` equals what ``CountingDistance.within(x_i, y_i,
    limits[i])`` returns -- bit for bit -- so a batched candidate phase
    (the lockstep ``bulk_knn`` drivers) can group the bounded candidate
    evaluations of many queries into one call without perturbing any
    search result:

    * exact value whenever the true distance is ``<= limits[i]``;
    * some value ``> limits[i]`` otherwise;
    * ``limits[i] == inf`` (or a distance without a registered twin)
      degrades to the full distance, exactly like ``within``.

    Kernel-backed distances (the Levenshtein family and the contextual
    heuristic) run one deduplicated *banded* batched sweep: each unique
    pair carries the widest edit budget over its requests into the
    kernels of :mod:`repro.batch.kernels`, which clamp the anti-diagonal
    window to the bucket's widest surviving band and retire pairs whose
    diagonal minima bust their budget -- tight limits touch a thin
    stripe of the padded tables instead of all of them.  Each request's
    bounded arithmetic is then replayed at its own limit from the
    ``(value, exact)`` kernel result; buckets with nothing to prune (and
    runs under ``REPRO_BANDED_BATCH=0``) fall back to the full-table
    kernels, bit-identically.  Other twins (``d_MV``'s parametric probe)
    evaluate the scalar twin per unique ``(pair, limit)``.  ``workers``
    is accepted for signature parity but the bounded path always runs
    serially -- the lockstep drivers call it once per (small) round,
    where a pool could never amortise.
    """
    n = len(pairs)
    if len(limits) != n:
        raise ValueError(
            f"{n} pairs but {len(limits)} limits; they must align"
        )
    name, fn = _resolve(distance)
    bounded_fn = bounded_for(fn)
    if bounded_fn is None:
        # no early-exit twin registered: within() falls back to the full
        # distance at every limit, and so does the batched path
        return pairwise_values(distance, pairs, workers=workers)
    if name not in _LEV_FAMILY and name != "contextual_heuristic":
        # scalar twin (e.g. d_MV's banded parametric probe): dedupe on
        # (pair, limit) and call the twin exactly as within() would
        out = np.empty(n, dtype=float)
        cache: Dict[Tuple[Symbols, Symbols, float], float] = {}
        for p, ((raw_x, raw_y), raw_limit) in enumerate(zip(pairs, limits)):
            limit = float(raw_limit)
            try:
                # items with unhashable symbols normalise but cannot key
                # the cache; evaluate them verbatim like within() would
                key = (as_symbols(raw_x), as_symbols(raw_y), limit)
                value = cache.get(key)
            except TypeError:
                key = None
                value = None
            if value is None:
                if limit == _INF:
                    value = fn(raw_x, raw_y)
                else:
                    value = bounded_fn(raw_x, raw_y, limit)
                if key is not None:
                    cache[key] = value
            out[p] = value
        return out
    try:
        norm = [(as_symbols(x), as_symbols(y)) for x, y in pairs]
        slot_of: Dict[Tuple[Symbols, Symbols], int] = {}
        unique: List[Tuple[Symbols, Symbols]] = []
        take = np.empty(n, dtype=np.int64)
        for p, pair in enumerate(norm):
            slot = slot_of.get(pair)
            if slot is None:
                slot = len(unique)
                slot_of[pair] = slot
                unique.append(pair)
            take[p] = slot
    except TypeError:
        # non-normalisable items, or symbols the dedupe cannot hash (the
        # batch kernels could not encode them either): mirror within()
        # pair by pair -- the scalar twins only compare symbols by ==
        return np.asarray(
            [
                fn(x, y)
                if float(limit) == _INF
                else bounded_fn(x, y, float(limit))
                for (x, y), limit in zip(pairs, limits)
            ],
            dtype=float,
        )
    contextual = name == "contextual_heuristic"
    # Per-unique-pair kernel budget: the widest budget over that pair's
    # requests.  Exactness at the maximum budget decides every smaller
    # one (exact there and d <= k, or provably above every k).
    limits_f = [float(limit) for limit in limits]
    bounds = np.zeros(len(unique), dtype=np.int64)
    for p, (x, y) in enumerate(norm):
        slot = take[p]
        budget = _kernel_budget(name, x, y, limits_f[p])
        if budget > bounds[slot]:
            bounds[slot] = budget
    banded_enabled = _banded_batch_enabled()
    d_unique = np.zeros(len(unique), dtype=np.int64)
    ni_unique = np.zeros(len(unique), dtype=np.int64)
    exact_unique = np.ones(len(unique), dtype=bool)
    for bucket in _buckets(unique, _BUCKET_SIZE):
        chunk = [unique[i] for i in bucket]
        chunk_bounds = bounds[bucket]
        # full-table fallback: when no budget in the bucket is below its
        # pair's combined length the band covers every table anyway, so
        # the plain kernels (no window/retirement bookkeeping) win
        banded = banded_enabled and bool(
            (
                chunk_bounds
                < np.asarray([len(x) + len(y) for x, y in chunk])
            ).any()
        )
        if contextual:
            if banded:
                d_chunk, ni_chunk, exact_chunk = (
                    contextual_heuristic_batch_bounded(chunk, chunk_bounds)
                )
                exact_unique[bucket] = exact_chunk
            else:
                d_chunk, ni_chunk = contextual_heuristic_batch(chunk)
            d_unique[bucket] = d_chunk
            ni_unique[bucket] = ni_chunk
        else:
            if banded:
                d_chunk, exact_chunk = levenshtein_batch_bounded(
                    chunk, chunk_bounds
                )
                exact_unique[bucket] = exact_chunk
            else:
                d_chunk = levenshtein_batch(chunk)
            d_unique[bucket] = d_chunk
    out = np.empty(n, dtype=np.int64 if name == _LEV_INT else float)
    for p, (x, y) in enumerate(norm):
        slot = int(take[p])
        limit = limits_f[p]
        exact = bool(exact_unique[slot])
        if contextual:
            out[p] = _replay_bounded_contextual(
                x, y, limit, int(d_unique[slot]), int(ni_unique[slot]), exact
            )
        else:
            out[p] = _replay_bounded_lev(
                name, x, y, limit, int(d_unique[slot]), exact
            )
    return out


def pairwise_matrix(
    distance: DistanceLike,
    xs: Sequence[Any],
    ys: Optional[Sequence[Any]] = None,
    *,
    workers: Workers = "auto",
) -> np.ndarray:
    """Full distance matrix ``D[i, j] = d(xs[i], (ys or xs)[j])``.

    When ``ys is None`` the distance is taken to be symmetric: only the
    upper triangle (including the diagonal) is evaluated and mirrored, so
    an ``n x n`` matrix costs ``C(n, 2) + n`` unique-pair evaluations --
    fewer still after dedupe and the registered ``x == y`` shortcut.
    """
    if ys is None:
        n = len(xs)
        flat = pairwise_values(
            distance, _triangle_pairs(xs, 0, n), workers=workers
        )
        matrix = np.zeros((n, n), dtype=flat.dtype)
        _mirror_triangle_strip(matrix, flat, 0, n)
        return matrix
    pairs = [(x, y) for x in xs for y in ys]
    flat = pairwise_values(distance, pairs, workers=workers)
    return flat.reshape(len(xs), len(ys))


def _triangle_pairs(
    xs: Sequence[Any], start: int, stop: int
) -> List[Tuple[Any, Any]]:
    """Upper-triangle pairs (diagonal included) for rows start..stop."""
    n = len(xs)
    return [(xs[i], xs[j]) for i in range(start, stop) for j in range(i, n)]


def _mirror_triangle_strip(
    out: np.ndarray, flat: np.ndarray, start: int, stop: int
) -> None:
    """Write the row strip evaluated by :func:`_triangle_pairs` into
    *out*, mirroring each row's tail into the matching column."""
    n = out.shape[0]
    pos = 0
    for i in range(start, stop):
        row = flat[pos : pos + n - i]
        out[i, i:] = row
        out[i:, i] = row
        pos += n - i


def pairwise_matrix_blocks(
    distance: DistanceLike,
    xs: Sequence[Any],
    ys: Optional[Sequence[Any]] = None,
    *,
    block_rows: int = _BLOCK_ROWS,
    workers: Workers = "auto",
) -> Iterator[Tuple[int, int, np.ndarray]]:
    """Stream the matrix of :func:`pairwise_matrix` as row-block shards.

    Yields ``(start, stop, block)`` where ``block[r]`` holds the distances
    from ``xs[start + r]`` to every column item (``ys``, or ``xs`` itself
    when ``ys is None``).  Peak memory is one ``block_rows x n_cols``
    shard plus that block's unique pairs, so paper-scale gene sets whose
    full matrix exceeds memory can be folded over (or spilled to disk via
    :func:`pairwise_matrix_memmap`).

    Dedupe, the registered ``x == y`` shortcut and ``workers`` sharding
    all apply per block; the cross-diagonal mirroring of
    :func:`pairwise_matrix` does not (a streamed block cannot reuse rows
    that were never materialised), which is the memory-for-compute
    trade-off this entry point exists to make.
    """
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    cols = xs if ys is None else ys
    for start in range(0, len(xs), block_rows):
        stop = min(start + block_rows, len(xs))
        pairs = [(xs[i], c) for i in range(start, stop) for c in cols]
        flat = pairwise_values(distance, pairs, workers=workers)
        yield start, stop, flat.reshape(stop - start, len(cols))


def pairwise_matrix_memmap(
    distance: DistanceLike,
    xs: Sequence[Any],
    ys: Optional[Sequence[Any]] = None,
    *,
    path: Union[str, "os.PathLike[str]"],
    block_rows: int = _BLOCK_ROWS,
    workers: Workers = "auto",
) -> np.memmap:
    """:func:`pairwise_matrix` streamed into an on-disk ``.npy`` memmap.

    Evaluates the matrix block by block (bounded memory, exactly like
    :func:`pairwise_matrix_blocks`) and writes each shard straight into a
    ``numpy.lib.format`` file at *path*, so the result can be reopened in
    a later process with ``np.load(path, mmap_mode="r")``.  The symmetric
    case (``ys is None``) evaluates only upper-triangle row strips and
    mirrors them through the memmap, keeping :func:`pairwise_matrix`'s
    ``C(n, 2) + n`` evaluation saving without holding the matrix in RAM.

    Returns the still-open writable memmap (flushed).
    """
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    n_rows = len(xs)
    n_cols = n_rows if ys is None else len(ys)
    out = np.lib.format.open_memmap(
        os.fspath(path), mode="w+", dtype=float, shape=(n_rows, n_cols)
    )
    if ys is None:
        for start in range(0, n_rows, block_rows):
            stop = min(start + block_rows, n_rows)
            flat = pairwise_values(
                distance, _triangle_pairs(xs, start, stop), workers=workers
            )
            _mirror_triangle_strip(out, flat, start, stop)
    else:
        for start, stop, block in pairwise_matrix_blocks(
            distance, xs, ys, block_rows=block_rows, workers=workers
        ):
            out[start:stop] = block
    out.flush()
    return out


def distances_from(
    distance: DistanceLike,
    source: Any,
    targets: Sequence[Any],
    *,
    workers: Workers = "auto",
) -> np.ndarray:
    """Distances from one *source* to every target (one matrix row)."""
    return pairwise_values(
        distance, [(source, t) for t in targets], workers=workers
    )
