"""Optional numba-JIT kernel backend for the DP sweeps.

The numpy anti-diagonal kernels (:mod:`repro.core._kernels`,
:mod:`repro.batch.kernels`) pay one interpreter dispatch per diagonal;
a compiled kernel pays one dispatch per *call* and then runs the whole
Wagner--Fischer table at machine speed.  This module provides that
backend as a strictly optional dependency:

* when :mod:`numba` is importable (``pip install repro[jit]``) and not
  disabled via ``REPRO_JIT=0``, :func:`active` returns True, the public
  batch kernels in :mod:`repro.batch.kernels` dispatch here, and the
  scalar entry points in :mod:`repro.core` drop their
  ``_NUMPY_THRESHOLD`` to zero (the compiled kernel wins at every
  length, so the pure-Python/numpy crossover disappears);
* when numba is absent, nothing changes: every caller falls back to the
  existing numpy/pure-Python kernels, **bit-identically** -- all kernels
  here are integer DPs computing the same recurrences, so the returned
  ``(d_E, Ni)`` values are equal by construction and the test-suite
  cross-checks them whenever numba happens to be installed.

The compiled functions deliberately use plain two-row DP loops rather
than the anti-diagonal form: vectorisation is what the anti-diagonal
trick buys *numpy*, while compiled code is fastest walking rows with
scalar arithmetic.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from ..core.types import Symbols
from ..tools import knobs

#: Encoded kernel-input aliases, matching :mod:`repro.batch.kernels`
#: (the two backends share the ``(X, Y, mx, my)`` contract).
IntMatrix = npt.NDArray[np.integer]
IntVector = npt.NDArray[np.integer]
FloatVector = npt.NDArray[np.floating]

__all__ = [
    "available",
    "active",
    "backend_name",
    "levenshtein_batch",
    "levenshtein_batch_encoded",
    "levenshtein_batch_bounded",
    "levenshtein_batch_bounded_encoded",
    "contextual_heuristic_batch",
    "contextual_heuristic_batch_encoded",
    "contextual_heuristic_batch_bounded",
    "contextual_heuristic_batch_bounded_encoded",
    "levenshtein_single",
    "contextual_heuristic_single",
    "parametric_alignment",
    "banded_parametric",
    "mv_banded_probe_batch_encoded",
    "mv_distance",
    "mv_distance_batch",
    "mv_distance_batch_encoded",
    "insertion_table_final",
    "contextual_distance",
    "contextual_distance_batch",
    "contextual_distance_batch_encoded",
]

#: Max-insertion sentinel, matching the numpy kernels.
_NEG = -(1 << 30)


def _jit_disabled() -> bool:
    """True when the operator opted out via the environment."""
    return not knobs.get_flag("REPRO_JIT")


try:  # pragma: no cover - exercised only where numba is installed
    if _jit_disabled():
        raise ImportError("JIT disabled via REPRO_JIT")
    from numba import njit as _njit

    _HAVE_NUMBA = True
except Exception:  # numba absent (or disabled): keep the module importable
    _HAVE_NUMBA = False

    def _njit(*args: Any, **kwargs: Any) -> Any:  # no-op decorator stand-in
        if args and callable(args[0]):
            return args[0]

        def wrap(fn: Callable[..., Any]) -> Callable[..., Any]:
            return fn

        return wrap


def available() -> bool:
    """True when numba is importable, even if disabled via ``REPRO_JIT``."""
    if _HAVE_NUMBA:
        return True
    try:  # pragma: no cover - depends on the host environment
        import numba  # noqa: F401

        return True
    except Exception:
        return False


def active() -> bool:
    """True when the JIT backend should serve kernel dispatch."""
    return _HAVE_NUMBA


def backend_name() -> str:
    """``"numba"`` or ``"numpy"`` -- recorded by the benchmarks."""
    return "numba" if active() else "numpy"


# ---------------------------------------------------------------------------
# compiled kernels (integer DP over encoded symbol arrays)
# ---------------------------------------------------------------------------


@_njit(cache=True)
def _lev_pair(cx: IntVector, cy: IntVector) -> int:  # pragma: no cover - compiled path
    """Two-row Wagner--Fischer over encoded arrays; returns ``d_E``."""
    m, n = cx.shape[0], cy.shape[0]
    if m == 0:
        return n
    if n == 0:
        return m
    prev = np.empty(n + 1, dtype=np.int64)
    cur = np.empty(n + 1, dtype=np.int64)
    for j in range(n + 1):
        prev[j] = j
    for i in range(1, m + 1):
        xi = cx[i - 1]
        cur[0] = i
        for j in range(1, n + 1):
            best = prev[j - 1] if xi == cy[j - 1] else prev[j - 1] + 1
            up = prev[j] + 1
            if up < best:
                best = up
            left = cur[j - 1] + 1
            if left < best:
                best = left
            cur[j] = best
        prev, cur = cur, prev
    return prev[n]


@_njit(cache=True)
def _ctx_pair(cx: IntVector, cy: IntVector) -> Tuple[int, int]:  # pragma: no cover - compiled path
    """Twin-table heuristic DP; returns ``(d_E, Ni)``.

    ``Ni`` is the maximum insertion count over minimum-cost internal edit
    paths -- identical to ``repro.core.contextual._heuristic_tables``.
    """
    m, n = cx.shape[0], cy.shape[0]
    if m == 0:
        return n, n
    if n == 0:
        return m, 0
    prev_d = np.empty(n + 1, dtype=np.int64)
    prev_ni = np.empty(n + 1, dtype=np.int64)
    cur_d = np.empty(n + 1, dtype=np.int64)
    cur_ni = np.empty(n + 1, dtype=np.int64)
    for j in range(n + 1):
        prev_d[j] = j
        prev_ni[j] = j  # ni[0][j] = j insertions
    for i in range(1, m + 1):
        xi = cx[i - 1]
        cur_d[0] = i
        cur_ni[0] = 0  # ni[i][0] = 0 (pure deletions)
        for j in range(1, n + 1):
            diag = prev_d[j - 1] if xi == cy[j - 1] else prev_d[j - 1] + 1
            up = prev_d[j] + 1
            left = cur_d[j - 1] + 1
            d = diag if diag < up else up
            if left < d:
                d = left
            cur_d[j] = d
            best = _NEG
            if diag == d and prev_ni[j - 1] > best:
                best = prev_ni[j - 1]
            if up == d and prev_ni[j] > best:
                best = prev_ni[j]
            if left == d and cur_ni[j - 1] + 1 > best:
                best = cur_ni[j - 1] + 1
            cur_ni[j] = best
        prev_d, cur_d = cur_d, prev_d
        prev_ni, cur_ni = cur_ni, prev_ni
    return prev_d[n], prev_ni[n]


@_njit(cache=True)
def _lev_batch(X: IntMatrix, Y: IntMatrix, mx: IntVector, my: IntVector, out: IntVector) -> None:  # pragma: no cover - compiled path
    for p in range(X.shape[0]):
        out[p] = _lev_pair(X[p, : mx[p]], Y[p, : my[p]])


@_njit(cache=True)
def _ctx_batch(X: IntMatrix, Y: IntMatrix, mx: IntVector, my: IntVector, out_d: IntVector, out_ni: IntVector) -> None:  # pragma: no cover
    for p in range(X.shape[0]):
        d, ni = _ctx_pair(X[p, : mx[p]], Y[p, : my[p]])
        out_d[p] = d
        out_ni[p] = ni


@_njit(cache=True)
def _lev_pair_bounded(cx: IntVector, cy: IntVector, bound: int) -> Tuple[int, bool]:  # pragma: no cover - compiled path
    """Ukkonen-banded two-row ``d_E`` with row abort.

    Returns ``(value, exact)``: the exact distance and True when it is
    at most *bound*, else ``(bound + 1, False)``.  The compiled twin of
    ``repro.core.levenshtein.levenshtein_within`` (with the pruned case
    folded into the return value instead of None).
    """
    m, n = cx.shape[0], cy.shape[0]
    gap = m - n if m > n else n - m
    if gap > bound:
        return bound + 1, False
    if n == 0:
        return m, True  # m == gap <= bound
    if m == 0:
        return n, True
    infinity = bound + 1
    prev = np.empty(n + 1, dtype=np.int64)
    cur = np.empty(n + 1, dtype=np.int64)
    for j in range(n + 1):
        prev[j] = j if j <= bound else infinity
    for i in range(1, m + 1):
        xi = cx[i - 1]
        lo = i - bound if i - bound > 1 else 1
        hi = i + bound if i + bound < n else n
        # sentinels just outside the band; the next row reads at most
        # one cell beyond it, so a full-row fill is unnecessary
        cur[lo - 1] = infinity
        if hi + 1 <= n:
            cur[hi + 1] = infinity
        if i <= bound:
            cur[0] = i
            row_min = cur[0]
        else:
            row_min = infinity
        for j in range(lo, hi + 1):
            best = prev[j - 1] + (0 if xi == cy[j - 1] else 1)
            up = prev[j] + 1
            if up < best:
                best = up
            left = cur[j - 1] + 1
            if left < best:
                best = left
            if best > infinity:
                best = infinity
            cur[j] = best
            if best < row_min:
                row_min = best
        if row_min > bound:
            return bound + 1, False
        prev, cur = cur, prev
    if prev[n] <= bound:
        return prev[n], True
    return bound + 1, False


@_njit(cache=True)
def _ctx_pair_bounded(cx: IntVector, cy: IntVector, bound: int) -> Tuple[int, int, bool]:  # pragma: no cover - compiled path
    """Banded twin tables: ``(d_E, Ni, exact)`` when ``d_E <= bound``.

    The compiled twin of ``repro.core.bounded._banded_heuristic_tables``
    (same recurrence, same row abort); pruned pairs return
    ``(bound + 1, 0, False)``.
    """
    m, n = cx.shape[0], cy.shape[0]
    gap = m - n if m > n else n - m
    if gap > bound:
        return bound + 1, 0, False
    if m == 0:
        return n, n, True  # n == gap <= bound; pure insertions
    if n == 0:
        return m, 0, True  # pure deletions
    infinity = bound + 1
    prev_d = np.empty(n + 1, dtype=np.int64)
    prev_ni = np.empty(n + 1, dtype=np.int64)
    cur_d = np.empty(n + 1, dtype=np.int64)
    cur_ni = np.empty(n + 1, dtype=np.int64)
    for j in range(n + 1):
        prev_d[j] = j if j <= bound else infinity
        prev_ni[j] = j  # ni[0][j] = j insertions
    for i in range(1, m + 1):
        xi = cx[i - 1]
        lo = i - bound if i - bound > 1 else 1
        hi = i + bound if i + bound < n else n
        cur_d[lo - 1] = infinity
        cur_ni[lo - 1] = _NEG
        if hi + 1 <= n:
            cur_d[hi + 1] = infinity
            cur_ni[hi + 1] = _NEG
        if i <= bound:
            cur_d[0] = i
            cur_ni[0] = 0  # ni[i][0] = 0 (pure deletions)
            row_min = cur_d[0]
        else:
            row_min = infinity
        for j in range(lo, hi + 1):
            diag = prev_d[j - 1] + (0 if xi == cy[j - 1] else 1)
            up = prev_d[j] + 1
            left = cur_d[j - 1] + 1
            d = diag if diag < up else up
            if left < d:
                d = left
            if d > infinity:
                d = infinity
            cur_d[j] = d
            best = _NEG
            if diag == d and prev_ni[j - 1] > best:
                best = prev_ni[j - 1]
            if up == d and prev_ni[j] > best:
                best = prev_ni[j]
            if left == d and cur_ni[j - 1] + 1 > best:
                best = cur_ni[j - 1] + 1
            cur_ni[j] = best
            if d < row_min:
                row_min = d
        if row_min > bound:
            return bound + 1, 0, False
        prev_d, cur_d = cur_d, prev_d
        prev_ni, cur_ni = cur_ni, prev_ni
    if prev_d[n] <= bound:
        return prev_d[n], prev_ni[n], True
    return bound + 1, 0, False


@_njit(cache=True)
def _lev_batch_bounded(X: IntMatrix, Y: IntMatrix, mx: IntVector, my: IntVector, b: IntVector, out: IntVector, exact: npt.NDArray[np.bool_]) -> None:  # pragma: no cover
    for p in range(X.shape[0]):
        d, ok = _lev_pair_bounded(X[p, : mx[p]], Y[p, : my[p]], b[p])
        out[p] = d
        exact[p] = ok


@_njit(cache=True)
def _ctx_batch_bounded(X: IntMatrix, Y: IntMatrix, mx: IntVector, my: IntVector, b: IntVector, out_d: IntVector, out_ni: IntVector, exact: npt.NDArray[np.bool_]) -> None:  # pragma: no cover
    for p in range(X.shape[0]):
        d, ni, ok = _ctx_pair_bounded(X[p, : mx[p]], Y[p, : my[p]], b[p])
        out_d[p] = d
        out_ni[p] = ni
        exact[p] = ok


@_njit(cache=True)
def _parametric_pair(cx: IntVector, cy: IntVector, lam: float) -> Tuple[float, int]:  # pragma: no cover - compiled path
    """Unit-cost parametric alignment: ``min_pi W(pi) - lam * L(pi)``.

    The compiled twin of
    ``repro.core._kernels.parametric_alignment_numpy``: identical cell
    arithmetic and the identical left/up/diag tie order for the carried
    ``(W, L)``, so the returned pair is bit-for-bit the numpy kernel's.
    Returns ``(W, L)`` of the minimising path.
    """
    m, n = cx.shape[0], cy.shape[0]
    if m == 0:
        return float(n), n
    if n == 0:
        return float(m), m
    paid = 1.0 - lam
    free = -lam
    prev_s = np.empty(n + 1, dtype=np.float64)
    prev_w = np.empty(n + 1, dtype=np.float64)
    prev_l = np.empty(n + 1, dtype=np.int64)
    cur_s = np.empty(n + 1, dtype=np.float64)
    cur_w = np.empty(n + 1, dtype=np.float64)
    cur_l = np.empty(n + 1, dtype=np.int64)
    prev_s[0] = 0.0
    prev_w[0] = 0.0
    prev_l[0] = 0
    for j in range(1, n + 1):  # row 0: j insertions
        prev_s[j] = j * paid
        prev_w[j] = float(j)
        prev_l[j] = j
    for i in range(1, m + 1):
        xi = cx[i - 1]
        cur_s[0] = i * paid  # column 0: i deletions
        cur_w[0] = float(i)
        cur_l[0] = i
        for j in range(1, n + 1):
            match = xi == cy[j - 1]
            diag_s = prev_s[j - 1] + (free if match else paid)
            up_s = prev_s[j] + paid  # deletion of x[i-1]
            left_s = cur_s[j - 1] + paid  # insertion of y[j-1]
            best = diag_s if diag_s < up_s else up_s
            if left_s < best:
                best = left_s
            # carry (W, L) of whichever candidate achieved the best
            # score, in the numpy kernel's where-order: left, up, diag
            if left_s == best:
                cur_w[j] = cur_w[j - 1] + 1.0
                cur_l[j] = cur_l[j - 1] + 1
            elif up_s == best:
                cur_w[j] = prev_w[j] + 1.0
                cur_l[j] = prev_l[j] + 1
            else:
                cur_w[j] = prev_w[j - 1] + (0.0 if match else 1.0)
                cur_l[j] = prev_l[j - 1] + 1
            cur_s[j] = best
        prev_s, cur_s = cur_s, prev_s
        prev_w, cur_w = cur_w, prev_w
        prev_l, cur_l = cur_l, prev_l
    return prev_w[n], prev_l[n]


@_njit(cache=True)
def _banded_parametric_pair(cx: IntVector, cy: IntVector, lam: float, band: int) -> float:  # pragma: no cover
    """Banded parametric probe: minimal ``W - lam * L`` inside the band.

    The compiled twin of ``repro.core.bounded._banded_parametric`` --
    identical float arithmetic and (diag-first) tie order, so the
    returned score matches the pure-Python probe bit for bit.
    """
    m, n = cx.shape[0], cy.shape[0]
    inf = np.inf
    paid = 1.0 - lam
    prev = np.empty(n + 1, dtype=np.float64)
    cur = np.empty(n + 1, dtype=np.float64)
    for j in range(n + 1):
        prev[j] = inf
    prev[0] = 0.0
    top = n if n < band else band
    for j in range(1, top + 1):
        prev[j] = j * paid
    for i in range(1, m + 1):
        xi = cx[i - 1]
        lo = i - band if i - band > 1 else 1
        hi = i + band if i + band < n else n
        for j in range(n + 1):
            cur[j] = inf
        if i <= band:
            cur[0] = i * paid
        for j in range(lo, hi + 1):
            step = -lam if xi == cy[j - 1] else paid
            best = prev[j - 1] + step
            up = prev[j] + paid
            if up < best:
                best = up
            left = cur[j - 1] + paid
            if left < best:
                best = left
            cur[j] = best
        prev, cur = cur, prev
    return prev[n]


@_njit(cache=True)
def _mv_probe_batch(X: IntMatrix, Y: IntMatrix, mx: IntVector, my: IntVector, lams: FloatVector, bands: IntVector, out: FloatVector) -> None:  # pragma: no cover
    """Compiled batch of banded parametric probes -- one
    ``_banded_parametric_pair`` per pair, all inside a single call.

    Pairs whose band cannot reach the final cell return ``+inf``
    (matching the pure-Python probe, whose final cell is never
    written) -- ``_banded_parametric_pair`` assumes a reachable band,
    so the gap test lives out here."""
    for p in range(X.shape[0]):
        m, n = mx[p], my[p]
        gap = m - n if m > n else n - m
        if gap > bands[p]:
            out[p] = np.inf
        else:
            out[p] = _banded_parametric_pair(
                X[p, : mx[p]], Y[p, : my[p]], lams[p], bands[p]
            )


@_njit(cache=True)
def _mv_pair(cx: IntVector, cy: IntVector, max_iterations: int, tolerance: float) -> float:  # pragma: no cover
    """Dinkelbach iteration over the compiled parametric kernel.

    The compiled twin of the unit-cost
    ``repro.core.marzal_vidal.mv_normalized_distance_fractional`` loop:
    same start, same update, same stopping rule.
    """
    if cx.shape[0] == 0 and cy.shape[0] == 0:
        return 0.0
    lam = 0.0
    for _ in range(max_iterations):
        weight, length = _parametric_pair(cx, cy, lam)
        if length == 0:
            return 0.0
        ratio = weight / length
        if abs(ratio - lam) <= tolerance:
            return ratio
        lam = ratio
    return lam


@_njit(cache=True)
def _mv_batch(X: IntMatrix, Y: IntMatrix, mx: IntVector, my: IntVector, max_iterations: int, tolerance: float, out: FloatVector) -> None:  # pragma: no cover
    for p in range(X.shape[0]):
        out[p] = _mv_pair(
            X[p, : mx[p]], Y[p, : my[p]], max_iterations, tolerance
        )


@_njit(cache=True)
def _insertion_final(cx: IntVector, cy: IntVector, k_max: int) -> IntVector:  # pragma: no cover - compiled path
    """Algorithm 1's k-axis DP: the final column ``ni[|x|][|y|][:]``.

    The compiled twin of
    ``repro.core.contextual._insertion_table_final`` -- an integer DP,
    so backend values are equal by construction.
    """
    m, n = cx.shape[0], cy.shape[0]
    kk = k_max + 1
    prev = np.full((n + 1, kk), _NEG, dtype=np.int64)
    cur = np.empty((n + 1, kk), dtype=np.int64)
    top = n if n < k_max else k_max
    for j in range(top + 1):
        prev[j, j] = j  # ni[0][j][j] = j insertions
    for i in range(1, m + 1):
        xi = cx[i - 1]
        for k in range(kk):
            cur[0, k] = _NEG
        if i <= k_max:
            cur[0, i] = 0  # only path to the empty prefix: i deletions
        for j in range(1, n + 1):
            eq = xi == cy[j - 1]
            for k in range(kk):
                if eq:
                    best = prev[j - 1, k]  # free match, same k
                elif k:
                    best = prev[j - 1, k - 1]  # paid substitution
                else:
                    best = _NEG
                if k:
                    v = prev[j, k - 1]  # deletion
                    if v > best:
                        best = v
                    v = cur[j - 1, k - 1] + 1  # insertion
                    if v > best:
                        best = v
                cur[j, k] = best
        prev, cur = cur, prev
    return prev[n].copy()


@_njit(cache=True)
def _canonical_cost_h(m: int, n: int, k: int, ni: int, H: FloatVector) -> float:  # pragma: no cover - compiled path
    """``canonical_cost`` over a harmonic prefix table; -1.0 = infeasible.

    Replays ``repro.core.contextual.canonical_cost`` add by add (the
    prefix table holds the exact doubles of the process-wide
    ``HarmonicTable``), so feasible costs are bit-identical.
    """
    if ni < 0:
        return -1.0
    nd = m - n + ni
    ns = k - ni - nd
    if nd < 0 or ns < 0:
        return -1.0
    peak = m + ni
    cost = H[peak] - H[m] if peak > m else 0.0
    if ns != 0:
        cost += ns / peak
    cost += H[n + nd] - H[n] if n + nd > n else 0.0
    return cost


@_njit(cache=True)
def _cdc_pair(cx: IntVector, cy: IntVector, H: FloatVector) -> float:  # pragma: no cover - compiled path
    """Exact ``d_C`` of one pair: heuristic bound, capped k-axis DP,
    cost minimisation -- the compiled mirror of
    ``repro.core.contextual.contextual_distance`` (same float ops in the
    same order, so values agree bit for bit with the scalar path when
    the JIT backend serves it)."""
    m, n = cx.shape[0], cy.shape[0]
    d_e, ni_h = _ctx_pair(cx, cy)
    upper = _canonical_cost_h(m, n, d_e, ni_h, H)
    if upper < 2.0:
        k_max = int((upper * (m + n)) / (2.0 - upper) + 1e-9)
    else:
        k_max = m + n
    if k_max < d_e:
        k_max = d_e
    if k_max > m + n:
        k_max = m + n
    best = upper
    final = _insertion_final(cx, cy, k_max)
    for k in range(k_max + 1):
        ni = final[k]
        if ni < 0:
            continue
        cost = _canonical_cost_h(m, n, k, ni, H)
        if cost >= 0.0 and cost < best:
            best = cost
    return best


@_njit(cache=True)
def _cdc_batch(X: IntMatrix, Y: IntMatrix, mx: IntVector, my: IntVector, H: FloatVector, out: FloatVector) -> None:  # pragma: no cover
    for p in range(X.shape[0]):
        out[p] = _cdc_pair(X[p, : mx[p]], Y[p, : my[p]], H)


# ---------------------------------------------------------------------------
# python-side wrappers (encoding shared with the numpy kernels)
# ---------------------------------------------------------------------------


def _encode_single(x: Symbols, y: Symbols) -> Tuple[np.ndarray, np.ndarray]:
    """Encode one pair with the batch module's scheme (code points for
    pure-``str`` pairs, one shared dictionary otherwise)."""
    from .kernels import _encode_one

    codes: Dict[Hashable, int] = {}
    if isinstance(x, str) and isinstance(y, str):
        return _encode_one(x, codes), _encode_one(y, codes)
    return _encode_one(tuple(x), codes), _encode_one(tuple(y), codes)


def levenshtein_single(x: Symbols, y: Symbols) -> int:
    """Compiled scalar ``d_E`` (the JIT twin of ``levenshtein_numpy``)."""
    cx, cy = _encode_single(x, y)
    return int(_lev_pair(cx, cy))


def contextual_heuristic_single(x: Symbols, y: Symbols) -> Tuple[int, int]:
    """Compiled scalar ``(d_E, Ni)`` twin of ``contextual_heuristic_numpy``."""
    cx, cy = _encode_single(x, y)
    d, ni = _ctx_pair(cx, cy)
    return int(d), int(ni)


def levenshtein_batch(pairs: Sequence[Tuple[Symbols, Symbols]]) -> np.ndarray:
    """Compiled twin of :func:`repro.batch.kernels.levenshtein_batch`."""
    from .kernels import encode_batch

    if not len(pairs):
        return np.zeros(0, dtype=np.int64)
    return levenshtein_batch_encoded(*encode_batch(pairs))


def levenshtein_batch_encoded(
    X: IntMatrix, Y: IntMatrix, mx: IntVector, my: IntVector
) -> np.ndarray:
    """:func:`levenshtein_batch` over pre-encoded matrices (the
    interned-corpus dispatch path)."""
    out = np.zeros(len(mx), dtype=np.int64)
    if len(mx):
        _lev_batch(X, Y, mx, my, out)
    return out


def contextual_heuristic_batch(
    pairs: Sequence[Tuple[Symbols, Symbols]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Compiled twin of
    :func:`repro.batch.kernels.contextual_heuristic_batch`."""
    from .kernels import encode_batch

    if not len(pairs):
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    return contextual_heuristic_batch_encoded(*encode_batch(pairs))


def contextual_heuristic_batch_encoded(
    X: IntMatrix, Y: IntMatrix, mx: IntVector, my: IntVector
) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`contextual_heuristic_batch` over pre-encoded matrices."""
    out_d = np.zeros(len(mx), dtype=np.int64)
    out_ni = np.zeros(len(mx), dtype=np.int64)
    if len(mx):
        _ctx_batch(X, Y, mx, my, out_d, out_ni)
    return out_d, out_ni


def _clamped_bounds(
    bounds: Sequence[int], mx: np.ndarray, my: np.ndarray
) -> np.ndarray:
    """Per-pair budgets clamped into ``[0, |x| + |y|]`` (shared with the
    numpy banded kernels, which clamp identically)."""
    return np.minimum(
        np.maximum(np.asarray(bounds, dtype=np.int64), 0), mx + my
    )


def levenshtein_batch_bounded(
    pairs: Sequence[Tuple[Symbols, Symbols]], bounds: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Compiled twin of
    :func:`repro.batch.kernels.levenshtein_batch_bounded_numpy`."""
    from .kernels import encode_batch

    if not len(pairs):
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.bool_)
    X, Y, mx, my = encode_batch(pairs)
    return levenshtein_batch_bounded_encoded(X, Y, mx, my, bounds)


def levenshtein_batch_bounded_encoded(
    X: IntMatrix,
    Y: IntMatrix,
    mx: IntVector,
    my: IntVector,
    bounds: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`levenshtein_batch_bounded` over pre-encoded matrices."""
    out = np.zeros(len(mx), dtype=np.int64)
    exact = np.zeros(len(mx), dtype=np.bool_)
    if len(mx):
        _lev_batch_bounded(
            X, Y, mx, my, _clamped_bounds(bounds, mx, my), out, exact
        )
    return out, exact


def contextual_heuristic_batch_bounded(
    pairs: Sequence[Tuple[Symbols, Symbols]], bounds: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compiled twin of
    :func:`repro.batch.kernels.contextual_heuristic_batch_bounded_numpy`."""
    from .kernels import encode_batch

    if not len(pairs):
        zeros = np.zeros(0, dtype=np.int64)
        return zeros, zeros.copy(), np.zeros(0, dtype=np.bool_)
    X, Y, mx, my = encode_batch(pairs)
    return contextual_heuristic_batch_bounded_encoded(X, Y, mx, my, bounds)


def contextual_heuristic_batch_bounded_encoded(
    X: IntMatrix,
    Y: IntMatrix,
    mx: IntVector,
    my: IntVector,
    bounds: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`contextual_heuristic_batch_bounded` over pre-encoded
    matrices."""
    out_d = np.zeros(len(mx), dtype=np.int64)
    out_ni = np.zeros(len(mx), dtype=np.int64)
    exact = np.zeros(len(mx), dtype=np.bool_)
    if len(mx):
        _ctx_batch_bounded(
            X, Y, mx, my, _clamped_bounds(bounds, mx, my), out_d, out_ni, exact
        )
    return out_d, out_ni, exact


def mv_banded_probe_batch_encoded(
    X: IntMatrix,
    Y: IntMatrix,
    mx: IntVector,
    my: IntVector,
    lams: Sequence[float],
    bands: Sequence[int],
) -> np.ndarray:
    """Compiled twin of
    :func:`repro.batch.kernels.mv_banded_probe_batch_encoded_numpy`: one
    banded parametric probe per pair, all inside a single call, each
    bit-identical to :func:`banded_parametric`."""
    out = np.zeros(len(mx), dtype=np.float64)
    if len(mx):
        _mv_probe_batch(
            X,
            Y,
            mx,
            my,
            np.asarray(lams, dtype=np.float64),
            np.asarray(bands, dtype=np.int64),
            out,
        )
    return out


def parametric_alignment(x: Symbols, y: Symbols, lam: float) -> Tuple[float, int]:
    """Compiled twin of
    :func:`repro.core._kernels.parametric_alignment_numpy`."""
    cx, cy = _encode_single(x, y)
    weight, length = _parametric_pair(cx, cy, lam)
    return float(weight), int(length)


def banded_parametric(x: Symbols, y: Symbols, lam: float, band: int) -> float:
    """Compiled twin of ``repro.core.bounded._banded_parametric``."""
    cx, cy = _encode_single(x, y)
    return float(_banded_parametric_pair(cx, cy, lam, band))


def mv_distance(
    x: Symbols,
    y: Symbols,
    max_iterations: int = 64,
    tolerance: float = 1e-12,
) -> float:
    """Compiled unit-cost Marzal--Vidal ``d_MV`` (Dinkelbach, all lengths).

    The compiled twin of
    :func:`repro.core.marzal_vidal.mv_normalized_distance_fractional`
    with unit costs; one encode, all iterations inside the kernel.
    """
    cx, cy = _encode_single(x, y)
    return float(_mv_pair(cx, cy, max_iterations, tolerance))


def mv_distance_batch(
    pairs: Sequence[Tuple[Symbols, Symbols]],
    max_iterations: int = 64,
    tolerance: float = 1e-12,
) -> np.ndarray:
    """Compiled batch of :func:`mv_distance`, one kernel call per bucket."""
    from .kernels import encode_batch

    if not len(pairs):
        return np.zeros(0, dtype=np.float64)
    X, Y, mx, my = encode_batch(pairs)
    return mv_distance_batch_encoded(X, Y, mx, my, max_iterations, tolerance)


def mv_distance_batch_encoded(
    X: IntMatrix,
    Y: IntMatrix,
    mx: IntVector,
    my: IntVector,
    max_iterations: int = 64,
    tolerance: float = 1e-12,
) -> np.ndarray:
    """:func:`mv_distance_batch` over pre-encoded matrices."""
    out = np.zeros(len(mx), dtype=np.float64)
    if len(mx):
        _mv_batch(X, Y, mx, my, max_iterations, tolerance, out)
    return out


def insertion_table_final(x: Symbols, y: Symbols, k_max: int) -> np.ndarray:
    """Compiled twin of
    :func:`repro.core.contextual._insertion_table_final` (the final
    column of Algorithm 1's k-axis DP)."""
    cx, cy = _encode_single(x, y)
    return _insertion_final(cx, cy, k_max)


def _harmonic_prefix(n: int) -> np.ndarray:
    """``H(0..n)`` as a float array, lifted from the process-wide
    :class:`repro.core.harmonic.HarmonicTable` so the compiled cost
    evaluation adds exactly the doubles the scalar path adds."""
    from ..core.harmonic import _TABLE

    _TABLE.value(n)  # ensure the table covers 0..n
    return np.asarray(_TABLE._values[: n + 1], dtype=np.float64)


def contextual_distance(x: Symbols, y: Symbols) -> float:
    """Compiled exact ``d_C`` of one pair (heuristic bound + capped
    k-axis DP, all inside the kernel)."""
    cx, cy = _encode_single(x, y)
    return float(_cdc_pair(cx, cy, _harmonic_prefix(len(cx) + len(cy))))


def contextual_distance_batch(
    pairs: Sequence[Tuple[Symbols, Symbols]],
) -> np.ndarray:
    """Compiled batch of exact ``d_C``, one kernel call per bucket."""
    from .kernels import encode_batch

    if not len(pairs):
        return np.zeros(0, dtype=np.float64)
    X, Y, mx, my = encode_batch(pairs)
    return contextual_distance_batch_encoded(X, Y, mx, my)


def contextual_distance_batch_encoded(
    X: IntMatrix, Y: IntMatrix, mx: IntVector, my: IntVector
) -> np.ndarray:
    """:func:`contextual_distance_batch` over pre-encoded matrices."""
    out = np.zeros(len(mx), dtype=np.float64)
    if len(mx):
        _cdc_batch(X, Y, mx, my, _harmonic_prefix(int((mx + my).max())), out)
    return out
