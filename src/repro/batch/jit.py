"""Optional numba-JIT kernel backend for the DP sweeps.

The numpy anti-diagonal kernels (:mod:`repro.core._kernels`,
:mod:`repro.batch.kernels`) pay one interpreter dispatch per diagonal;
a compiled kernel pays one dispatch per *call* and then runs the whole
Wagner--Fischer table at machine speed.  This module provides that
backend as a strictly optional dependency:

* when :mod:`numba` is importable (``pip install repro[jit]``) and not
  disabled via ``REPRO_JIT=0``, :func:`active` returns True, the public
  batch kernels in :mod:`repro.batch.kernels` dispatch here, and the
  scalar entry points in :mod:`repro.core` drop their
  ``_NUMPY_THRESHOLD`` to zero (the compiled kernel wins at every
  length, so the pure-Python/numpy crossover disappears);
* when numba is absent, nothing changes: every caller falls back to the
  existing numpy/pure-Python kernels, **bit-identically** -- all kernels
  here are integer DPs computing the same recurrences, so the returned
  ``(d_E, Ni)`` values are equal by construction and the test-suite
  cross-checks them whenever numba happens to be installed.

The compiled functions deliberately use plain two-row DP loops rather
than the anti-diagonal form: vectorisation is what the anti-diagonal
trick buys *numpy*, while compiled code is fastest walking rows with
scalar arithmetic.
"""

from __future__ import annotations

import os
from typing import Dict, Hashable, Sequence, Tuple

import numpy as np

from ..core.types import Symbols

__all__ = [
    "available",
    "active",
    "backend_name",
    "levenshtein_batch",
    "contextual_heuristic_batch",
    "levenshtein_single",
    "contextual_heuristic_single",
]

#: Max-insertion sentinel, matching the numpy kernels.
_NEG = -(1 << 30)


def _jit_disabled() -> bool:
    """True when the operator opted out via the environment."""
    return os.environ.get("REPRO_JIT", "").strip().lower() in {
        "0",
        "off",
        "false",
        "no",
    }


try:  # pragma: no cover - exercised only where numba is installed
    if _jit_disabled():
        raise ImportError("JIT disabled via REPRO_JIT")
    from numba import njit as _njit

    _HAVE_NUMBA = True
except Exception:  # numba absent (or disabled): keep the module importable
    _HAVE_NUMBA = False

    def _njit(*args, **kwargs):  # no-op decorator stand-in
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


def available() -> bool:
    """True when numba is importable, even if disabled via ``REPRO_JIT``."""
    if _HAVE_NUMBA:
        return True
    try:  # pragma: no cover - depends on the host environment
        import numba  # noqa: F401

        return True
    except Exception:
        return False


def active() -> bool:
    """True when the JIT backend should serve kernel dispatch."""
    return _HAVE_NUMBA


def backend_name() -> str:
    """``"numba"`` or ``"numpy"`` -- recorded by the benchmarks."""
    return "numba" if active() else "numpy"


# ---------------------------------------------------------------------------
# compiled kernels (integer DP over encoded symbol arrays)
# ---------------------------------------------------------------------------


@_njit(cache=True)
def _lev_pair(cx, cy):  # pragma: no cover - compiled path
    """Two-row Wagner--Fischer over encoded arrays; returns ``d_E``."""
    m, n = cx.shape[0], cy.shape[0]
    if m == 0:
        return n
    if n == 0:
        return m
    prev = np.empty(n + 1, dtype=np.int64)
    cur = np.empty(n + 1, dtype=np.int64)
    for j in range(n + 1):
        prev[j] = j
    for i in range(1, m + 1):
        xi = cx[i - 1]
        cur[0] = i
        for j in range(1, n + 1):
            best = prev[j - 1] if xi == cy[j - 1] else prev[j - 1] + 1
            up = prev[j] + 1
            if up < best:
                best = up
            left = cur[j - 1] + 1
            if left < best:
                best = left
            cur[j] = best
        prev, cur = cur, prev
    return prev[n]


@_njit(cache=True)
def _ctx_pair(cx, cy):  # pragma: no cover - compiled path
    """Twin-table heuristic DP; returns ``(d_E, Ni)``.

    ``Ni`` is the maximum insertion count over minimum-cost internal edit
    paths -- identical to ``repro.core.contextual._heuristic_tables``.
    """
    m, n = cx.shape[0], cy.shape[0]
    if m == 0:
        return n, n
    if n == 0:
        return m, 0
    prev_d = np.empty(n + 1, dtype=np.int64)
    prev_ni = np.empty(n + 1, dtype=np.int64)
    cur_d = np.empty(n + 1, dtype=np.int64)
    cur_ni = np.empty(n + 1, dtype=np.int64)
    for j in range(n + 1):
        prev_d[j] = j
        prev_ni[j] = j  # ni[0][j] = j insertions
    for i in range(1, m + 1):
        xi = cx[i - 1]
        cur_d[0] = i
        cur_ni[0] = 0  # ni[i][0] = 0 (pure deletions)
        for j in range(1, n + 1):
            diag = prev_d[j - 1] if xi == cy[j - 1] else prev_d[j - 1] + 1
            up = prev_d[j] + 1
            left = cur_d[j - 1] + 1
            d = diag if diag < up else up
            if left < d:
                d = left
            cur_d[j] = d
            best = _NEG
            if diag == d and prev_ni[j - 1] > best:
                best = prev_ni[j - 1]
            if up == d and prev_ni[j] > best:
                best = prev_ni[j]
            if left == d and cur_ni[j - 1] + 1 > best:
                best = cur_ni[j - 1] + 1
            cur_ni[j] = best
        prev_d, cur_d = cur_d, prev_d
        prev_ni, cur_ni = cur_ni, prev_ni
    return prev_d[n], prev_ni[n]


@_njit(cache=True)
def _lev_batch(X, Y, mx, my, out):  # pragma: no cover - compiled path
    for p in range(X.shape[0]):
        out[p] = _lev_pair(X[p, : mx[p]], Y[p, : my[p]])


@_njit(cache=True)
def _ctx_batch(X, Y, mx, my, out_d, out_ni):  # pragma: no cover
    for p in range(X.shape[0]):
        d, ni = _ctx_pair(X[p, : mx[p]], Y[p, : my[p]])
        out_d[p] = d
        out_ni[p] = ni


# ---------------------------------------------------------------------------
# python-side wrappers (encoding shared with the numpy kernels)
# ---------------------------------------------------------------------------


def _encode_single(x: Symbols, y: Symbols) -> Tuple[np.ndarray, np.ndarray]:
    """Encode one pair with the batch module's scheme (code points for
    pure-``str`` pairs, one shared dictionary otherwise)."""
    from .kernels import _encode_one

    codes: Dict[Hashable, int] = {}
    if isinstance(x, str) and isinstance(y, str):
        return _encode_one(x, codes), _encode_one(y, codes)
    return _encode_one(tuple(x), codes), _encode_one(tuple(y), codes)


def levenshtein_single(x: Symbols, y: Symbols) -> int:
    """Compiled scalar ``d_E`` (the JIT twin of ``levenshtein_numpy``)."""
    cx, cy = _encode_single(x, y)
    return int(_lev_pair(cx, cy))


def contextual_heuristic_single(x: Symbols, y: Symbols) -> Tuple[int, int]:
    """Compiled scalar ``(d_E, Ni)`` twin of ``contextual_heuristic_numpy``."""
    cx, cy = _encode_single(x, y)
    d, ni = _ctx_pair(cx, cy)
    return int(d), int(ni)


def levenshtein_batch(pairs: Sequence[Tuple[Symbols, Symbols]]) -> np.ndarray:
    """Compiled twin of :func:`repro.batch.kernels.levenshtein_batch`."""
    from .kernels import encode_batch

    out = np.zeros(len(pairs), dtype=np.int64)
    if not len(pairs):
        return out
    X, Y, mx, my = encode_batch(pairs)
    _lev_batch(X, Y, mx, my, out)
    return out


def contextual_heuristic_batch(
    pairs: Sequence[Tuple[Symbols, Symbols]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Compiled twin of
    :func:`repro.batch.kernels.contextual_heuristic_batch`."""
    from .kernels import encode_batch

    out_d = np.zeros(len(pairs), dtype=np.int64)
    out_ni = np.zeros(len(pairs), dtype=np.int64)
    if not len(pairs):
        return out_d, out_ni
    X, Y, mx, my = encode_batch(pairs)
    _ctx_batch(X, Y, mx, my, out_d, out_ni)
    return out_d, out_ni
