"""Deterministic fault injection for the engine runtime.

The persistent runtime of :mod:`repro.batch.runtime` has real failure
modes -- a worker SIGKILLed by the OOM killer, a wedged sweep, a lost
``/dev/shm`` segment, a publication that cannot allocate -- that are
nearly impossible to hit on demand from a test.  This module makes them
reproducible: a ``REPRO_FAULTS`` environment spec arms named *fault
sites* that the runtime and engine consult at their hook points, and the
chaos suite (``tests/batch/test_chaos.py``) then asserts that every bulk
entry point degrades down the retry ladder and still returns results
bit-identical to the serial path.

Spec grammar (comma-separated entries, options ``:``-separated)::

    REPRO_FAULTS="worker_crash:p=0.2,seed=7"
    REPRO_FAULTS="worker_hang:p=0.1:s=30"
    REPRO_FAULTS="shm_attach_fail:once"
    REPRO_FAULTS="publish_fail"

* a bare site name fires on **every** check (``p=1``);
* ``p=<float>`` fires with that probability per check, drawn from a
  per-site :class:`random.Random` stream seeded by ``seed`` (global
  entry, default 0) -- same spec, same draw sequence, deterministic
  replay;
* ``once`` fires on the first check and never again **in that
  process** -- forked pool workers inherit the unfired state, so every
  fresh worker fails its first check (which is exactly what exercises
  the whole retry ladder);
* ``s=<float>`` is the ``worker_hang`` sleep in seconds (default 3600,
  i.e. "wedged until the supervisor's deadline fires").

Fault sites:

=================  =========================================================
``worker_crash``   pool worker ``os._exit``\\ s at task entry (a SIGKILLed
                   worker, as the master observes it); daemon-gated so the
                   serial fallback rung can never kill the master
``worker_hang``    pool worker sleeps at task entry (a wedged sweep);
                   daemon-gated like ``worker_crash``
``shm_attach_fail``  worker-side shared-memory attach raises
                   :class:`FaultInjected` (a stale or unlinked segment)
``publish_fail``   master-side shared-memory publication reports failure
                   (no ``/dev/shm`` space), callers fall back to raw
                   dispatch
``store_torn_write``  artifact-store writer dies between fsync and the
                   atomic rename (a SIGKILLed saver, as loaders observe
                   it): the tmp file exists, the destination never
                   appears
``store_corrupt_manifest``  artifact-store saver truncates the manifest
                   to half its bytes before publishing (a torn metadata
                   write that the strict parser must reject)
``store_lock_stale``  a dead process' pid stamp is planted in the store
                   lock before acquisition, exercising the takeover path
``serve_slow_batch``  the serving tier's bulk execution sleeps ``s=``
                   seconds before running (a wedged batch, as waiting
                   clients observe it): deadlines must still fire on
                   time and later batches must not queue behind it
``serve_shed``     the serving tier's admission check reports the queue
                   full regardless of its real depth -- every submission
                   is shed with ``ServerOverloaded``
``serve_deadline``  the serving tier treats the checked request as
                   already past its deadline at batch-assembly time, so
                   it is failed with ``DeadlineExceeded`` without ever
                   reaching the bulk call
``shard_worker_fail``  a sharded scatter's per-shard worker task raises
                   :class:`FaultInjected` before searching (daemon-gated
                   like ``worker_crash``): the master must re-run that
                   shard serially and merge a bit-identical answer
``shard_merge_skew``  the sharded gather feeds per-shard result lists to
                   the k-merge in a skewed (reversed) order -- the merge
                   must be order-independent, so the output is unchanged
=================  =========================================================

Zero overhead when unarmed: every hook starts with one ``os.environ``
lookup and returns immediately when ``REPRO_FAULTS`` is unset or empty;
the parsed plan is cached per spec string, and hooks sit at per-chunk /
per-publication granularity, never inside the DP kernels.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..tools import knobs

__all__ = [
    "FaultInjected",
    "FaultSpec",
    "FaultPlan",
    "active_plan",
    "fires",
    "check",
    "worker_task",
]

#: Recognised fault-site names (anything else in the spec is an error --
#: a typo'd site silently never firing would make a chaos run vacuous).
SITES = (
    "worker_crash",
    "worker_hang",
    "shm_attach_fail",
    "publish_fail",
    "store_torn_write",
    "store_corrupt_manifest",
    "store_lock_stale",
    "serve_slow_batch",
    "serve_shed",
    "serve_deadline",
    "shard_worker_fail",
    "shard_merge_skew",
)

#: Default ``worker_hang`` sleep: long enough that only the supervisor's
#: deadline (never the sleep ending) unwedges the call.
_DEFAULT_HANG_SECONDS = 3600.0


class FaultInjected(RuntimeError):
    """Raised (or reported) by an armed fault site -- never seen unless
    ``REPRO_FAULTS`` armed that site."""


@dataclass
class FaultSpec:
    """One armed fault site."""

    site: str
    probability: float = 1.0
    once: bool = False
    sleep_seconds: float = _DEFAULT_HANG_SECONDS
    fired: bool = field(default=False, compare=False)


def parse_spec(text: str) -> Dict[str, FaultSpec]:
    """Parse a ``REPRO_FAULTS`` value into ``{site: FaultSpec}`` plus the
    reserved ``seed`` entry (returned under the ``"seed"`` key's spec
    ``probability`` slot would be wrong -- the seed rides separately, see
    :class:`FaultPlan`).  Raises ``ValueError`` on unknown sites or
    malformed options so misconfigured chaos runs fail loudly."""
    specs: Dict[str, FaultSpec] = {}
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        head, *options = entry.split(":")
        head = head.strip()
        if head.startswith("seed="):
            # handled by FaultPlan; keep a placeholder for validation
            specs["seed"] = FaultSpec("seed", probability=float(head[5:]))
            continue
        if head not in SITES:
            raise ValueError(
                f"unknown fault site {head!r} in REPRO_FAULTS "
                f"(known: {', '.join(SITES)})"
            )
        spec = FaultSpec(head)
        for opt in options:
            opt = opt.strip()
            if opt == "once":
                spec.once = True
            elif opt.startswith("p="):
                spec.probability = float(opt[2:])
            elif opt.startswith("s="):
                spec.sleep_seconds = float(opt[2:])
            else:
                raise ValueError(
                    f"unknown fault option {opt!r} for site {head!r}"
                )
        specs[head] = spec
    return specs


class FaultPlan:
    """The armed fault sites of one ``REPRO_FAULTS`` spec.

    Each site draws from its own :class:`random.Random` stream seeded by
    ``(seed, site)``, so firing sequences are deterministic per process
    given the spec -- and independent across sites (arming a second site
    never perturbs the first's draws).
    """

    def __init__(self, specs: Dict[str, FaultSpec]) -> None:
        seed_spec = specs.pop("seed", None)
        self.seed = int(seed_spec.probability) if seed_spec is not None else 0
        self.specs = specs
        self._rngs = {
            site: random.Random(f"{self.seed}:{site}") for site in specs
        }

    def should_fire(self, site: str) -> bool:
        """Whether *site* fires at this check (advances its RNG stream)."""
        spec = self.specs.get(site)
        if spec is None:
            return False
        if spec.once:
            if spec.fired:
                return False
            spec.fired = True
            return True
        if spec.probability >= 1.0:
            return True
        return self._rngs[site].random() < spec.probability

    def spec(self, site: str) -> Optional[FaultSpec]:
        return self.specs.get(site)


#: Parse cache keyed by the spec string -- one plan per distinct
#: ``REPRO_FAULTS`` value per process (so ``once`` bookkeeping and the
#: RNG streams persist across hook calls).
_PLAN_CACHE: Optional[tuple] = None


def active_plan() -> Optional[FaultPlan]:
    """The armed :class:`FaultPlan`, or ``None`` when ``REPRO_FAULTS`` is
    unset/empty (the zero-overhead common case: one env lookup)."""
    env = knobs.get_str("REPRO_FAULTS")
    if env is None:
        return None
    global _PLAN_CACHE
    if _PLAN_CACHE is None or _PLAN_CACHE[0] != env:
        _PLAN_CACHE = (env, FaultPlan(parse_spec(env)))
    return _PLAN_CACHE[1]


def fires(site: str) -> bool:
    """Whether the armed plan fires *site* now (``False`` when unarmed).

    Hook form for sites that *report* failure (``publish_fail``)."""
    plan = active_plan()
    return plan is not None and plan.should_fire(site)


def check(site: str) -> None:
    """Raise :class:`FaultInjected` when the armed plan fires *site* --
    hook form for sites that *fail by exception* (``shm_attach_fail``)."""
    if fires(site):
        raise FaultInjected(site)


def worker_task() -> None:
    """The pool-worker task-entry hook: crash or hang this worker when
    armed.  Gated on ``current_process().daemon`` so the in-process
    serial rung of the degradation ladder (which runs the very same task
    functions inline) can never kill or wedge the master process."""
    plan = active_plan()
    if plan is None:
        return
    import multiprocessing

    if not multiprocessing.current_process().daemon:
        return
    if plan.should_fire("worker_crash"):
        os._exit(86)  # SIGKILL-equivalent: no cleanup, no exception
    if plan.should_fire("worker_hang"):
        spec = plan.spec("worker_hang")
        time.sleep(spec.sleep_seconds if spec is not None else _DEFAULT_HANG_SECONDS)
