"""The persistent engine runtime: a reusable worker pool plus
shared-memory corpus publication, supervised against faults.

Before this module, every :func:`~repro.batch.engine.pairwise_values`
fan-out created a fresh ``multiprocessing.Pool`` (fork + import cost per
*call*) and pickled raw string pairs to the workers.  At bulk-query
serving scale both costs dwarf the DP arithmetic, so the runtime makes
them one-time:

* :class:`EngineRuntime` (one per process, via :func:`get_runtime`) owns
  a **lazily spawned, reused** process pool.  The first sharded engine
  call pays the spawn; every later call just maps chunks onto the live
  workers.  ``REPRO_PERSISTENT_POOL=0`` opts out (read per call), which
  restores the old one-pool-per-call behaviour bit-identically -- the
  pool only moves *where* chunks run, never what they compute;
* interned corpora (:mod:`repro.batch.corpus`) are published to
  ``multiprocessing.shared_memory`` **once**: the padded code matrices
  and length vector are copied into named segments, and the sharded
  fan-out then sends workers only ``(name, token, id-array)`` tuples --
  each worker attaches the segments on first sight, caches the mapping
  for its lifetime, and gathers kernel inputs straight out of shared
  pages.  Per-call query batches ride along as *ephemeral* blocks,
  unlinked as soon as the call returns;
* worker-side caches also memoise the distance-function resolution per
  registry name, so a worker resolves each kernel **once per lifetime**
  instead of once per task shard.

A stateful runtime also has stateful failure modes, so everything here
is *supervised*:

* :meth:`EngineRuntime.supervised_map` runs every chunk under a
  per-chunk deadline (``REPRO_POOL_TIMEOUT`` seconds, scaled by chunk
  size) so a SIGKILLed or wedged worker surfaces as a failed chunk
  instead of hanging the call forever, and retries *only the failed
  chunks* on a fresh pool (``REPRO_POOL_RETRIES`` rounds, exponential
  backoff).  The engine's degradation ladder then walks any survivors
  down to the per-call-pool and in-process serial rungs
  (:mod:`repro.batch.engine`), each rung re-computing the same values;
* cached pools are health-checked before reuse (a dead worker means the
  pool is discarded and respawned, with ``terminate`` + time-bounded
  ``join`` so repeated respawns never accumulate zombie children);
* shared-memory segments carry a session-scoped name prefix
  (``repro-<pid>-<token>-...``), and the first :func:`get_runtime` of a
  process reaps orphaned segments left by dead PIDs (a SIGKILLed master
  whose resource tracker died with it); ``REPRO_SHM_REAPER=0`` opts out;
* worker attachments verify a publication *generation*: a cached block
  whose generation lags the token's was unlinked by a runtime shutdown,
  so the worker drops the stale mapping and re-attaches instead of
  silently reading dead pages;
* every degradation event is counted in :data:`DEGRADATION` and
  announced via :class:`DegradedExecutionWarning`, so a degraded run is
  visible, not silent.

Everything still degrades gracefully: platforms without ``fork`` or
shared memory, sandboxes that forbid subprocesses, and broken pools all
return ``None`` from the runtime's entry points, and the engine falls
back to its serial (or per-call-pool) paths -- same values, no sharing.
:mod:`repro.batch.faults` can inject every failure mode on demand
(``REPRO_FAULTS``), which is how the chaos suite proves the ladder.
"""

from __future__ import annotations

import atexit
import itertools
import os
import re
import threading
import time
import uuid
import warnings
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypedDict,
    cast,
)

import numpy as np

from ..tools import knobs

if TYPE_CHECKING:
    from multiprocessing.pool import Pool

    from .corpus import PairStore

__all__ = [
    "persistent_pool_enabled",
    "DegradationSnapshot",
    "pool_timeout",
    "pool_retries",
    "chunk_deadline",
    "reaper_enabled",
    "reap_orphaned_segments",
    "DegradedExecutionWarning",
    "DegradationStats",
    "DEGRADATION",
    "dispose_pool",
    "EngineRuntime",
    "get_runtime",
    "ArraysToken",
    "BlockToken",
    "StoreToken",
    "attach_arrays",
    "attach_store",
    "publish_generation",
    "release_attachment",
    "shm_ring_enabled",
]



def persistent_pool_enabled() -> bool:
    """Whether sharded fan-out may reuse the persistent pool;
    ``REPRO_PERSISTENT_POOL=0`` opts out (read per call)."""
    return knobs.get_flag("REPRO_PERSISTENT_POOL")


def shm_ring_enabled() -> bool:
    """Whether ephemeral shared-memory segments are recycled through the
    runtime's segment ring instead of being unlinked per call;
    ``REPRO_SHM_RING=0`` opts out (read per publish/release)."""
    return knobs.get_flag("REPRO_SHM_RING")


# ---------------------------------------------------------------------------
# supervision knobs and degradation accounting
# ---------------------------------------------------------------------------

#: Baseline per-chunk deadline in seconds (``REPRO_POOL_TIMEOUT``);
#: generous, because it exists to catch dead/wedged workers, not to race
#: healthy ones.  ``<= 0`` disables deadlines entirely (the pre-PR-6
#: wait-forever behaviour).
_POOL_TIMEOUT = 300.0

#: Chunk size (pairs) covered by the baseline deadline; bigger chunks
#: scale the deadline up proportionally.
_DEADLINE_PAIRS = 50_000.0

#: Fresh-pool retry rounds after a failed fan-out (``REPRO_POOL_RETRIES``).
_POOL_RETRIES = 1

#: First retry backoff in seconds (doubles per round, capped at 2s).
_RETRY_BACKOFF = 0.05


def pool_timeout() -> float:
    """Baseline per-chunk deadline in seconds, honouring
    ``REPRO_POOL_TIMEOUT`` (read per call; ``<= 0`` disables)."""
    value = knobs.get_float("REPRO_POOL_TIMEOUT")
    if value is not None:
        return value
    return _POOL_TIMEOUT


def pool_retries() -> int:
    """Fresh-pool retry rounds, honouring ``REPRO_POOL_RETRIES``."""
    value = knobs.get_int("REPRO_POOL_RETRIES", minimum=0)
    if value is not None:
        return value
    return _POOL_RETRIES


def chunk_deadline(size: Optional[int]) -> Optional[float]:
    """The supervision deadline for one chunk of *size* pairs: the
    ``REPRO_POOL_TIMEOUT`` baseline, scaled up proportionally once a
    chunk exceeds ``_DEADLINE_PAIRS`` pairs.  ``None`` disables."""
    base = pool_timeout()
    if base <= 0:
        return None
    if not size or size <= 0:
        return base
    return base * max(1.0, size / _DEADLINE_PAIRS)


def reaper_enabled() -> bool:
    """Whether the startup orphan reaper runs; ``REPRO_SHM_REAPER=0``
    opts out (e.g. when several unrelated engine processes share a PID
    namespace with aggressive PID reuse)."""
    return knobs.get_flag("REPRO_SHM_REAPER")


class DegradedExecutionWarning(UserWarning):
    """A bulk fan-out degraded down the reliability ladder (retry, fresh
    pool, per-call pool, or in-process serial) -- results are identical,
    but the run is slower than the healthy path and the operator should
    know."""


class DegradationStats:
    """Process-wide counters of every degradation event.

    Bulk drivers snapshot these around each call
    (:attr:`repro.index.base.NearestNeighborIndex.last_degradation`) so
    serving layers can export them; tests assert on deltas.

    All methods hold one internal lock, so a metrics thread (the serving
    tier's health surface) can :meth:`snapshot`/:meth:`delta_since`
    while bulk calls on worker threads :meth:`record` concurrently --
    every snapshot is a consistent point-in-time copy, and no increment
    is ever lost to a racing read-modify-write.
    """

    _FIELDS = (
        "pool_timeouts",  # a chunk missed its supervision deadline
        "pool_errors",  # a chunk raised / died inside the pool
        "pool_retries",  # fresh-pool retry rounds taken
        "dead_pools",  # cached pools discarded by the health check
        "percall_fallbacks",  # chunks degraded to a per-call pool
        "serial_fallbacks",  # chunks degraded to in-process serial
        "shard_fallbacks",  # sharded-index scatters re-run in the master
        "publish_failures",  # shared-memory publications that failed
        "stale_attachments",  # worker re-attaches forced by generation
        "reaped_segments",  # orphaned /dev/shm segments unlinked
        "store_load_failures",  # artifact snapshots that failed verification
        "store_lock_takeovers",  # store locks taken over from dead holders
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {f: 0 for f in self._FIELDS}

    def record(self, event: str, n: int = 1) -> None:
        with self._lock:
            self._counts[event] = self._counts.get(event, 0) + n

    def snapshot(self) -> "DegradationSnapshot":
        with self._lock:
            return cast("DegradationSnapshot", dict(self._counts))

    def delta_since(self, before: "DegradationSnapshot") -> Dict[str, int]:
        """Counters that advanced since *before* (an earlier
        :meth:`snapshot`), as a ``{field: increase}`` dict holding only
        non-zero entries -- the per-interval shape the serving tier's
        health surface exports.  Counters only ever grow between resets,
        so a negative delta (a reset slipped between the snapshots) is
        clamped out rather than reported as garbage."""
        after = self.snapshot()
        out: Dict[str, int] = {}
        for key, value in after.items():
            diff = value - before.get(key, 0)
            if diff > 0:
                out[key] = diff
        return out

    def reset(self) -> None:
        with self._lock:
            for key in list(self._counts):
                self._counts[key] = 0


class DegradationSnapshot(TypedDict):
    """A point-in-time copy of the process-wide degradation counters --
    one field per :data:`DegradationStats._FIELDS` entry, so consumers
    (tests, the chaos harness, operators diffing before/after a bulk
    call) get typed access instead of a stringly dict."""

    pool_timeouts: int
    pool_errors: int
    pool_retries: int
    dead_pools: int
    percall_fallbacks: int
    serial_fallbacks: int
    shard_fallbacks: int
    publish_failures: int
    stale_attachments: int
    reaped_segments: int
    store_load_failures: int
    store_lock_takeovers: int


#: The process-wide degradation counters.
DEGRADATION = DegradationStats()


# ---------------------------------------------------------------------------
# session-scoped segment naming and the orphan reaper
# ---------------------------------------------------------------------------

#: Where POSIX shared memory lives on Linux; the reaper is a no-op on
#: platforms without it.
_SHM_DIR = "/dev/shm"

#: Session-prefixed segment names: ``repro-<pid>-<token>-<counter>``.
#: The pid makes orphans attributable (the reaper checks it for life);
#: the token keeps two same-pid sessions (PID reuse) from colliding.
_ORPHAN_RE = re.compile(r"^repro-(\d+)-")

_SESSION_TOKEN: Optional[str] = None


def _session_prefix() -> str:
    """This process' segment-name prefix (recomputed after a fork, so a
    forked publisher never masquerades under its parent's pid)."""
    global _SESSION_TOKEN
    pid = os.getpid()
    if _SESSION_TOKEN is None or not _SESSION_TOKEN.startswith(f"repro-{pid}-"):
        _SESSION_TOKEN = f"repro-{pid}-{uuid.uuid4().hex[:6]}"
    return _SESSION_TOKEN


def _pid_alive(pid: int) -> bool:
    """Whether *pid* is a live process (permission errors mean alive)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


def reap_orphaned_segments(directory: str = _SHM_DIR) -> List[str]:
    """Unlink ``repro-<pid>-*`` segments whose owner pid is dead.

    A SIGKILLed master (and its resource tracker, when the whole process
    group died) leaks its published segments until reboot; because every
    segment name carries its publisher's pid, any later engine process
    can attribute and remove them.  Returns the reaped names.  Segments
    of live pids -- including reused pids -- are never touched, and the
    reaper never races itself destructively: a concurrent unlink just
    surfaces as a skipped ``OSError``.
    """
    removed: List[str] = []
    try:
        names = os.listdir(directory)
    except OSError:  # no /dev/shm on this platform
        return removed
    own_pid = os.getpid()
    for name in names:
        match = _ORPHAN_RE.match(name)
        if not match:
            continue
        pid = int(match.group(1))
        if pid == own_pid or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(directory, name))
        except OSError:
            continue
        removed.append(name)
    if removed:
        DEGRADATION.record("reaped_segments", len(removed))
        warnings.warn(
            f"reaped {len(removed)} orphaned shared-memory segment(s) "
            "left by dead processes",
            DegradedExecutionWarning,
            stacklevel=2,
        )
    return removed


@dataclass(frozen=True)
class _ArraySpec:
    """One shared-memory segment holding one numpy array."""

    shm_name: str
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class BlockToken:
    """One encoded block (padded x/y matrices + lengths) in shared memory.

    ``persistent`` blocks (interned corpora) may be cached by workers for
    their lifetime; ephemeral blocks (per-call query batches) are
    attached per task and closed immediately after.  ``generation``
    stamps the publication: persistent blocks keep a *stable* key per
    corpus, so a worker holding a cached attachment can tell a
    republication (generation advanced -- the old segments were
    unlinked) from the publication it already mapped.
    """

    key: str
    persistent: bool
    rows_x: _ArraySpec
    rows_y: _ArraySpec
    lengths: _ArraySpec
    generation: int = 0


@dataclass(frozen=True)
class StoreToken:
    """A :class:`~repro.batch.corpus.PairStore` published to shared
    memory: the corpus block plus an optional extra (query) block."""

    corpus: BlockToken
    extra: Optional[BlockToken]


@dataclass(frozen=True)
class ArraysToken:
    """A named bundle of arbitrary arrays in shared memory.

    The generic sibling of :class:`BlockToken` for payloads that are not
    twin code matrices -- the sharded query tier ships each shard's
    structure (pivot tables, pickled item blobs) this way.  Persistent
    bundles follow the same worker-cache + generation-verification
    discipline as persistent blocks.
    """

    key: str
    persistent: bool
    specs: Tuple[Tuple[str, _ArraySpec], ...]
    generation: int = 0


class _ShmStore:
    """Worker-side :class:`~repro.batch.corpus.PairStore` stand-in backed
    by attached shared-memory blocks -- just the ``lengths`` vector and
    the ``gather`` method the encoded evaluation path needs (the gather
    itself is :func:`repro.batch.corpus.gather_rows`, shared with the
    master-side store so the two paths cannot drift)."""

    def __init__(
        self,
        corpus: Tuple[np.ndarray, np.ndarray, np.ndarray],
        extra: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    ) -> None:
        self._corpus_xy = (corpus[0], corpus[1])
        c_len = corpus[2]
        self.n_corpus = len(c_len)
        if extra is not None:
            self._extra_xy = (extra[0], extra[1])
            self.lengths = np.concatenate([c_len, extra[2]])
        else:
            self._extra_xy = None
            self.lengths = c_len

    def gather(
        self, x_ids: np.ndarray, y_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        from .corpus import gather_rows

        return gather_rows(
            self._corpus_xy,
            self._extra_xy,
            self.lengths,
            self.n_corpus,
            x_ids,
            y_ids,
        )


# ---------------------------------------------------------------------------
# worker-side attachment (runs inside pool processes)
# ---------------------------------------------------------------------------

#: Worker-lifetime cache of attached *persistent* blocks:
#: key -> (generation, (rows_x, rows_y, lengths), [SharedMemory handles]).
_ATTACHED_BLOCKS: Dict[str, Tuple[int, Tuple[np.ndarray, ...], List[Any]]] = {}


def _attach_array(spec: _ArraySpec) -> Tuple[np.ndarray, Any]:
    from multiprocessing import shared_memory

    from . import faults

    faults.check("shm_attach_fail")
    # Workers are *forked*, so they share the master's resource tracker:
    # the attach-side registration is an idempotent set-add there, and
    # the master's unlink balances it -- no attach-side unregister (which
    # would steal the master's registration and make the eventual unlink
    # a tracker error).
    shm = shared_memory.SharedMemory(name=spec.shm_name)
    arr = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    return arr, shm


def _attach_block(token: BlockToken) -> Tuple[Tuple[np.ndarray, ...], List[Any]]:
    if token.persistent:
        cached = _ATTACHED_BLOCKS.get(token.key)
        if cached is not None:
            generation, arrays, handles = cached
            if generation == token.generation:
                return arrays, handles
            # A runtime shutdown unlinked the segments this cache maps
            # (publication generation advanced): reading them would
            # silently return dead pages, so drop and re-attach.
            _ATTACHED_BLOCKS.pop(token.key, None)
            release_attachment(handles)
            DEGRADATION.record("stale_attachments")
    arrays: List[np.ndarray] = []
    handles: List[Any] = []
    for spec in (token.rows_x, token.rows_y, token.lengths):
        arr, shm = _attach_array(spec)
        arrays.append(arr)
        handles.append(shm)
    attachment = (tuple(arrays), handles)
    if token.persistent:
        _ATTACHED_BLOCKS[token.key] = (token.generation, *attachment)
    return attachment


def attach_store(token: StoreToken) -> Tuple[_ShmStore, List[Any]]:
    """Attach a published store inside a worker.  Returns the store and
    the list of *ephemeral* handles the caller must close after use
    (persistent blocks stay cached for the worker's lifetime)."""
    corpus_arrays, _ = _attach_block(token.corpus)
    ephemeral: List[Any] = []
    extra_arrays = None
    if token.extra is not None:
        extra_arrays, handles = _attach_block(token.extra)
        if not token.extra.persistent:
            ephemeral.extend(handles)
    return _ShmStore(corpus_arrays, extra_arrays), ephemeral


#: Worker-lifetime cache of attached *persistent* array bundles:
#: key -> (generation, {name: array}, [SharedMemory handles]).
_ATTACHED_ARRAYS: Dict[str, Tuple[int, Dict[str, np.ndarray], List[Any]]] = {}


def attach_arrays(token: ArraysToken) -> Tuple[Dict[str, np.ndarray], List[Any]]:
    """Attach a published array bundle inside a worker.

    Returns ``({name: array}, ephemeral_handles)``; the caller must
    close the handles after use when the bundle is not persistent
    (persistent bundles stay cached for the worker's lifetime, with the
    same generation verification as :func:`_attach_block` -- a bundle
    whose segments a runtime shutdown unlinked is dropped and
    re-attached instead of read as dead pages).
    """
    if token.persistent:
        cached = _ATTACHED_ARRAYS.get(token.key)
        if cached is not None:
            generation, arrays, handles = cached
            if generation == token.generation:
                return arrays, []
            _ATTACHED_ARRAYS.pop(token.key, None)
            release_attachment(handles)
            DEGRADATION.record("stale_attachments")
    arrays: Dict[str, np.ndarray] = {}
    handles: List[Any] = []
    for name, spec in token.specs:
        arr, shm = _attach_array(spec)
        arrays[name] = arr
        handles.append(shm)
    if token.persistent:
        _ATTACHED_ARRAYS[token.key] = (token.generation, arrays, handles)
        return arrays, []
    return arrays, handles


def release_attachment(handles: Sequence[Any]) -> None:
    """Close ephemeral worker-side attachments after a task."""
    for shm in handles:
        try:
            shm.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass


# ---------------------------------------------------------------------------
# master-side runtime
# ---------------------------------------------------------------------------

#: Bumped by every EngineRuntime.shutdown(): corpora cache their
#: publication per generation, so a token whose segments a shutdown
#: already unlinked is never handed out again (it would make every
#: worker attach fail and tear the pool down on each call), and workers
#: holding a pre-shutdown attachment re-attach instead of reading dead
#: pages (see :func:`_attach_block`).
_PUBLISH_GENERATION = 0


def publish_generation() -> int:
    """The current publication generation.  Callers holding tokens from
    an earlier generation (a runtime shutdown happened in between) must
    republish -- their segments are gone."""
    return _PUBLISH_GENERATION


#: Most free segments the runtime's reuse ring retains; excess releases
#: unlink as before.  Sized for the serving-tier case (a handful of
#: small per-call blocks in flight at once), not for bulk corpora.
_RING_CAPACITY = 12

#: Largest segment (bytes) the ring will retain.  High-frequency small
#: query batches are the win; parking a one-off giant batch would just
#: pin memory.
_RING_SEGMENT_MAX = 4 << 20


def _unlink_segment(shm: Any) -> None:
    """Close and unlink one owned segment, tolerating exactly the
    double-unlink race: a segment already removed (an atexit shutdown
    after an explicit one, a reaper in another process, a manual
    ``rm /dev/shm/...``) raises ``FileNotFoundError``, which means the
    desired state already holds.  Anything else propagates -- broad
    suppression here used to hide genuine teardown bugs."""
    try:
        shm.close()
    except BufferError:  # pragma: no cover - exported views still alive
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        # unlink raises before it unregisters, so balance the resource
        # tracker by hand or it reports a phantom leak at exit
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker already gone
            pass


def dispose_pool(pool: Any, kill: bool = False, join_timeout: float = 5.0) -> None:
    """Tear a ``multiprocessing.Pool`` down *completely* without ever
    blocking forever, even when its workers are dead or wedged.

    ``Pool.terminate`` can deadlock: it drains the task queue under the
    queue locks, and a worker that died *holding* one (SIGKILLed while
    blocked on the queue) leaves that lock locked forever.  So terminate
    runs on a daemon thread under a time budget; only once it has
    finished (or overrun) are workers SIGKILLed -- killing first is what
    *creates* the deadlock -- and every worker is then joined with a
    deadline (reaping zombies, so repeated respawns never accumulate
    them), with a SIGKILL + final join for stragglers that ignored
    SIGTERM.  *kill* shortens the terminate budget for pools already
    known to hold dead or wedged workers.
    """
    import threading

    procs = list(getattr(pool, "_pool", None) or [])
    done = threading.Event()

    def _terminate() -> None:
        try:
            pool.terminate()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
        done.set()

    threading.Thread(
        target=_terminate, daemon=True, name="repro-pool-terminate"
    ).start()
    done.wait(min(join_timeout, 1.0) if kill else join_timeout)
    # catch workers the pool's handler thread respawned before terminate
    # flipped its state
    for proc in getattr(pool, "_pool", None) or []:
        if proc not in procs:
            procs.append(proc)
    if not done.is_set() or kill:
        # terminate is stuck (dead worker holding a queue lock, abandoned
        # with its daemon thread) or the pool is known-bad: SIGKILL
        for proc in procs:
            try:
                proc.kill()
            except Exception:  # pragma: no cover - already gone
                pass
    deadline = time.monotonic() + join_timeout
    for proc in procs:
        try:
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(1.0)
        except Exception:  # pragma: no cover - already reaped
            pass


class EngineRuntime:
    """Process-wide holder of the persistent pool and published corpora.

    Use :func:`get_runtime`; constructing more than one per process
    works but forfeits the sharing this class exists for.
    """

    def __init__(self) -> None:
        self._pool = None
        self._pool_size = 0
        self._published: List[Any] = []  # SharedMemory handles we own
        self._counter = itertools.count()
        # The segment ring: released *reusable* (ephemeral) segments park
        # here instead of being unlinked, and the next ephemeral publish
        # of equal-or-smaller payload rewrites one in place -- the
        # per-call create/unlink churn of high-frequency small query
        # batches becomes a memcpy.  Safe because ephemeral segments are
        # only released after their fan-out returned (and failed pools
        # are SIGKILL-disposed first), so no worker still reads them.
        self._ring: List[Any] = []  # free segments, FIFO
        self._ring_names: set = set()  # names tagged ring-eligible
        self._ring_stats: Dict[str, int] = {
            "creates": 0,  # ephemeral publishes that had to create
            "reuses": 0,  # ephemeral publishes served from the ring
            "returns": 0,  # releases parked back into the ring
            "evictions": 0,  # releases unlinked (ring full / knob off)
        }
        atexit.register(self.shutdown)

    # -- pool ---------------------------------------------------------------

    def _pool_healthy(self) -> bool:
        """Whether every worker of the cached pool is alive.  A dead
        worker means tasks can be lost (``Pool`` replaces the process but
        not its in-flight task), so the caller discards and respawns."""
        procs = getattr(self._pool, "_pool", None)
        if not procs:
            return False
        try:
            return all(p.is_alive() for p in procs)
        except Exception:  # pragma: no cover - pool mid-teardown
            return False

    def pool(self, workers: int) -> Optional["Pool"]:
        """The shared pool with at least *workers* processes, spawning or
        growing it lazily; ``None`` when subprocesses are unavailable.
        A cached pool is health-checked first: one with dead workers
        (SIGKILLed children, OOM kills) is discarded and respawned
        instead of being handed lost-task hangs."""
        if self._pool is not None and self._pool_size >= workers:
            if self._pool_healthy():
                return self._pool
            DEGRADATION.record("dead_pools")
            self._discard_pool(kill=True)
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platforms without fork
            ctx = multiprocessing.get_context()
        size = max(workers, self._pool_size, os.cpu_count() or 1)
        try:
            pool = ctx.Pool(processes=size)
        except Exception:  # pragma: no cover - sandboxed/forbidden fork
            return None
        self._discard_pool()
        self._pool = pool
        self._pool_size = size
        return pool

    def map(
        self, fn: Callable[[Any], Any], chunks: Sequence[Any], workers: int
    ) -> Optional[List[Any]]:
        """``pool.map`` on the persistent pool; ``None`` when the pool is
        unavailable or died mid-call (the caller falls back).  Unlike
        :meth:`supervised_map` this is all-or-nothing and deadline-free
        -- the engine's fan-out uses the supervised form."""
        pool = self.pool(workers)
        if pool is None:
            return None
        try:
            return pool.map(fn, chunks)
        except Exception:
            # a dead pool poisons every later call: discard so the next
            # sharded call can spawn a fresh one
            self._discard_pool(kill=True)
            return None

    def supervised_map(
        self,
        fn: Callable[[Any], Any],
        chunks: Sequence[Any],
        workers: int,
        sizes: Optional[Sequence[int]] = None,
    ) -> Optional[Tuple[List[Any], List[int]]]:
        """Fault-tolerant fan-out: run every chunk under a per-chunk
        deadline and retry failures on a fresh pool.

        Each chunk is submitted individually (``apply_async``) and
        awaited under :func:`chunk_deadline` of its *sizes* entry, so a
        worker that died mid-task (its task is silently lost -- ``Pool``
        only replaces the process) or wedged surfaces as that chunk
        failing instead of the call hanging forever.  After a failed
        round the pool is discarded (deadline misses escalate to
        SIGKILL, since a wedged worker may ignore SIGTERM) and **only
        the failed chunks** are retried on a fresh pool, up to
        :func:`pool_retries` rounds with exponential backoff.

        Returns ``(results, failed_indices)`` -- entries of *results* at
        failed indices are ``None`` and the engine's ladder re-runs them
        on lower rungs -- or ``None`` when no pool could be spawned at
        all (quiet serial fallback, not a degradation)."""
        import multiprocessing

        pool = self.pool(workers)
        if pool is None:
            return None
        n = len(chunks)
        results: List[Any] = [None] * n
        pending = list(range(n))
        retries = pool_retries()
        attempt = 0
        while True:
            start = time.monotonic()
            handles: List[Tuple[int, Any]] = []
            try:
                for i in pending:
                    handles.append((i, pool.apply_async(fn, (chunks[i],))))
            except Exception:  # pool broke at submit time
                pass
            submitted = {i for i, _ in handles}
            failed: List[int] = [i for i in pending if i not in submitted]
            hit_deadline = False
            # Deadlines are measured from the round's shared submission
            # instant, so a round of dead chunks costs one deadline, not
            # one per chunk.  Engine callers always submit at most
            # pool-size chunks (everything runs at once); *waves* covers
            # oversubscribed callers, whose later chunks queue.
            waves = max(
                1, -(-len(pending) // max(1, self._pool_size or len(pending)))
            )
            for i, handle in handles:
                deadline = chunk_deadline(
                    sizes[i] if sizes is not None else None
                )
                try:
                    if deadline is None:
                        results[i] = handle.get()
                    else:
                        remaining = start + deadline * waves - time.monotonic()
                        results[i] = handle.get(max(0.001, remaining))
                except multiprocessing.TimeoutError:
                    hit_deadline = True
                    DEGRADATION.record("pool_timeouts")
                    failed.append(i)
                except Exception:
                    DEGRADATION.record("pool_errors")
                    failed.append(i)
            if not failed:
                return results, []
            failed.sort()
            # A failed round leaves the pool suspect: lost tasks, dead
            # or wedged workers.  Discard before any retry; a deadline
            # miss escalates to SIGKILL.
            self._discard_pool(kill=hit_deadline)
            if attempt >= retries:
                return results, failed
            attempt += 1
            DEGRADATION.record("pool_retries")
            warnings.warn(
                f"engine fan-out: {len(failed)}/{n} chunk(s) failed "
                f"(retry {attempt}/{retries}); respawning the worker pool",
                DegradedExecutionWarning,
                stacklevel=2,
            )
            time.sleep(min(_RETRY_BACKOFF * (2 ** (attempt - 1)), 2.0))
            pending = failed
            pool = self.pool(workers)
            if pool is None:
                return results, pending

    def _discard_pool(
        self, kill: bool = False, join_timeout: float = 5.0
    ) -> None:
        """Drop and dispose the cached pool (see :func:`dispose_pool`)."""
        pool, self._pool, self._pool_size = self._pool, None, 0
        if pool is not None:
            dispose_pool(pool, kill=kill, join_timeout=join_timeout)

    # -- shared-memory publication -------------------------------------------

    def _publish_array(
        self, arr: np.ndarray, reusable: bool = False
    ) -> Optional[_ArraySpec]:
        from multiprocessing import shared_memory

        from . import faults

        if faults.fires("publish_fail"):
            DEGRADATION.record("publish_failures")
            return None
        arr = np.ascontiguousarray(arr)
        if reusable and shm_ring_enabled():
            # first-fit from the ring: any parked segment big enough
            # carries the payload (the spec's shape/dtype bound what
            # attachers read, so an oversized buffer is harmless)
            for pos, free in enumerate(self._ring):
                if free.size >= max(1, arr.nbytes):
                    shm = self._ring.pop(pos)
                    if arr.nbytes:
                        view = np.ndarray(
                            arr.shape, dtype=arr.dtype, buffer=shm.buf
                        )
                        view[...] = arr
                    self._published.append(shm)
                    self._ring_stats["reuses"] += 1
                    return _ArraySpec(shm.name, tuple(arr.shape), arr.dtype.str)
        name = f"{_session_prefix()}-{next(self._counter)}"
        try:
            shm = shared_memory.SharedMemory(
                create=True, name=name, size=max(1, arr.nbytes)
            )
        except FileExistsError:  # pragma: no cover - stale same-name file
            try:
                shm = shared_memory.SharedMemory(
                    create=True,
                    name=f"{name}-{uuid.uuid4().hex[:8]}",
                    size=max(1, arr.nbytes),
                )
            except Exception:
                DEGRADATION.record("publish_failures")
                return None
        except Exception:  # pragma: no cover - no /dev/shm or similar
            DEGRADATION.record("publish_failures")
            return None
        if arr.nbytes:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[...] = arr
        self._published.append(shm)
        if reusable and shm_ring_enabled():
            self._ring_stats["creates"] += 1
            if arr.nbytes <= _RING_SEGMENT_MAX:
                self._ring_names.add(shm.name)
        return _ArraySpec(shm.name, tuple(arr.shape), arr.dtype.str)

    def publish_block(
        self,
        rows_x: np.ndarray,
        rows_y: np.ndarray,
        lengths: np.ndarray,
        persistent: bool,
        key: Optional[str] = None,
    ) -> Optional[BlockToken]:
        """Copy one encoded block into shared memory; ``None`` on failure
        (callers fall back to raw-pair dispatch).  A partial failure
        unlinks the segments already created, so a failed publication
        never leaks.  *key* fixes the worker-cache key (persistent
        corpus blocks use a stable per-corpus key so generation
        verification can catch republications)."""
        specs: List[_ArraySpec] = []
        for arr in (rows_x, rows_y, lengths):
            spec = self._publish_array(arr, reusable=not persistent)
            if spec is None:
                self._release_names({s.shm_name for s in specs})
                return None
            specs.append(spec)
        if key is None:
            key = f"{_session_prefix()}-block-{next(self._counter)}"
        return BlockToken(
            key,
            persistent,
            specs[0],
            specs[1],
            specs[2],
            generation=_PUBLISH_GENERATION,
        )

    def publish_store(self, store: "PairStore") -> Optional[StoreToken]:
        """Publish a :class:`~repro.batch.corpus.PairStore`: the corpus
        block once per corpus (cached on the corpus object, invalidated
        by any :meth:`shutdown`, unlinked when the corpus is garbage
        collected), the extra block ephemerally per call."""
        import weakref

        corpus = store.corpus
        cached = corpus.shm_token
        token = None
        if cached is not None and cached[0] == _PUBLISH_GENERATION:
            token = cached[1]
        if token is None:
            token = self.publish_block(
                corpus.block.rows_x,
                corpus.block.rows_y,
                corpus.block.lengths,
                persistent=True,
                key=f"corpus-{corpus.key}",
            )
            if token is None:
                return None
            corpus.shm_token = (_PUBLISH_GENERATION, token)
            # segments live exactly as long as the corpus (its index):
            # without this, a long-lived process building many indexes
            # would accumulate dead corpora in /dev/shm until exit
            weakref.finalize(corpus, self.release_block, token)
        extra_token = None
        if len(store.extra):
            extra_token = self.publish_block(
                store.extra.rows_x,
                store.extra.rows_y,
                store.extra.lengths,
                persistent=False,
            )
            if extra_token is None:
                return None
        return StoreToken(token, extra_token)

    def publish_arrays(
        self,
        arrays: Dict[str, np.ndarray],
        persistent: bool,
        key: Optional[str] = None,
    ) -> Optional[ArraysToken]:
        """Copy a named bundle of arrays into shared memory; ``None`` on
        failure (callers fall back to in-process execution).  A partial
        failure unlinks the segments already created, so a failed
        publication never leaks.  *key* fixes the worker-cache key for
        persistent bundles (the sharded tier uses a stable per-shard key
        so generation verification can catch republications)."""
        specs: List[Tuple[str, _ArraySpec]] = []
        for name, arr in arrays.items():
            spec = self._publish_array(arr, reusable=not persistent)
            if spec is None:
                self._release_names({s.shm_name for _, s in specs})
                return None
            specs.append((name, spec))
        if key is None:
            key = f"{_session_prefix()}-arrays-{next(self._counter)}"
        return ArraysToken(
            key, persistent, tuple(specs), generation=_PUBLISH_GENERATION
        )

    def release_arrays(self, token: Optional[ArraysToken]) -> None:
        """Unlink (or return to the ring) a bundle's segments once its
        consumers are done.  Idempotent, like :meth:`release_block`."""
        if token is None:
            return
        self._release_names({spec.shm_name for _, spec in token.specs})

    def ring_stats(self) -> Dict[str, int]:
        """A copy of the segment-ring traffic counters
        (``creates``/``reuses``/``returns``/``evictions``) -- consumed by
        ``bench_serve.py`` to show how much per-call publish/unlink churn
        the ring absorbed."""
        return dict(self._ring_stats)

    def _release_names(self, names: set) -> None:
        """Unlink the owned segments in *names* (tolerating segments
        already removed by a racing unlink, see :func:`_unlink_segment`)
        and drop them from the ownership list.  Segments tagged
        ring-eligible park in the free ring instead -- still owned, still
        unlinked at :meth:`shutdown` -- unless the ring is full or
        ``REPRO_SHM_RING`` turned off since they were published."""
        if not names:
            return
        kept = []
        ring_on = shm_ring_enabled()
        for shm in self._published:
            if shm.name in names:
                if shm.name in self._ring_names:
                    if ring_on and len(self._ring) < _RING_CAPACITY:
                        self._ring.append(shm)
                        self._ring_stats["returns"] += 1
                        continue
                    self._ring_names.discard(shm.name)
                    self._ring_stats["evictions"] += 1
                _unlink_segment(shm)
            else:
                kept.append(shm)
        self._published = kept

    def release_block(self, token: Optional[BlockToken]) -> None:
        """Unlink a block's segments once a call is done (the master
        copy; workers closed their attachments per task).  Idempotent:
        releasing an already-released or externally-unlinked block is a
        no-op, so the corpus finalizer and an explicit shutdown can
        race freely."""
        if token is None:
            return
        self._release_names(
            {
                token.rows_x.shm_name,
                token.rows_y.shm_name,
                token.lengths.shm_name,
            }
        )

    def shutdown(self) -> None:
        """Terminate the pool and unlink every published segment (atexit;
        also used by tests to reset process-wide state).  Bumps the
        publication generation so corpora holding a now-unlinked cached
        token republish on their next sharded call instead of handing
        workers dead segment names.  Idempotent, and tolerant of
        segments some other actor already unlinked."""
        global _PUBLISH_GENERATION
        _PUBLISH_GENERATION += 1
        self._discard_pool()
        published, self._published = self._published, []
        ring, self._ring = self._ring, []
        self._ring_names.clear()
        for shm in published + ring:
            _unlink_segment(shm)


_RUNTIME: Optional[EngineRuntime] = None
_REAPER_RAN = False


def get_runtime() -> EngineRuntime:
    """The process-wide :class:`EngineRuntime`, created on first use.
    The first call per process also reaps orphaned ``repro-*`` segments
    left in ``/dev/shm`` by dead processes (``REPRO_SHM_REAPER=0`` opts
    out)."""
    global _RUNTIME, _REAPER_RAN
    if _RUNTIME is None:
        _RUNTIME = EngineRuntime()
    if not _REAPER_RAN:
        _REAPER_RAN = True
        if reaper_enabled():
            try:
                reap_orphaned_segments()
            except Exception:  # pragma: no cover - never block startup
                pass
    return _RUNTIME
