"""The persistent engine runtime: a reusable worker pool plus
shared-memory corpus publication.

Before this module, every :func:`~repro.batch.engine.pairwise_values`
fan-out created a fresh ``multiprocessing.Pool`` (fork + import cost per
*call*) and pickled raw string pairs to the workers.  At bulk-query
serving scale both costs dwarf the DP arithmetic, so the runtime makes
them one-time:

* :class:`EngineRuntime` (one per process, via :func:`get_runtime`) owns
  a **lazily spawned, reused** process pool.  The first sharded engine
  call pays the spawn; every later call just maps chunks onto the live
  workers.  ``REPRO_PERSISTENT_POOL=0`` opts out (read per call), which
  restores the old one-pool-per-call behaviour bit-identically -- the
  pool only moves *where* chunks run, never what they compute;
* interned corpora (:mod:`repro.batch.corpus`) are published to
  ``multiprocessing.shared_memory`` **once**: the padded code matrices
  and length vector are copied into named segments, and the sharded
  fan-out then sends workers only ``(name, token, id-array)`` tuples --
  each worker attaches the segments on first sight, caches the mapping
  for its lifetime, and gathers kernel inputs straight out of shared
  pages.  Per-call query batches ride along as *ephemeral* blocks,
  unlinked as soon as the call returns;
* worker-side caches also memoise the distance-function resolution per
  registry name, so a worker resolves each kernel **once per lifetime**
  instead of once per task shard.

Everything here degrades gracefully: platforms without ``fork`` or
shared memory, sandboxes that forbid subprocesses, and broken pools all
return ``None`` from the runtime's entry points, and the engine falls
back to its serial (or per-call-pool) paths -- same values, no sharing.
"""

from __future__ import annotations

import atexit
import itertools
import os
import uuid
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "persistent_pool_enabled",
    "EngineRuntime",
    "get_runtime",
    "BlockToken",
    "StoreToken",
    "attach_store",
    "release_attachment",
]


def persistent_pool_enabled() -> bool:
    """Whether sharded fan-out may reuse the persistent pool;
    ``REPRO_PERSISTENT_POOL=0`` opts out (read per call)."""
    return os.environ.get("REPRO_PERSISTENT_POOL", "").strip().lower() not in {
        "0",
        "off",
        "false",
        "no",
    }


@dataclass(frozen=True)
class _ArraySpec:
    """One shared-memory segment holding one numpy array."""

    shm_name: str
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class BlockToken:
    """One encoded block (padded x/y matrices + lengths) in shared memory.

    ``persistent`` blocks (interned corpora) may be cached by workers for
    their lifetime; ephemeral blocks (per-call query batches) are
    attached per task and closed immediately after.
    """

    key: str
    persistent: bool
    rows_x: _ArraySpec
    rows_y: _ArraySpec
    lengths: _ArraySpec


@dataclass(frozen=True)
class StoreToken:
    """A :class:`~repro.batch.corpus.PairStore` published to shared
    memory: the corpus block plus an optional extra (query) block."""

    corpus: BlockToken
    extra: Optional[BlockToken]


class _ShmStore:
    """Worker-side :class:`~repro.batch.corpus.PairStore` stand-in backed
    by attached shared-memory blocks -- just the ``lengths`` vector and
    the ``gather`` method the encoded evaluation path needs (the gather
    itself is :func:`repro.batch.corpus.gather_rows`, shared with the
    master-side store so the two paths cannot drift)."""

    def __init__(
        self,
        corpus: Tuple[np.ndarray, np.ndarray, np.ndarray],
        extra: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    ) -> None:
        self._corpus_xy = (corpus[0], corpus[1])
        c_len = corpus[2]
        self.n_corpus = len(c_len)
        if extra is not None:
            self._extra_xy = (extra[0], extra[1])
            self.lengths = np.concatenate([c_len, extra[2]])
        else:
            self._extra_xy = None
            self.lengths = c_len

    def gather(
        self, x_ids: np.ndarray, y_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        from .corpus import gather_rows

        return gather_rows(
            self._corpus_xy,
            self._extra_xy,
            self.lengths,
            self.n_corpus,
            x_ids,
            y_ids,
        )


# ---------------------------------------------------------------------------
# worker-side attachment (runs inside pool processes)
# ---------------------------------------------------------------------------

#: Worker-lifetime cache of attached *persistent* blocks:
#: key -> ((rows_x, rows_y, lengths), [SharedMemory handles]).
_ATTACHED_BLOCKS: Dict[str, Tuple[Tuple[np.ndarray, ...], List[Any]]] = {}


def _attach_array(spec: _ArraySpec) -> Tuple[np.ndarray, Any]:
    from multiprocessing import shared_memory

    # Workers are *forked*, so they share the master's resource tracker:
    # the attach-side registration is an idempotent set-add there, and
    # the master's unlink balances it -- no attach-side unregister (which
    # would steal the master's registration and make the eventual unlink
    # a tracker error).
    shm = shared_memory.SharedMemory(name=spec.shm_name)
    arr = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    return arr, shm


def _attach_block(token: BlockToken) -> Tuple[Tuple[np.ndarray, ...], List[Any]]:
    cached = _ATTACHED_BLOCKS.get(token.key) if token.persistent else None
    if cached is not None:
        return cached
    arrays: List[np.ndarray] = []
    handles: List[Any] = []
    for spec in (token.rows_x, token.rows_y, token.lengths):
        arr, shm = _attach_array(spec)
        arrays.append(arr)
        handles.append(shm)
    attachment = (tuple(arrays), handles)
    if token.persistent:
        _ATTACHED_BLOCKS[token.key] = attachment
    return attachment


def attach_store(token: StoreToken) -> Tuple[_ShmStore, List[Any]]:
    """Attach a published store inside a worker.  Returns the store and
    the list of *ephemeral* handles the caller must close after use
    (persistent blocks stay cached for the worker's lifetime)."""
    corpus_arrays, _ = _attach_block(token.corpus)
    ephemeral: List[Any] = []
    extra_arrays = None
    if token.extra is not None:
        extra_arrays, handles = _attach_block(token.extra)
        if not token.extra.persistent:
            ephemeral.extend(handles)
    return _ShmStore(corpus_arrays, extra_arrays), ephemeral


def release_attachment(handles: Sequence[Any]) -> None:
    """Close ephemeral worker-side attachments after a task."""
    for shm in handles:
        try:
            shm.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass


# ---------------------------------------------------------------------------
# master-side runtime
# ---------------------------------------------------------------------------

#: Bumped by every EngineRuntime.shutdown(): corpora cache their
#: publication per generation, so a token whose segments a shutdown
#: already unlinked is never handed out again (it would make every
#: worker attach fail and tear the pool down on each call).
_PUBLISH_GENERATION = 0


class EngineRuntime:
    """Process-wide holder of the persistent pool and published corpora.

    Use :func:`get_runtime`; constructing more than one per process
    works but forfeits the sharing this class exists for.
    """

    def __init__(self) -> None:
        self._pool = None
        self._pool_size = 0
        self._published: List[Any] = []  # SharedMemory handles we own
        self._counter = itertools.count()
        atexit.register(self.shutdown)

    # -- pool ---------------------------------------------------------------

    def pool(self, workers: int):
        """The shared pool with at least *workers* processes, spawning or
        growing it lazily; ``None`` when subprocesses are unavailable."""
        if self._pool is not None and self._pool_size >= workers:
            return self._pool
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platforms without fork
            ctx = multiprocessing.get_context()
        size = max(workers, self._pool_size, os.cpu_count() or 1)
        try:
            pool = ctx.Pool(processes=size)
        except Exception:  # pragma: no cover - sandboxed/forbidden fork
            return None
        self._discard_pool()
        self._pool = pool
        self._pool_size = size
        return pool

    def map(self, fn: Callable, chunks: Sequence[Any], workers: int):
        """``pool.map`` on the persistent pool; ``None`` when the pool is
        unavailable or died mid-call (the caller falls back)."""
        pool = self.pool(workers)
        if pool is None:
            return None
        try:
            return pool.map(fn, chunks)
        except Exception:
            # a dead pool poisons every later call: discard so the next
            # sharded call can spawn a fresh one
            self._discard_pool()
            return None

    def _discard_pool(self) -> None:
        if self._pool is not None:
            try:
                self._pool.terminate()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
            self._pool = None
            self._pool_size = 0

    # -- shared-memory publication -------------------------------------------

    def _publish_array(self, arr: np.ndarray) -> Optional[_ArraySpec]:
        from multiprocessing import shared_memory

        arr = np.ascontiguousarray(arr)
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, arr.nbytes)
            )
        except Exception:  # pragma: no cover - no /dev/shm or similar
            return None
        if arr.nbytes:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[...] = arr
        self._published.append(shm)
        return _ArraySpec(shm.name, tuple(arr.shape), arr.dtype.str)

    def publish_block(
        self,
        rows_x: np.ndarray,
        rows_y: np.ndarray,
        lengths: np.ndarray,
        persistent: bool,
    ) -> Optional[BlockToken]:
        """Copy one encoded block into shared memory; ``None`` on failure
        (callers fall back to raw-pair dispatch)."""
        specs = []
        for arr in (rows_x, rows_y, lengths):
            spec = self._publish_array(arr)
            if spec is None:
                return None
            specs.append(spec)
        key = f"repro-{os.getpid()}-{next(self._counter)}-{uuid.uuid4().hex[:8]}"
        return BlockToken(key, persistent, *specs)

    def publish_store(self, store) -> Optional[StoreToken]:
        """Publish a :class:`~repro.batch.corpus.PairStore`: the corpus
        block once per corpus (cached on the corpus object, invalidated
        by any :meth:`shutdown`, unlinked when the corpus is garbage
        collected), the extra block ephemerally per call."""
        import weakref

        corpus = store.corpus
        cached = corpus.shm_token
        token = None
        if cached is not None and cached[0] == _PUBLISH_GENERATION:
            token = cached[1]
        if token is None:
            token = self.publish_block(
                corpus.block.rows_x,
                corpus.block.rows_y,
                corpus.block.lengths,
                persistent=True,
            )
            if token is None:
                return None
            corpus.shm_token = (_PUBLISH_GENERATION, token)
            # segments live exactly as long as the corpus (its index):
            # without this, a long-lived process building many indexes
            # would accumulate dead corpora in /dev/shm until exit
            weakref.finalize(corpus, self.release_block, token)
        extra_token = None
        if len(store.extra):
            extra_token = self.publish_block(
                store.extra.rows_x,
                store.extra.rows_y,
                store.extra.lengths,
                persistent=False,
            )
            if extra_token is None:
                return None
        return StoreToken(token, extra_token)

    def release_block(self, token: Optional[BlockToken]) -> None:
        """Unlink an ephemeral block's segments once a call is done (the
        master copy; workers closed their attachments per task)."""
        if token is None:
            return
        names = {
            token.rows_x.shm_name,
            token.rows_y.shm_name,
            token.lengths.shm_name,
        }
        kept = []
        for shm in self._published:
            if shm.name in names:
                try:
                    shm.close()
                    shm.unlink()
                except Exception:  # pragma: no cover - already gone
                    pass
            else:
                kept.append(shm)
        self._published = kept

    def shutdown(self) -> None:
        """Terminate the pool and unlink every published segment (atexit;
        also used by tests to reset process-wide state).  Bumps the
        publication generation so corpora holding a now-unlinked cached
        token republish on their next sharded call instead of handing
        workers dead segment names."""
        global _PUBLISH_GENERATION
        _PUBLISH_GENERATION += 1
        self._discard_pool()
        for shm in self._published:
            try:
                shm.close()
                shm.unlink()
            except Exception:  # pragma: no cover - already gone
                pass
        self._published = []


_RUNTIME: Optional[EngineRuntime] = None


def get_runtime() -> EngineRuntime:
    """The process-wide :class:`EngineRuntime`, created on first use."""
    global _RUNTIME
    if _RUNTIME is None:
        _RUNTIME = EngineRuntime()
    return _RUNTIME
