"""Interned corpora: encode a fixed database once, dispatch ids.

Every engine entry point re-normalises and re-encodes its items on each
call -- fine for one-off pair lists, wasteful for the bulk query paths,
which evaluate the *same database* over and over (a pivot sweep per bulk
call, a candidate round per lockstep iteration).  This module makes the
encoding a build-time cost:

* :class:`InternedCorpus` -- the database's sequences normalised with
  :func:`~repro.core.types.as_symbols` and encoded against one **shared
  alphabet table** into padded ``int32`` matrices (one padded with the
  kernels' ``x`` sentinel, one with the ``y`` sentinel, so a row can
  serve either side of a pair) plus a length vector;
* :class:`PairStore` -- the id space the engine's ``*_ids`` entry points
  dispatch against: ids ``[0, n)`` are the corpus items, ids ``[n, n+q)``
  an optional per-call query batch encoded with (and extending) the same
  alphabet.  ``gather`` slices ready-to-sweep ``(X, Y, mx, my)`` kernel
  inputs straight out of the stored matrices -- no per-call
  normalisation, hashing or symbol-by-symbol encoding;
* :func:`intern_corpus` -- the tolerant constructor the indexes call:
  items that cannot be normalised or hashed (arbitrary user objects)
  return ``None`` and every caller falls back to the raw-pair paths.

Encoding is equality-preserving by construction: *all* sequences share
one symbol->code dictionary, so two symbols compare equal after encoding
iff they compared equal before (the DP kernels only ever test equality).
This is the same guarantee :func:`~repro.batch.kernels.encode_batch`
gives per batch, extended to a whole corpus -- cross-representation
equality (``"ab"`` vs ``("a", "b")``) survives because both encode their
*normalised* symbols through the shared table.

``REPRO_INTERN=0`` disables interning at index construction (the bulk
drivers then dispatch raw pairs exactly as before -- a debugging escape
hatch and the baseline of the interned-vs-raw identity tests).
"""

from __future__ import annotations

import uuid
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..core.types import Symbols, as_symbols
from ..tools import knobs
from .kernels import _PAD_X, _PAD_Y

if TYPE_CHECKING:
    from .runtime import BlockToken

__all__ = [
    "InternedCorpus",
    "PairStore",
    "gather_rows",
    "intern_corpus",
    "interning_enabled",
]


def interning_enabled() -> bool:
    """Whether indexes intern their items at construction;
    ``REPRO_INTERN=0`` opts out (read per construction)."""
    return knobs.get_flag("REPRO_INTERN")


class _Block:
    """One encoded batch of sequences: twin padded matrices + lengths.

    ``rows_x`` is padded with the kernels' ``x`` sentinel, ``rows_y``
    with the ``y`` sentinel, so row ``i`` can serve as either side of a
    pair without re-padding (the sentinels must differ between the two
    sides of a sweep so padding never compares equal)."""

    __slots__ = ("rows_x", "rows_y", "lengths")

    def __init__(
        self, rows_x: np.ndarray, rows_y: np.ndarray, lengths: np.ndarray
    ) -> None:
        self.rows_x = rows_x
        self.rows_y = rows_y
        self.lengths = lengths

    @property
    def width(self) -> int:
        return self.rows_x.shape[1]

    def __len__(self) -> int:
        return len(self.lengths)


def _encode_block(
    symbols: Sequence[Symbols], codes: Dict[Hashable, int]
) -> _Block:
    """Encode normalised *symbols* against the shared table *codes*
    (extending it in place) into a :class:`_Block`."""
    P = len(symbols)
    encoded: List[List[int]] = []
    for seq in symbols:
        row: List[int] = []
        for symbol in seq:
            code = codes.get(symbol)
            if code is None:
                code = len(codes)
                codes[symbol] = code
            row.append(code)
        encoded.append(row)
    lengths = np.fromiter((len(r) for r in encoded), dtype=np.int64, count=P)
    width = int(lengths.max()) if P else 0
    rows_x = np.full((P, width), _PAD_X, dtype=np.int32)
    rows_y = np.full((P, width), _PAD_Y, dtype=np.int32)
    for p, row in enumerate(encoded):
        rows_x[p, : len(row)] = row
        rows_y[p, : len(row)] = row
    return _Block(rows_x, rows_y, lengths)


class InternedCorpus:
    """A fixed item list encoded once against a shared alphabet table.

    Raises ``TypeError`` when an item cannot be normalised to a symbol
    sequence or holds unhashable symbols (use :func:`intern_corpus` for
    the tolerant form).
    """

    def __init__(self, items: Sequence[Any]) -> None:
        self.items: List[Any] = list(items)
        self.symbols: List[Symbols] = [as_symbols(item) for item in self.items]
        self.codes: Dict[Hashable, int] = {}
        self.block = _encode_block(self.symbols, self.codes)
        #: Stable identity for shared-memory publication: the runtime
        #: keys worker-side block caches by it, so a *republication*
        #: (same corpus, new segments after a runtime shutdown) lands on
        #: the same cache slot and the publication-generation check can
        #: notice the staleness -- a fresh key per publication would make
        #: that check vacuous.
        self.key: str = uuid.uuid4().hex[:12]
        #: Set by the engine runtime when this corpus has been published
        #: to shared memory: a ``(publication generation, token)`` pair,
        #: revalidated per publish so tokens never outlive a runtime
        #: shutdown (one live publication per corpus per process).
        self.shm_token: Optional[Tuple[int, "BlockToken"]] = None

    @classmethod
    def from_arrays(
        cls,
        items: Sequence[Any],
        rows_x: np.ndarray,
        rows_y: np.ndarray,
        lengths: np.ndarray,
    ) -> "InternedCorpus":
        """Reconstruct a corpus around persisted encoded matrices.

        The artifact store (:mod:`repro.store`) maps a saved corpus'
        matrices back read-only; this constructor wraps them without
        re-encoding.  The alphabet table is *replayed* -- codes are
        assigned in first-occurrence order over the normalised symbol
        stream, exactly as :func:`_encode_block` assigned them at save
        time -- so later :meth:`encode` calls (query batches) land on
        the same numbering the persisted matrices carry.  Shape or
        dtype drift raises ``ValueError``: a mismatched block must fail
        loudly here, because the kernels would otherwise compare
        queries against the wrong code space.
        """
        corpus = cls.__new__(cls)
        corpus.items = list(items)
        corpus.symbols = [as_symbols(item) for item in corpus.items]
        codes: Dict[Hashable, int] = {}
        for seq in corpus.symbols:
            for symbol in seq:
                if symbol not in codes:
                    codes[symbol] = len(codes)
        corpus.codes = codes
        rows_x = np.asarray(rows_x)
        rows_y = np.asarray(rows_y)
        lengths = np.asarray(lengths)
        if rows_x.dtype != np.int32 or rows_y.dtype != np.int32:
            raise ValueError(
                f"corpus rows must be int32, got {rows_x.dtype}/{rows_y.dtype}"
            )
        if lengths.dtype.kind not in "iu" or lengths.ndim != 1:
            raise ValueError("corpus lengths must be an int vector")
        if rows_x.ndim != 2 or rows_x.shape != rows_y.shape:
            raise ValueError(
                f"corpus row matrices disagree: {rows_x.shape} vs {rows_y.shape}"
            )
        if rows_x.shape[0] != len(corpus.items) or len(lengths) != len(corpus.items):
            raise ValueError(
                f"corpus block holds {rows_x.shape[0]} rows / {len(lengths)} "
                f"lengths for {len(corpus.items)} items"
            )
        for i, seq in enumerate(corpus.symbols):
            if int(lengths[i]) != len(seq):
                raise ValueError(
                    f"item {i} normalises to {len(seq)} symbols but the "
                    f"persisted length vector says {int(lengths[i])}"
                )
        if len(lengths) and rows_x.shape[1] < int(lengths.max()):
            raise ValueError(
                f"corpus rows are {rows_x.shape[1]} wide but the longest "
                f"item needs {int(lengths.max())}"
            )
        corpus.block = _Block(rows_x, rows_y, lengths)
        corpus.key = uuid.uuid4().hex[:12]
        corpus.shm_token = None
        return corpus

    def __len__(self) -> int:
        return len(self.items)

    @property
    def lengths(self) -> np.ndarray:
        return self.block.lengths

    def encode(self, items: Sequence[Any]) -> Tuple[List[Symbols], _Block]:
        """Encode *items* with (and extending) this corpus' alphabet.

        Raises ``TypeError`` for non-normalisable or unhashable items,
        exactly like construction."""
        symbols = [as_symbols(item) for item in items]
        return symbols, _encode_block(symbols, self.codes)

    def store(self, queries: Sequence[Any] = ()) -> "PairStore":
        """A :class:`PairStore` over this corpus plus an optional query
        batch encoded against the same alphabet."""
        return PairStore(self, queries)


class PairStore:
    """The id space interned engine calls dispatch against.

    Ids ``[0, n_corpus)`` address the corpus, ids ``[n_corpus,
    n_corpus + n_extra)`` the per-call extra batch (queries).  Kernel
    inputs are *gathered* -- row-sliced out of the stored matrices --
    instead of re-encoded.
    """

    def __init__(self, corpus: InternedCorpus, extras: Sequence[Any] = ()) -> None:
        self.corpus = corpus
        self.raw_items: List[Any] = list(extras)
        self.extra_symbols, self.extra = corpus.encode(self.raw_items)
        self.n_corpus = len(corpus)
        #: lengths over the whole id space (corpus then extras)
        self.lengths = (
            np.concatenate([corpus.block.lengths, self.extra.lengths])
            if len(self.extra)
            else corpus.block.lengths
        )

    def __len__(self) -> int:
        return self.n_corpus + len(self.extra)

    def extra_id(self, position: int) -> int:
        """The store id of extra (query) number *position*."""
        return self.n_corpus + position

    def raw(self, i: int) -> Any:
        """The original item behind id *i* (for scalar fallbacks)."""
        if i < self.n_corpus:
            return self.corpus.items[i]
        return self.raw_items[i - self.n_corpus]

    def sym(self, i: int) -> Symbols:
        """The normalised symbols behind id *i*."""
        if i < self.n_corpus:
            return self.corpus.symbols[i]
        return self.extra_symbols[i - self.n_corpus]

    def _row(self, i: int) -> np.ndarray:
        """Id *i*'s encoded symbols (unpadded view)."""
        if i < self.n_corpus:
            return self.corpus.block.rows_x[i, : self.lengths[i]]
        j = i - self.n_corpus
        return self.extra.rows_x[j, : self.lengths[i]]

    def same(self, i: int, j: int) -> bool:
        """Exact symbol equality of ids *i* and *j* (the encoding is
        equality-preserving, so encoded rows decide it)."""
        if i == j:
            return True
        if self.lengths[i] != self.lengths[j]:
            return False
        return bool(np.array_equal(self._row(i), self._row(j)))

    def gather(
        self, x_ids: np.ndarray, y_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Ready-to-sweep kernel inputs ``(X, Y, mx, my)`` for the id
        pairs ``zip(x_ids, y_ids)`` -- the zero-(re)encode counterpart of
        :func:`~repro.batch.kernels.encode_batch`."""
        return gather_rows(
            (self.corpus.block.rows_x, self.corpus.block.rows_y),
            (self.extra.rows_x, self.extra.rows_y) if len(self.extra) else None,
            self.lengths,
            self.n_corpus,
            x_ids,
            y_ids,
        )


def _take_rows(
    ids: np.ndarray,
    lengths: np.ndarray,
    n_corpus: int,
    corpus_rows: np.ndarray,
    extra_rows: Optional[np.ndarray],
    pad: int,
) -> np.ndarray:
    """Stack the rows of *ids* out of the corpus/extra matrices, padded
    with *pad* to the tightest width for this id set."""
    width = int(lengths[ids].max()) if len(ids) else 0
    out = np.full((len(ids), width), pad, dtype=np.int32)
    corp = ids < n_corpus
    if corp.any():
        w = min(width, corpus_rows.shape[1])
        out[corp, :w] = corpus_rows[ids[corp], :w]
    rest = ~corp
    if rest.any():
        if extra_rows is None:
            # Previously an AttributeError on NoneType deep in the
            # gather; surface the actual contract violation instead.
            bad = ids[rest][0]
            raise IndexError(
                f"id {int(bad)} addresses the extra block but none was "
                f"gathered (corpus ids end at {n_corpus - 1})"
            )
        w = min(width, extra_rows.shape[1])
        out[rest, :w] = extra_rows[ids[rest] - n_corpus, :w]
    return out


def gather_rows(
    corpus_xy: Tuple[np.ndarray, np.ndarray],
    extra_xy: Optional[Tuple[np.ndarray, np.ndarray]],
    lengths: np.ndarray,
    n_corpus: int,
    x_ids: np.ndarray,
    y_ids: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The shared gather behind :meth:`PairStore.gather` and the
    worker-side shared-memory store (:mod:`repro.batch.runtime`): one
    implementation, so the master and worker paths cannot drift apart
    on sentinel, width or id-split rules."""
    x_ids = np.asarray(x_ids, dtype=np.int64)
    y_ids = np.asarray(y_ids, dtype=np.int64)
    extra_x = extra_xy[0] if extra_xy is not None else None
    extra_y = extra_xy[1] if extra_xy is not None else None
    return (
        _take_rows(x_ids, lengths, n_corpus, corpus_xy[0], extra_x, _PAD_X),
        _take_rows(y_ids, lengths, n_corpus, corpus_xy[1], extra_y, _PAD_Y),
        lengths[x_ids],
        lengths[y_ids],
    )


def intern_corpus(items: Sequence[Any]) -> Optional[InternedCorpus]:
    """Intern *items*, or ``None`` when they cannot be (non-sequence
    items, unhashable symbols) -- callers then keep the raw-pair paths."""
    try:
        return InternedCorpus(items)
    except TypeError:
        return None
