"""Crash-safe persistence of built nearest-neighbour indexes.

AESA pays ``O(n^2)`` distance evaluations at construction and LAESA
``O(n * P)``; without persistence every process pays that again on
startup.  This package snapshots a *built* index -- the interned
corpus' twin code matrices, LAESA's pivot rows, AESA's full triangle,
the VP/BK tree shapes -- into a versioned on-disk store and loads it
back by **mapping** the arrays read-only, so a warm start costs file
verification instead of distance computations.

The store is built for hostile conditions, matching the engine
runtime's reliability ladder:

* every write is atomic (tmp + fsync + rename; the manifest lands
  last), so a SIGKILLed saver leaves the previous version intact and
  nothing half-written visible -- :mod:`repro.store.atomic`;
* loads verify format version, corpus fingerprint and per-file SHA-256
  checksums before trusting a byte -- :mod:`repro.store.manifest`;
* concurrent savers serialize on a pid-stamped lock file with dead-pid
  takeover -- :mod:`repro.store.lock`;
* any miss rebuilds silently, any corruption rebuilds *loudly*
  (``DegradedExecutionWarning`` + the ``store_load_failures`` counter)
  -- :func:`load_or_build` never crashes and never serves results a
  cold rebuild would not.

Index classes expose this as ``index.save(store)`` and
``IndexClass.load(items, distance, store, **params)``
(:mod:`repro.index.base`); ``REPRO_STORE_*`` knobs tune root, retention,
lock timeout and verification (:mod:`repro.tools.knobs`).
"""

from __future__ import annotations

from .artifacts import (
    ArtifactStore,
    corpus_fingerprint,
    distance_token,
    load_or_build,
)
from .atomic import fsync_dir, replace_file, write_array, write_bytes, write_text
from .errors import StoreError, StoreLoadError, StoreLockTimeout, StoreMiss
from .lock import ArtifactLock
from .manifest import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    FileDigest,
    Manifest,
    ManifestError,
    sha256_file,
)

__all__ = [
    "ArtifactLock",
    "ArtifactStore",
    "FORMAT_VERSION",
    "FileDigest",
    "MANIFEST_NAME",
    "Manifest",
    "ManifestError",
    "StoreError",
    "StoreLoadError",
    "StoreLockTimeout",
    "StoreMiss",
    "corpus_fingerprint",
    "distance_token",
    "fsync_dir",
    "load_or_build",
    "replace_file",
    "sha256_file",
    "write_array",
    "write_bytes",
    "write_text",
]
