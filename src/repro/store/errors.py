"""The artifact store's failure taxonomy.

Loading distinguishes two shapes of "no artifact came back", because the
caller's obligations differ:

* :class:`StoreMiss` -- nothing under this key (first run, changed
  corpus, changed parameters).  A plain cache miss: callers rebuild
  silently, no degradation is recorded.
* :class:`StoreLoadError` -- artifacts exist under the key but none
  survived verification (torn manifest, checksum mismatch, foreign
  format version, shape drift).  Something that *should* have worked
  did not: callers rebuild, but the event is surfaced through
  :class:`~repro.batch.runtime.DegradedExecutionWarning` and the
  ``store_load_failures`` degradation counter.

Neither is ever allowed to escape :func:`repro.store.load_or_build` --
the public contract is "never a crash, never wrong results".
"""

from __future__ import annotations

__all__ = [
    "StoreError",
    "StoreMiss",
    "StoreLoadError",
    "StoreLockTimeout",
]


class StoreError(RuntimeError):
    """Base class of every artifact-store failure."""


class StoreMiss(StoreError):
    """No artifact exists under the requested key (a plain cache miss)."""


class StoreLoadError(StoreError):
    """Artifacts exist under the key but every version failed
    verification -- corruption, truncation, or metadata drift."""


class StoreLockTimeout(StoreError):
    """A live process held the key's lock file past the configured
    timeout (``REPRO_STORE_LOCK_TIMEOUT``); dead holders never time a
    waiter out -- their locks are taken over immediately."""
