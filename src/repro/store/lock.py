"""Per-key writer serialization: a pid-stamped lock file.

Concurrent savers of the same index key must not interleave version
numbering or pruning, so :class:`ArtifactLock` serializes them on a lock
file inside the key directory.  The mechanics combine two layers:

* an ``fcntl.flock`` exclusive lock on the file provides the actual
  mutual exclusion -- kernel-owned, so a SIGKILLed holder releases it
  instantly and can never wedge the store;
* a pid stamp written into the file provides *observability*, mirroring
  the shared-memory reaper (:func:`repro.batch.runtime.
  reap_orphaned_segments`): acquiring a lock whose stamp names a dead
  process is a **dead-pid takeover** -- the previous holder crashed
  mid-save -- and is surfaced through the ``store_lock_takeovers``
  degradation counter and a :class:`~repro.batch.runtime.
  DegradedExecutionWarning` (a clean release truncates the stamp, so
  healthy handovers stay silent).

A *live* holder keeps waiters polling until ``REPRO_STORE_LOCK_TIMEOUT``
seconds elapse, then :class:`~repro.store.errors.StoreLockTimeout` is
raised -- loaders never take this lock, so a stuck saver can only ever
delay other savers, never a replica start-up.

The armed ``store_lock_stale`` fault site plants a dead-pid stamp just
before acquisition, forcing the takeover path on demand (the chaos
suite's handle on it).
"""

from __future__ import annotations

import errno
import fcntl
import os
import time
import warnings
from pathlib import Path
from types import TracebackType
from typing import Optional, Type, Union

from ..batch import faults
from ..batch.runtime import (
    DEGRADATION,
    DegradedExecutionWarning,
    _pid_alive,
)
from ..tools import knobs
from .errors import StoreLockTimeout

__all__ = ["ArtifactLock", "DEFAULT_LOCK_TIMEOUT"]

#: Default seconds a saver waits on a live holder before giving up
#: (``REPRO_STORE_LOCK_TIMEOUT`` overrides it fleet-wide).
DEFAULT_LOCK_TIMEOUT = 30.0

#: Poll cadence while a live holder keeps the flock.
_POLL_SECONDS = 0.05


def _stale_pid() -> int:
    """A pid guaranteed dead, for the ``store_lock_stale`` injection
    (probed downward from the kernel's default ``pid_max``)."""
    for pid in range(4194303, 4194303 - 256, -1):
        if not _pid_alive(pid):
            return pid
    raise RuntimeError("no dead pid found below pid_max")  # pragma: no cover


class ArtifactLock:
    """Exclusive per-key writer lock (context manager).

    ``with ArtifactLock(key_dir / "LOCK"):`` acquires the flock (taking
    over dead holders immediately), stamps the file with this process'
    pid, and on exit truncates the stamp and releases.  Re-entrant use
    of one instance is a programming error and raises ``RuntimeError``.
    """

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        timeout: Optional[float] = None,
        poll_seconds: float = _POLL_SECONDS,
    ) -> None:
        self.path = Path(path)
        if timeout is None:
            env = knobs.get_float(
                "REPRO_STORE_LOCK_TIMEOUT", default=DEFAULT_LOCK_TIMEOUT
            )
            timeout = env if env is not None else DEFAULT_LOCK_TIMEOUT
        self.timeout = float(timeout)
        self.poll_seconds = float(poll_seconds)
        self._fd: Optional[int] = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> "ArtifactLock":
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path} is already held")
        if faults.fires("store_lock_stale"):
            self._plant_stale_stamp()
        fd = os.open(os.fspath(self.path), os.O_CREAT | os.O_RDWR, 0o644)
        try:
            self._flock_with_timeout(fd)
            self._record_takeover(fd)
            self._stamp(fd)
        except BaseException:
            os.close(fd)
            raise
        self._fd = fd
        return self

    def release(self) -> None:
        fd = self._fd
        if fd is None:
            return
        self._fd = None
        try:
            # Truncate the stamp *before* dropping the flock: the next
            # holder must never read this (live) pid and misreport a
            # takeover.
            os.ftruncate(fd, 0)
            os.fsync(fd)
        except OSError:
            pass
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:
                pass
            os.close(fd)

    def __enter__(self) -> "ArtifactLock":
        return self.acquire()

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()

    # -- internals --------------------------------------------------------

    def _flock_with_timeout(self, fd: int) -> None:
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                return
            except OSError as exc:
                if exc.errno not in (errno.EAGAIN, errno.EACCES):
                    raise
            if time.monotonic() >= deadline:
                raise StoreLockTimeout(
                    f"lock {self.path} held by a live process for more "
                    f"than {self.timeout:g}s"
                )
            time.sleep(self.poll_seconds)

    def _record_takeover(self, fd: int) -> None:
        """Surface a dead previous holder (stamp present, pid dead)."""
        os.lseek(fd, 0, os.SEEK_SET)
        try:
            stamp = os.read(fd, 64).decode("ascii", "replace").strip()
        except OSError:
            return
        if not stamp:
            return  # clean release (or fresh file): nothing to report
        try:
            pid = int(stamp.split()[0])
        except (ValueError, IndexError):
            pid = -1  # torn stamp: the writer died before finishing it
        if pid >= 0 and _pid_alive(pid):
            return  # released flock but live process: not a crash
        DEGRADATION.record("store_lock_takeovers")
        warnings.warn(
            f"took over artifact-store lock {self.path} stamped by dead "
            f"process {pid if pid >= 0 else '<unreadable>'}",
            DegradedExecutionWarning,
            stacklevel=4,
        )

    def _stamp(self, fd: int) -> None:
        os.ftruncate(fd, 0)
        os.lseek(fd, 0, os.SEEK_SET)
        os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        os.fsync(fd)

    def _plant_stale_stamp(self) -> None:
        """``store_lock_stale``: forge a dead holder's crash leftovers."""
        fd = os.open(os.fspath(self.path), os.O_CREAT | os.O_RDWR, 0o644)
        try:
            os.ftruncate(fd, 0)
            os.write(fd, f"{_stale_pid()}\n".encode("ascii"))
            os.fsync(fd)
        finally:
            os.close(fd)
