"""Atomic file writes: tmp + fsync + rename, nothing else.

Every byte the artifact store puts on disk goes through this module --
linter rule R6 (:mod:`repro.tools.check`) mechanically rejects any other
write-mode ``open`` under a ``store`` package, and this file is the one
sanctioned exception.  The discipline is the classic crash-safe
sequence:

1. write the full payload into a same-directory temp file opened with
   ``O_CREAT | O_EXCL`` (no clobbering a concurrent writer's temp);
2. flush and ``fsync`` the file so the data is durable before the name;
3. ``os.replace`` onto the final name (atomic on POSIX: readers see the
   old bytes or the new bytes, never a mixture);
4. ``fsync`` the parent directory so the rename itself is durable.

A crash (or an armed ``store_torn_write`` fault) at any point before
step 3 leaves only a temp file -- invisible to loaders, reclaimed by the
next locked saver -- and the final path either absent or fully written.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path
from typing import IO, Callable, Union

import numpy as np

from ..batch import faults

__all__ = ["fsync_dir", "replace_file", "write_bytes", "write_text", "write_array"]

PathLike = Union[str, "os.PathLike[str]"]


def fsync_dir(path: PathLike) -> None:
    """Flush directory *path*'s entry table to disk (best effort: some
    filesystems refuse directory fsync; the rename is still atomic)."""
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def replace_file(path: PathLike, write: Callable[[IO[bytes]], None]) -> None:
    """Atomically materialise *path* with the bytes *write* produces.

    *write* receives a binary file object for a same-directory temp
    file; after it returns, the temp file is fsynced and renamed over
    *path*.  On any failure -- including an armed ``store_torn_write``
    fault, which fires after the payload is durable but before the
    rename, the exact window a torn write occupies -- the temp file is
    removed and *path* is left untouched.
    """
    target = Path(path)
    tmp = target.parent / f".{target.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    fd = os.open(os.fspath(tmp), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        faults.check("store_torn_write")
        os.replace(tmp, target)
    except BaseException:
        try:
            tmp.unlink()
        except FileNotFoundError:
            pass
        raise
    fsync_dir(target.parent)


def write_bytes(path: PathLike, data: bytes) -> None:
    """Atomically write *data* to *path*."""
    replace_file(path, lambda handle: _write_all(handle, data))


def _write_all(handle: IO[bytes], data: bytes) -> None:
    handle.write(data)


def write_text(path: PathLike, text: str) -> None:
    """Atomically write UTF-8 *text* to *path*."""
    write_bytes(path, text.encode("utf-8"))


def write_array(path: PathLike, array: np.ndarray) -> None:
    """Atomically write *array* to *path* in ``.npy`` format.

    The format is the same one :func:`numpy.lib.format.open_memmap`
    produces (and :func:`repro.batch.pairwise_matrix_memmap` streams
    into), so every artifact file reopens with ``np.load(path,
    mmap_mode="r")`` -- a read-only mapping, never a copy.
    """
    contiguous = np.ascontiguousarray(array)
    replace_file(
        path, lambda handle: np.save(handle, contiguous, allow_pickle=False)
    )
