"""The artifact manifest: one JSON file that makes a snapshot valid.

A snapshot directory is *defined* by its ``manifest.json`` -- the file
is written last (atomically), so a directory without a parseable
manifest is by construction an unfinished or pruned save and never
loadable.  The manifest binds together everything a loader must verify
before trusting a single byte of payload:

* ``format_version`` -- the on-disk layout revision; foreign versions
  are rejected, not guessed at;
* ``class`` / ``distance`` / ``params`` -- which structure, under which
  metric, with which build parameters;
* ``corpus_fingerprint`` / ``n_items`` -- a SHA-256 over the normalised
  item sequences, so an artifact can never be replayed against a
  changed database (defence in depth: the fingerprint is also part of
  the store key);
* ``files`` -- per-payload-file SHA-256 + size, checked before any
  array is mapped (``REPRO_STORE_VERIFY=0`` skips the hashing for
  trusted volumes).

Parsing is strict: :func:`Manifest.from_json` raises
:class:`ManifestError` on anything malformed, and the loader treats
that exactly like a checksum mismatch -- skip the snapshot, surface the
degradation, rebuild.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Union

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "FileDigest",
    "Manifest",
    "ManifestError",
    "sha256_file",
]

#: On-disk layout revision; bump on any incompatible change so old
#: readers reject new snapshots (and vice versa) instead of misparsing.
FORMAT_VERSION = 1

#: The snapshot-defining file, written last inside every snapshot.
MANIFEST_NAME = "manifest.json"

_HASH_CHUNK = 1 << 20


class ManifestError(ValueError):
    """A manifest that cannot be parsed or fails shape validation."""


def sha256_file(path: Union[str, "os.PathLike[str]"]) -> str:
    """Hex SHA-256 of *path*'s contents (streamed, bounded memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_HASH_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class FileDigest:
    """Integrity record of one payload file."""

    sha256: str
    size: int


@dataclass(frozen=True)
class Manifest:
    """The parsed (or to-be-written) snapshot manifest."""

    format_version: int
    class_name: str
    distance: str
    params: Dict[str, Any]
    corpus_fingerprint: str
    n_items: int
    preprocessing_computations: int
    meta: Dict[str, Any]
    files: Dict[str, FileDigest]

    def to_json(self) -> str:
        payload = {
            "format_version": self.format_version,
            "class": self.class_name,
            "distance": self.distance,
            "params": self.params,
            "corpus_fingerprint": self.corpus_fingerprint,
            "n_items": self.n_items,
            "preprocessing_computations": self.preprocessing_computations,
            "meta": self.meta,
            "files": {
                name: {"sha256": digest.sha256, "size": digest.size}
                for name, digest in sorted(self.files.items())
            },
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ManifestError(f"manifest is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise ManifestError("manifest root is not an object")
        try:
            files = _parse_files(raw["files"])
            manifest = cls(
                format_version=_expect_int(raw, "format_version"),
                class_name=_expect_str(raw, "class"),
                distance=_expect_str(raw, "distance"),
                params=_expect_dict(raw, "params"),
                corpus_fingerprint=_expect_str(raw, "corpus_fingerprint"),
                n_items=_expect_int(raw, "n_items"),
                preprocessing_computations=_expect_int(
                    raw, "preprocessing_computations"
                ),
                meta=_expect_dict(raw, "meta"),
                files=files,
            )
        except KeyError as exc:
            raise ManifestError(f"manifest is missing field {exc.args[0]!r}")
        return manifest


def _expect_int(raw: Mapping[str, Any], key: str) -> int:
    value = raw[key]
    if not isinstance(value, int) or isinstance(value, bool):
        raise ManifestError(f"manifest field {key!r} is not an integer")
    return value


def _expect_str(raw: Mapping[str, Any], key: str) -> str:
    value = raw[key]
    if not isinstance(value, str):
        raise ManifestError(f"manifest field {key!r} is not a string")
    return value


def _expect_dict(raw: Mapping[str, Any], key: str) -> Dict[str, Any]:
    value = raw[key]
    if not isinstance(value, dict):
        raise ManifestError(f"manifest field {key!r} is not an object")
    return dict(value)


def _parse_files(raw: Any) -> Dict[str, FileDigest]:
    if not isinstance(raw, dict):
        raise ManifestError("manifest field 'files' is not an object")
    files: Dict[str, FileDigest] = {}
    for name, entry in raw.items():
        if not isinstance(name, str) or not isinstance(entry, dict):
            raise ManifestError("malformed 'files' entry")
        sha = entry.get("sha256")
        size = entry.get("size")
        if not isinstance(sha, str) or not isinstance(size, int):
            raise ManifestError(f"malformed digest for file {name!r}")
        files[name] = FileDigest(sha256=sha, size=size)
    return files
